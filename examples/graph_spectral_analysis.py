#!/usr/bin/env python
"""Spectral analysis of network graphs in low-precision arithmetic.

This example mirrors the paper's graph workload: it builds symmetrically
normalised Laplacians for graphs from different Network-Repository-style
categories, computes their dominant eigenvalues in a tapered-precision format
(takum16) and reports spectral quantities commonly used in network analysis:

* the spectral gap of the normalised Laplacian (connectivity / mixing),
* an estimate of bipartiteness (largest eigenvalue close to 2),
* the error of the low-precision run against the float64 result.

Run with::

    python examples/graph_spectral_analysis.py [format]
"""

import sys

import numpy as np

from repro import partialschur
from repro.datasets import generate_graph
from repro.experiments import match_eigenpairs, relative_l2_error, tolerance_for
from repro.sparse import laplacian_from_adjacency


CATEGORIES = ["protein", "power", "road", "soc", "socfb", "rand", "proximity"]


def analyse(category: str, fmt: str) -> None:
    adjacency, model = generate_graph(category, index=0, size=72, seed=11)
    laplacian = laplacian_from_adjacency(adjacency)
    n = laplacian.shape[0]

    # float64 baseline and the low-precision run under study
    baseline = partialschur(laplacian, nev=12, tol=1e-12, ctx="float64", restarts=120)
    lowprec = partialschur(
        laplacian, nev=12, tol=tolerance_for(fmt), ctx=fmt, restarts=60
    )

    status = "ok" if lowprec.converged else "no convergence (∞ω)"
    lam_base = np.sort(baseline.eigenvalues_float64())[::-1]
    spectral_gap = 2.0 - lam_base[0] if lam_base[0] > 1.0 else float("nan")
    bipartite_score = lam_base[0] / 2.0

    line = (
        f"{category:10s} n={n:4d}  model={model:28s} "
        f"lambda_max={lam_base[0]:6.4f}  bipartiteness={bipartite_score:5.3f} "
        f"gap={spectral_gap:6.4f}  {fmt}: {status}"
    )
    if lowprec.converged and baseline.converged:
        vals, vecs, _ = match_eigenpairs(
            baseline.eigenvalues_float64(),
            baseline.eigenvectors_float64(),
            lowprec.eigenvalues_float64(),
            lowprec.eigenvectors_float64(),
            keep=10,
        )
        err = relative_l2_error(baseline.eigenvalues_float64()[:10], vals)
        line += f"  rel err={err:.2e}"
    print(line)


def main() -> None:
    fmt = sys.argv[1] if len(sys.argv) > 1 else "takum16"
    print(f"dominant Laplacian spectra per graph category ({fmt} vs float64)\n")
    for category in CATEGORIES:
        analyse(category, fmt)


if __name__ == "__main__":
    main()
