#!/usr/bin/env python
"""Quickstart: compute the 10 largest eigenvalues of a graph Laplacian in
several machine-number formats and compare them against an extended-precision
reference.

This is the minimal end-to-end use of the library's public API:

1. build (or load) a sparse symmetric matrix,
2. pick a compute context (the arithmetic every operation is rounded to),
3. run ``partialschur`` — the implicitly restarted Arnoldi method with
   Krylov-Schur restarts,
4. compare against the reference with the paper's matching + error metrics.

Run with::

    python examples/quickstart.py

Expected output (re-run 2026-07, after the scalar-fast-path PR; exact error
digits depend on the BLAS/libm build, statuses and error magnitudes should
match)::

    matrix: ca/ca_0000  n=59  nnz=287

    reference eigenvalues (10 largest):
      1.765444  1.747625  1.691764  1.682296  1.666047  1.622901  ...

    format     status        lambda rel err  vector rel err
    float64    ok                 9.026e-16       9.219e-14
    float32    ok                 4.847e-07       8.391e-05
    takum16    ok                 4.189e-03       3.295e-01
    posit16    ok                 1.888e-03       9.159e-02
    bfloat16   ok                 2.281e-02       7.520e-01
    float16    ok                 2.137e-03       3.321e-01
    E4M3       ok                 1.372e-01       1.323e+00
"""

from repro import get_context, partialschur
from repro.datasets import graph_suite
from repro.experiments import match_eigenpairs, relative_l2_error, tolerance_for


def main() -> None:
    # a small synthetic social-network Laplacian (entries in [-1, 1])
    test_matrix = graph_suite(classes="social", scale=0.002, size_range=(48, 64), seed=7)[0]
    laplacian = test_matrix.matrix
    print(f"matrix: {test_matrix.name}  n={test_matrix.n}  nnz={test_matrix.nnz}")

    nev, buffer = 10, 2

    # extended-precision reference (the paper uses float128; we use longdouble)
    reference = partialschur(
        laplacian, nev=nev + buffer, tol=1e-18, ctx="reference", restarts=200
    )
    ref_vals = reference.eigenvalues_float64()
    ref_vecs = reference.eigenvectors_float64()
    print("\nreference eigenvalues (10 largest):")
    print("  " + "  ".join(f"{v:.6f}" for v in ref_vals[:nev]))

    print(f"\n{'format':10s} {'status':12s} {'lambda rel err':>15s} {'vector rel err':>15s}")
    for name in ("float64", "float32", "takum16", "posit16", "bfloat16", "float16", "E4M3"):
        ctx = get_context(name)
        converted, info = ctx.convert_matrix(laplacian)
        if info.range_exceeded:
            print(f"{name:10s} {'range (∞σ)':12s}")
            continue
        result = partialschur(
            converted,
            nev=nev + buffer,
            tol=tolerance_for(name),
            ctx=ctx,
            restarts=60,
        )
        if not result.converged:
            print(f"{name:10s} {'no conv (∞ω)':12s}")
            continue
        vals, vecs, _ = match_eigenpairs(
            ref_vals, ref_vecs, result.eigenvalues_float64(), result.eigenvectors_float64(), keep=nev
        )
        lam_err = relative_l2_error(ref_vals[:nev], vals)
        vec_err = relative_l2_error(ref_vecs[:, :nev], vecs)
        print(f"{name:10s} {'ok':12s} {lam_err:15.3e} {vec_err:15.3e}")


if __name__ == "__main__":
    main()
