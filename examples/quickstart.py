#!/usr/bin/env python
"""Quickstart: compute the 10 largest eigenvalues of a graph Laplacian in
several machine-number formats and compare them against an extended-precision
reference.

This is the minimal end-to-end use of the library's public API:

1. build (or load) a sparse symmetric matrix,
2. pick a compute context (the arithmetic every operation is rounded to),
3. run ``partialschur`` — the implicitly restarted Arnoldi method with
   Krylov-Schur restarts,
4. compare against the reference with the paper's matching + error metrics.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import get_context, partialschur
from repro.datasets import graph_suite
from repro.experiments import match_eigenpairs, relative_l2_error, tolerance_for


def main() -> None:
    # a small synthetic social-network Laplacian (entries in [-1, 1])
    test_matrix = graph_suite(classes="social", scale=0.002, size_range=(48, 64), seed=7)[0]
    laplacian = test_matrix.matrix
    print(f"matrix: {test_matrix.name}  n={test_matrix.n}  nnz={test_matrix.nnz}")

    nev, buffer = 10, 2

    # extended-precision reference (the paper uses float128; we use longdouble)
    reference = partialschur(
        laplacian, nev=nev + buffer, tol=1e-18, ctx="reference", restarts=200
    )
    ref_vals = reference.eigenvalues_float64()
    ref_vecs = reference.eigenvectors_float64()
    print("\nreference eigenvalues (10 largest):")
    print("  " + "  ".join(f"{v:.6f}" for v in ref_vals[:nev]))

    print(f"\n{'format':10s} {'status':12s} {'lambda rel err':>15s} {'vector rel err':>15s}")
    for name in ("float64", "float32", "takum16", "posit16", "bfloat16", "float16", "E4M3"):
        ctx = get_context(name)
        converted, info = ctx.convert_matrix(laplacian)
        if info.range_exceeded:
            print(f"{name:10s} {'range (∞σ)':12s}")
            continue
        result = partialschur(
            converted,
            nev=nev + buffer,
            tol=tolerance_for(name),
            ctx=ctx,
            restarts=60,
        )
        if not result.converged:
            print(f"{name:10s} {'no conv (∞ω)':12s}")
            continue
        vals, vecs, _ = match_eigenpairs(
            ref_vals, ref_vecs, result.eigenvalues_float64(), result.eigenvectors_float64(), keep=nev
        )
        lam_err = relative_l2_error(ref_vals[:nev], vals)
        vec_err = relative_l2_error(ref_vecs[:, :nev], vecs)
        print(f"{name:10s} {'ok':12s} {lam_err:15.3e} {vec_err:15.3e}")


if __name__ == "__main__":
    main()
