#!/usr/bin/env python
"""Mini reproduction of one figure: cumulative error distributions per format.

This example runs the full experiment harness on a scaled-down version of the
paper's "general matrices" workload (Figure 1) for the 16-bit formats and
prints the cumulative error distributions as an ASCII plot plus a percentile
table — the same artefacts the benchmark harness produces for all figures.

Run with::

    python examples/format_comparison.py [n_matrices]

Expected output for ``python examples/format_comparison.py 2`` (re-run
2026-07, after the scalar-fast-path PR; the ASCII plots below the table are
omitted here)::

    running 2 general matrices x 4 formats ...

    Figure 1(b) — general matrices, 16-bit formats (scaled down)
    --- 16-bit formats (log10 relative errors) ---
    format    runs  ok  inf_omega  inf_sigma  lam p25  lam p50  lam p75  vec p50
    --------  ----  --  ---------  ---------  -------  -------  -------  -------
    float16   2     2   0          0          -2.57    -2.57    -2.56    -1.35
    takum16   2     2   0          0          -2.59    -2.55    -2.52    -1.30
    posit16   2     2   0          0          -3.11    -3.08    -3.05    -1.64
    bfloat16  2     2   0          0          -1.97    -1.91    -1.86    -0.50
"""

import sys

from repro.arithmetic.registry import PAPER_FORMATS
from repro.datasets import suitesparse_like
from repro.experiments import ExperimentConfig, figure_report, run_experiment


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    suite = suitesparse_like(count=count, size_range=(28, 48), seed=0)
    config = ExperimentConfig(restarts=25)
    formats = list(PAPER_FORMATS[16])

    print(f"running {len(suite)} general matrices x {len(formats)} formats ...\n")
    result = run_experiment(suite, formats, config, workers=1)
    print(
        figure_report(
            result.records,
            widths=(16,),
            title="Figure 1(b) — general matrices, 16-bit formats (scaled down)",
        )
    )


if __name__ == "__main__":
    main()
