#!/usr/bin/env python
"""Mini reproduction of one figure: cumulative error distributions per format.

This example runs the full experiment harness on a scaled-down version of the
paper's "general matrices" workload (Figure 1) for the 16-bit formats and
prints the cumulative error distributions as an ASCII plot plus a percentile
table — the same artefacts the benchmark harness produces for all figures.

Run with::

    python examples/format_comparison.py [n_matrices]
"""

import sys

from repro.arithmetic.registry import PAPER_FORMATS
from repro.datasets import suitesparse_like
from repro.experiments import ExperimentConfig, figure_report, run_experiment


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    suite = suitesparse_like(count=count, size_range=(28, 48), seed=0)
    config = ExperimentConfig(restarts=25)
    formats = list(PAPER_FORMATS[16])

    print(f"running {len(suite)} general matrices x {len(formats)} formats ...\n")
    result = run_experiment(suite, formats, config, workers=1)
    print(
        figure_report(
            result.records,
            widths=(16,),
            title="Figure 1(b) — general matrices, 16-bit formats (scaled down)",
        )
    )


if __name__ == "__main__":
    main()
