#!/usr/bin/env python
"""Using the arithmetic layer directly: rounding, encoding and custom kernels.

The number formats are useful on their own, outside the Arnoldi experiments:
this example shows bit-level encode/decode, per-operation rounded kernels and
how precision tapers across the dynamic range for posits and takums — the
mechanism behind the accuracy differences the paper reports.

Run with::

    python examples/custom_arithmetic.py
"""

import numpy as np

from repro import get_context, get_format


def show_encoding() -> None:
    print("bit-level encodings of pi:")
    for name in ("float16", "bfloat16", "E4M3", "E5M2", "posit16", "takum16"):
        fmt = get_format(name)
        rounded = fmt.round_scalar(np.pi)
        code = int(fmt.encode(np.array([np.pi]))[0])
        err = abs(rounded - np.pi) / np.pi
        print(f"  {name:9s} code=0x{code:0{fmt.bits // 4}X}  value={rounded!r:22}  rel err={err:.2e}")


def show_tapered_precision() -> None:
    print("\nrelative rounding error of x = 1.000001 * 2^k (precision tapering):")
    ks = [0, 8, 32, 64, 100]
    header = "  k:      " + "".join(f"{k:>12d}" for k in ks)
    print(header)
    for name in ("float32", "posit32", "takum32"):
        fmt = get_format(name)
        errs = []
        for k in ks:
            x = np.ldexp(1.000001, k)
            r = fmt.round_scalar(x)
            errs.append(abs(r - x) / x if np.isfinite(r) else float("inf"))
        print(f"  {name:8s}" + "".join(f"{e:12.1e}" for e in errs))


def show_rounded_kernels() -> None:
    print("\na dot product accumulated in different arithmetics:")
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4096)
    y = rng.standard_normal(4096)
    exact = float(np.dot(x, y))
    for name in ("float64", "float32", "bfloat16", "posit16", "takum16", "E5M2"):
        ctx = get_context(name)
        xs, ys = ctx.asarray(x), ctx.asarray(y)
        pairwise = float(ctx.dot(xs, ys))
        ctx_seq = get_context(name, accumulation="sequential")
        sequential = float(ctx_seq.dot(xs, ys))
        print(
            f"  {name:9s} pairwise={pairwise:+.6f}  sequential={sequential:+.6f}  "
            f"exact={exact:+.6f}"
        )


if __name__ == "__main__":
    show_encoding()
    show_tapered_precision()
    show_rounded_kernels()
