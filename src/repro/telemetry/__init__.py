"""``repro.telemetry`` — structured metrics, trace spans and run reports.

A zero-dependency observability layer with three pillars:

* a process-wide **metrics registry** (:data:`metrics`) of counters, gauges
  and histograms — kernel-dispatch decisions, LUT fallback fractions,
  store hits/misses, executor task times, rounded-op totals per format;
* hierarchical **trace spans** (:func:`trace.span`) emitted as JSON-lines
  to a sink file, with per-process shard files merged by
  :func:`trace.collate` after parallel runs;
* **reports**: :class:`TelemetryReport` (embedded in the CLI's
  ``--report-json``) and the ``repro trace summarize`` phase/format
  breakdown (:func:`summarize_trace` / :func:`render_trace_summary`).

The whole layer is **off by default** and compiled into the hot paths
permanently: every instrumented site guards on one module attribute
(:data:`repro.telemetry.core.ENABLED`), so the disabled cost is a dict
lookup per site — gated at <= 2% by ``benchmarks/bench_telemetry.py
--check``.  Enable with ``REPRO_TELEMETRY=1`` or :func:`set_enabled`; the
experiment CLI enables it automatically when ``--trace`` or
``--metrics-json`` is passed.
"""

from . import trace
from .core import enabled, set_enabled
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .report import TelemetryReport, render_prometheus, render_trace_summary, summarize_trace

__all__ = [
    "trace",
    "enabled",
    "set_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "TelemetryReport",
    "summarize_trace",
    "render_trace_summary",
    "render_prometheus",
]
