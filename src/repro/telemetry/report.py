"""Telemetry surface area: the per-run report and the trace summariser.

:class:`TelemetryReport` is the JSON-able document embedded in the CLI's
``--report-json`` output: run wall time, the cache-hit ratio of the
experiment store, and a full metrics-registry snapshot.

:func:`summarize_trace` / :func:`render_trace_summary` back the ``repro
trace summarize`` subcommand: they aggregate a JSON-lines span file into a
phase (span name) and format breakdown — count, inclusive and self wall
time, rounded-op counts where spans carry them — and compute the span
coverage of the run's wall clock (the union of top-level span intervals
across all processes over the observed wall window).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Iterable, Optional

from .trace import read_events

__all__ = [
    "TelemetryReport",
    "summarize_trace",
    "render_trace_summary",
    "render_prometheus",
]


@dataclasses.dataclass
class TelemetryReport:
    """Per-run observability summary (embedded in ``--report-json``).

    Attributes
    ----------
    wall_seconds:
        End-to-end wall time of the experiment execution.
    cache_hit_ratio:
        Fraction of planned (matrix, format) cells served from the store
        (1.0 for a fully warm rerun; 1.0 also for an empty plan).
    metrics:
        Flat snapshot of the process metrics registry
        (:meth:`repro.telemetry.MetricsRegistry.snapshot`), ``None`` while
        telemetry is disabled.
    trace_file:
        The collated span sink of this run, if one was configured.
    """

    wall_seconds: float = 0.0
    cache_hit_ratio: float = 1.0
    metrics: Optional[dict] = None
    trace_file: Optional[str] = None

    def to_dict(self) -> dict:
        """Plain-dict view (CLI ``--report-json`` embedding)."""
        return dataclasses.asdict(self)


def _prometheus_name(flat_key: str) -> tuple[str, str]:
    """Split a registry flat key into a Prometheus name and label block.

    The registry renders instruments as ``name`` or ``name{k=v,...}``; the
    exposition format wants underscores in metric names and quoted label
    values (``serve_requests{route="cell",status="200"}``).
    """
    name, _, labels = flat_key.partition("{")
    name = name.replace(".", "_")
    if not labels:
        return name, ""
    pairs = []
    for item in labels.rstrip("}").split(","):
        key, _, value = item.partition("=")
        pairs.append(f'{key}="{value}"')
    return name, "{" + ",".join(pairs) + "}"


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition of a metrics-registry snapshot.

    Counters and gauges render as single samples; histograms (streaming
    count/sum/min/max summaries — the registry stores no buckets) render as
    ``<name>_count`` / ``<name>_sum`` / ``<name>_min`` / ``<name>_max``
    samples sharing the instrument's labels.  Backs the serve layer's
    ``GET /metrics`` endpoint.
    """
    lines: list[str] = []
    for flat_key, value in snapshot.get("counters", {}).items():
        name, labels = _prometheus_name(flat_key)
        lines.append(f"{name}{labels} {value}")
    for flat_key, value in snapshot.get("gauges", {}).items():
        name, labels = _prometheus_name(flat_key)
        lines.append(f"{name}{labels} {value}")
    for flat_key, summary in snapshot.get("histograms", {}).items():
        name, labels = _prometheus_name(flat_key)
        for part in ("count", "sum", "min", "max"):
            sample = summary.get(part)
            if sample is None:
                sample = 0
            lines.append(f"{name}_{part}{labels} {sample}")
    return "\n".join(lines) + "\n"


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end]`` intervals."""
    total = 0.0
    end = None
    for start, stop in sorted(intervals):
        if end is None or start > end:
            total += stop - start
            end = stop
        elif stop > end:
            total += stop - end
            end = stop
    return total


def summarize_trace(path: str | os.PathLike) -> dict:
    """Aggregate a span file into phase/format statistics.

    Returns a dict with:

    * ``events`` — number of span events read;
    * ``wall_seconds`` — observed wall window (first span start to last
      span end, across processes);
    * ``coverage`` — fraction of that window covered by the union of
      top-level (depth 0) spans;
    * ``phases`` — per span name: ``count``, ``total`` (inclusive seconds),
      ``self`` (exclusive seconds), ``errors``, ``ops`` (summed ``ops``
      attributes);
    * ``formats`` — the same aggregation keyed by the spans' ``fmt``
      attribute (spans without one are skipped).
    """
    phases: dict[str, dict] = {}
    formats: dict[str, dict] = {}
    top_intervals: list[tuple[float, float]] = []
    t_min = t_max = None
    events = 0

    def bucket(table: dict, key: str) -> dict:
        entry = table.get(key)
        if entry is None:
            entry = table[key] = {"count": 0, "total": 0.0, "self": 0.0, "errors": 0, "ops": 0}
        return entry

    for event in read_events(path):
        if event.get("ev") != "span":
            continue
        events += 1
        name = str(event.get("name", "?"))
        dur = float(event.get("dur", 0.0))
        self_time = float(event.get("self", dur))
        t0 = float(event.get("t0", 0.0))
        attrs = event.get("attrs") or {}
        ops = int(attrs.get("ops", 0) or 0)
        entry = bucket(phases, name)
        entry["count"] += 1
        entry["total"] += dur
        entry["self"] += self_time
        entry["ops"] += ops
        if event.get("error"):
            entry["errors"] += 1
        fmt = attrs.get("fmt")
        if fmt:
            fentry = bucket(formats, str(fmt))
            fentry["count"] += 1
            fentry["total"] += dur
            fentry["self"] += self_time
            fentry["ops"] += ops
            if event.get("error"):
                fentry["errors"] += 1
        if t_min is None or t0 < t_min:
            t_min = t0
        if t_max is None or t0 + dur > t_max:
            t_max = t0 + dur
        if int(event.get("depth", 0)) == 0:
            top_intervals.append((t0, t0 + dur))

    wall = (t_max - t_min) if (t_min is not None and t_max is not None) else 0.0
    coverage = (_interval_union(top_intervals) / wall) if wall > 0 else 0.0
    return {
        "events": events,
        "wall_seconds": wall,
        "coverage": min(coverage, 1.0),
        "phases": phases,
        "formats": formats,
    }


def _breakdown_rows(table: dict, wall: float) -> list[list[str]]:
    rows = []
    for name, entry in sorted(table.items(), key=lambda kv: -kv[1]["self"]):
        share = entry["self"] / wall if wall > 0 else 0.0
        rows.append(
            [
                name,
                str(entry["count"]),
                f"{entry['total']:.3f}",
                f"{entry['self']:.3f}",
                f"{100 * share:.1f}%",
                str(entry["ops"]) if entry["ops"] else "-",
                str(entry["errors"]) if entry["errors"] else "-",
            ]
        )
    return rows


def render_trace_summary(summary: dict, title: str = "trace summary") -> str:
    """Render :func:`summarize_trace` output as aligned text tables."""
    # local import: utils.parallel imports repro.telemetry, so a module-level
    # import here would close a cycle through repro.utils.__init__
    from ..utils.textplot import format_table

    headers = ["phase", "count", "total s", "self s", "% wall", "ops", "errors"]
    lines = [
        f"{title}: {summary['events']} spans over {summary['wall_seconds']:.3f}s wall, "
        f"top-level coverage {100 * summary['coverage']:.1f}%",
        "",
        format_table(headers, _breakdown_rows(summary["phases"], summary["wall_seconds"]),
                     title="by phase (span name)"),
    ]
    if summary["formats"]:
        headers[0] = "format"
        lines.append(
            format_table(headers, _breakdown_rows(summary["formats"], summary["wall_seconds"]),
                         title="by format (spans carrying fmt=...)")
        )
    return "\n".join(lines)
