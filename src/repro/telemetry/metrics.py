"""Metrics registry: counters, gauges and histograms with monotonic timers.

One process-wide :class:`MetricsRegistry` (:data:`metrics`) aggregates
everything the instrumented layers record:

* **counters** — monotonically increasing tallies (kernel dispatch decisions,
  store hits/misses, rounded elementary operations);
* **gauges** — last-written values (table memory, worker counts);
* **histograms** — streaming summaries (count/sum/min/max) of observations,
  used for wall-time distributions via :meth:`MetricsRegistry.timer`.

Instruments are keyed by ``(name, labels)``; the flat snapshot renders label
sets Prometheus-style (``rounding.dispatch{format=posit16,path=bitkernel}``)
so the JSON output diffs cleanly.  All mutation is thread-safe: each
instrument carries its own lock (CPython's ``+=`` on an attribute is *not*
atomic across threads).  Hot call sites are expected to guard on
``core.ENABLED`` before touching the registry and to memoise the instrument
objects they use repeatedly — ``counter(...)`` performs a dict lookup and
label canonicalisation per call, which is fine per store commit but not per
rounded scalar op (those keep the context-local ``op_count`` tally and flush
through :meth:`repro.arithmetic.ComputeContext.publish_op_count`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, Optional

from . import core as _core

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
]


def _render_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Flat snapshot key: ``name`` or ``name{k=v,...}`` (labels sorted)."""
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (thread-safe)."""
        with self._lock:
            self.value += n


class Gauge:
    """Last-written value."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge (thread-safe)."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming summary of observations: count, sum, min, max.

    A fixed-size summary instead of stored samples keeps the no-allocation
    promise of the telemetry layer — per-event detail belongs to the trace
    sink (:mod:`repro.telemetry.trace`), not the metrics registry.
    """

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe)."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-able view of the summary statistics."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class _Timer:
    """Context manager observing its wall time into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class _NullTimer:
    """Shared no-op timer returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Thread-safe registry of named, labelled instruments.

    ``counter``/``gauge``/``histogram`` get-or-create and return the
    instrument object — hot paths call them once and keep the reference;
    incrementing the returned object is a single lock-protected add.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._flushers: list[Callable[[bool], None]] = []

    # -- deferred tallies -------------------------------------------------

    def register_flusher(self, flush: Callable[[bool], None]) -> None:
        """Register a deferred-tally drain for the hottest call sites.

        Per-element instrumentation (the rounding dispatch of
        ``arithmetic/base.py`` and the kernels under it) cannot afford a
        registry lookup — or even a lock acquisition — per call; those
        sites accumulate into plain module-local dicts and register a
        ``flush(discard)`` callable here.  Every read path (:meth:`snapshot`,
        :meth:`counters`, :meth:`value`, :meth:`sum_counters`) drains the
        tallies first, so readers always observe exact totals;
        ``flush(True)`` (from :meth:`reset`) drops pending tallies instead,
        so counts recorded before a reset cannot leak past it.
        """
        self._flushers.append(flush)

    def _drain(self, discard: bool = False) -> None:
        for flush in self._flushers:
            flush(discard)

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram())
        return instrument

    def inc(self, name: str, n: int = 1, **labels) -> None:
        """Convenience counter increment; no-op while telemetry is off."""
        if _core.ENABLED:
            self.counter(name, **labels).inc(n)

    def timer(self, name: str, **labels):
        """Context manager timing its block into ``histogram(name)``.

        Returns a shared no-op object while telemetry is disabled, so the
        ``with`` statement itself is the only residual cost.
        """
        if not _core.ENABLED:
            return _NULL_TIMER
        return _Timer(self.histogram(name, **labels))

    # -- introspection ----------------------------------------------------

    def counters(self) -> Iterator[tuple[str, int]]:
        """``(flat key, value)`` pairs of all counters (sorted)."""
        self._drain()
        for key in sorted(self._counters):
            yield _render_key(*key), self._counters[key].value

    def snapshot(self) -> dict:
        """JSON-able view of every instrument (flat, label-rendered keys)."""
        self._drain()
        return {
            "counters": {_render_key(*k): c.value for k, c in sorted(self._counters.items())},
            "gauges": {_render_key(*k): g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                _render_key(*k): h.summary() for k, h in sorted(self._histograms.items())
            },
        }

    def value(self, name: str, **labels) -> int:
        """Current value of a counter (0 when it was never incremented)."""
        self._drain()
        instrument = self._counters.get(self._key(name, labels))
        return instrument.value if instrument is not None else 0

    def sum_counters(self, prefix: str) -> int:
        """Sum of every counter whose name starts with ``prefix``.

        Label-blind aggregation, e.g. ``sum_counters("store.get.hit")``
        across record kinds.
        """
        self._drain()
        total = 0
        for (name, _labels), instrument in self._counters.items():
            if name.startswith(prefix):
                total += instrument.value
        return total

    def reset(self) -> None:
        """Drop every instrument (fresh per-run view; the CLI calls this)."""
        self._drain(discard=True)
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: the process-wide registry every instrumented layer records into
metrics = MetricsRegistry()
