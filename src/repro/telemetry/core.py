"""Process-wide telemetry switch (the no-op fast path).

Telemetry is **off by default**: every instrumented call site in the hot
paths (`round_array` dispatch, the bit-kernel fallback accounting, the store
and executor counters, the trace spans) guards itself with a single module
attribute read of :data:`ENABLED` before doing any telemetry work, so the
compiled-in instrumentation costs one dict lookup per site when disabled —
the overhead budget is gated at <= 2% by ``benchmarks/bench_telemetry.py
--check``.

The opt-in hierarchy mirrors the rounding backends' opt-*out* hierarchy
(``REPRO_DISABLE_BITKERNELS`` / ``set_bitkernels_enabled``), inverted
because observability is the optional layer here:

* ``REPRO_TELEMETRY=1`` — environment: enable at import time.  This is also
  how ``parallel_map`` worker processes inherit the switch under the
  ``spawn`` start method (``fork`` inherits the module state directly).
* :func:`set_enabled` — runtime: toggle per phase (the CLI enables it when
  ``--trace``/``--metrics-json`` is passed).

Call sites read the flag as ``_core.ENABLED`` (module attribute, *not* a
``from``-import) so a runtime toggle is observed everywhere immediately.
"""

from __future__ import annotations

import os

__all__ = ["ENABLED", "enabled", "set_enabled"]

#: the process-wide switch; read via module attribute so toggles propagate
ENABLED: bool = os.environ.get("REPRO_TELEMETRY", "").lower() in ("1", "true", "yes")


def set_enabled(value: bool) -> bool:
    """Enable/disable telemetry process-wide; returns the previous state.

    Enabling does not clear previously collected metrics or configure a
    trace sink — pair with :meth:`MetricsRegistry.reset` and
    :func:`repro.telemetry.trace.configure` for a fresh instrumented run.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous


def enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return ENABLED
