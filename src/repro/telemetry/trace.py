"""Hierarchical trace spans emitted as JSON-lines.

A span measures one phase of work::

    from repro.telemetry import trace

    with trace.span("krylov_schur.solve", fmt=ctx.name) as sp:
        ...
        sp.set(restarts=k)   # attach attributes discovered mid-span

Spans nest through a thread-local stack: each span knows its depth and
accumulates the wall time of its direct children, so the emitted event
carries both the inclusive duration (``dur``) and the self time (``self`` =
``dur`` minus children) — the phase breakdown of ``repro trace summarize``
needs no cross-event reconstruction.  One JSON line is written per span at
*exit* (exceptions propagate; the event is still emitted, flagged
``error``), flushed line-by-line so a crashed worker loses at most its
in-flight span.

Sink files and worker processes
-------------------------------

:func:`configure` names the sink file and exports it through the
environment (``REPRO_TRACE`` + ``REPRO_TRACE_OWNER``), so ``parallel_map``
worker processes — forked or spawned — pick it up automatically.  The
configuring (owner) process writes ``<path>`` itself; every other process
writes its own shard file ``<path>.w<pid>.jsonl``, which keeps concurrent
writers from interleaving partial lines.  After the run the parent calls
:func:`collate` to fold the shard files into the main file (shards of
crashed workers included — the per-line flush preserves everything they
recorded before dying, matching the experiment store's crash-capture
semantics).

While telemetry is disabled (:mod:`repro.telemetry.core`) or no sink is
configured, :func:`span` returns one shared no-op object — no allocation,
no clock read.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
from typing import Iterator, Optional

from . import core as _core

__all__ = [
    "span",
    "emit",
    "configure",
    "configured_path",
    "shutdown",
    "collate",
    "read_events",
]

_PATH_ENV = "REPRO_TRACE"
_OWNER_ENV = "REPRO_TRACE_OWNER"

_sink_path: Optional[str] = None
_writer: Optional["_Writer"] = None
_writer_lock = threading.Lock()
_tls = threading.local()


class _Writer:
    """Line-buffered JSON-lines writer bound to one process.

    ``pid`` records the opening process: a forked worker inheriting the
    module state sees a pid mismatch in :func:`_get_writer` and opens its
    own shard file instead of sharing the parent's file descriptor.
    """

    def __init__(self, path: str, mode: str):
        self.path = path
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._handle = open(path, mode, encoding="utf-8")

    def write(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()  # crash capture: every completed span survives

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


def configure(path: str | os.PathLike, export_env: bool = True) -> None:
    """Set the trace sink file for this process (and its future workers).

    Truncates ``path``, removes shard leftovers of a previous run and, with
    ``export_env`` (default), exports ``REPRO_TRACE``/``REPRO_TRACE_OWNER``
    so worker processes route their spans into per-pid shard files.
    """
    global _sink_path, _writer
    path = os.fspath(path)
    with _writer_lock:
        if _writer is not None:
            _writer.close()
            _writer = None
        _sink_path = path
        for stale in glob.glob(path + ".w*.jsonl"):
            try:
                os.unlink(stale)
            except OSError:
                pass
        # truncate eagerly so collate() of an empty run still finds the file
        open(path, "w", encoding="utf-8").close()
    if export_env:
        os.environ[_PATH_ENV] = path
        os.environ[_OWNER_ENV] = str(os.getpid())


def configured_path() -> Optional[str]:
    """The active sink path (explicit or from ``$REPRO_TRACE``), if any."""
    if _sink_path is not None:
        return _sink_path
    env = os.environ.get(_PATH_ENV, "").strip()
    return env or None


def shutdown() -> None:
    """Close the writer and forget the sink (keeps the emitted files)."""
    global _sink_path, _writer
    with _writer_lock:
        if _writer is not None:
            _writer.close()
            _writer = None
        _sink_path = None
    os.environ.pop(_PATH_ENV, None)
    os.environ.pop(_OWNER_ENV, None)


def _shard_path(path: str) -> str:
    return f"{path}.w{os.getpid()}.jsonl"


def _get_writer() -> Optional[_Writer]:
    """The process's writer, opening (or re-opening after fork) lazily."""
    global _writer
    writer = _writer
    if writer is not None and writer.pid == os.getpid():
        return writer
    path = configured_path()
    if path is None:
        return None
    with _writer_lock:
        writer = _writer
        if writer is not None and writer.pid == os.getpid():
            return writer
        owner = os.environ.get(_OWNER_ENV, "")
        if owner == str(os.getpid()):
            # the configuring process appends to the main file (configure
            # already truncated it)
            writer = _Writer(path, "a")
        else:
            # worker process: private shard, appended in case the pid is
            # reused within one run
            writer = _Writer(_shard_path(path), "a")
        _writer = writer
        return writer


class _NullSpan:
    """Shared no-op span (telemetry disabled or no sink configured)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; created by :func:`span`, emitted on exit."""

    __slots__ = ("name", "attrs", "_writer", "_t0_wall", "_t0", "_child", "_depth")

    def __init__(self, name: str, attrs: dict, writer: _Writer):
        self.name = name
        self.attrs = attrs
        self._writer = writer
        self._child = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        self._depth = len(stack)
        stack.append(self)
        self._t0_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        stack = _tls.stack
        # unwind robustly even if an inner span leaked (exception paths)
        while stack and stack.pop() is not self:
            pass
        if stack:
            stack[-1]._child += dur
        event = {
            "ev": "span",
            "name": self.name,
            "pid": os.getpid(),
            "t0": round(self._t0_wall, 6),
            "dur": round(dur, 9),
            "self": round(max(dur - self._child, 0.0), 9),
            "depth": self._depth,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["error"] = True
        self._writer.write(event)
        return False  # never swallow the exception


def span(name: str, **attrs):
    """A trace span context manager (or the shared no-op when off)."""
    if not _core.ENABLED:
        return _NULL_SPAN
    writer = _get_writer()
    if writer is None:
        return _NULL_SPAN
    return Span(name, attrs, writer)


def emit(name: str, t0_wall: float, dur: float, error: bool = False, **attrs) -> None:
    """Emit one already-measured span event directly (no stack bookkeeping).

    :func:`span` nests through a *thread-local* stack, which is wrong inside
    an asyncio event loop: concurrent request coroutines interleave on one
    thread, so a context-manager span opened in one request would adopt
    another request's spans as children.  Async code (the serve layer)
    measures ``t0``/``dur`` itself and emits the completed event here; the
    event lands as a top-level span (``depth`` 0, ``self`` = ``dur``) in the
    same JSON-lines format, so ``trace summarize`` aggregates it like any
    other.
    """
    if not _core.ENABLED:
        return
    writer = _get_writer()
    if writer is None:
        return
    event = {
        "ev": "span",
        "name": name,
        "pid": os.getpid(),
        "t0": round(t0_wall, 6),
        "dur": round(dur, 9),
        "self": round(dur, 9),
        "depth": 0,
    }
    if attrs:
        event["attrs"] = attrs
    if error:
        event["error"] = True
    writer.write(event)


def collate(path: Optional[str] = None) -> int:
    """Fold worker shard files into the main trace file.

    Appends every ``<path>.w<pid>.jsonl`` shard to ``<path>`` (in sorted
    shard order) and removes the shards; returns the number of shards
    merged.  Shards of crashed workers merge like any other — their
    completed spans were flushed line-by-line before the crash.
    """
    path = path or configured_path()
    if path is None:
        return 0
    shards = sorted(glob.glob(path + ".w*.jsonl"))
    if not shards:
        return 0
    with _writer_lock:
        global _writer
        if _writer is not None and _writer.pid == os.getpid():
            _writer.close()
            _writer = None
    with open(path, "a", encoding="utf-8") as main:
        for shard in shards:
            try:
                with open(shard, "r", encoding="utf-8") as handle:
                    main.write(handle.read())
                os.unlink(shard)
            except OSError:
                continue
    return len(shards)


def read_events(path: str | os.PathLike) -> Iterator[dict]:
    """Parse a JSON-lines trace file, skipping malformed lines.

    Tolerating a torn final line keeps traces of crashed runs readable.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event
