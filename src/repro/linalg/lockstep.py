"""Lockstep symmetric eigendecomposition over a stacked format axis.

Batched siblings of :mod:`repro.linalg.tridiagonal` /
:mod:`repro.linalg.reflectors`: the same EISPACK ``tql2`` algorithm, the
same Householder reduction, executed for a whole stack of formats at once
through :class:`repro.arithmetic.BatchedContext`.  Per-row trajectories are
bit-identical to the sequential kernels — every rounded operation is the
same operation on the same values, merely performed for all rows in one
vectorised call.

The QL iteration is inherently data-dependent (each format deflates its
eigenvalues after a different number of sweeps), so the lockstep version
runs one *state machine per batch row* — phase, deflation window ``low``,
scan limit ``m``, rotation index ``i``, sweep counter — and synchronises
them at rotation-tick granularity: every tick advances all scanning
machines (exact float comparisons, no rounded arithmetic), performs the
shift for machines entering a sweep, and executes one Givens rotation step
for all rotating machines as a handful of batched rounded operations.
Machines that fail to deflate (the paper's ∞ω regime) are marked failed
and drop out; the rest continue unaffected.
"""

from __future__ import annotations

import numpy as np

from ..arithmetic.batched import BatchedContext
from ..telemetry import trace as _trace
from .tridiagonal import EigenConvergenceError

__all__ = [
    "lockstep_symmetric_eigen",
    "lockstep_tridiagonalize",
    "lockstep_tridiagonal_eigen",
]

# per-machine phases of the QL iteration
_SCAN = 0  # exact deflation scan (no rounded arithmetic)
_SHIFT = 1  # Wilkinson-like shift, entering a sweep
_ROTATE = 2  # one Givens rotation per tick
_DONE = 3
_FAILED = 4


def _sub_rows(rows: np.ndarray, sel: np.ndarray) -> np.ndarray:
    return rows[sel]


def lockstep_tridiagonalize(bctx: BatchedContext, A, rows):
    """Batched Householder tridiagonalisation, one format per row.

    ``A`` is ``(R, n, n)``; returns ``(d, e, Q)`` stacked the same way.
    Mirrors :func:`repro.linalg.tridiagonal.tridiagonalize` per row: the
    zero/non-finite reflector short-circuits are per-row branches, so each
    step applies the reflectors only for the rows whose ``beta`` is
    non-zero — exactly the rows the sequential loop would not ``continue``
    past.
    """
    A = np.array(np.asarray(A, dtype=bctx.dtype), copy=True)
    nb, n, n2 = A.shape
    if n != n2:
        raise ValueError("lockstep_tridiagonalize requires square matrices")
    Q = np.broadcast_to(np.eye(n, dtype=bctx.dtype), A.shape).copy()
    for k in range(n - 2):
        x = np.ascontiguousarray(A[:, k + 1 :, k])
        v_small, beta = _householder_vectors(bctx, x, rows)
        active = np.nonzero(beta != 0)[0]
        if active.size == 0:
            continue
        sub = _sub_rows(rows, active)
        v = np.zeros((active.size, n), dtype=bctx.dtype)
        v[:, k + 1 :] = v_small[active]
        beta_a = beta[active]
        Asub = np.ascontiguousarray(A[active])
        # apply_reflector_left: A <- A - (beta v)[:, None] * (v^T A)[None, :]
        w = bctx.gemv_t(Asub, v, sub)
        bv = bctx.mul(beta_a[:, None], v, sub)
        update = bctx.mul(bv[:, :, None], w[:, None, :], sub)
        Asub = bctx.sub(Asub, update, sub)
        # apply_reflector_right: A <- A - (A v)[:, None] * (beta v)[None, :]
        w = bctx.gemv(Asub, v, sub)
        bv = bctx.mul(beta_a[:, None], v, sub)
        update = bctx.mul(w[:, :, None], bv[:, None, :], sub)
        Asub = bctx.sub(Asub, update, sub)
        A[active] = Asub
        Qsub = np.ascontiguousarray(Q[active])
        w = bctx.gemv(Qsub, v, sub)
        bv = bctx.mul(beta_a[:, None], v, sub)
        update = bctx.mul(w[:, :, None], bv[:, None, :], sub)
        Q[active] = bctx.sub(Qsub, update, sub)
    ar = np.arange(n)
    d = np.ascontiguousarray(A[:, ar, ar])
    e = np.ascontiguousarray(A[:, ar[1:], ar[:-1]])
    return d, e, Q


def _householder_vectors(bctx: BatchedContext, x, rows):
    """Batched :func:`repro.linalg.reflectors.householder_vector`.

    Returns ``(v, beta)`` stacked; rows that hit any of the sequential
    zero/non-finite short-circuits get ``beta = 0`` (their ``v`` is the
    unused identity reflector).  ``alpha`` is discarded — the
    tridiagonalisation never reads it — but its rounded multiply is still
    performed so per-row op tallies match the sequential path exactly.
    """
    nb, m = x.shape
    v = np.zeros((nb, m), dtype=bctx.dtype)
    if m:
        v[:, 0] = 1.0
    beta = np.zeros(nb, dtype=bctx.dtype)
    normx = bctx.norm2(x, rows)
    general = np.isfinite(normx) & (normx != 0)
    gi = np.nonzero(general)[0]
    if gi.size == 0:
        return v, beta
    sub = _sub_rows(rows, gi)
    xs = bctx.div(x[gi], normx[gi][:, None], sub)
    sign = np.where(x[gi, 0] < 0, -1.0, 1.0).astype(bctx.dtype)
    bctx.mul(-sign, normx[gi].copy(), sub)
    vg = xs.copy()
    vg[:, 0] = bctx.sub(xs[:, 0].copy(), -sign, sub)
    vnorm2 = bctx.dot(vg, vg, sub)
    ok = np.isfinite(vnorm2) & (vnorm2 != 0)
    oi = np.nonzero(ok)[0]
    if oi.size == 0:
        return v, beta
    bsub = bctx.div(bctx.dtype(2.0), vnorm2[oi], _sub_rows(sub, oi))
    bsub[~np.isfinite(bsub)] = 0.0
    fill = gi[oi]
    v[fill] = vg[oi]
    beta[fill] = bsub
    return v, beta


def lockstep_tridiagonal_eigen(bctx, d, e, Z, rows, max_sweeps: int = 60):
    """Batched implicit-shift QL iteration (per-row state machines).

    ``d`` is ``(R, n)``, ``e`` ``(R, n - 1)``, ``Z`` ``(R, n, n)`` (or
    ``None`` for identity).  Returns ``(w, Z, errors)`` where ``errors`` is
    a per-row list of ``None`` or the :class:`EigenConvergenceError`
    message the sequential solver would have raised (failed rows' ``w``/
    ``Z`` contents are unspecified, as the sequential exception discards
    them).
    """
    with _trace.span("tridiagonal.ql_lockstep", rows=len(rows)):
        return _lockstep_ql(bctx, d, e, Z, rows, max_sweeps)


def _lockstep_ql(bctx, d, e, Z, rows, max_sweeps):
    dtype = bctx.dtype
    d = np.array(np.asarray(d, dtype=dtype), copy=True)
    nb, n = d.shape
    e_full = np.zeros((nb, n), dtype=dtype)
    if n > 1:
        e_full[:, : n - 1] = np.asarray(e, dtype=dtype)[:, : n - 1]
    if Z is None:
        Z = np.broadcast_to(np.eye(n, dtype=dtype), (nb, n, n)).copy()
    else:
        Z = np.array(np.asarray(Z, dtype=dtype), copy=True)
    errors: list = [None] * nb
    if n == 0:
        return d, Z, errors
    e = e_full
    eps = np.array(
        [float(bctx.rows[r].machine_epsilon) for r in rows], dtype=np.float64
    )

    phase = np.full(nb, _SCAN, dtype=np.int64)
    low = np.zeros(nb, dtype=np.int64)
    mlim = np.zeros(nb, dtype=np.int64)
    idx = np.zeros(nb, dtype=np.int64)
    sweeps = np.zeros(nb, dtype=np.int64)
    g = np.zeros(nb, dtype=dtype)
    s = np.zeros(nb, dtype=dtype)
    c = np.zeros(nb, dtype=dtype)
    p = np.zeros(nb, dtype=dtype)

    def _fail(a, msg):
        phase[a] = _FAILED
        errors[a] = msg

    def _scan(a):
        """Advance machine ``a`` through the exact deflation scan.

        Mirrors the scan of the sequential ``while True`` loop (finite
        check on every entry, per-``low`` sweep-counter reset) until the
        machine either finishes (``low == n``), fails, or enters a sweep.
        """
        while True:
            if low[a] >= n:
                phase[a] = _DONE
                return
            if not (np.isfinite(d[a]).all() and np.isfinite(e[a]).all()):
                _fail(a, "non-finite values during QL iteration")
                return
            lo = low[a]
            m = lo
            while m < n - 1:
                dd = abs(float(d[a, m])) + abs(float(d[a, m + 1]))
                if abs(float(e[a, m])) <= eps[a] * dd:
                    break
                m += 1
            if m == lo:
                low[a] += 1
                sweeps[a] = 0
                continue
            sweeps[a] += 1
            if sweeps[a] > max_sweeps:
                _fail(
                    a,
                    f"QL iteration did not deflate eigenvalue {lo} within "
                    f"{max_sweeps} sweeps in {bctx.rows[rows[a]].name}",
                )
                return
            mlim[a] = m
            phase[a] = _SHIFT
            return

    for a in range(nb):
        _scan(a)

    while True:
        active = np.nonzero(phase == _SHIFT)[0]
        if active.size:
            sub = _sub_rows(rows, active)
            lo = low[active]
            m = mlim[active]
            d1 = d[active, lo + 1]
            d0 = d[active, lo]
            e0 = e[active, lo]
            # g = (d[low+1] - d[low]) / (2.0 * e[low])
            gs = bctx.div(
                bctx.sub(d1, d0, sub), bctx.mul(dtype(2.0), e0, sub), sub
            )
            r = bctx.hypot(gs, np.full(active.size, 1.0, dtype=dtype), sub)
            denom = bctx.add(gs, np.copysign(r, gs), sub)
            bad = (denom == 0) | ~np.isfinite(denom)
            if bad.any():
                fix = np.maximum(eps[active], 1e-30)
                denom[bad] = np.copysign(fix[bad].astype(dtype), gs[bad])
            # g = (d[m] - d[low]) + e[low] / denom
            gs = bctx.add(
                bctx.sub(d[active, m], d0, sub), bctx.div(e0, denom, sub), sub
            )
            g[active] = gs
            s[active] = 1.0
            c[active] = 1.0
            p[active] = 0.0
            idx[active] = m - 1
            phase[active] = _ROTATE

        active = np.nonzero(phase == _ROTATE)[0]
        if active.size == 0:
            if not np.any(phase == _SHIFT):
                break
            continue

        sub = _sub_rows(rows, active)
        i = idx[active]
        ei = e[active, i]
        f = bctx.mul(s[active], ei, sub)
        b = bctx.mul(c[active], ei, sub)
        r = bctx.hypot(f, g[active], sub)
        e[active, i + 1] = r  # exact store of an already-rounded value
        zero = r == 0
        if zero.any():
            za = active[zero]
            zsub = _sub_rows(rows, za)
            # d[i+1] = d[i+1] - p; e[m] = 0; restart the scan
            d[za, idx[za] + 1] = bctx.sub(d[za, idx[za] + 1], p[za], zsub)
            e[za, mlim[za]] = 0.0
            for a in za:
                phase[a] = _SCAN
                _scan(a)
        live = np.nonzero(~zero)[0]
        if live.size:
            la = active[live]
            lsub = _sub_rows(rows, la)
            i = idx[la]
            fl = f[live]
            bl = b[live]
            rl = r[live]
            sl = bctx.div(fl, rl, lsub)
            cl = bctx.div(g[la], rl, lsub)
            gl = bctx.sub(d[la, i + 1], p[la], lsub)
            # r = (d[i] - g) * s + (2.0 * c) * b
            r2 = bctx.add(
                bctx.mul(bctx.sub(d[la, i], gl, lsub), sl, lsub),
                bctx.mul(bctx.mul(dtype(2.0), cl, lsub), bl, lsub),
                lsub,
            )
            pl = bctx.mul(sl, r2, lsub)
            d[la, i + 1] = bctx.add(gl, pl, lsub)
            gl2 = bctx.sub(bctx.mul(cl, r2, lsub), bl, lsub)
            # rotate the eigenvector columns i and i+1
            zi = np.ascontiguousarray(Z[la, :, i])
            zi1 = np.ascontiguousarray(Z[la, :, i + 1])
            znew_i1 = bctx.add(
                bctx.mul(sl[:, None], zi, lsub), bctx.mul(cl[:, None], zi1, lsub), lsub
            )
            znew_i = bctx.sub(
                bctx.mul(cl[:, None], zi, lsub), bctx.mul(sl[:, None], zi1, lsub), lsub
            )
            Z[la, :, i + 1] = znew_i1
            Z[la, :, i] = znew_i
            s[la] = sl
            c[la] = cl
            g[la] = gl2
            p[la] = pl
            idx[la] -= 1
            done_sweep = idx[la] < low[la]
            if done_sweep.any():
                ea = la[done_sweep]
                esub = _sub_rows(rows, ea)
                # d[low] = d[low] - p; e[low] = g; e[m] = 0
                d[ea, low[ea]] = bctx.sub(d[ea, low[ea]], p[ea], esub)
                e[ea, low[ea]] = g[ea]
                e[ea, mlim[ea]] = 0.0
                for a in ea:
                    phase[a] = _SCAN
                    _scan(a)

    return d, Z, errors


def lockstep_symmetric_eigen(bctx, A, rows, max_sweeps: int = 60):
    """Batched :func:`repro.linalg.tridiagonal.symmetric_eigen`.

    ``A`` is ``(R, m, m)``; returns ``(w, V, errors)`` stacked, with
    per-row trajectories bit-identical to the sequential kernel and
    ``errors[a]`` carrying the message of the
    :class:`~repro.linalg.tridiagonal.EigenConvergenceError` the
    sequential solver would have raised for that row (or ``None``).
    """
    A = np.asarray(A, dtype=bctx.dtype)
    nb, m, m2 = A.shape
    if m != m2:
        raise ValueError("lockstep_symmetric_eigen requires square matrices")
    errors: list = [None] * nb
    if m == 0:
        return (
            np.zeros((nb, 0), dtype=bctx.dtype),
            np.zeros((nb, 0, 0), dtype=bctx.dtype),
            errors,
        )
    if m == 1:
        return (
            np.ascontiguousarray(A[:, 0, :1]),
            np.ones((nb, 1, 1), dtype=bctx.dtype),
            errors,
        )
    # sym = 0.5 * (A + A^T), two rounded operations exactly as sequential
    sym = bctx.mul(
        bctx.dtype(0.5), bctx.add(A, np.swapaxes(A, 1, 2), rows), rows
    )
    with _trace.span("tridiagonal.reduce_lockstep", rows=len(rows)):
        d, e, Q = lockstep_tridiagonalize(bctx, sym, rows)
    return lockstep_tridiagonal_eigen(bctx, d, e, Q, rows, max_sweeps=max_sweeps)
