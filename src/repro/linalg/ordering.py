"""Eigenvalue ordering rules for selecting wanted Ritz values.

``partialschur`` accepts an ordering rule analogous to ``ArnoldiMethod.jl``:
the experiments use ``"LM"`` (largest magnitude, i.e. the 10 largest
eigenvalues of the symmetric matrices), but the other classical rules are
provided for completeness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WHICH_RULES", "ordering_key", "select_order"]

#: supported ordering rules and their meaning
WHICH_RULES: dict[str, str] = {
    "LM": "largest magnitude",
    "SM": "smallest magnitude",
    "LR": "largest real part (largest algebraic for symmetric problems)",
    "SR": "smallest real part (smallest algebraic for symmetric problems)",
}


def ordering_key(eigenvalues, which: str) -> np.ndarray:
    """Sort key such that ascending order puts the *most wanted* value first."""
    lam = np.asarray(eigenvalues, dtype=np.float64)
    which = which.upper()
    if which == "LM":
        return -np.abs(lam)
    if which == "SM":
        return np.abs(lam)
    if which == "LR":
        return -lam
    if which == "SR":
        return lam
    raise ValueError(f"unknown ordering rule {which!r}; supported: {sorted(WHICH_RULES)}")


def select_order(eigenvalues, which: str = "LM") -> np.ndarray:
    """Permutation putting the most wanted eigenvalues first (stable sort)."""
    return np.argsort(ordering_key(eigenvalues, which), kind="stable")
