"""Hessenberg reduction and real Schur decomposition (Francis QR).

The default solver path for the paper's symmetric matrices uses the spectral
decomposition in :mod:`repro.linalg.tridiagonal`; the general-purpose kernels
here complete the dense-linear-algebra substrate so the library can also
factorise non-symmetric projected matrices (as ``ArnoldiMethod.jl`` does) and
serve as an independent cross-check in the test-suite.

All operations run through a compute context, so the decomposition can be
carried out in any of the emulated arithmetics.
"""

from __future__ import annotations

import numpy as np

from .reflectors import (
    apply_reflector_left,
    apply_reflector_right,
    givens_rotation,
    householder_vector,
)
from .tridiagonal import EigenConvergenceError

__all__ = ["hessenberg", "real_schur", "schur_eigenvalues"]


def hessenberg(ctx, A):
    """Reduce ``A`` to upper Hessenberg form by Householder reflections.

    Returns ``(H, Q)`` with ``Q^T A Q = H`` (numerically) upper Hessenberg
    and ``Q`` orthogonal.
    """
    A = np.array(np.asarray(A, dtype=ctx.dtype), copy=True)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("hessenberg requires a square matrix")
    Q = np.eye(n, dtype=ctx.dtype)
    for k in range(n - 2):
        x = A[k + 1 :, k]
        v_small, beta, _ = householder_vector(ctx, x)
        if float(beta) == 0.0:
            continue
        v = np.zeros(n, dtype=ctx.dtype)
        v[k + 1 :] = v_small
        A = apply_reflector_left(ctx, v, beta, A)
        A = apply_reflector_right(ctx, A, v, beta)
        Q = apply_reflector_right(ctx, Q, v, beta)
    # zero the entries below the first subdiagonal explicitly
    for i in range(2, n):
        A[i, : i - 1] = 0.0
    return A, Q


def _split_2x2(ctx, T, Z, p):
    """Try to rotate the 2x2 block at ``p-1:p+1`` into triangular form.

    Real-eigenvalue blocks are split; complex-conjugate blocks are left as
    standard 2x2 Schur bumps.  Returns True if the block was split.
    """
    a = T[p - 1, p - 1]
    b = T[p - 1, p]
    c = T[p, p - 1]
    d = T[p, p]
    # eigenvalues of [[a, b], [c, d]]
    tr_half = 0.5 * (float(a) + float(d))
    det = float(a) * float(d) - float(b) * float(c)
    disc = tr_half * tr_half - det
    if disc < 0:
        return False
    lam = tr_half + np.copysign(np.sqrt(disc), tr_half)
    if lam == 0.0:
        lam = tr_half - np.sqrt(disc)
    # rotation sending (a - lam, c) to (r, 0)
    cos, sin, _ = givens_rotation(ctx, ctx.sub(a, ctx.dtype(lam)), c)
    rows = slice(p - 1, p + 1)
    # apply G^T from the left and G from the right on full rows/columns
    row_i = T[p - 1, :].copy()
    row_j = T[p, :].copy()
    T[p - 1, :] = ctx.add(ctx.mul(cos, row_i), ctx.mul(sin, row_j))
    T[p, :] = ctx.sub(ctx.mul(cos, row_j), ctx.mul(sin, row_i))
    col_i = T[:, p - 1].copy()
    col_j = T[:, p].copy()
    T[:, p - 1] = ctx.add(ctx.mul(cos, col_i), ctx.mul(sin, col_j))
    T[:, p] = ctx.sub(ctx.mul(cos, col_j), ctx.mul(sin, col_i))
    zcol_i = Z[:, p - 1].copy()
    zcol_j = Z[:, p].copy()
    Z[:, p - 1] = ctx.add(ctx.mul(cos, zcol_i), ctx.mul(sin, zcol_j))
    Z[:, p] = ctx.sub(ctx.mul(cos, zcol_j), ctx.mul(sin, zcol_i))
    T[p, p - 1] = 0.0
    del rows
    return True


def real_schur(ctx, A, max_iterations: int | None = None):
    """Real Schur decomposition ``Q^T A Q = T`` via Francis double-shift QR.

    ``T`` is quasi-upper-triangular: 1x1 blocks for real eigenvalues and 2x2
    blocks for complex-conjugate pairs.  Raises
    :class:`~repro.linalg.tridiagonal.EigenConvergenceError` when the
    iteration does not deflate within the iteration budget (common in 8-bit
    arithmetics).
    """
    H, Q = hessenberg(ctx, A)
    n = H.shape[0]
    if n <= 1:
        return H, Q
    T = H
    Z = Q
    if max_iterations is None:
        max_iterations = 40 * n
    eps = float(ctx.machine_epsilon)
    high = n - 1
    total_iter = 0
    stagnation = 0
    while high > 0:
        if not np.all(np.isfinite(T)):
            raise EigenConvergenceError("non-finite values during QR iteration")
        # deflate negligible subdiagonals
        for i in range(1, high + 1):
            if abs(float(T[i, i - 1])) <= eps * (
                abs(float(T[i - 1, i - 1])) + abs(float(T[i, i]))
            ):
                T[i, i - 1] = 0.0
        # find the active block [low..high]
        low = high
        while low > 0 and float(T[low, low - 1]) != 0.0:
            low -= 1
        if low == high:
            high -= 1
            stagnation = 0
            continue
        if low == high - 1:
            _split_2x2(ctx, T, Z, high)
            high -= 2
            stagnation = 0
            continue
        total_iter += 1
        stagnation += 1
        if total_iter > max_iterations:
            raise EigenConvergenceError(
                f"QR iteration exceeded {max_iterations} steps in {ctx.name}"
            )
        # double shift from the trailing 2x2 block (exceptional shift when
        # progress stalls)
        if stagnation % 12 == 0:
            s = abs(float(T[high, high - 1])) + abs(float(T[high - 1, high - 2]))
            trace = ctx.dtype(1.5 * s)
            det = ctx.dtype(s * s)
        else:
            trace = ctx.add(T[high - 1, high - 1], T[high, high])
            det = ctx.sub(
                ctx.mul(T[high - 1, high - 1], T[high, high]),
                ctx.mul(T[high - 1, high], T[high, high - 1]),
            )
        # first column of (T - s1 I)(T - s2 I)
        x = ctx.add(
            ctx.sub(
                ctx.mul(T[low, low], T[low, low]),
                ctx.mul(trace, T[low, low]),
            ),
            ctx.add(det, ctx.mul(T[low, low + 1], T[low + 1, low])),
        )
        y = ctx.mul(
            T[low + 1, low],
            ctx.sub(ctx.add(T[low, low], T[low + 1, low + 1]), trace),
        )
        z = ctx.mul(T[low + 2, low + 1], T[low + 1, low]) if low + 2 <= high else ctx.dtype(0.0)
        # bulge chasing
        for k in range(low, high - 1):
            vec = np.array([x, y, z], dtype=ctx.dtype)
            v_small, beta, _ = householder_vector(ctx, vec)
            if float(beta) != 0.0:
                v = np.zeros(n, dtype=ctx.dtype)
                upto = min(k + 3, high + 1)
                v[k : upto] = v_small[: upto - k]
                T = apply_reflector_left(ctx, v, beta, T)
                T = apply_reflector_right(ctx, T, v, beta)
                Z = apply_reflector_right(ctx, Z, v, beta)
            x = T[k + 1, k]
            y = T[k + 2, k] if k + 2 <= high else ctx.dtype(0.0)
            z = T[k + 3, k] if k + 3 <= high else ctx.dtype(0.0)
        # final 2-element reflector
        vec = np.array([x, y], dtype=ctx.dtype)
        v_small, beta, _ = householder_vector(ctx, vec)
        if float(beta) != 0.0:
            v = np.zeros(n, dtype=ctx.dtype)
            v[high - 1 : high + 1] = v_small
            T = apply_reflector_left(ctx, v, beta, T)
            T = apply_reflector_right(ctx, T, v, beta)
            Z = apply_reflector_right(ctx, Z, v, beta)
        # clean entries below the first subdiagonal of the active block
        for i in range(low + 2, high + 1):
            T[i, : i - 1] = 0.0
    # final pass: split any remaining real-eigenvalue 2x2 blocks
    for p in range(n - 1, 0, -1):
        if float(T[p, p - 1]) != 0.0:
            _split_2x2(ctx, T, Z, p)
    return T, Z


def schur_eigenvalues(T) -> np.ndarray:
    """Eigenvalues of a quasi-upper-triangular matrix (complex array)."""
    T = np.asarray(T, dtype=np.float64)
    n = T.shape[0]
    eigs = np.zeros(n, dtype=np.complex128)
    i = 0
    while i < n:
        if i + 1 < n and T[i + 1, i] != 0.0:
            a, b = T[i, i], T[i, i + 1]
            c, d = T[i + 1, i], T[i + 1, i + 1]
            tr_half = 0.5 * (a + d)
            det = a * d - b * c
            disc = tr_half * tr_half - det
            if disc >= 0:
                root = np.sqrt(disc)
                eigs[i] = tr_half + root
                eigs[i + 1] = tr_half - root
            else:
                root = np.sqrt(-disc)
                eigs[i] = tr_half + 1j * root
                eigs[i + 1] = tr_half - 1j * root
            i += 2
        else:
            eigs[i] = T[i, i]
            i += 1
    return eigs
