"""Hessenberg reduction and real Schur decomposition (Francis QR).

The default solver path for the paper's symmetric matrices uses the spectral
decomposition in :mod:`repro.linalg.tridiagonal`; the general-purpose kernels
here complete the dense-linear-algebra substrate so the library can also
factorise non-symmetric projected matrices (as ``ArnoldiMethod.jl`` does) and
serve as an independent cross-check in the test-suite.

All arithmetic runs through a compute context — the kernels are written in
the operator form of :mod:`repro.arithmetic.farray` (each operator is one
rounded context operation), so the decomposition can be carried out in any of
the emulated arithmetics.  Deflation scans compare raw ``.data`` entries:
those are exact float tests, not arithmetic in the target format.
"""

from __future__ import annotations

import numpy as np

from .reflectors import (
    apply_reflector_left,
    apply_reflector_right,
    givens_rotation,
    householder_vector,
)
from .tridiagonal import EigenConvergenceError

__all__ = ["hessenberg", "real_schur", "schur_eigenvalues"]


def hessenberg(ctx, A):
    """Reduce ``A`` to upper Hessenberg form by Householder reflections.

    Returns ``(H, Q)`` with ``Q^T A Q = H`` (numerically) upper Hessenberg
    and ``Q`` orthogonal.
    """
    A = np.array(np.asarray(A, dtype=ctx.dtype), copy=True)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("hessenberg requires a square matrix")
    Q = np.eye(n, dtype=ctx.dtype)
    for k in range(n - 2):
        x = A[k + 1 :, k]
        v_small, beta, _ = householder_vector(ctx, x)
        if float(beta) == 0.0:
            continue
        v = np.zeros(n, dtype=ctx.dtype)
        v[k + 1 :] = v_small
        A = apply_reflector_left(ctx, v, beta, A)
        A = apply_reflector_right(ctx, A, v, beta)
        Q = apply_reflector_right(ctx, Q, v, beta)
    # zero the entries below the first subdiagonal explicitly
    for i in range(2, n):
        A[i, : i - 1] = 0.0
    return A, Q


def _split_2x2(ctx, T, Z, p):
    """Try to rotate the 2x2 block at ``p-1:p+1`` into triangular form.

    ``T`` and ``Z`` are context-bound matrices, updated in place.
    Real-eigenvalue blocks are split; complex-conjugate blocks are left as
    standard 2x2 Schur bumps.  Returns True if the block was split.
    """
    a = T[p - 1, p - 1]
    b = T[p - 1, p]
    c = T[p, p - 1]
    d = T[p, p]
    # eigenvalues of [[a, b], [c, d]] (work-precision shift estimate)
    tr_half = 0.5 * (float(a) + float(d))
    det = float(a) * float(d) - float(b) * float(c)
    disc = tr_half * tr_half - det
    if disc < 0:
        return False
    lam = tr_half + np.copysign(np.sqrt(disc), tr_half)
    if lam == 0.0:
        lam = tr_half - np.sqrt(disc)
    # rotation sending (a - lam, c) to (r, 0)
    cos, sin, _ = givens_rotation(ctx, (a - ctx.dtype(lam)).value, c.value)
    cos = ctx.wrap_scalar(cos)
    sin = ctx.wrap_scalar(sin)
    # apply G^T from the left and G from the right on full rows/columns
    row_i = T[p - 1, :].copy()
    row_j = T[p, :].copy()
    T[p - 1, :] = cos * row_i + sin * row_j
    T[p, :] = cos * row_j - sin * row_i
    col_i = T[:, p - 1].copy()
    col_j = T[:, p].copy()
    T[:, p - 1] = cos * col_i + sin * col_j
    T[:, p] = cos * col_j - sin * col_i
    zcol_i = Z[:, p - 1].copy()
    zcol_j = Z[:, p].copy()
    Z[:, p - 1] = cos * zcol_i + sin * zcol_j
    Z[:, p] = cos * zcol_j - sin * zcol_i
    T[p, p - 1] = 0.0
    return True


def real_schur(ctx, A, max_iterations: int | None = None):
    """Real Schur decomposition ``Q^T A Q = T`` via Francis double-shift QR.

    ``T`` is quasi-upper-triangular: 1x1 blocks for real eigenvalues and 2x2
    blocks for complex-conjugate pairs.  Raises
    :class:`~repro.linalg.tridiagonal.EigenConvergenceError` when the
    iteration does not deflate within the iteration budget (common in 8-bit
    arithmetics).
    """
    H, Q = hessenberg(ctx, A)
    n = H.shape[0]
    if n <= 1:
        return H, Q
    T = ctx.wrap(H)
    Z = ctx.wrap(Q)
    T_raw = T.data
    if max_iterations is None:
        max_iterations = 40 * n
    eps = float(ctx.machine_epsilon)
    high = n - 1
    total_iter = 0
    stagnation = 0
    while high > 0:
        if not T.all_finite():
            raise EigenConvergenceError("non-finite values during QR iteration")
        # deflate negligible subdiagonals
        for i in range(1, high + 1):
            if abs(float(T_raw[i, i - 1])) <= eps * (
                abs(float(T_raw[i - 1, i - 1])) + abs(float(T_raw[i, i]))
            ):
                T_raw[i, i - 1] = 0.0
        # find the active block [low..high]
        low = high
        while low > 0 and float(T_raw[low, low - 1]) != 0.0:
            low -= 1
        if low == high:
            high -= 1
            stagnation = 0
            continue
        if low == high - 1:
            _split_2x2(ctx, T, Z, high)
            high -= 2
            stagnation = 0
            continue
        total_iter += 1
        stagnation += 1
        if total_iter > max_iterations:
            raise EigenConvergenceError(
                f"QR iteration exceeded {max_iterations} steps in {ctx.name}"
            )
        # double shift from the trailing 2x2 block (exceptional shift when
        # progress stalls)
        if stagnation % 12 == 0:
            s = abs(float(T_raw[high, high - 1])) + abs(float(T_raw[high - 1, high - 2]))
            trace = ctx.wrap_scalar(1.5 * s)
            det = ctx.wrap_scalar(s * s)
        else:
            trace = T[high - 1, high - 1] + T[high, high]
            det = T[high - 1, high - 1] * T[high, high] - T[high - 1, high] * T[high, high - 1]
        # first column of (T - s1 I)(T - s2 I)
        x = (T[low, low] * T[low, low] - trace * T[low, low]) + (
            det + T[low, low + 1] * T[low + 1, low]
        )
        y = T[low + 1, low] * ((T[low, low] + T[low + 1, low + 1]) - trace)
        z = (
            T[low + 2, low + 1] * T[low + 1, low]
            if low + 2 <= high
            else ctx.wrap_scalar(0.0)
        )
        # bulge chasing
        for k in range(low, high - 1):
            vec = np.array([x.value, y.value, z.value], dtype=ctx.dtype)
            v_small, beta, _ = householder_vector(ctx, vec)
            if float(beta) != 0.0:
                v = np.zeros(n, dtype=ctx.dtype)
                upto = min(k + 3, high + 1)
                v[k : upto] = v_small[: upto - k]
                T = ctx.wrap(apply_reflector_left(ctx, v, beta, T.data))
                T = ctx.wrap(apply_reflector_right(ctx, T.data, v, beta))
                Z = ctx.wrap(apply_reflector_right(ctx, Z.data, v, beta))
                T_raw = T.data
            x = T[k + 1, k]
            y = T[k + 2, k] if k + 2 <= high else ctx.wrap_scalar(0.0)
            z = T[k + 3, k] if k + 3 <= high else ctx.wrap_scalar(0.0)
        # final 2-element reflector
        vec = np.array([x.value, y.value], dtype=ctx.dtype)
        v_small, beta, _ = householder_vector(ctx, vec)
        if float(beta) != 0.0:
            v = np.zeros(n, dtype=ctx.dtype)
            v[high - 1 : high + 1] = v_small
            T = ctx.wrap(apply_reflector_left(ctx, v, beta, T.data))
            T = ctx.wrap(apply_reflector_right(ctx, T.data, v, beta))
            Z = ctx.wrap(apply_reflector_right(ctx, Z.data, v, beta))
            T_raw = T.data
        # clean entries below the first subdiagonal of the active block
        for i in range(low + 2, high + 1):
            T_raw[i, : i - 1] = 0.0
    # final pass: split any remaining real-eigenvalue 2x2 blocks
    for p in range(n - 1, 0, -1):
        if float(T_raw[p, p - 1]) != 0.0:
            _split_2x2(ctx, T, Z, p)
    return T.data, Z.data


def schur_eigenvalues(T) -> np.ndarray:
    """Eigenvalues of a quasi-upper-triangular matrix (complex array)."""
    T = np.asarray(T, dtype=np.float64)
    n = T.shape[0]
    eigs = np.zeros(n, dtype=np.complex128)
    i = 0
    while i < n:
        if i + 1 < n and T[i + 1, i] != 0.0:
            a, b = T[i, i], T[i, i + 1]
            c, d = T[i + 1, i], T[i + 1, i + 1]
            tr_half = 0.5 * (a + d)
            det = a * d - b * c
            disc = tr_half * tr_half - det
            if disc >= 0:
                root = np.sqrt(disc)
                eigs[i] = tr_half + root
                eigs[i + 1] = tr_half - root
            else:
                root = np.sqrt(-disc)
                eigs[i] = tr_half + 1j * root
                eigs[i + 1] = tr_half - 1j * root
            i += 2
        else:
            eigs[i] = T[i, i]
            i += 1
    return eigs
