"""Symmetric eigenvalue decomposition in a compute context.

The projected matrices of the Krylov-Schur iteration are symmetric (the study
restricts itself to symmetric inputs, for which the partial Schur form is a
spectral decomposition).  Their eigendecomposition is computed LAPACK-free so
that it can run in any emulated arithmetic:

1. Householder tridiagonalisation ``Q0^T A Q0 = T`` (:func:`tridiagonalize`),
2. implicit-shift QL iteration with eigenvector accumulation
   (:func:`tridiagonal_eigen`), following the classic EISPACK ``tql2``
   algorithm.

The kernels are written in the operator form of
:mod:`repro.arithmetic.farray`: the rotation recurrences read as plain
arithmetic (``r = (d[i] - g) * s + (2.0 * c) * b``) while every operator
performs exactly one rounded context operation, keeping the trajectories
bit-identical to the explicit ``ctx.add(ctx.mul(...))`` spelling.
Convergence scans and deflation thresholds read the raw ``.data`` buffers —
they are exact float comparisons, not arithmetic in the target format.

In very low precision the QL iteration may fail to deflate; this is reported
as :class:`EigenConvergenceError` and surfaces as the paper's ∞ω
(no-convergence) marker in the experiments.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import trace as _trace
from .reflectors import apply_reflector_left, apply_reflector_right, householder_vector

__all__ = [
    "EigenConvergenceError",
    "tridiagonalize",
    "tridiagonal_eigen",
    "symmetric_eigen",
]


class EigenConvergenceError(RuntimeError):
    """The iterative eigensolver failed to converge in the target arithmetic."""


def tridiagonalize(ctx, A):
    """Householder tridiagonalisation of a symmetric matrix.

    Returns ``(d, e, Q)`` with ``Q^T A Q`` (numerically) tridiagonal, ``d``
    its diagonal, ``e`` its subdiagonal (length ``n - 1``) and ``Q``
    orthogonal.  All operations are carried out in the context arithmetic.
    """
    with _trace.span("tridiagonal.reduce", fmt=ctx.name):
        return _tridiagonalize(ctx, A)


def _tridiagonalize(ctx, A):
    A = np.array(np.asarray(A, dtype=ctx.dtype), copy=True)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("tridiagonalize requires a square matrix")
    Q = np.eye(n, dtype=ctx.dtype)
    for k in range(n - 2):
        x = A[k + 1 :, k]
        v_small, beta, _ = householder_vector(ctx, x)
        if float(beta) == 0.0:
            continue
        v = np.zeros(n, dtype=ctx.dtype)
        v[k + 1 :] = v_small
        A = apply_reflector_left(ctx, v, beta, A)
        A = apply_reflector_right(ctx, A, v, beta)
        Q = apply_reflector_right(ctx, Q, v, beta)
    d = np.array([A[i, i] for i in range(n)], dtype=ctx.dtype)
    e = np.array([A[i + 1, i] for i in range(n - 1)], dtype=ctx.dtype)
    return d, e, Q


def tridiagonal_eigen(ctx, d, e, Z=None, max_sweeps: int = 60):
    """Implicit-shift QL iteration for a symmetric tridiagonal matrix.

    Parameters
    ----------
    ctx:
        Compute context providing the arithmetic.
    d, e:
        Diagonal (length ``n``) and subdiagonal (length ``n - 1``).
    Z:
        Matrix whose columns are rotated along with the iteration; pass the
        orthogonal factor of :func:`tridiagonalize` to obtain eigenvectors of
        the original matrix, or ``None`` for the identity.
    max_sweeps:
        Maximum number of QL sweeps per eigenvalue before giving up.

    Returns
    -------
    (w, Z):
        Eigenvalues (in the order produced by the iteration) and the matrix
        whose columns are the corresponding eigenvectors.

    Raises
    ------
    EigenConvergenceError
        If a sweep budget is exhausted or non-finite values appear (both are
        common failure modes of 8-bit arithmetic).
    """
    with _trace.span("tridiagonal.ql", fmt=ctx.name):
        return _tridiagonal_eigen(ctx, d, e, Z, max_sweeps)


def _tridiagonal_eigen(ctx, d, e, Z=None, max_sweeps: int = 60):
    d_full = np.array(np.asarray(d, dtype=ctx.dtype), copy=True)
    n = d_full.shape[0]
    e_full = np.zeros(n, dtype=ctx.dtype)
    if n > 1:
        e_full[: n - 1] = np.asarray(e, dtype=ctx.dtype)[: n - 1]
    if Z is None:
        Z_full = np.eye(n, dtype=ctx.dtype)
    else:
        Z_full = np.array(np.asarray(Z, dtype=ctx.dtype), copy=True)
    if n == 0:
        return d_full, Z_full
    # bind once; the raw buffers stay aliased for the exact float scans below
    d = ctx.wrap(d_full)
    e = ctx.wrap(e_full)
    Z = ctx.wrap(Z_full)
    eps_f = float(ctx.machine_epsilon)  # deflation threshold, reused below

    for low in range(n):
        sweeps = 0
        while True:
            if not (d.all_finite() and e.all_finite()):
                raise EigenConvergenceError(
                    "non-finite values during QL iteration"
                )
            m = low
            while m < n - 1:
                dd = abs(float(d_full[m])) + abs(float(d_full[m + 1]))
                if abs(float(e_full[m])) <= eps_f * dd:
                    break
                m += 1
            if m == low:
                break
            sweeps += 1
            if sweeps > max_sweeps:
                raise EigenConvergenceError(
                    f"QL iteration did not deflate eigenvalue {low} within "
                    f"{max_sweeps} sweeps in {ctx.name}"
                )
            # Wilkinson-like shift
            g = (d[low + 1] - d[low]) / (2.0 * e[low])
            r = g.hypot(1.0)
            denom = g + r.copysign(g)
            if float(denom) == 0.0 or not denom.isfinite():
                denom = ctx.wrap_scalar(
                    np.copysign(ctx.dtype(max(eps_f, 1e-30)), g.value)
                )
            g = (d[m] - d[low]) + e[low] / denom
            s = ctx.wrap_scalar(1.0)
            c = ctx.wrap_scalar(1.0)
            p = ctx.wrap_scalar(0.0)
            restart = False
            for i in range(m - 1, low - 1, -1):
                ei = e[i]
                f = s * ei
                b = c * ei
                r = f.hypot(g)
                e[i + 1] = r
                if float(r) == 0.0:
                    d[i + 1] = d[i + 1] - p
                    e[m] = 0.0
                    restart = True
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + (2.0 * c) * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # both rotated columns are computed before either write, so
                # the views need no defensive copies (same rounded ops, same
                # inputs as the copy-first spelling)
                zi = Z[:, i]
                zi1 = Z[:, i + 1]
                znew_i1 = s * zi + c * zi1
                znew_i = c * zi - s * zi1
                Z[:, i + 1] = znew_i1
                Z[:, i] = znew_i
            if restart:
                continue
            d[low] = d[low] - p
            e[low] = g
            e[m] = 0.0
    return d_full, Z_full


def symmetric_eigen(ctx, A, max_sweeps: int = 60):
    """Spectral decomposition of a symmetric matrix in the context arithmetic.

    The matrix is symmetrised (``(A + A^T) / 2`` with rounded operations, as
    the projected Arnoldi matrix is only symmetric up to rounding), reduced to
    tridiagonal form and diagonalised with the implicit QL iteration.

    Returns ``(w, V)`` with ``A @ V[:, j] ≈ w[j] * V[:, j]``.
    """
    A = ctx.wrap(np.asarray(A, dtype=ctx.dtype))
    if A.shape[0] != A.shape[1]:
        raise ValueError("symmetric_eigen requires a square matrix")
    if A.shape[0] == 0:
        return np.zeros(0, dtype=ctx.dtype), np.zeros((0, 0), dtype=ctx.dtype)
    if A.shape[0] == 1:
        return A.data[0, :1].copy(), np.ones((1, 1), dtype=ctx.dtype)
    sym = 0.5 * (A + A.T)
    d, e, Q = tridiagonalize(ctx, sym.data)
    return tridiagonal_eigen(ctx, d, e, Z=Q, max_sweeps=max_sweeps)
