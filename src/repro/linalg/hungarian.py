"""Hungarian (Kuhn-Munkres) assignment algorithm.

The experiments match computed eigenvectors to reference eigenvectors by
maximising total absolute cosine similarity (Section 2.2 of the paper, which
uses ``Hungarian.jl``).  This module provides an O(n^3) implementation based
on shortest augmenting paths with dual potentials (the Jonker-Volgenant
formulation of the Hungarian method).  Matching happens in float64 — it is a
post-processing step, not part of the arithmetic under evaluation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hungarian"]


def hungarian(cost) -> tuple[np.ndarray, float]:
    """Solve the linear assignment problem for a cost matrix.

    Rows are assigned to distinct columns so that the total cost is minimal.

    Parameters
    ----------
    cost:
        ``(n, m)`` cost matrix with ``n <= m``; entries must be finite.

    Returns
    -------
    (assignment, total_cost):
        ``assignment[i]`` is the column assigned to row ``i``; ``total_cost``
        is the sum of the selected entries.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    n, m = cost.shape
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0.0
    if n > m:
        raise ValueError("hungarian requires at least as many columns as rows")
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite")

    # dual potentials and matching; index 0 is a virtual column used as the
    # root of every augmenting-path search (1-based elsewhere)
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    match = np.zeros(m + 1, dtype=np.int64)  # match[j] = row matched to column j

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        mins = np.full(m + 1, np.inf)
        links = np.zeros(m + 1, dtype=np.int64)
        visited = np.zeros(m + 1, dtype=bool)
        while True:
            visited[j0] = True
            i0 = match[j0]
            delta = np.inf
            j1 = 0
            reduced = cost[i0 - 1, :] - u[i0] - v[1:]
            for j in range(1, m + 1):
                if visited[j]:
                    continue
                cur = reduced[j - 1]
                if cur < mins[j]:
                    mins[j] = cur
                    links[j] = j0
                if mins[j] < delta:
                    delta = mins[j]
                    j1 = j
            for j in range(m + 1):
                if visited[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    mins[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # augment along the alternating path back to the root
        while j0 != 0:
            j1 = links[j0]
            match[j0] = match[j1]
            j0 = j1

    assignment = np.full(n, -1, dtype=np.int64)
    for j in range(1, m + 1):
        if match[j] != 0:
            assignment[match[j] - 1] = j - 1
    total = float(cost[np.arange(n), assignment].sum())
    return assignment, total
