"""Dense linear-algebra kernels written against the compute contexts.

The Krylov-Schur restart of the Arnoldi method repeatedly factorises a small
projected matrix (a few dozen rows).  ARPACK and ``ArnoldiMethod.jl`` carry
out this step in the working precision; to reproduce that behaviour without
LAPACK the kernels here are written directly on top of the
:class:`~repro.arithmetic.context.ComputeContext` interface, so they run in
*any* of the emulated arithmetics (bfloat16, OFP8, posits, takums, ...).

Provided kernels:

* Householder reflectors and Givens rotations (:mod:`repro.linalg.reflectors`);
* symmetric tridiagonalisation and the implicit-shift QL eigensolver
  (:mod:`repro.linalg.tridiagonal`), the default spectral-decomposition path
  for the symmetric matrices studied in the paper;
* a general real Schur decomposition via Francis double-shift QR
  (:mod:`repro.linalg.schur`);
* eigenvalue ordering rules used for selecting wanted Ritz values
  (:mod:`repro.linalg.ordering`);
* the Hungarian algorithm used to match computed eigenvectors to reference
  eigenvectors (:mod:`repro.linalg.hungarian`).
"""

from .reflectors import (
    householder_vector,
    apply_reflector_left,
    apply_reflector_right,
    givens_rotation,
)
from .tridiagonal import (
    tridiagonalize,
    tridiagonal_eigen,
    symmetric_eigen,
    EigenConvergenceError,
)
from .schur import hessenberg, real_schur, schur_eigenvalues
from .ordering import ordering_key, select_order, WHICH_RULES
from .hungarian import hungarian

__all__ = [
    "householder_vector",
    "apply_reflector_left",
    "apply_reflector_right",
    "givens_rotation",
    "tridiagonalize",
    "tridiagonal_eigen",
    "symmetric_eigen",
    "EigenConvergenceError",
    "hessenberg",
    "real_schur",
    "schur_eigenvalues",
    "ordering_key",
    "select_order",
    "WHICH_RULES",
    "hungarian",
]
