"""Householder reflectors and Givens rotations in a compute context.

Every arithmetic operation goes through the context so the kernels behave as
if they were executed on hardware implementing the target format.  The
routines operate on small dense matrices (the projected problems of the
Krylov-Schur iteration) and therefore favour clarity over asymptotic
performance; inner updates are still expressed as vectorised context calls.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "householder_vector",
    "apply_reflector_left",
    "apply_reflector_right",
    "givens_rotation",
    "apply_givens_left",
    "apply_givens_right",
]


def householder_vector(ctx, x):
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, beta, alpha)`` such that ``(I - beta v v^T) x = alpha e_1``
    with ``|alpha| = ||x||``.  The sign of ``alpha`` is chosen opposite to
    ``x[0]`` for numerical stability.  If ``x`` is (numerically) zero the
    reflector is the identity (``beta = 0``).
    """
    x = np.asarray(x, dtype=ctx.dtype)
    n = x.shape[0]
    normx = ctx.norm2(x)
    if not np.isfinite(normx) or float(normx) == 0.0:
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), ctx.dtype(0.0) if float(normx) == 0.0 else normx
    # work with the normalised vector: the reflector is scale-invariant and
    # the intermediate quantities stay O(1), which keeps 8-bit formats inside
    # their dynamic range
    xs = ctx.div(x, normx)
    sign = -1.0 if float(x[0]) < 0 else 1.0
    alpha = ctx.mul(ctx.dtype(-sign), normx)
    v = xs.copy()
    v[0] = ctx.sub(xs[0], ctx.dtype(-sign))
    vnorm2 = ctx.dot(v, v)
    if not np.isfinite(vnorm2) or float(vnorm2) == 0.0:
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), alpha
    beta = ctx.div(ctx.dtype(2.0), vnorm2)
    if not np.isfinite(beta):
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), alpha
    return v, beta, alpha


def apply_reflector_left(ctx, v, beta, A):
    """Apply ``(I - beta v v^T)`` from the left: ``A <- A - beta v (v^T A)``."""
    A = np.asarray(A, dtype=ctx.dtype)
    if float(beta) == 0.0:
        return A.copy()
    w = ctx.gemv_t(A, v)  # v^T A
    update = ctx.mul(ctx.mul(beta, v)[:, np.newaxis], w[np.newaxis, :])
    return ctx.sub(A, update)


def apply_reflector_right(ctx, A, v, beta):
    """Apply ``(I - beta v v^T)`` from the right: ``A <- A - beta (A v) v^T``."""
    A = np.asarray(A, dtype=ctx.dtype)
    if float(beta) == 0.0:
        return A.copy()
    w = ctx.gemv(A, v)  # A v
    update = ctx.mul(w[:, np.newaxis], ctx.mul(beta, v)[np.newaxis, :])
    return ctx.sub(A, update)


def givens_rotation(ctx, a, b):
    """Compute ``(c, s, r)`` with ``c*a + s*b = r`` and ``-s*a + c*b = 0``.

    The rotation is normalised so that ``c^2 + s^2 = 1`` up to rounding in the
    target arithmetic.
    """
    a = ctx.dtype(a)
    b = ctx.dtype(b)
    if float(b) == 0.0:
        return ctx.dtype(1.0), ctx.dtype(0.0), a
    if float(a) == 0.0:
        return ctx.dtype(0.0), ctx.dtype(1.0), b
    r = ctx.hypot(a, b)
    if not np.isfinite(r) or float(r) == 0.0:
        return ctx.dtype(1.0), ctx.dtype(0.0), a
    c = ctx.div(a, r)
    s = ctx.div(b, r)
    return c, s, r


def apply_givens_left(ctx, c, s, A, i, j):
    """Rotate rows ``i`` and ``j`` of ``A`` in place-semantics (returns copy)."""
    A = np.array(A, dtype=ctx.dtype, copy=True)
    row_i = A[i, :].copy()
    row_j = A[j, :].copy()
    A[i, :] = ctx.add(ctx.mul(c, row_i), ctx.mul(s, row_j))
    A[j, :] = ctx.sub(ctx.mul(c, row_j), ctx.mul(s, row_i))
    return A


def apply_givens_right(ctx, c, s, A, i, j):
    """Rotate columns ``i`` and ``j`` of ``A`` (returns a new array)."""
    A = np.array(A, dtype=ctx.dtype, copy=True)
    col_i = A[:, i].copy()
    col_j = A[:, j].copy()
    A[:, i] = ctx.add(ctx.mul(c, col_i), ctx.mul(s, col_j))
    A[:, j] = ctx.sub(ctx.mul(c, col_j), ctx.mul(s, col_i))
    return A
