"""Householder reflectors and Givens rotations in a compute context.

Every arithmetic operation goes through the context so the kernels behave as
if they were executed on hardware implementing the target format.  The
algorithm bodies are written in the operator form of
:mod:`repro.arithmetic.farray` — ``ctx.wrap`` binds the inputs once and each
operator performs exactly one rounded context operation — so the mathematics
reads like NumPy while the trajectories stay bit-identical to the explicit
``ctx.sub(..., ctx.mul(...))`` spelling (proven in
``tests/test_operator_equivalence.py``).  The routines operate on small dense
matrices (the projected problems of the Krylov-Schur iteration) and
therefore favour clarity over asymptotic performance.

Public signatures keep plain ndarrays / work-dtype scalars in and out, so
callers of the explicit context API are unaffected.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "householder_vector",
    "apply_reflector_left",
    "apply_reflector_right",
    "givens_rotation",
    "apply_givens_left",
    "apply_givens_right",
]


def householder_vector(ctx, x):
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, beta, alpha)`` such that ``(I - beta v v^T) x = alpha e_1``
    with ``|alpha| = ||x||``.  The sign of ``alpha`` is chosen opposite to
    ``x[0]`` for numerical stability.  If ``x`` is (numerically) zero the
    reflector is the identity (``beta = 0``).
    """
    x = ctx.wrap(x)
    n = x.shape[0]
    normx = x.norm2()
    if not normx.isfinite() or float(normx) == 0.0:
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), ctx.dtype(0.0) if float(normx) == 0.0 else normx.value
    # work with the normalised vector: the reflector is scale-invariant and
    # the intermediate quantities stay O(1), which keeps 8-bit formats inside
    # their dynamic range
    xs = x / normx
    sign = -1.0 if float(x[0]) < 0 else 1.0
    alpha = -sign * normx
    v = xs.copy()
    v[0] = xs[0] - (-sign)
    vnorm2 = v.dot(v)
    if not vnorm2.isfinite() or float(vnorm2) == 0.0:
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), alpha.value
    beta = 2.0 / vnorm2
    if not beta.isfinite():
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), alpha.value
    return v.data, beta.value, alpha.value


def apply_reflector_left(ctx, v, beta, A):
    """Apply ``(I - beta v v^T)`` from the left: ``A <- A - beta v (v^T A)``."""
    A = ctx.wrap(A)
    if float(beta) == 0.0:
        return A.data.copy()
    v = ctx.wrap(v)
    beta = ctx.wrap_scalar(beta)
    w = v @ A  # v^T A
    update = (beta * v)[:, np.newaxis] * w[np.newaxis, :]
    return (A - update).data


def apply_reflector_right(ctx, A, v, beta):
    """Apply ``(I - beta v v^T)`` from the right: ``A <- A - beta (A v) v^T``."""
    A = ctx.wrap(A)
    if float(beta) == 0.0:
        return A.data.copy()
    v = ctx.wrap(v)
    beta = ctx.wrap_scalar(beta)
    w = A @ v
    update = w[:, np.newaxis] * (beta * v)[np.newaxis, :]
    return (A - update).data


def givens_rotation(ctx, a, b):
    """Compute ``(c, s, r)`` with ``c*a + s*b = r`` and ``-s*a + c*b = 0``.

    The rotation is normalised so that ``c^2 + s^2 = 1`` up to rounding in the
    target arithmetic.
    """
    a = ctx.wrap_scalar(a)
    b = ctx.wrap_scalar(b)
    if float(b) == 0.0:
        return ctx.dtype(1.0), ctx.dtype(0.0), a.value
    if float(a) == 0.0:
        return ctx.dtype(0.0), ctx.dtype(1.0), b.value
    r = a.hypot(b)
    if not r.isfinite() or float(r) == 0.0:
        return ctx.dtype(1.0), ctx.dtype(0.0), a.value
    c = a / r
    s = b / r
    return c.value, s.value, r.value


def apply_givens_left(ctx, c, s, A, i, j):
    """Rotate rows ``i`` and ``j`` of ``A`` in place-semantics (returns copy)."""
    A = ctx.wrap(np.array(A, dtype=ctx.dtype, copy=True))
    c = ctx.wrap_scalar(c)
    s = ctx.wrap_scalar(s)
    row_i = A[i, :].copy()
    row_j = A[j, :].copy()
    A[i, :] = c * row_i + s * row_j
    A[j, :] = c * row_j - s * row_i
    return A.data


def apply_givens_right(ctx, c, s, A, i, j):
    """Rotate columns ``i`` and ``j`` of ``A`` (returns a new array)."""
    A = ctx.wrap(np.array(A, dtype=ctx.dtype, copy=True))
    c = ctx.wrap_scalar(c)
    s = ctx.wrap_scalar(s)
    col_i = A[:, i].copy()
    col_j = A[:, j].copy()
    A[:, i] = c * col_i + s * col_j
    A[:, j] = c * col_j - s * col_i
    return A.data
