"""Coordinate-format (COO) sparse matrices.

COO is the natural assembly format: triplets ``(row, col, value)`` in any
order, possibly with duplicates (which are summed on conversion).  It is used
when parsing Matrix-Market files and edge lists and when building synthetic
matrices; computation happens on the CSR form (:mod:`repro.sparse.csr`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["COOMatrix"]


class COOMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    rows, cols:
        Integer index arrays of equal length.
    values:
        Entry values, same length as the index arrays.
    shape:
        Matrix shape; inferred from the largest indices when omitted.
    """

    def __init__(self, rows, cols, values, shape=None):
        self.rows = np.asarray(rows, dtype=np.int64).ravel()
        self.cols = np.asarray(cols, dtype=np.int64).ravel()
        self.values = np.asarray(values).ravel()
        if not (self.rows.size == self.cols.size == self.values.size):
            raise ValueError("rows, cols and values must have the same length")
        if shape is None:
            nrows = int(self.rows.max()) + 1 if self.rows.size else 0
            ncols = int(self.cols.max()) + 1 if self.cols.size else 0
            shape = (nrows, ncols)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.rows.size:
            if self.rows.min() < 0 or self.cols.min() < 0:
                raise ValueError("negative indices are not allowed")
            if self.rows.max() >= self.shape[0] or self.cols.max() >= self.shape[1]:
                raise ValueError("index exceeds matrix shape")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries (before duplicate summation)."""
        return int(self.values.size)

    def transpose(self) -> "COOMatrix":
        """Transpose (swaps row and column indices)."""
        return COOMatrix(self.cols, self.rows, self.values, (self.shape[1], self.shape[0]))

    @property
    def T(self) -> "COOMatrix":
        return self.transpose()

    def tocsr(self):
        """Convert to CSR, summing duplicate entries and dropping explicit
        zeros produced by the summation."""
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self)

    def todense(self) -> np.ndarray:
        """Dense ``numpy.ndarray`` with duplicates summed."""
        out = np.zeros(self.shape, dtype=np.result_type(self.values, np.float64))
        np.add.at(out, (self.rows, self.cols), self.values)
        return out

    @classmethod
    def from_dense(cls, dense, tol: float = 0.0) -> "COOMatrix":
        """Build a COO matrix from a dense array, keeping entries with
        ``abs(value) > tol``."""
        dense = np.asarray(dense)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<COOMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"
