"""Matrix-Market and edge-list I/O.

The Network Repository distributes graphs either as Matrix-Market files
(``.mtx``) or as whitespace-separated edge lists (``.edges``), both with
formatting quirks (comment styles, optional weights, 0- or 1-based indices,
header lines that do not match the actual dimensions).  The readers below
follow the cleanup rules described in Section 2.1 of the paper: tolerant
parsing, symmetric expansion of ``symmetric`` Matrix-Market files, and
best-effort recovery from malformed headers.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_edge_list",
    "write_edge_list",
]


def _open_lines(path_or_lines) -> Iterable[str]:
    if isinstance(path_or_lines, (str, os.PathLike)):
        with open(path_or_lines, "r", encoding="utf-8", errors="replace") as handle:
            yield from handle
    else:
        yield from path_or_lines


def read_matrix_market(path_or_lines) -> CSRMatrix:
    """Parse a Matrix-Market coordinate file into a CSR matrix.

    Supports the ``real``, ``integer`` and ``pattern`` field types and the
    ``general`` and ``symmetric`` symmetry qualifiers.  ``pattern`` entries
    get the value 1.  Symmetric storage is expanded to both triangles.
    """
    lines = iter(_open_lines(path_or_lines))
    header = next(lines, "")
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("not a MatrixMarket file (missing %%MatrixMarket header)")
    tokens = header.strip().split()
    fmt = tokens[2].lower() if len(tokens) > 2 else "coordinate"
    field = tokens[3].lower() if len(tokens) > 3 else "real"
    symmetry = tokens[4].lower() if len(tokens) > 4 else "general"
    if fmt != "coordinate":
        raise ValueError(f"unsupported MatrixMarket format {fmt!r} (only coordinate)")
    if field == "complex":
        raise ValueError("complex matrices are not supported")

    size_line = None
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise ValueError("missing size line")
    parts = size_line.split()
    if len(parts) < 3:
        raise ValueError(f"malformed size line: {size_line!r}")
    nrows, ncols = int(float(parts[0])), int(float(parts[1]))

    rows, cols, vals = [], [], []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        entry = stripped.split()
        r = int(float(entry[0])) - 1
        c = int(float(entry[1])) - 1
        if field == "pattern" or len(entry) < 3:
            v = 1.0
        else:
            v = float(entry[2])
        rows.append(r)
        cols.append(c)
        vals.append(v)
        if symmetry in ("symmetric", "skew-symmetric", "hermitian") and r != c:
            rows.append(c)
            cols.append(r)
            vals.append(-v if symmetry == "skew-symmetric" else v)

    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    # best-effort recovery from malformed headers that understate dimensions
    if rows.size:
        nrows = max(nrows, int(rows.max()) + 1)
        ncols = max(ncols, int(cols.max()) + 1)
    return COOMatrix(rows, cols, np.asarray(vals), (nrows, ncols)).tocsr()


def write_matrix_market(path, matrix: CSRMatrix, comment: str | None = None) -> None:
    """Write a CSR matrix as a general real coordinate Matrix-Market file."""
    coo = matrix.tocoo()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                handle.write(f"% {line}\n")
        handle.write(f"{matrix.shape[0]} {matrix.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.values):
            handle.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")


def read_edge_list(path_or_lines, num_vertices: int | None = None) -> CSRMatrix:
    """Parse a whitespace/comma-separated edge list into an adjacency matrix.

    Each non-comment line holds ``u v`` or ``u v w``; indices may be 0- or
    1-based (detected from the minimum index).  Repeated edges accumulate
    their weights.  The adjacency matrix is returned as written in the file
    (directed); symmetrisation happens in the Laplacian pipeline.
    """
    us, vs, ws = [], [], []
    for line in _open_lines(path_or_lines):
        stripped = line.strip()
        if not stripped or stripped.startswith(("%", "#", "//")):
            continue
        parts = stripped.replace(",", " ").split()
        if len(parts) < 2:
            continue
        try:
            u = int(float(parts[0]))
            v = int(float(parts[1]))
        except ValueError:
            continue
        w = 1.0
        if len(parts) >= 3:
            try:
                w = float(parts[2])
            except ValueError:
                w = 1.0
        us.append(u)
        vs.append(v)
        ws.append(w)
    if not us:
        n = num_vertices or 0
        return CSRMatrix(
            np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(n + 1, dtype=np.int64), (n, n)
        )
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    ws = np.asarray(ws, dtype=np.float64)
    base = min(int(us.min()), int(vs.min()))
    if base > 0:
        us = us - base
        vs = vs - base
    n = max(int(us.max()), int(vs.max())) + 1
    if num_vertices is not None:
        n = max(n, int(num_vertices))
    return COOMatrix(us, vs, ws, (n, n)).tocsr()


def write_edge_list(path, matrix: CSRMatrix, weighted: bool = True) -> None:
    """Write the non-zero pattern of a matrix as a 1-based edge list."""
    coo = matrix.tocoo()
    with open(path, "w", encoding="utf-8") as handle:
        for r, c, v in zip(coo.rows, coo.cols, coo.values):
            if weighted:
                handle.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
            else:
                handle.write(f"{int(r) + 1} {int(c) + 1}\n")
