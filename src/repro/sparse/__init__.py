"""Sparse-matrix substrate: COO/CSR storage, I/O and Laplacian preparation.

The paper operates on sparse symmetric matrices from the SuiteSparse Matrix
Collection and on symmetrically normalised graph Laplacians built from
Network-Repository edge lists / Matrix-Market files.  This subpackage
provides the storage formats, readers/writers and the Laplacian construction
pipeline used by :mod:`repro.datasets` and :mod:`repro.experiments`.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .io import (
    read_matrix_market,
    write_matrix_market,
    read_edge_list,
    write_edge_list,
)
from .laplacian import (
    average_symmetrize,
    degrees,
    ensure_square,
    normalized_laplacian,
    laplacian_from_adjacency,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "read_matrix_market",
    "write_matrix_market",
    "read_edge_list",
    "write_edge_list",
    "average_symmetrize",
    "degrees",
    "ensure_square",
    "normalized_laplacian",
    "laplacian_from_adjacency",
]
