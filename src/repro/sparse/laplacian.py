"""Graph Laplacian preparation (Section 2.1 of the paper).

Given a (possibly directed, possibly non-square) adjacency matrix the paper
builds the symmetrically normalised Laplacian in three steps:

1. make the matrix square (discarding or appending an all-zero block),
2. average-symmetrise ``A <- (A + A^T) / 2``,
3. form ``L_sym`` with unit diagonal for non-isolated vertices and
   ``-1 / sqrt(deg(i) deg(j))`` off-diagonals on the sparsity pattern.

All functions accept and return the CSR substrate of this package.
"""

from __future__ import annotations

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "ensure_square",
    "average_symmetrize",
    "degrees",
    "normalized_laplacian",
    "laplacian_from_adjacency",
]


def ensure_square(matrix: CSRMatrix) -> CSRMatrix:
    """Return a square matrix by removing or appending an all-zero block.

    If the matrix is wider than tall (or vice versa) and the excess rows or
    columns carry no entries, they are dropped; otherwise a zero block is
    appended so that the result is square (the paper's fallback rule).
    """
    nrows, ncols = matrix.shape
    if nrows == ncols:
        return matrix
    coo = matrix.tocoo()
    used_rows = int(coo.rows.max()) + 1 if coo.nnz else 0
    used_cols = int(coo.cols.max()) + 1 if coo.nnz else 0
    if nrows > ncols and used_rows <= ncols:
        return CSRMatrix(
            matrix.data.copy(),
            matrix.indices.copy(),
            matrix.indptr[: ncols + 1].copy(),
            (ncols, ncols),
        )
    if ncols > nrows and used_cols <= nrows:
        return COOMatrix(coo.rows, coo.cols, coo.values, (nrows, nrows)).tocsr()
    n = max(nrows, ncols)
    return COOMatrix(coo.rows, coo.cols, coo.values, (n, n)).tocsr()


def average_symmetrize(matrix: CSRMatrix) -> CSRMatrix:
    """Average symmetrisation ``A -> (A + A^T) / 2`` of a square matrix."""
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("average_symmetrize requires a square matrix")
    coo = matrix.tocoo()
    rows = np.concatenate([coo.rows, coo.cols])
    cols = np.concatenate([coo.cols, coo.rows])
    vals = np.concatenate([coo.values, coo.values]) * 0.5
    return COOMatrix(rows, cols, vals, matrix.shape).tocsr()


def degrees(adjacency: CSRMatrix) -> np.ndarray:
    """Vertex degrees ``deg(i) = sum_j A_ij`` of a symmetric adjacency."""
    return adjacency.row_sums()


def normalized_laplacian(adjacency: CSRMatrix) -> CSRMatrix:
    """Symmetrically normalised Laplacian of a symmetric adjacency matrix.

    Implements equation (1) of the paper::

        L_ij = 1                            if i = j and deg(i) > 0
        L_ij = -A_ij / sqrt(deg(i) deg(j))  if i != j and A_ij != 0
        L_ij = 0                            otherwise

    Note that for weighted or multi-graphs this uses the weighted degree, so
    the off-diagonal entries are scaled by the actual entry value ``A_ij``.
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("normalized_laplacian requires a square matrix")
    n = adjacency.shape[0]
    deg = degrees(adjacency)
    coo = adjacency.tocoo()
    off = coo.rows != coo.cols
    rows = coo.rows[off]
    cols = coo.cols[off]
    vals = np.asarray(coo.values, dtype=np.float64)[off]
    keep = vals != 0.0
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    denom = np.sqrt(deg[rows] * deg[cols])
    # guard isolated / zero-degree endpoints (can occur with negative weights)
    safe = denom != 0.0
    rows, cols, vals, denom = rows[safe], cols[safe], vals[safe], denom[safe]
    lap_vals = -vals / denom
    diag_idx = np.nonzero(deg > 0)[0]
    all_rows = np.concatenate([rows, diag_idx])
    all_cols = np.concatenate([cols, diag_idx])
    all_vals = np.concatenate([lap_vals, np.ones(diag_idx.size)])
    return COOMatrix(all_rows, all_cols, all_vals, (n, n)).tocsr()


def laplacian_from_adjacency(matrix: CSRMatrix) -> CSRMatrix:
    """Full preparation pipeline: square -> symmetrise -> normalised Laplacian."""
    return normalized_laplacian(average_symmetrize(ensure_square(matrix)))
