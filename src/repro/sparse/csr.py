"""Compressed sparse row (CSR) matrices.

This is the computational sparse format of the library: the Arnoldi solver
only needs matrix-vector products, which the compute contexts implement with
per-operation rounding on the CSR arrays (:meth:`repro.arithmetic.context
.ComputeContext.spmv`).  The class intentionally supports just the operations
the study requires (matvec, symmetry checks, scaling, conversion, slicing of
diagonals) rather than a full sparse-algebra suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Sparse matrix in compressed-sparse-row format.

    Attributes
    ----------
    data:
        Non-zero values, row by row.
    indices:
        Column index of every stored value.
    indptr:
        Row pointer of length ``nrows + 1``.
    shape:
        ``(nrows, ncols)``.
    """

    def __init__(self, data, indices, indptr, shape):
        self.data = np.asarray(data)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr length must be nrows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.data.size != self.indices.size:
            raise ValueError("data and indices must have the same length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Build from a :class:`~repro.sparse.coo.COOMatrix`, summing
        duplicates and dropping entries that cancel to exactly zero."""
        nrows, ncols = coo.shape
        if coo.nnz == 0:
            return cls(
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.int64),
                np.zeros(nrows + 1, dtype=np.int64),
                coo.shape,
            )
        order = np.lexsort((coo.cols, coo.rows))
        rows = coo.rows[order]
        cols = coo.cols[order]
        vals = np.asarray(coo.values, dtype=np.float64)[order]
        # collapse duplicates
        new_group = np.concatenate(
            ([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1]))
        )
        group_id = np.cumsum(new_group) - 1
        ngroups = int(group_id[-1]) + 1
        summed = np.zeros(ngroups, dtype=np.float64)
        np.add.at(summed, group_id, vals)
        grows = rows[new_group]
        gcols = cols[new_group]
        keep = summed != 0.0
        grows, gcols, summed = grows[keep], gcols[keep], summed[keep]
        counts = np.bincount(grows, minlength=nrows)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(summed, gcols, indptr, coo.shape)

    @classmethod
    def from_dense(cls, dense, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, keeping entries with magnitude > tol."""
        from .coo import COOMatrix

        return COOMatrix.from_dense(dense, tol=tol).tocsr()

    @classmethod
    def identity(cls, n: int, value: float = 1.0) -> "CSRMatrix":
        """``value`` times the identity matrix of order ``n``."""
        return cls(
            np.full(n, value, dtype=np.float64),
            np.arange(n, dtype=np.int64),
            np.arange(n + 1, dtype=np.int64),
            (n, n),
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def with_data(self, data) -> "CSRMatrix":
        """Copy of the matrix with the same pattern but new values (used by
        the compute contexts to convert a matrix into a target format)."""
        data = np.asarray(data)
        if data.shape != self.data.shape:
            raise ValueError("replacement data must match the sparsity pattern")
        return CSRMatrix(data, self.indices.copy(), self.indptr.copy(), self.shape)

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def matvec(self, x) -> np.ndarray:
        """Exact (work-precision) matrix-vector product ``A @ x``."""
        x = np.asarray(x)
        out = np.zeros(self.shape[0], dtype=np.result_type(self.data, x))
        if self.nnz == 0:
            return out
        prods = self.data * x[self.indices]
        np.add.at(out, np.repeat(np.arange(self.shape[0]), np.diff(self.indptr)), prods)
        return out

    def __matmul__(self, x):
        if hasattr(x, "ctx"):
            # context-bound operand (repro.arithmetic.farray.FArray): defer
            # to its __rmatmul__, which applies the rounded sparse kernel
            return NotImplemented
        return self.matvec(x)

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=self.data.dtype if self.nnz else np.float64)
        for i in range(n):
            start, stop = self.indptr[i], self.indptr[i + 1]
            cols = self.indices[start:stop]
            hit = np.nonzero(cols == i)[0]
            if hit.size:
                diag[i] = self.data[start + hit[0]]
        return diag

    def row_sums(self) -> np.ndarray:
        """Vector of row sums."""
        out = np.zeros(self.shape[0], dtype=np.float64)
        if self.nnz == 0:
            return out
        np.add.at(
            out, np.repeat(np.arange(self.shape[0]), np.diff(self.indptr)), self.data
        )
        return out

    def scale(self, alpha: float) -> "CSRMatrix":
        """Matrix scaled by a scalar."""
        return self.with_data(self.data * alpha)

    def transpose(self) -> "CSRMatrix":
        """Transposed matrix (returns a new CSR)."""
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(
            self.indices, rows, self.data, (self.shape[1], self.shape[0])
        ).tocsr()

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def todense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.result_type(self.data, np.float64))
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def tocoo(self):
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def toscipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (used for cross-checks)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (np.asarray(self.data, dtype=np.float64), self.indices, self.indptr),
            shape=self.shape,
        )

    # ------------------------------------------------------------------ #
    # structure checks
    # ------------------------------------------------------------------ #
    def is_symmetric(self, tol: float = 0.0) -> bool:
        """Whether the matrix equals its transpose up to ``tol``."""
        if self.shape[0] != self.shape[1]:
            return False
        t = self.transpose()
        if not np.array_equal(t.indptr, self.indptr) or not np.array_equal(
            t.indices, self.indices
        ):
            # patterns differ: compare densified only for small matrices,
            # otherwise report asymmetric
            if self.shape[0] <= 2048:
                return bool(
                    np.allclose(self.todense(), self.todense().T, atol=tol, rtol=0)
                )
            return False
        return bool(np.allclose(t.data, self.data, atol=tol, rtol=0))

    def max_abs(self) -> float:
        """Largest entry magnitude (0 for an empty matrix)."""
        return float(np.abs(self.data).max()) if self.nnz else 0.0

    def min_abs_nonzero(self) -> float:
        """Smallest non-zero entry magnitude (0 for an empty matrix)."""
        if self.nnz == 0:
            return 0.0
        nz = np.abs(self.data[self.data != 0])
        return float(nz.min()) if nz.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<CSRMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"
