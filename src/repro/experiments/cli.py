"""Command-line interface for running the paper's experiments.

Usage (module form)::

    python -m repro.experiments.cli --suite general --widths 16 32 \
        --matrices 6 --output results.csv

runs the chosen suite (one of the paper's five workloads) with all formats of
the requested bit widths, prints the figure report (percentile table + ASCII
cumulative error distributions) and optionally writes the raw per-run records
as CSV.  The defaults are a scaled-down laptop workload; raising
``--matrices``/``--scale`` approaches the paper's population sizes.
"""

from __future__ import annotations

import argparse
import csv
import sys

from ..arithmetic.registry import PAPER_FORMATS
from ..datasets import get_suite
from ..utils.parallel import default_workers
from .config import ExperimentConfig
from .figures import figure_csv_rows, figure_report, table1_report
from .runner import run_experiment

__all__ = ["main", "build_parser"]


#: --help epilog surfacing the rounding-backend opt-out hierarchy (the
#: fast paths are bit-identical to the analytic kernels, so these exist for
#: verification runs and micro-benchmarks, not for day-to-day use)
_EPILOG = """\
rounding backends:
  Emulated formats round through lookup tables (8-bit widths), integer
  bit-twiddling kernels (16/32-bit vector rounding) and pure-Python scalar
  kernels (scalars and tiny arrays); all are bit-identical to the analytic
  vector kernels.  Opt-outs, from coarse to fine:
    REPRO_DISABLE_ROUNDING_TABLES=1   environment: disable the table engine
                                      for the whole process
    REPRO_DISABLE_BITKERNELS=1        environment: disable the integer
                                      bit-twiddling kernels
    repro.arithmetic.set_tables_enabled(False)
    repro.arithmetic.set_bitkernels_enabled(False)
                                      runtime: same, toggleable per phase
    get_context(name, use_tables=False)
                                      per context: force the analytic
                                      kernels (use_tables=True forces the
                                      tables even when globally disabled)

parallelism:
  REPRO_WORKERS sets the default worker count of --workers (the benchmark
  harness honours it too); rounding tables are always warmed in the parent
  before workers fork.
"""


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the experiment CLI.

    Returns
    -------
    argparse.ArgumentParser
        Parser for the module-form invocation
        (``python -m repro.experiments.cli``); see ``--help`` for the
        rounding-backend opt-out hierarchy.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce the IRAM low-precision eigenvalue experiments.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--suite",
        default="general",
        choices=["general", "biological", "infrastructure", "social", "miscellaneous", "table1"],
        help="workload: 'general' = Figure 1, graph classes = Figures 2-5, "
        "'table1' only prints the classification table",
    )
    parser.add_argument(
        "--widths",
        type=int,
        nargs="+",
        default=[8, 16, 32, 64],
        choices=[8, 16, 32, 64],
        help="bit widths (figure panels) to evaluate",
    )
    parser.add_argument("--matrices", type=int, default=6, help="matrices to evaluate")
    parser.add_argument(
        "--scale", type=float, default=0.01, help="fraction of the Table-1 graph counts"
    )
    parser.add_argument("--min-size", type=int, default=24, help="smallest matrix order")
    parser.add_argument("--max-size", type=int, default=48, help="largest matrix order")
    parser.add_argument("--restarts", type=int, default=30, help="Krylov-Schur restart budget")
    parser.add_argument(
        "--accumulation",
        default="pairwise",
        choices=["pairwise", "sequential"],
        help="reduction order of the rounded kernels (ablation)",
    )
    parser.add_argument(
        "--no-tables",
        action="store_true",
        help="force the analytic rounding kernels (verification runs)",
    )
    parser.add_argument(
        "--no-op-count",
        action="store_true",
        help="disable the per-context tally of rounded operations",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes handed to parallel_map (each worker solves "
        "whole matrices; the rounding tables are warmed before the fork so "
        "workers inherit them copy-on-write).  Defaults to $REPRO_WORKERS "
        "or 1; 0 uses all CPUs",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--no-plots", action="store_true", help="omit the ASCII plots")
    parser.add_argument("--output", default=None, help="write per-run records to this CSV file")
    return parser


def _build_suite(args):
    size_range = (args.min_size, args.max_size)
    if args.suite == "general":
        return get_suite("general", count=args.matrices, size_range=size_range, seed=args.seed)
    suite = get_suite(args.suite, scale=args.scale, size_range=size_range, seed=args.seed)
    return suite[: args.matrices]


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.suite == "table1":
        print(table1_report(scale=args.scale))
        return 0

    suite = _build_suite(args)
    if not suite:
        print("no matrices generated for the requested workload", file=sys.stderr)
        return 1
    formats = [name for width in args.widths for name in PAPER_FORMATS[width]]
    # the per-context evaluation options travel as one ContextSpec template
    # inside the config instead of loose keyword arguments
    config = ExperimentConfig(
        restarts=args.restarts,
        accumulation=args.accumulation,
        use_tables=False if args.no_tables else None,
        count_ops=not args.no_op_count,
    )
    print(
        f"running suite {args.suite!r}: {len(suite)} matrices x {len(formats)} formats "
        f"(restarts={args.restarts}, workers={args.workers})",
        file=sys.stderr,
    )
    result = run_experiment(suite, formats, config, workers=args.workers)
    print(
        figure_report(
            result.records,
            widths=tuple(args.widths),
            title=f"Cumulative error distributions — suite {args.suite!r}",
            plots=not args.no_plots,
        )
    )
    if args.output:
        rows = figure_csv_rows(result.records)
        with open(args.output, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {len(rows)} records to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
