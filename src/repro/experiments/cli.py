"""Command-line interface for running the paper's experiments.

Usage (module form)::

    python -m repro.experiments.cli --suite general --widths 16 32 \
        --matrices 6 --output results.csv

runs the chosen suite (one of the paper's five workloads) with all formats of
the requested bit widths, prints the figure report (percentile table + ASCII
cumulative error distributions) and optionally writes the raw per-run records
as CSV.  The defaults are a scaled-down laptop workload; raising
``--matrices``/``--scale`` approaches the paper's population sizes.

Every run goes through the resumable experiment store
(:mod:`repro.experiments.store`): finished (matrix, format) cells are
committed to ``--store`` (default ``$REPRO_STORE`` or
``~/.cache/repro-store``) as they land, cached cells are never recomputed,
and an interrupted invocation resumes where it stopped.  The store itself is
managed with the ``store`` subcommand::

    python -m repro.experiments.cli store ls
    python -m repro.experiments.cli store gc
    python -m repro.experiments.cli store clear --yes

and served over HTTP with the ``serve`` subcommand (see
:mod:`repro.serve` and ``docs/serving.md``)::

    python -m repro.experiments.cli serve --port 8080 --workers 2
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys

from ..arithmetic.registry import PAPER_FORMATS
from ..datasets import get_suite
from ..telemetry import (
    TelemetryReport,
    metrics,
    render_trace_summary,
    set_enabled,
    summarize_trace,
)
from ..telemetry import trace as telemetry_trace
from ..utils.parallel import default_workers
from .aggregate import statuses_by_format
from .config import ExperimentConfig
from .figures import figure_csv_rows, figure_json, figure_report, table1_report
from .runner import run_experiment
from .store import ResultStore

__all__ = [
    "main",
    "build_parser",
    "build_store_parser",
    "build_trace_parser",
    "build_serve_parser",
]


#: --help epilog surfacing the rounding-backend opt-out hierarchy (the
#: fast paths are bit-identical to the analytic kernels, so these exist for
#: verification runs and micro-benchmarks, not for day-to-day use)
_EPILOG = """\
rounding backends:
  Emulated formats round through lookup tables (8-bit widths), integer
  bit-twiddling kernels (16/32-bit vector rounding) and pure-Python scalar
  kernels (scalars and tiny arrays); all are bit-identical to the analytic
  vector kernels.  Opt-outs, from coarse to fine:
    REPRO_DISABLE_ROUNDING_TABLES=1   environment: disable the table engine
                                      for the whole process
    REPRO_DISABLE_BITKERNELS=1        environment: disable the integer
                                      bit-twiddling kernels
    repro.arithmetic.set_tables_enabled(False)
    repro.arithmetic.set_bitkernels_enabled(False)
                                      runtime: same, toggleable per phase
    get_context(name, use_tables=False)
                                      per context: force the analytic
                                      kernels (use_tables=True forces the
                                      tables even when globally disabled)

parallelism:
  REPRO_WORKERS sets the default worker count of --workers (the benchmark
  harness honours it too); rounding tables are always warmed in the parent
  before workers fork.

experiment store:
  Finished (matrix, format) cells are committed to the store as they land
  and reused by later invocations with the same configuration, so reruns
  and interrupted runs only execute what is missing.  REPRO_STORE sets the
  default --store directory (fallback: $XDG_CACHE_HOME/repro-store or
  ~/.cache/repro-store); --no-cache recomputes everything (still
  refreshing the store); --rerun-failed retries cells whose worker
  crashed.  Inspect with the 'store' subcommand: store ls | gc | clear.

telemetry:
  Observability is off by default and costs <= 2% when compiled in (gated
  by benchmarks/bench_telemetry.py --check).  --trace FILE records
  hierarchical solver/experiment spans as JSON-lines (worker shards are
  merged after the run); --metrics-json FILE dumps the process metrics
  registry (kernel-dispatch counters, LUT fallback fractions, store
  hits/misses, rounded-op totals).  Either flag enables collection
  (REPRO_TELEMETRY=1 does the same for library use).  Summarise a trace
  with: trace summarize FILE.

serving:
  'serve' starts an HTTP service over the store: requests name a
  (matrix, format, config) cell and receive the stored run record as
  JSON; cold cells are solved on a bounded worker pool with identical
  concurrent requests coalesced into one solve, and saturation answered
  with 503 + Retry-After.  Telemetry is on for the service (scrape
  /metrics).  See docs/serving.md.
"""


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the experiment CLI.

    Returns
    -------
    argparse.ArgumentParser
        Parser for the module-form invocation
        (``python -m repro.experiments.cli``); see ``--help`` for the
        rounding-backend opt-out hierarchy and the experiment-store flags.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce the IRAM low-precision eigenvalue experiments.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--suite",
        default="general",
        choices=["general", "biological", "infrastructure", "social", "miscellaneous", "table1"],
        help="workload: 'general' = Figure 1, graph classes = Figures 2-5, "
        "'table1' only prints the classification table",
    )
    parser.add_argument(
        "--widths",
        type=int,
        nargs="+",
        default=[8, 16, 32, 64],
        choices=[8, 16, 32, 64],
        help="bit widths (figure panels) to evaluate",
    )
    parser.add_argument("--matrices", type=int, default=6, help="matrices to evaluate")
    parser.add_argument(
        "--scale", type=float, default=0.01, help="fraction of the Table-1 graph counts"
    )
    parser.add_argument("--min-size", type=int, default=24, help="smallest matrix order")
    parser.add_argument("--max-size", type=int, default=48, help="largest matrix order")
    parser.add_argument("--restarts", type=int, default=30, help="Krylov-Schur restart budget")
    parser.add_argument(
        "--accumulation",
        default="pairwise",
        choices=["pairwise", "sequential"],
        help="reduction order of the rounded kernels (ablation)",
    )
    parser.add_argument(
        "--no-tables",
        action="store_true",
        help="force the analytic rounding kernels (verification runs)",
    )
    parser.add_argument(
        "--no-op-count",
        action="store_true",
        help="disable the per-context tally of rounded operations",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes handed to parallel_map (each worker solves "
        "whole matrices; the rounding tables are warmed before the fork so "
        "workers inherit them copy-on-write).  Defaults to $REPRO_WORKERS "
        "or 1; 0 uses all CPUs",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="experiment-store directory (default: $REPRO_STORE, else "
        "~/.cache/repro-store); finished cells are committed here and "
        "reused by later runs",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore cached cells (recompute everything; fresh results "
        "still refresh the store)",
    )
    parser.add_argument(
        "--rerun-failed",
        action="store_true",
        help="retry cached cells whose worker crashed ('failed' status)",
    )
    parser.add_argument(
        "--batch-formats",
        action="store_true",
        help="solve each matrix's formats as one lockstep batch "
        "(repro.core.lockstep) instead of one sequential solve per format; "
        "per-format results are bit-identical, so cache entries are shared "
        "with sequential runs",
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write the execution report (planned/cached/executed cell "
        "counts + per-format run statuses + telemetry summary) as JSON",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="enable telemetry and record trace spans (solver phases, "
        "experiment cells, executor run) as JSON-lines to FILE; worker "
        "shard files are merged into FILE after the run",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="FILE",
        help="enable telemetry and write the metrics-registry snapshot "
        "(dispatch counters, store hits/misses, op totals) as JSON",
    )
    parser.add_argument(
        "--figure-json",
        default=None,
        metavar="FILE",
        help="write the aggregated figure data (status counts, percentiles, "
        "cumulative-distribution series) as deterministic JSON",
    )
    parser.add_argument("--no-plots", action="store_true", help="omit the ASCII plots")
    parser.add_argument("--output", default=None, help="write per-run records to this CSV file")
    return parser


def build_store_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``store`` maintenance subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment store",
        description="Inspect and maintain the on-disk experiment store.",
    )
    parser.add_argument(
        "command",
        choices=["ls", "gc", "clear"],
        help="ls: summarise entries; gc: drop stale-schema/corrupt entries "
        "and staging leftovers; clear: drop everything",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (default: $REPRO_STORE, else ~/.cache/repro-store)",
    )
    parser.add_argument(
        "--keys",
        action="store_true",
        help="with 'ls': also print every cache key",
    )
    parser.add_argument(
        "--yes",
        action="store_true",
        help="with 'clear': do not ask for confirmation",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``trace`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment trace",
        description="Summarise a JSON-lines trace file produced by --trace.",
    )
    parser.add_argument(
        "command",
        choices=["summarize"],
        help="summarize: phase/format wall-time and op breakdown",
    )
    parser.add_argument("file", help="trace file written by a --trace run")
    return parser


def trace_main(argv) -> int:
    """Entry point of ``python -m repro.experiments.cli trace ...``."""
    args = build_trace_parser().parse_args(argv)
    try:
        summary = summarize_trace(args.file)
    except OSError as exc:
        print(f"cannot read trace file: {exc}", file=sys.stderr)
        return 1
    if not summary["events"]:
        print(f"no span events in {args.file}", file=sys.stderr)
        return 1
    print(render_trace_summary(summary, title=f"trace {args.file}"))
    return 0


def store_main(argv) -> int:
    """Entry point of ``python -m repro.experiments.cli store ...``."""
    args = build_store_parser().parse_args(argv)
    store = ResultStore.from_environment(args.store)
    if args.command == "ls":
        stats = store.stats()
        print(f"store: {stats['root']}")
        print(f"entries: {stats['entries']} ({stats['bytes']} bytes)")
        for kind, count in sorted(stats["kinds"].items()):
            print(f"  kind {kind}: {count}")
        for status, count in sorted(stats["run_statuses"].items()):
            print(f"  status {status}: {count}")
        for name, count in sorted(stats["run_formats"].items()):
            print(f"  format {name}: {count}")
        if args.keys:
            for key in store.keys():
                print(key)
        return 0
    if args.command == "gc":
        removed = store.gc()
        print(f"removed {removed} stale entries from {store.root}")
        return 0
    # clear
    if not args.yes:
        try:
            reply = input(f"remove ALL entries under {store.root}? [y/N] ")
        except EOFError:  # non-interactive stdin (CI, cron): treat as "no"
            reply = ""
        if reply.strip().lower() not in ("y", "yes"):
            print("aborted", file=sys.stderr)
            return 1
    removed = store.clear()
    print(f"removed {removed} entries from {store.root}")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment serve",
        description="Serve (matrix, format) run records over HTTP, solving "
        "cold cells on a bounded worker pool (see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="experiment-store directory to serve from (default: $REPRO_STORE, "
        "else ~/.cache/repro-store)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="solver worker processes (0 uses all CPUs; default $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="cold solves admitted beyond the running ones before the "
        "service answers 503 + Retry-After",
    )
    parser.add_argument(
        "--suite",
        default="general",
        choices=["general", "biological", "infrastructure", "social", "miscellaneous"],
        help="workload whose matrices this replica serves",
    )
    parser.add_argument("--matrices", type=int, default=6, help="matrices in the served suite")
    parser.add_argument(
        "--scale", type=float, default=0.01, help="fraction of the Table-1 graph counts"
    )
    parser.add_argument("--min-size", type=int, default=24, help="smallest matrix order")
    parser.add_argument("--max-size", type=int, default=48, help="largest matrix order")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--widths",
        type=int,
        nargs="+",
        default=[8, 16, 32, 64],
        choices=[8, 16, 32, 64],
        help="bit widths whose formats the service accepts and preloads",
    )
    parser.add_argument(
        "--restarts", type=int, default=30, help="Krylov-Schur restart budget of cold solves"
    )
    parser.add_argument(
        "--no-preload",
        action="store_true",
        help="skip building the rounding tables at startup (first cold "
        "solve per format pays the cost instead)",
    )
    return parser


def serve_main(argv) -> int:
    """Entry point of ``python -m repro.experiments.cli serve ...``."""
    from ..serve import SpectralService, run_service

    args = build_serve_parser().parse_args(argv)
    # the service is an observability surface by design: /metrics must have
    # data, so telemetry is on for the whole process (workers inherit it)
    set_enabled(True)
    os.environ["REPRO_TELEMETRY"] = "1"
    metrics.reset()

    suite = _build_suite(args)
    if not suite:
        print("no matrices generated for the requested workload", file=sys.stderr)
        return 1
    formats = [name for width in args.widths for name in PAPER_FORMATS[width]]
    config = ExperimentConfig(restarts=args.restarts)
    store = ResultStore.from_environment(args.store)
    service = SpectralService(
        store,
        suite,
        formats=formats,
        config=config,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        preload=not args.no_preload,
    )
    run_service(service)
    return 0


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["store"]:
        return store_main(argv[1:])
    if argv[:1] == ["trace"]:
        return trace_main(argv[1:])
    if argv[:1] == ["serve"]:
        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.suite == "table1":
        print(table1_report(scale=args.scale))
        return 0

    telemetry_on = bool(args.trace or args.metrics_json)
    if telemetry_on:
        # fresh per-invocation metrics view; the env export lets workers
        # under the 'spawn' start method inherit the switch ('fork' workers
        # inherit the toggled module state directly)
        set_enabled(True)
        os.environ["REPRO_TELEMETRY"] = "1"
        metrics.reset()
        if args.trace:
            telemetry_trace.configure(args.trace)

    suite = _build_suite(args)
    if not suite:
        print("no matrices generated for the requested workload", file=sys.stderr)
        return 1
    formats = [name for width in args.widths for name in PAPER_FORMATS[width]]
    # the per-context evaluation options travel as one ContextSpec template
    # inside the config instead of loose keyword arguments
    config = ExperimentConfig(
        restarts=args.restarts,
        accumulation=args.accumulation,
        use_tables=False if args.no_tables else None,
        count_ops=not args.no_op_count,
    )
    store = ResultStore.from_environment(args.store)
    print(
        f"running suite {args.suite!r}: {len(suite)} matrices x {len(formats)} formats "
        f"(restarts={args.restarts}, workers={args.workers}, store={store.root})",
        file=sys.stderr,
    )
    result = run_experiment(
        suite,
        formats,
        config,
        workers=args.workers,
        store=store,
        use_cache=not args.no_cache,
        rerun_failed=args.rerun_failed,
        batch_formats=args.batch_formats,
    )
    report = result.report
    if args.trace:
        telemetry_trace.collate()
        telemetry_trace.shutdown()
    print(
        figure_report(
            result.records,
            widths=tuple(args.widths),
            title=f"Cumulative error distributions — suite {args.suite!r}",
            plots=not args.no_plots,
        )
    )
    telemetry_report = TelemetryReport(
        wall_seconds=report.wall_seconds,
        cache_hit_ratio=report.cache_hit_ratio,
        metrics=metrics.snapshot() if telemetry_on else None,
        trace_file=args.trace,
    )
    if args.report_json:
        payload = report.to_dict()
        payload["store"] = str(store.root)
        payload["statuses_by_format"] = statuses_by_format(result.records)
        payload["telemetry"] = telemetry_report.to_dict()
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote execution report to {args.report_json}", file=sys.stderr)
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics to {args.metrics_json}", file=sys.stderr)
    if args.figure_json:
        with open(args.figure_json, "w", encoding="utf-8") as handle:
            json.dump(
                figure_json(result.records, widths=tuple(args.widths)),
                handle,
                sort_keys=True,
                allow_nan=False,
            )
            handle.write("\n")
        print(f"wrote figure data to {args.figure_json}", file=sys.stderr)
    if args.output:
        rows = figure_csv_rows(result.records)
        with open(args.output, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {len(rows)} records to {args.output}", file=sys.stderr)
    # one-line warm/cold summary on every run (the store satellite view)
    mode = "warm" if report.executed == 0 else ("cold" if report.cached == 0 else "mixed")
    print(
        f"run {mode}: {report.cached}/{report.planned} cells cached "
        f"({100 * report.cache_hit_ratio:.0f}% hit), {report.executed} executed "
        f"({report.failed} failed) in {report.wall_seconds:.2f}s wall",
        file=sys.stderr,
    )
    # crashed worker cells no longer abort the run (sibling results are
    # kept and committed), but they must not read as success either: all
    # reports above are written, then the partial result is flagged
    failed_cells = sum(1 for r in result.records if r.status == "failed")
    if failed_cells or report.failed:
        print(
            f"ERROR: {failed_cells or report.failed} cell(s) carry crashed-worker "
            "results (status 'failed'); rerun with --rerun-failed to retry them",
            file=sys.stderr,
        )
        return 2
    return 0


def _build_suite(args):
    size_range = (args.min_size, args.max_size)
    if args.suite == "general":
        return get_suite("general", count=args.matrices, size_range=size_range, seed=args.seed)
    suite = get_suite(args.suite, scale=args.scale, size_range=size_range, seed=args.seed)
    return suite[: args.matrices]


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
