"""Experiment harness: reproduce the paper's evaluation pipeline.

The pipeline, per matrix and number format, is (Section 2.2 of the paper):

1. compute a reference solution (10 + 2 largest eigenpairs) in extended
   precision;
2. convert the matrix to the target format (recording the ∞σ dynamic-range
   failure when entries overflow/underflow);
3. run ``partialschur`` entirely in the target arithmetic with the
   bit-width-dependent tolerance (∞ω when it does not converge);
4. match the computed eigenvectors to the reference ones with the absolute
   cosine-similarity matrix and the Hungarian algorithm, fix signs using the
   largest-magnitude reference entry;
5. record the relative L2 errors of the eigenvalues and eigenvectors.

Aggregation sorts the per-matrix errors into the cumulative distributions of
Figures 1-5.
"""

from .tolerances import TOLERANCES, tolerance_for, REFERENCE_TOLERANCE
from .matching import cosine_similarity_matrix, match_eigenpairs, fix_signs
from .errors import relative_l2_error, absolute_l2_error, error_metrics
from .config import ExperimentConfig
from .runner import (
    RunRecord,
    ReferenceRecord,
    MatrixExperiment,
    run_matrix_experiment,
    run_experiment,
    ExperimentResult,
)
from .aggregate import (
    cumulative_distribution,
    aggregate_by_format,
    figure_series,
    statuses_by_format,
    FormatSummary,
)
from .figures import (
    figure_report,
    figure_csv_rows,
    figure_json,
    table1_report,
    render_figure,
)
from .store import (
    STORE_SCHEMA_VERSION,
    StoreBackend,
    LocalDirBackend,
    DictBackend,
    ResultStore,
    ExperimentPlan,
    ExecutionReport,
    default_store_root,
    matrix_fingerprint,
    task_key,
    reference_key,
    plan_experiment,
    execute_plan,
)

__all__ = [
    "TOLERANCES",
    "REFERENCE_TOLERANCE",
    "tolerance_for",
    "cosine_similarity_matrix",
    "match_eigenpairs",
    "fix_signs",
    "relative_l2_error",
    "absolute_l2_error",
    "error_metrics",
    "ExperimentConfig",
    "RunRecord",
    "ReferenceRecord",
    "MatrixExperiment",
    "run_matrix_experiment",
    "run_experiment",
    "ExperimentResult",
    "cumulative_distribution",
    "aggregate_by_format",
    "figure_series",
    "statuses_by_format",
    "FormatSummary",
    "figure_report",
    "figure_csv_rows",
    "figure_json",
    "table1_report",
    "render_figure",
    "STORE_SCHEMA_VERSION",
    "StoreBackend",
    "LocalDirBackend",
    "DictBackend",
    "ResultStore",
    "ExperimentPlan",
    "ExecutionReport",
    "default_store_root",
    "matrix_fingerprint",
    "task_key",
    "reference_key",
    "plan_experiment",
    "execute_plan",
]
