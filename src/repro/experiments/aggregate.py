"""Aggregation of run records into cumulative error distributions.

The paper's figures plot, per format, the sorted relative errors against the
run percentile ("cumulative error distribution"), with separate markers for
runs that did not converge (∞ω) and runs whose input matrix did not fit the
format's dynamic range (∞σ).  This module produces exactly those series plus
compact summary statistics used in EXPERIMENTS.md and the benchmark output.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence

import numpy as np

from .runner import RunRecord

__all__ = [
    "cumulative_distribution",
    "FormatSummary",
    "aggregate_by_format",
    "figure_series",
    "statuses_by_format",
]


def cumulative_distribution(errors: Sequence[float]) -> list[tuple[float, float]]:
    """Sorted ``(percentile, log10(error))`` pairs of the finite errors."""
    finite = sorted(e for e in errors if np.isfinite(e))
    points = []
    n = len(finite)
    for i, err in enumerate(finite):
        percentile = 100.0 * (i + 1) / n if n else 0.0
        log_err = math.log10(err) if err > 0 else -np.inf
        points.append((percentile, log_err))
    return points


@dataclasses.dataclass
class FormatSummary:
    """Summary of one format's runs on one suite."""

    format: str
    total_runs: int
    evaluated: int
    no_convergence: int
    range_exceeded: int
    reference_failed: int
    eigenvalue_percentiles: dict[int, float]
    eigenvector_percentiles: dict[int, float]
    eigenvalue_median_log10: float
    eigenvector_median_log10: float
    #: crashed worker tasks (infrastructure failures, not scientific outcomes)
    failed: int = 0

    @property
    def failure_fraction(self) -> float:
        """Fraction of runs ending in ∞ω or ∞σ.

        Crashed worker tasks (``"failed"``) and reference failures are
        excluded from the denominator: neither says anything about the
        format under test.
        """
        denom = self.total_runs - self.reference_failed - self.failed
        if denom <= 0:
            return 0.0
        return (self.no_convergence + self.range_exceeded) / denom


def _percentiles(values: Sequence[float], levels=(10, 25, 50, 75, 90)) -> dict[int, float]:
    finite = np.asarray([v for v in values if np.isfinite(v)], dtype=np.float64)
    if finite.size == 0:
        return {level: float("nan") for level in levels}
    return {level: float(np.percentile(finite, level)) for level in levels}


def _median_log10(percentiles: dict[int, float]) -> float:
    p50 = percentiles[50]
    return math.log10(p50) if np.isfinite(p50) and p50 > 0 else float("nan")


def aggregate_by_format(records: Iterable[RunRecord]) -> dict[str, FormatSummary]:
    """Group records per format and compute summary statistics."""
    by_format: dict[str, list[RunRecord]] = {}
    for record in records:
        by_format.setdefault(record.format, []).append(record)
    summaries: dict[str, FormatSummary] = {}
    for name, recs in by_format.items():
        evaluated = [r for r in recs if r.evaluated]
        ev_errors = [r.eigenvalue_relative_error for r in evaluated]
        vec_errors = [r.eigenvector_relative_error for r in evaluated]
        ev_pct = _percentiles(ev_errors)
        vec_pct = _percentiles(vec_errors)
        summaries[name] = FormatSummary(
            format=name,
            total_runs=len(recs),
            evaluated=len(evaluated),
            no_convergence=sum(1 for r in recs if r.status == "no_convergence"),
            range_exceeded=sum(1 for r in recs if r.status == "range_exceeded"),
            reference_failed=sum(1 for r in recs if r.status == "reference_failed"),
            failed=sum(1 for r in recs if r.status == "failed"),
            eigenvalue_percentiles=ev_pct,
            eigenvector_percentiles=vec_pct,
            eigenvalue_median_log10=_median_log10(ev_pct),
            eigenvector_median_log10=_median_log10(vec_pct),
        )
    return summaries


def figure_series(
    records: Iterable[RunRecord], metric: str = "eigenvalue"
) -> dict[str, list[tuple[float, float]]]:
    """Cumulative error distribution series per format for one metric.

    ``metric`` is ``"eigenvalue"`` or ``"eigenvector"``; the returned mapping
    is suitable for :func:`repro.utils.textplot.ascii_plot`.
    """
    if metric not in ("eigenvalue", "eigenvector"):
        raise ValueError("metric must be 'eigenvalue' or 'eigenvector'")
    attribute = f"{metric}_relative_error"
    by_format: dict[str, list[float]] = {}
    for record in records:
        if record.status in ("reference_failed", "failed"):
            # neither a reference failure nor a crashed worker task says
            # anything about the format: keep both out of the distributions
            continue
        by_format.setdefault(record.format, [])
        if record.evaluated:
            by_format[record.format].append(getattr(record, attribute))
    return {name: cumulative_distribution(errors) for name, errors in by_format.items()}


def statuses_by_format(records: Iterable[RunRecord]) -> dict[str, dict[str, int]]:
    """Per-format status counts, in deterministic (first-seen, sorted-status)
    order — the convergence signature the nightly store-roundtrip CI job
    compares against its checked-in reference."""
    counts: dict[str, dict[str, int]] = {}
    for record in records:
        counts.setdefault(record.format, {})
        counts[record.format][record.status] = counts[record.format].get(record.status, 0) + 1
    return {name: dict(sorted(statuses.items())) for name, statuses in counts.items()}
