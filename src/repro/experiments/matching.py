"""Eigenvector matching and sign fixing (Section 2.2 of the paper).

Krylov methods are sensitive to perturbations: in different arithmetics,
clustered eigenvalues converge in different orders, so naively comparing the
i-th computed eigenvector with the i-th reference eigenvector reports large
errors that are merely permutations.  The paper computes a small buffer of
extra eigenpairs, builds the absolute cosine-similarity matrix between
reference and computed eigenvectors, finds the best assignment with the
Hungarian algorithm, and finally fixes the sign of every matched vector using
the entry that is largest in magnitude in the reference vector.

Matching is a post-processing step and therefore runs in float64/longdouble,
not in the arithmetic under evaluation.
"""

from __future__ import annotations

import numpy as np

from ..linalg.hungarian import hungarian

__all__ = ["cosine_similarity_matrix", "match_eigenpairs", "fix_signs"]


def cosine_similarity_matrix(reference_vectors, computed_vectors) -> np.ndarray:
    """Absolute cosine similarity between reference and computed columns.

    ``C[i, j] = |<r_i, s_j>| / (||r_i|| ||s_j||)``; zero columns yield zero
    similarity instead of NaN.
    """
    R = np.asarray(reference_vectors, dtype=np.float64)
    S = np.asarray(computed_vectors, dtype=np.float64)
    inner = np.abs(R.T @ S)
    rnorm = np.linalg.norm(R, axis=0)
    snorm = np.linalg.norm(S, axis=0)
    denom = np.outer(rnorm, snorm)
    with np.errstate(invalid="ignore", divide="ignore"):
        C = np.where(denom > 0, inner / denom, 0.0)
    return C


def fix_signs(reference_vectors, computed_vectors) -> np.ndarray:
    """Align the sign of each computed column with its reference column.

    Eigenvectors are unique only up to sign.  Using the first entry as the
    sign anchor is unstable (it may be tiny); the paper instead uses the
    entry with the largest magnitude in the *reference* vector and copies its
    sign onto the computed vector.
    """
    R = np.asarray(reference_vectors, dtype=np.float64)
    S = np.array(np.asarray(computed_vectors, dtype=np.float64), copy=True)
    for j in range(min(R.shape[1], S.shape[1])):
        anchor = int(np.argmax(np.abs(R[:, j])))
        ref_sign = np.sign(R[anchor, j])
        comp_sign = np.sign(S[anchor, j])
        if ref_sign != 0 and comp_sign != 0 and ref_sign != comp_sign:
            S[:, j] = -S[:, j]
    return S


def match_eigenpairs(
    reference_values,
    reference_vectors,
    computed_values,
    computed_vectors,
    keep: int,
):
    """Match computed eigenpairs to the reference and trim to ``keep`` pairs.

    Parameters
    ----------
    reference_values, reference_vectors:
        Buffered reference eigenpairs (``keep + buffer`` of them).
    computed_values, computed_vectors:
        Buffered computed eigenpairs (possibly fewer if the run struggled).
    keep:
        Number of leading reference pairs to evaluate (the paper's
        ``eigenvalue_count``; the extra buffer pairs are dropped after
        matching).

    Returns
    -------
    (values, vectors, permutation):
        The matched & sign-fixed computed eigenvalues/eigenvectors aligned
        with the first ``keep`` reference pairs, and the permutation used
        (``permutation[i]`` is the computed column assigned to reference
        column ``i``).
    """
    ref_vals = np.asarray(reference_values, dtype=np.float64)
    ref_vecs = np.asarray(reference_vectors, dtype=np.float64)
    comp_vals = np.asarray(computed_values, dtype=np.float64)
    comp_vecs = np.asarray(computed_vectors, dtype=np.float64)

    n_ref = ref_vals.shape[0]
    n_comp = comp_vals.shape[0]
    keep = min(keep, n_ref)
    if n_comp == 0:
        raise ValueError("no computed eigenpairs to match")

    if n_comp < n_ref:
        # assign each computed pair a reference pair, then invert the partial
        # assignment; unmatched reference positions fall back to identity
        similarity = cosine_similarity_matrix(comp_vecs, ref_vecs)
        assignment, _ = hungarian(-similarity)
        permutation = np.full(n_ref, -1, dtype=np.int64)
        for comp_idx, ref_idx in enumerate(assignment):
            permutation[ref_idx] = comp_idx
        unmatched_refs = [i for i in range(n_ref) if permutation[i] < 0]
        unused_comps = [j for j in range(n_comp) if j not in set(assignment)]
        for ref_idx, comp_idx in zip(unmatched_refs, unused_comps):
            permutation[ref_idx] = comp_idx
        permutation = np.where(permutation < 0, 0, permutation)
    else:
        similarity = cosine_similarity_matrix(ref_vecs, comp_vecs)
        permutation, _ = hungarian(-similarity)

    matched_vals = comp_vals[permutation[:keep]]
    matched_vecs = comp_vecs[:, permutation[:keep]]
    matched_vecs = fix_signs(ref_vecs[:, :keep], matched_vecs)
    return matched_vals, matched_vecs, permutation[:keep]
