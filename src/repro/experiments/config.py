"""Experiment configuration shared by the runner, benchmarks and examples."""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from ..arithmetic.context import ContextSpec

__all__ = ["ExperimentConfig"]


@dataclasses.dataclass
class ExperimentConfig:
    """Parameters of the eigenvalue experiments.

    Defaults mirror the paper: the 10 largest eigenvalues plus 2 buffer
    pairs, bit-width-dependent tolerances (see
    :mod:`repro.experiments.tolerances`), extended-precision reference.

    Attributes
    ----------
    eigenvalue_count:
        Number of eigenpairs whose error is evaluated (paper: 10).
    eigenvalue_buffer_count:
        Extra pairs computed everywhere to absorb permutations of clustered
        eigenvalues before matching (paper: 2).
    which:
        Ordering rule, ``"LM"`` for the largest eigenvalues.
    restarts:
        Maximum number of Krylov-Schur restarts per solve.
    maxdim:
        Maximum Krylov dimension (``None`` = solver default).
    seed:
        Seed of the solver's starting vector.
    eps_floor:
        Whether the solver applies the ``eps^(2/3)`` tolerance floor of the
        working format (see :func:`repro.core.krylov_schur.effective_tolerance`).
    accumulation:
        Accumulation order of the emulated kernels (``"pairwise"`` or
        ``"sequential"``); exposed for the accumulation-order ablation.
    use_tables:
        Lookup-table rounding-backend override forwarded to the contexts
        (``None`` = automatic; ``False`` forces the analytic kernels for
        verification runs).
    count_ops:
        Whether solver contexts tally rounded elementary operations.
    reference_tolerance:
        Convergence tolerance of the reference solve.
    """

    eigenvalue_count: int = 10
    eigenvalue_buffer_count: int = 2
    which: str = "LM"
    restarts: int = 60
    maxdim: int | None = None
    seed: int = 0
    eps_floor: bool = True
    accumulation: str = "pairwise"
    use_tables: Optional[bool] = None
    count_ops: bool = True
    reference_tolerance: float = 1e-18

    @property
    def nev_total(self) -> int:
        """Eigenpairs requested from every solve (count + buffer)."""
        return self.eigenvalue_count + self.eigenvalue_buffer_count

    def context_spec(self, format_name: str) -> ContextSpec:
        """The :class:`~repro.arithmetic.ContextSpec` for one format under
        this configuration (what the runner hands to ``get_context``)."""
        return ContextSpec(
            format=format_name,
            accumulation=self.accumulation,
            use_tables=self.use_tables,
            count_ops=self.count_ops,
        )

    def canonical_dict(self) -> dict:
        """Stable, JSON-serialisable view of every field, for cache keys.

        The experiment store hashes this dict (sorted keys, canonical JSON)
        into each task's cache key, so *any* field change — solver budget,
        accumulation order, rounding backend, tolerance — moves the task to
        a fresh key and invalidates the cached result.  Field order is
        irrelevant; only names and values enter the hash.
        """
        raw = dataclasses.asdict(self)
        return {name: raw[name] for name in sorted(raw)}

    @classmethod
    def from_environment(cls, **overrides) -> "ExperimentConfig":
        """Build a config honouring ``REPRO_*`` environment overrides.

        ``REPRO_RESTARTS`` and ``REPRO_MAXDIM`` bound the solver effort; they
        are read by the benchmark harness so CI machines can trade fidelity
        for wall-clock time.
        """
        cfg = cls(**overrides)
        restarts = os.environ.get("REPRO_RESTARTS")
        if restarts:
            cfg.restarts = int(restarts)
        maxdim = os.environ.get("REPRO_MAXDIM")
        if maxdim:
            cfg.maxdim = int(maxdim)
        return cfg
