"""Figure and table emitters: regenerate the paper's tables/figures as text.

Each of the paper's figures (1-5) is one suite evaluated at four bit widths,
with a left panel (eigenvalue relative errors) and a right panel (eigenvector
relative errors).  :func:`figure_report` renders the equivalent information
as percentile tables plus ASCII cumulative-distribution plots;
:func:`figure_csv_rows` exposes the same data in machine-readable rows.
:func:`table1_report` reproduces Table 1 (graph category → class counts).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..arithmetic.registry import PAPER_FORMATS
from ..datasets.graphs import category_counts, table1_counts
from ..datasets.testmatrix import CATEGORY_TO_CLASS, CLASS_NAMES
from ..utils.textplot import ascii_plot, format_table
from .aggregate import aggregate_by_format, figure_series
from .runner import RunRecord

__all__ = [
    "figure_report",
    "render_figure",
    "figure_csv_rows",
    "figure_json",
    "table1_report",
]


def _records_for_width(records: Iterable[RunRecord], width: int) -> list[RunRecord]:
    names = set(PAPER_FORMATS[width])
    return [r for r in records if r.format in names]


def render_figure(records: Sequence[RunRecord], metric: str, title: str) -> str:
    """ASCII cumulative-distribution plot for one panel."""
    series = figure_series(records, metric=metric)
    series = {name: pts for name, pts in series.items() if pts}
    if not series:
        return f"{title}\n(no evaluated runs)\n"
    return f"{title}\n" + ascii_plot(series)


def figure_report(
    records: Sequence[RunRecord],
    widths: Sequence[int] = (8, 16, 32, 64),
    title: str = "",
    plots: bool = True,
) -> str:
    """Render one paper figure (all bit-width panels) as text.

    For every bit width the report contains a summary table (number of runs,
    ∞ω / ∞σ counts, log10 relative-error percentiles for eigenvalues and
    eigenvectors) and, optionally, ASCII cumulative-distribution plots that
    correspond to the left/right columns of the paper's figures.
    """
    sections = [title] if title else []
    for width in widths:
        width_records = _records_for_width(records, width)
        if not width_records:
            continue
        summaries = aggregate_by_format(width_records)
        rows = []
        for name in PAPER_FORMATS[width]:
            if name not in summaries:
                continue
            s = summaries[name]
            rows.append(
                [
                    name,
                    s.total_runs,
                    s.evaluated,
                    s.no_convergence,
                    s.range_exceeded,
                    s.failed,
                    _fmt_log(s.eigenvalue_percentiles[25]),
                    _fmt_log(s.eigenvalue_percentiles[50]),
                    _fmt_log(s.eigenvalue_percentiles[75]),
                    _fmt_log(s.eigenvector_percentiles[50]),
                ]
            )
        sections.append(
            format_table(
                [
                    "format",
                    "runs",
                    "ok",
                    "inf_omega",
                    "inf_sigma",
                    "failed",
                    "lam p25",
                    "lam p50",
                    "lam p75",
                    "vec p50",
                ],
                rows,
                title=f"--- {width}-bit formats (log10 relative errors) ---",
            )
        )
        if plots:
            sections.append(
                render_figure(width_records, "eigenvalue", f"{width}-bit eigenvalue errors")
            )
            sections.append(
                render_figure(width_records, "eigenvector", f"{width}-bit eigenvector errors")
            )
    return "\n".join(sections)


def _fmt_log(value: float) -> str:
    import math

    if value is None or not math.isfinite(value) or value <= 0:
        return "n/a"
    return f"{math.log10(value):+.2f}"


def figure_csv_rows(records: Sequence[RunRecord]) -> list[dict]:
    """Machine-readable rows (one per run) for CSV/JSON export."""
    rows = []
    for r in records:
        rows.append(
            {
                "matrix": r.matrix,
                "group": r.group,
                "category": r.category,
                "format": r.format,
                "status": r.status,
                "eigenvalue_relative_error": r.eigenvalue_relative_error,
                "eigenvector_relative_error": r.eigenvector_relative_error,
                "restarts": r.restarts,
                "matvecs": r.matvecs,
            }
        )
    return rows


def _finite_or_none(value: float):
    """Non-finite floats become ``None`` so the export is strict RFC JSON
    (``json.dumps`` would otherwise emit bare ``NaN``/``Infinity`` tokens
    that ``jq``/JavaScript cannot parse)."""
    import math

    return value if value is not None and math.isfinite(value) else None


def figure_json(records: Sequence[RunRecord], widths: Sequence[int] = (8, 16, 32, 64)) -> dict:
    """Aggregated figure data as a deterministic JSON-serialisable dict.

    The same information as :func:`figure_report` — per-width, per-format
    status counts, error percentiles and the cumulative-distribution series
    of both panels — but machine-readable and with a stable layout: records
    assembled in suite × formats order (as the store engine guarantees)
    yield byte-identical ``json.dumps(..., sort_keys=True)`` output, whether
    the runs were computed or served from the experiment store.  The nightly
    CI store-roundtrip job relies on exactly that property.  Non-finite
    values (percentiles of formats with no evaluated runs, ``log10`` of an
    exact-zero error) are exported as ``null`` to stay valid strict JSON.
    """
    data: dict = {"widths": {}}
    for width in widths:
        width_records = _records_for_width(records, width)
        if not width_records:
            continue
        summaries = aggregate_by_format(width_records)
        formats: dict = {}
        for name in PAPER_FORMATS[width]:
            if name not in summaries:
                continue
            s = summaries[name]
            formats[name] = {
                "runs": s.total_runs,
                "ok": s.evaluated,
                "no_convergence": s.no_convergence,
                "range_exceeded": s.range_exceeded,
                "reference_failed": s.reference_failed,
                "failed": s.failed,
                "eigenvalue_percentiles": {
                    str(k): _finite_or_none(v) for k, v in s.eigenvalue_percentiles.items()
                },
                "eigenvector_percentiles": {
                    str(k): _finite_or_none(v) for k, v in s.eigenvector_percentiles.items()
                },
            }
        data["widths"][str(width)] = {
            "formats": formats,
            "eigenvalue_series": {
                name: [[p, _finite_or_none(e)] for p, e in points]
                for name, points in figure_series(width_records, "eigenvalue").items()
            },
            "eigenvector_series": {
                name: [[p, _finite_or_none(e)] for p, e in points]
                for name, points in figure_series(width_records, "eigenvector").items()
            },
        }
    return data


def table1_report(scale: float | None = None) -> str:
    """Reproduce Table 1: graph categories, classes and their counts.

    With ``scale=None`` the report shows the paper's counts; with a scale the
    synthetic suite's (scaled) counts are shown next to them.
    """
    full = table1_counts()
    scaled = category_counts(scale) if scale is not None else None
    rows = []
    for cls in CLASS_NAMES:
        class_total = sum(c for cat, c in full.items() if CATEGORY_TO_CLASS[cat] == cls)
        first = True
        for category, count in full.items():
            if CATEGORY_TO_CLASS[category] != cls:
                continue
            row = [cls if first else "", class_total if first else "", category, count]
            if scaled is not None:
                row.append(scaled[category])
            rows.append(row)
            first = False
    headers = ["class", "class size", "graph category", "category size"]
    if scaled is not None:
        headers.append(f"synthetic (scale={scale})")
    return format_table(headers, rows, title="Table 1: graph classification")
