"""Error metrics of the evaluation (Section 2.2 of the paper).

After matching, the paper quantifies a run with the L2 norm of the difference
between reference and computed quantities: the *absolute* error is
``||ref - computed||_2`` and the *relative* error divides by ``||ref||_2``.
The same metric is applied to the vector of eigenvalues and to the matrix of
eigenvectors (Frobenius/L2 over all retained columns).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["absolute_l2_error", "relative_l2_error", "error_metrics", "ErrorMetrics"]


def absolute_l2_error(reference, computed) -> float:
    """``||reference - computed||_2`` over all entries."""
    ref = np.asarray(reference, dtype=np.longdouble)
    comp = np.asarray(computed, dtype=np.longdouble)
    return float(np.sqrt(np.sum((ref - comp) ** 2)))


def relative_l2_error(reference, computed) -> float:
    """``||reference - computed||_2 / ||reference||_2``.

    A zero reference norm returns the absolute error (and 0 when both are
    zero), so the metric is always defined.
    """
    ref = np.asarray(reference, dtype=np.longdouble)
    denom = float(np.sqrt(np.sum(ref**2)))
    abs_err = absolute_l2_error(reference, computed)
    if denom == 0.0:
        return abs_err
    return abs_err / denom


@dataclasses.dataclass
class ErrorMetrics:
    """Absolute and relative errors of one run (eigenvalues and eigenvectors)."""

    eigenvalue_absolute: float
    eigenvalue_relative: float
    eigenvector_absolute: float
    eigenvector_relative: float

    @property
    def finite(self) -> bool:
        """Whether all recorded errors are finite."""
        return all(
            np.isfinite(v)
            for v in (
                self.eigenvalue_absolute,
                self.eigenvalue_relative,
                self.eigenvector_absolute,
                self.eigenvector_relative,
            )
        )


def error_metrics(ref_values, ref_vectors, values, vectors) -> ErrorMetrics:
    """Compute the paper's error metrics for one matched run."""
    return ErrorMetrics(
        eigenvalue_absolute=absolute_l2_error(ref_values, values),
        eigenvalue_relative=relative_l2_error(ref_values, values),
        eigenvector_absolute=absolute_l2_error(ref_vectors, vectors),
        eigenvector_relative=relative_l2_error(ref_vectors, vectors),
    )
