"""Content-addressed experiment store and the resumable execution engine.

The experiment layer used to be fire-and-forget: every invocation recomputed
every (matrix, format) cell from scratch, and one crashed worker aborted the
whole suite.  This module replaces that with

* a :class:`ResultStore` — an on-disk, content-addressed JSON store where
  every finished (matrix, format) cell lives under a stable SHA-256 cache
  key and is committed with an atomic write-rename (a killed run loses at
  most its in-flight tasks, never a finished cell);
* a plan/execute engine — :func:`plan_experiment` subtracts cached cells
  from the requested suite × formats grid and groups the remainder into
  per-matrix shards (so the extended-precision reference solve is amortised
  over all missing formats of a matrix); :func:`execute_plan` runs the
  shards through the work-stealing ``parallel_map``, commits each record the
  moment it lands in the parent and materialises crashed shards as
  ``"failed"`` records carrying the worker traceback.

Cache keys (see :func:`task_key`) cover the full canonicalised
:class:`~repro.experiments.config.ExperimentConfig`, the derived
:class:`~repro.arithmetic.ContextSpec`, the format name, a content hash of
the matrix (values, sparsity pattern, metadata) and the store schema
version — any change to any of them moves the task to a fresh key, so stale
results are never served.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import os
import pathlib
import threading
import time
import uuid
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..datasets.testmatrix import TestMatrix
from ..telemetry import core as _telemetry
from ..telemetry import trace as _trace
from ..telemetry.metrics import metrics as _metrics
from ..utils.parallel import TaskOutcome, parallel_map
from .config import ExperimentConfig
from .runner import (
    ExperimentResult,
    MatrixExperiment,
    ReferenceRecord,
    RunRecord,
    run_matrix_experiment,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "default_store_root",
    "matrix_fingerprint",
    "task_key",
    "reference_key",
    "StoreBackend",
    "LocalDirBackend",
    "DictBackend",
    "ResultStore",
    "ExperimentPlan",
    "ExecutionReport",
    "plan_experiment",
    "execute_plan",
]

#: Version of the on-disk payload schema.  The version participates in every
#: cache key, so bumping it orphans all existing entries at once (they stop
#: being addressable) — ``ResultStore.gc`` reclaims the disk space.
STORE_SCHEMA_VERSION = 1

#: pseudo-format name under which the per-matrix reference solve is keyed
_REFERENCE_KIND = "::reference::"


def default_store_root() -> pathlib.Path:
    """Store directory honouring ``$REPRO_STORE`` and ``$XDG_CACHE_HOME``.

    Resolution order: ``$REPRO_STORE`` (explicit override), then
    ``$XDG_CACHE_HOME/repro-store``, then ``~/.cache/repro-store``.
    """
    env = os.environ.get("REPRO_STORE", "").strip()
    if env:
        return pathlib.Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = pathlib.Path(cache_home).expanduser() if cache_home else pathlib.Path.home() / ".cache"
    return base / "repro-store"


def _canonical_json(payload) -> str:
    """Canonical JSON used inside cache-key hashes (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def matrix_fingerprint(test_matrix: TestMatrix) -> str:
    """SHA-256 content hash of a test matrix (values, pattern, metadata).

    Hashing the actual CSR payload instead of the generator's parameters
    means the key also covers generator *drift*: if a dataset generator
    changes what it emits for the same parameters, the fingerprint — and
    with it every dependent cache key — changes too.  Arrays are normalised
    to little-endian fixed-width dtypes so the fingerprint is
    platform-independent.
    """
    m = test_matrix.matrix
    h = hashlib.sha256()
    header = _canonical_json(
        {
            "name": test_matrix.name,
            "group": test_matrix.group,
            "category": test_matrix.category,
            "shape": list(m.shape),
        }
    )
    h.update(header.encode("utf-8"))
    h.update(np.ascontiguousarray(m.data, dtype="<f8").tobytes())
    h.update(np.ascontiguousarray(m.indices, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(m.indptr, dtype="<i8").tobytes())
    return h.hexdigest()


def _key(config: ExperimentConfig, format_name: str, fingerprint: str) -> str:
    spec = config.context_spec("reference" if format_name == _REFERENCE_KIND else format_name)
    payload = {
        "schema": STORE_SCHEMA_VERSION,
        "config": config.canonical_dict(),
        "context": dataclasses.asdict(spec),
        "format": format_name,
        "matrix": fingerprint,
    }
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def task_key(config: ExperimentConfig, format_name: str, fingerprint: str) -> str:
    """Cache key of one (matrix, format) cell.

    SHA-256 over the canonical JSON of: store schema version, the full
    canonicalised config (:meth:`ExperimentConfig.canonical_dict`), the
    derived :class:`~repro.arithmetic.ContextSpec`, the format name and the
    matrix content fingerprint.
    """
    return _key(config, format_name, fingerprint)


def reference_key(config: ExperimentConfig, fingerprint: str) -> str:
    """Cache key of the per-matrix extended-precision reference record."""
    return _key(config, _REFERENCE_KIND, fingerprint)


# ---------------------------------------------------------------------------
# record (de)serialisation


def run_record_to_payload(record: RunRecord, key: str) -> dict:
    """Store payload (JSON-serialisable) for one run record."""
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "kind": "run",
        "key": key,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "record": dataclasses.asdict(record),
    }


def run_record_from_payload(payload: dict) -> RunRecord:
    """Inverse of :func:`run_record_to_payload` (tolerates extra fields)."""
    body = payload["record"]
    names = {f.name for f in dataclasses.fields(RunRecord)}
    return RunRecord(**{k: v for k, v in body.items() if k in names})


def reference_to_payload(record: ReferenceRecord, key: str) -> dict:
    """Store payload for one reference record (eigenvalues as a float list)."""
    body = dataclasses.asdict(record)
    body["eigenvalues"] = [float(v) for v in np.asarray(record.eigenvalues, dtype=np.float64)]
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "kind": "reference",
        "key": key,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "record": body,
    }


def reference_from_payload(payload: dict) -> ReferenceRecord:
    """Inverse of :func:`reference_to_payload`."""
    body = dict(payload["record"])
    body["eigenvalues"] = np.asarray(body.get("eigenvalues", []), dtype=np.float64)
    names = {f.name for f in dataclasses.fields(ReferenceRecord)}
    return ReferenceRecord(**{k: v for k, v in body.items() if k in names})


# ---------------------------------------------------------------------------
# pluggable storage backends


class StoreBackend(abc.ABC):
    """Storage layer under :class:`ResultStore`: a key → JSON-payload map.

    Keys are SHA-256 content addresses derived by the engine, so a backend
    never needs to understand them — any layout that maps a hex string to a
    JSON document works (a local directory today, an S3-style object bucket
    tomorrow), and many service replicas can share one backend as a common
    cache tier.  The contract is deliberately small:

    * :meth:`get` returns the committed payload or ``None`` — unreadable or
      corrupt entries read as ``None`` (the caller recomputes and the commit
      overwrites the bad entry) instead of raising;
    * :meth:`put` commits atomically — a reader, or a concurrent writer of
      the same key, only ever observes a complete payload (last writer
      wins);
    * :meth:`contains` / :meth:`keys` / :meth:`delete` support planning and
      maintenance.

    ``sweep_staging`` exists for backends with a staging area (the local
    directory layout); the default is a no-op.
    """

    @abc.abstractmethod
    def get(self, key: str) -> Optional[dict]:
        """The committed payload under ``key``, or ``None`` (missing/corrupt)."""

    @abc.abstractmethod
    def put(self, key: str, payload: dict) -> None:
        """Atomically commit ``payload`` under ``key``."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether a committed entry exists under ``key``."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """All committed keys (no particular order guaranteed)."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove the entry under ``key``; returns whether one was removed."""

    def entry_nbytes(self, key: str) -> int:
        """Approximate stored size of one entry (0 when unknown)."""
        payload = self.get(key)
        return len(_canonical_json(payload)) if payload is not None else 0

    def sweep_staging(self, max_age_seconds: float) -> int:
        """Remove staging leftovers older than ``max_age_seconds``.

        Backends without a staging area (everything except the local
        directory layout) have nothing to sweep."""
        return 0

    @property
    def location(self) -> str:
        """Human-readable description of where the entries live."""
        return f"<{type(self).__name__}>"


class LocalDirBackend(StoreBackend):
    """The historical on-disk layout: one JSON file per key under ``root``.

    Layout::

        objects/<key[:2]>/<key>.json   one committed record per file
        tmp/                           staging area for atomic commits

    Commits write to ``tmp/`` and ``os.replace`` into place, so a reader (or
    a concurrent writer of the same key) only ever observes a complete file;
    interrupted runs leave at most orphaned ``tmp/`` files, which
    :meth:`sweep_staging` reclaims.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root).expanduser()

    @property
    def _objects(self) -> pathlib.Path:
        return self.root / "objects"

    @property
    def _tmp(self) -> pathlib.Path:
        return self.root / "tmp"

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of one key (two-level fan-out by key prefix)."""
        return self._objects / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: dict) -> None:
        # the payload is fully written and flushed to a unique staging file,
        # then renamed over the destination; ``os.replace`` is atomic on
        # POSIX and Windows, so concurrent writers of the same key are safe
        # and a crash mid-commit leaves the previous state intact
        destination = self.path_for(key)
        destination.parent.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)
        staging = self._tmp / f"{key}.{os.getpid()}.{uuid.uuid4().hex}.json"
        with open(staging, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, destination)

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        if not self._objects.is_dir():
            return
        for path in sorted(self._objects.glob("*/*.json")):
            yield path.stem

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def entry_nbytes(self, key: str) -> int:
        try:
            return self.path_for(key).stat().st_size
        except OSError:
            return 0

    def sweep_staging(self, max_age_seconds: float) -> int:
        if not self._tmp.is_dir():
            return 0
        removed = 0
        now = time.time()
        for path in self._tmp.iterdir():
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # already gone (concurrent commit finished)
            if age >= max_age_seconds:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    @property
    def location(self) -> str:
        return str(self.root)


class DictBackend(StoreBackend):
    """In-memory backend: a thread-safe dict of serialised payloads.

    Payloads are stored as their JSON text (the same bytes
    :class:`LocalDirBackend` would write), so entries are isolated from
    caller-side mutation and ``get`` returns exactly what a disk round-trip
    would.  Used by the serve unit tests (fast, no tmpdir churn) and handy
    as a scratch cache for in-process experiments.
    """

    def __init__(self):
        self._entries: dict[str, str] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            text = self._entries.get(key)
        return json.loads(text) if text is not None else None

    def put(self, key: str, payload: dict) -> None:
        text = json.dumps(payload)
        with self._lock:
            self._entries[key] = text

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[str]:
        with self._lock:
            snapshot = list(self._entries)
        yield from snapshot

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def entry_nbytes(self, key: str) -> int:
        with self._lock:
            text = self._entries.get(key)
        return len(text) if text is not None else 0

    @property
    def location(self) -> str:
        return f"<memory:{id(self):#x}>"


# ---------------------------------------------------------------------------
# the store facade


class ResultStore:
    """Content-addressed store of experiment records over a pluggable backend.

    ``ResultStore(root)`` keeps the historical on-disk behaviour
    (:class:`LocalDirBackend`); ``ResultStore(backend=...)`` mounts any
    :class:`StoreBackend`.  Keys are self-certifying — the engine only looks
    up keys it derived itself, so a store can be shared between branches,
    machines and configurations without collisions, and many serve replicas
    can mount the same backend as a common cache tier.

    The facade owns the cross-backend concerns: telemetry (hit/miss/put
    counters), schema-version hygiene (:meth:`gc`, :meth:`entries`,
    :meth:`stats`) and the aggregate views the CLI renders.
    """

    def __init__(
        self, root: str | os.PathLike | None = None, backend: Optional[StoreBackend] = None
    ):
        if backend is None:
            if root is None:
                raise ValueError("ResultStore needs a root directory or an explicit backend")
            backend = LocalDirBackend(root)
        elif root is not None:
            raise ValueError("pass either a root directory or a backend, not both")
        self.backend = backend
        #: root path of the local-dir layout (``None`` for other backends)
        self.root = getattr(backend, "root", None)

    @classmethod
    def from_environment(cls, root: Optional[str] = None) -> "ResultStore":
        """Store at ``root`` if given, else :func:`default_store_root`."""
        return cls(pathlib.Path(root).expanduser() if root else default_store_root())

    # -- local-dir conveniences (delegated; raise for other backends) ------

    @property
    def _objects(self) -> pathlib.Path:
        return self.backend._objects

    @property
    def _tmp(self) -> pathlib.Path:
        return self.backend._tmp

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of one key (local-dir backend only)."""
        return self.backend.path_for(key)

    # -- primitives -------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The committed payload under ``key``, or ``None``.

        Unreadable/corrupt entries read as misses (the cell recomputes and
        the commit overwrites the bad entry) instead of failing the run.
        """
        payload = self.backend.get(key)
        if payload is None:
            if _telemetry.ENABLED:
                _metrics.counter("store.get.miss").inc()
            return None
        if _telemetry.ENABLED:
            _metrics.counter("store.get.hit", kind=payload.get("kind", "unknown")).inc()
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically commit ``payload`` under ``key``."""
        self.backend.put(key, payload)
        if _telemetry.ENABLED:
            _metrics.counter("store.put", kind=payload.get("kind", "unknown")).inc()

    def __contains__(self, key: str) -> bool:
        return self.backend.contains(key)

    # -- maintenance ------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All committed keys (no particular order)."""
        return self.backend.keys()

    def entries(self, include_foreign: bool = False) -> Iterator[dict]:
        """All committed payloads readable under the current schema.

        Corrupt entries are skipped, and so are entries written under a
        *different* ``STORE_SCHEMA_VERSION`` (their record layout is
        unknowable here — a rolling-upgrade replica sharing the cache dir
        with a newer writer must not crash on them).  Pass
        ``include_foreign=True`` to yield them anyway.
        """
        for key in self.backend.keys():
            payload = self.backend.get(key)
            if payload is None:
                continue
            if not include_foreign and payload.get("schema_version") != STORE_SCHEMA_VERSION:
                continue
            yield payload

    #: staging files younger than this are presumed to belong to a live
    #: writer and are left alone by ``gc`` (commits take milliseconds, so
    #: anything this old is an orphan of a killed run)
    STAGING_GRACE_SECONDS = 3600.0

    def gc(self) -> int:
        """Remove old-schema / corrupt entries and staging leftovers.

        Entries whose recorded ``schema_version`` is *older* than
        :data:`STORE_SCHEMA_VERSION` (or unreadable) are unreachable from
        this process (the version is part of every key) and only cost disk.
        Entries with a *newer* version are kept: on a cache dir shared
        across a rolling upgrade they belong to a newer replica, and this
        process must neither crash on them nor destroy them.  Staging files
        are only swept once older than :data:`STAGING_GRACE_SECONDS`, so
        ``gc`` is safe to run while an experiment is committing.  Returns
        the number of entries removed.
        """
        removed = 0
        for key in list(self.backend.keys()):
            payload = self.backend.get(key)
            if payload is None:
                stale = True  # corrupt: can never be read
            else:
                version = payload.get("schema_version")
                stale = not isinstance(version, int) or version < STORE_SCHEMA_VERSION
            if stale and self.backend.delete(key):
                removed += 1
        removed += self.backend.sweep_staging(self.STAGING_GRACE_SECONDS)
        return removed

    def clear(self) -> int:
        """Remove every entry (and staging leftovers); returns the count.

        Unlike :meth:`gc` this is deliberately destructive: it also sweeps
        live staging files, so an experiment committing concurrently will
        fail its in-flight commit."""
        removed = 0
        for key in list(self.backend.keys()):
            if self.backend.delete(key):
                removed += 1
        removed += self.backend.sweep_staging(0.0)
        return removed

    def stats(self) -> dict:
        """Aggregate view for ``repro store ls``: counts, bytes, statuses.

        Entries written under a different ``STORE_SCHEMA_VERSION`` are
        counted under ``foreign_schema`` and excluded from the per-kind /
        per-status tallies (their record layout is unknowable here), so a
        rolling-upgrade replica can inspect a shared cache dir without
        raising.
        """
        entries = 0
        size = 0
        foreign = 0
        kinds: dict[str, int] = {}
        statuses: dict[str, int] = {}
        formats: dict[str, int] = {}
        for key in self.backend.keys():
            entries += 1
            size += self.backend.entry_nbytes(key)
            payload = self.backend.get(key)
            if payload is None:
                kinds["corrupt"] = kinds.get("corrupt", 0) + 1
                continue
            if payload.get("schema_version") != STORE_SCHEMA_VERSION:
                foreign += 1
                continue
            kind = payload.get("kind", "unknown")
            kinds[kind] = kinds.get(kind, 0) + 1
            record = payload.get("record", {})
            if kind == "run":
                statuses[record.get("status", "?")] = statuses.get(record.get("status", "?"), 0) + 1
                formats[record.get("format", "?")] = formats.get(record.get("format", "?"), 0) + 1
        return {
            "root": self.backend.location,
            "entries": entries,
            "bytes": size,
            "foreign_schema": foreign,
            "kinds": kinds,
            "run_statuses": statuses,
            "run_formats": formats,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<ResultStore {self.backend.location!r}>"


# ---------------------------------------------------------------------------
# plan / execute engine


@dataclasses.dataclass
class _ShardTask:
    """Picklable work item: one matrix with its not-yet-cached formats.

    ``formats`` may be empty — that shard exists only to regenerate a
    missing reference record (cells all cached, reference gc'd away).
    With ``batch_formats`` the shard's formats are solved as one lockstep
    batch instead of sequentially — the shard is already the natural
    batching unit, since it groups all missing cells of one matrix.
    """

    test_matrix: TestMatrix
    formats: tuple[str, ...]
    config: ExperimentConfig
    fingerprint: str
    batch_formats: bool = False


def _run_shard(task: _ShardTask) -> MatrixExperiment:
    return run_matrix_experiment(
        task.test_matrix, task.formats, task.config, batch_formats=task.batch_formats
    )


@dataclasses.dataclass
class ExecutionReport:
    """How a planned suite × formats grid was actually served.

    ``planned`` counts every requested (matrix, format) cell; ``cached``
    the cells served from the store without executing a solver; ``executed``
    the cells attempted this run; ``failed`` the executed cells whose worker
    crashed, plus one per crashed reference-only shard (a shard with no
    cells that only regenerates a missing reference record).
    ``planned == cached + executed`` always holds on completion — a warm
    rerun is exactly ``executed == 0``.

    ``wall_seconds`` is the end-to-end wall time of :func:`execute_plan`
    (shard execution plus result assembly); ``shard_seconds`` maps each
    executed shard's matrix name to the wall time its worker spent on it
    (crashed shards included — the time until the crash).
    """

    planned: int = 0
    cached: int = 0
    executed: int = 0
    failed: int = 0
    shards: int = 0
    wall_seconds: float = 0.0
    shard_seconds: dict = dataclasses.field(default_factory=dict)

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of planned cells served from the store (1.0 when the
        plan was empty — nothing requested means nothing missed)."""
        return self.cached / self.planned if self.planned else 1.0

    def to_dict(self) -> dict:
        """Plain-dict view (CLI ``--report-json``)."""
        body = dataclasses.asdict(self)
        body["cache_hit_ratio"] = self.cache_hit_ratio
        return body


@dataclasses.dataclass
class ExperimentPlan:
    """Output of :func:`plan_experiment`: cached cells plus missing shards."""

    suite: list[TestMatrix]
    formats: list[str]
    config: ExperimentConfig
    store: Optional[ResultStore]
    fingerprints: list[str]
    tasks: list[_ShardTask]
    cached_records: dict[tuple[str, str], RunRecord]
    cached_references: dict[str, ReferenceRecord]

    @property
    def planned_cells(self) -> int:
        return len(self.suite) * len(self.formats)

    @property
    def missing_cells(self) -> int:
        return sum(len(task.formats) for task in self.tasks)


def plan_experiment(
    suite: Iterable[TestMatrix],
    formats: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    rerun_failed: bool = False,
    batch_formats: bool = False,
) -> ExperimentPlan:
    """Subtract cached cells from the suite × formats grid.

    For every matrix the cached (matrix, format) records and the cached
    reference record are loaded; whatever remains missing becomes one
    per-matrix :class:`_ShardTask` (the reference solve is shared by all
    missing formats of a matrix).  With ``use_cache=False`` nothing is
    loaded and everything executes; with ``rerun_failed=True`` cached
    ``"failed"`` cells (crashed workers) count as missing.  With
    ``batch_formats=True`` each shard's missing formats are marked for one
    lockstep batched solve; cache keys are unaffected (the batched engine
    is bit-identical per cell), so batched and sequential runs interleave
    freely over one store.
    """
    config = config or ExperimentConfig()
    suite = list(suite)
    formats = list(formats)
    fingerprints = [matrix_fingerprint(tm) for tm in suite]
    tasks: list[_ShardTask] = []
    cached_records: dict[tuple[str, str], RunRecord] = {}
    cached_references: dict[str, ReferenceRecord] = {}

    for tm, fingerprint in zip(suite, fingerprints):
        cached_ref = None
        if store is not None and use_cache:
            payload = store.get(reference_key(config, fingerprint))
            if payload is not None:
                cached_ref = reference_from_payload(payload)
        if cached_ref is not None:
            cached_references[fingerprint] = cached_ref

        missing: list[str] = []
        useful_cached = False
        for name in formats:
            record = None
            if store is not None and use_cache:
                payload = store.get(task_key(config, name, fingerprint))
                if payload is not None:
                    record = run_record_from_payload(payload)
            if record is None or (rerun_failed and record.status == "failed"):
                missing.append(name)
            else:
                cached_records[(fingerprint, name)] = record
                if record.status != "failed":
                    useful_cached = True
        # a reference-only shard (empty formats) regenerates a reference
        # record that went missing (gc, partial copy) — but only when the
        # matrix has scientifically useful cached cells; an all-"failed"
        # matrix gets a placeholder reference instead of a wasted solve
        need_reference_only = (
            not missing and cached_ref is None and useful_cached and store is not None and use_cache
        )
        if missing or need_reference_only:
            tasks.append(
                _ShardTask(tm, tuple(missing), config, fingerprint, batch_formats)
            )

    return ExperimentPlan(
        suite=suite,
        formats=formats,
        config=config,
        store=store,
        fingerprints=fingerprints,
        tasks=tasks,
        cached_records=cached_records,
        cached_references=cached_references,
    )


def execute_plan(
    plan: ExperimentPlan,
    workers: int = 1,
    progress: Optional[Callable[[TaskOutcome, ExecutionReport], None]] = None,
) -> ExperimentResult:
    """Execute a plan's missing shards and assemble the full result.

    Shards run through the work-stealing ``parallel_map``; every record is
    committed to the store *in the parent* the moment its shard completes,
    so an interrupt (Ctrl-C, SIGKILL, OOM) loses only in-flight shards and
    the next invocation resumes from the committed cells.  A shard whose
    worker raised is materialised as ``"failed"`` records carrying the
    worker traceback — sibling shards are unaffected.

    The assembled :class:`~repro.experiments.runner.ExperimentResult` lists
    records in deterministic suite × formats order regardless of completion
    order, so a warm rerun reproduces byte-identical reports and exports.
    """
    store = plan.store
    config = plan.config
    report = ExecutionReport(
        planned=plan.planned_cells,
        cached=len(plan.cached_records),
        shards=len(plan.tasks),
    )
    fresh_records: dict[tuple[str, str], RunRecord] = {}
    fresh_references: dict[str, ReferenceRecord] = {}

    def commit(outcome: TaskOutcome) -> None:
        task = plan.tasks[outcome.index]
        fingerprint = task.fingerprint
        report.shard_seconds[task.test_matrix.name] = outcome.seconds
        if _telemetry.ENABLED:
            _metrics.histogram("executor.shard_seconds").observe(outcome.seconds)
        if outcome.ok:
            experiment: MatrixExperiment = outcome.value
            fresh_references[fingerprint] = experiment.reference
            if store is not None:
                key = reference_key(config, fingerprint)
                store.put(key, reference_to_payload(experiment.reference, key))
            for record in experiment.runs:
                fresh_records[(fingerprint, record.format)] = record
                report.executed += 1
                if store is not None:
                    key = task_key(config, record.format, fingerprint)
                    store.put(key, run_record_to_payload(record, key))
        else:
            if not task.formats:
                # a crashed reference-only shard has no cells to mark
                # "failed", but the crash must not read as success: count
                # it and leave the reference missing, so the next
                # invocation re-plans and retries it
                report.failed += 1
            for name in task.formats:
                record = RunRecord(
                    matrix=task.test_matrix.name,
                    group=task.test_matrix.group,
                    category=task.test_matrix.category,
                    format=name,
                    status="failed",
                    traceback=outcome.error or "",
                )
                fresh_records[(fingerprint, name)] = record
                report.executed += 1
                report.failed += 1
                if store is not None:
                    key = task_key(config, name, fingerprint)
                    store.put(key, run_record_to_payload(record, key))
        if progress is not None:
            progress(outcome, report)

    t_start = time.perf_counter()
    with _trace.span(
        "experiment.run", shards=len(plan.tasks), planned=report.planned, cached=report.cached
    ):
        parallel_map(_run_shard, plan.tasks, workers=workers, capture=True, on_result=commit)

    records: list[RunRecord] = []
    references: list[ReferenceRecord] = []
    for tm, fingerprint in zip(plan.suite, plan.fingerprints):
        reference = fresh_references.get(fingerprint) or plan.cached_references.get(fingerprint)
        if reference is None:
            # the shard that would have produced it crashed; keep the
            # suite ↔ references correspondence with an explicit marker
            reference = ReferenceRecord(
                matrix=tm.name,
                converged=False,
                eigenvalues=np.empty(0, dtype=np.float64),
                restarts=0,
                matvecs=0,
            )
        references.append(reference)
        for name in plan.formats:
            record = fresh_records.get((fingerprint, name))
            if record is None:
                record = plan.cached_records[(fingerprint, name)]
            records.append(record)
    report.wall_seconds = time.perf_counter() - t_start
    if _telemetry.ENABLED:
        _metrics.counter("executor.cells", kind="cached").inc(report.cached)
        _metrics.counter("executor.cells", kind="executed").inc(report.executed)
        _metrics.counter("executor.cells", kind="failed").inc(report.failed)
    return ExperimentResult(
        records=records, references=references, config=config, report=report
    )
