"""Per-matrix experiment execution and the experiment driver.

``run_matrix_experiment`` reproduces the paper's pipeline for one test matrix
across a list of formats; ``run_experiment`` maps it over a whole suite
(optionally in parallel worker processes) and collects the records that the
aggregation layer turns into the cumulative error distributions of the
figures.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from ..arithmetic.batched import BatchSpec
from ..arithmetic.context import get_context
from ..arithmetic.registry import preload_tables
from ..core.krylov_schur import partialschur
from ..datasets.testmatrix import TestMatrix
from ..telemetry import trace as _trace
from .config import ExperimentConfig
from .errors import ErrorMetrics, error_metrics
from .matching import match_eigenpairs
from .tolerances import tolerance_for

if TYPE_CHECKING:  # avoid the runtime cycle: store.py imports this module
    from .store import ExecutionReport, ResultStore

__all__ = [
    "RunRecord",
    "ReferenceRecord",
    "MatrixExperiment",
    "ExperimentResult",
    "run_matrix_experiment",
    "run_experiment",
]

#: status values a run can end with ("no_convergence"/"range_exceeded" are
#: the paper's ∞ markers; "failed" marks a crashed worker task, which is an
#: infrastructure failure rather than a scientific outcome)
RUN_STATUSES = ("ok", "reference_failed", "no_convergence", "range_exceeded", "failed")


@dataclasses.dataclass
class ReferenceRecord:
    """Outcome of the extended-precision reference solve for one matrix."""

    matrix: str
    converged: bool
    eigenvalues: np.ndarray
    restarts: int
    matvecs: int


@dataclasses.dataclass
class RunRecord:
    """Outcome of one (matrix, format) experiment.

    ``status`` is ``"ok"`` for evaluated runs, ``"no_convergence"`` for the
    paper's ∞ω marker, ``"range_exceeded"`` for ∞σ and
    ``"reference_failed"`` when the reference solve itself did not converge
    (those matrices are excluded from the distributions, as in MuFoLAB).
    A crashed worker task yields ``"failed"`` with the worker traceback in
    ``traceback`` — sibling results survive, and ``rerun_failed`` retries
    exactly these cells.
    """

    matrix: str
    group: str
    category: str
    format: str
    status: str
    eigenvalue_relative_error: float = np.nan
    eigenvector_relative_error: float = np.nan
    eigenvalue_absolute_error: float = np.nan
    eigenvector_absolute_error: float = np.nan
    restarts: int = 0
    matvecs: int = 0
    solver_reason: str = ""
    traceback: str = ""
    #: wall time of this cell (context build, conversion, solve, metrics)
    solve_seconds: float = 0.0
    #: rounded elementary operations tallied by the cell's compute context
    rounded_ops: int = 0

    @property
    def evaluated(self) -> bool:
        """True when error metrics are available for this run."""
        return self.status == "ok"


@dataclasses.dataclass
class MatrixExperiment:
    """All records produced for one test matrix."""

    matrix: str
    reference: ReferenceRecord
    runs: list[RunRecord]
    #: wall time of the whole per-matrix pipeline (reference + all cells)
    seconds: float = 0.0


@dataclasses.dataclass
class ExperimentResult:
    """Flat collection of run records for a whole suite.

    ``report`` (when the run went through the experiment store engine)
    records how much of the suite was served from cache versus executed —
    see :class:`repro.experiments.store.ExecutionReport`.
    """

    records: list[RunRecord]
    references: list[ReferenceRecord]
    config: ExperimentConfig
    report: Optional["ExecutionReport"] = None

    def by_format(self, format_name: str) -> list[RunRecord]:
        return [r for r in self.records if r.format == format_name]

    def formats(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.format not in seen:
                seen.append(record.format)
        return seen


def _reference_solve(test_matrix: TestMatrix, config: ExperimentConfig):
    """Reference partial spectral decomposition in extended precision."""
    ctx = get_context(config.context_spec("reference"))
    with _trace.span("experiment.reference", matrix=test_matrix.name, fmt=ctx.name):
        result = partialschur(
            test_matrix.matrix,
            nev=min(config.nev_total, test_matrix.n),
            which=config.which,
            tol=config.reference_tolerance,
            maxdim=config.maxdim,
            restarts=max(config.restarts, 100),
            ctx=ctx,
            seed=config.seed,
            eps_floor=True,
        )
    record = ReferenceRecord(
        matrix=test_matrix.name,
        converged=result.converged,
        eigenvalues=result.eigenvalues_float64(),
        restarts=result.restarts,
        matvecs=result.matvecs,
    )
    return result, record


def _evaluate_solve(
    record: RunRecord,
    result,
    ref_vals: np.ndarray,
    ref_vecs: np.ndarray,
    keep: int,
) -> RunRecord:
    """Fill a record from a finished solver result (shared by the
    sequential per-cell path and the batched lockstep path)."""
    record.restarts = result.restarts
    record.matvecs = result.matvecs
    record.solver_reason = result.reason
    if not result.converged or result.nev == 0:
        record.status = "no_convergence"
        return record
    try:
        vals, vecs, _ = match_eigenpairs(
            ref_vals,
            ref_vecs,
            result.eigenvalues_float64(),
            result.eigenvectors_float64(),
            keep=keep,
        )
    except ValueError:
        record.status = "no_convergence"
        return record
    metrics: ErrorMetrics = error_metrics(ref_vals[:keep], ref_vecs[:, :keep], vals, vecs)
    if not metrics.finite:
        record.status = "no_convergence"
        return record
    record.eigenvalue_relative_error = metrics.eigenvalue_relative
    record.eigenvector_relative_error = metrics.eigenvector_relative
    record.eigenvalue_absolute_error = metrics.eigenvalue_absolute
    record.eigenvector_absolute_error = metrics.eigenvector_absolute
    return record


def _run_cell(
    test_matrix: TestMatrix,
    format_name: str,
    config: ExperimentConfig,
    reference_record: ReferenceRecord,
    ref_vals: np.ndarray,
    ref_vecs: np.ndarray,
    keep: int,
) -> RunRecord:
    """Run one (matrix, format) cell of the experiment grid."""
    record = RunRecord(
        matrix=test_matrix.name,
        group=test_matrix.group,
        category=test_matrix.category,
        format=format_name,
        status="ok",
    )
    if not reference_record.converged:
        record.status = "reference_failed"
        return record
    ctx = get_context(config.context_spec(format_name))
    try:
        converted, info = ctx.convert_matrix(test_matrix.matrix)
        if info.range_exceeded:
            # the paper's ∞σ marker: the matrix entries do not fit the format
            record.status = "range_exceeded"
            return record
        result = partialschur(
            converted,
            nev=min(config.nev_total, test_matrix.n),
            which=config.which,
            tol=tolerance_for(format_name),
            maxdim=config.maxdim,
            restarts=config.restarts,
            ctx=ctx,
            seed=config.seed,
            eps_floor=config.eps_floor,
        )
        return _evaluate_solve(record, result, ref_vals, ref_vecs, keep)
    finally:
        # every exit path: remember the cell's op tally and flush it into
        # the telemetry registry (conversion + solve + post-solve rounding)
        record.rounded_ops = ctx.op_count
        ctx.publish_op_count()


def _run_cells_batched(
    test_matrix: TestMatrix,
    formats: Sequence[str],
    config: ExperimentConfig,
    reference_record: ReferenceRecord,
    ref_vals: np.ndarray,
    ref_vecs: np.ndarray,
    keep: int,
) -> list[RunRecord]:
    """All (matrix, format) cells of one matrix as one lockstep batch.

    The solver phase runs through
    :func:`repro.core.lockstep.batched_partialschur`, which is bit-identical
    per format to the sequential engine, so the records are exactly what
    :func:`_run_cell` would have produced — only faster.  The pre-solve
    (conversion, ∞σ range check) and post-solve (matching, error metrics)
    phases stay per-cell.  ``solve_seconds`` of the batched cells is the
    batch wall time split evenly across them (per-cell attribution inside a
    lockstep sweep is not observable).
    """
    from ..core.lockstep import batched_partialschur

    records: list[RunRecord] = []
    solvable: list[tuple[RunRecord, object, object]] = []  # (record, ctx, matrix)
    for format_name in formats:
        record = RunRecord(
            matrix=test_matrix.name,
            group=test_matrix.group,
            category=test_matrix.category,
            format=format_name,
            status="ok",
        )
        records.append(record)
        if not reference_record.converged:
            record.status = "reference_failed"
            continue
        ctx = get_context(config.context_spec(format_name))
        converted, info = ctx.convert_matrix(test_matrix.matrix)
        if info.range_exceeded:
            record.status = "range_exceeded"
            record.rounded_ops = ctx.op_count
            ctx.publish_op_count()
            continue
        solvable.append((record, ctx, converted))
    if not solvable:
        return records

    t_batch = time.perf_counter()
    results = batched_partialschur(
        [m for _, _, m in solvable],
        BatchSpec([ctx for _, ctx, _ in solvable]),
        nev=min(config.nev_total, test_matrix.n),
        which=config.which,
        tol=[tolerance_for(r.format) for r, _, _ in solvable],
        maxdim=config.maxdim,
        restarts=config.restarts,
        seed=config.seed,
        eps_floor=config.eps_floor,
    )
    share = (time.perf_counter() - t_batch) / len(solvable)
    for (record, ctx, _), result in zip(solvable, results):
        _evaluate_solve(record, result, ref_vals, ref_vecs, keep)
        record.solve_seconds = share
        record.rounded_ops = ctx.op_count
        ctx.publish_op_count()
    return records


def run_matrix_experiment(
    test_matrix: TestMatrix,
    formats: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    batch_formats: bool = False,
) -> MatrixExperiment:
    """Run the full per-matrix pipeline for every requested format.

    With ``batch_formats=True`` the solver phase of all formats runs as one
    lockstep sweep (:mod:`repro.core.lockstep`) instead of one sequential
    solve per format; the records are bit-identical either way.
    """
    config = config or ExperimentConfig()
    t_start = time.perf_counter()
    reference_result, reference_record = _reference_solve(test_matrix, config)
    runs: list[RunRecord] = []

    keep = min(config.eigenvalue_count, test_matrix.n)
    ref_vals = np.asarray(reference_result.eigenvalues, dtype=np.float64)
    ref_vecs = np.asarray(reference_result.eigenvectors, dtype=np.float64)

    if batch_formats:
        with _trace.span(
            "experiment.cells_batched", matrix=test_matrix.name, formats=len(formats)
        ) as sp:
            runs = _run_cells_batched(
                test_matrix, formats, config, reference_record, ref_vals, ref_vecs, keep
            )
            sp.set(statuses={r.format: r.status for r in runs})
        return MatrixExperiment(
            matrix=test_matrix.name,
            reference=reference_record,
            runs=runs,
            seconds=time.perf_counter() - t_start,
        )

    for format_name in formats:
        t_cell = time.perf_counter()
        with _trace.span("experiment.cell", fmt=format_name, matrix=test_matrix.name) as sp:
            record = _run_cell(
                test_matrix, format_name, config, reference_record, ref_vals, ref_vecs, keep
            )
            # ops stays off this span: the nested krylov_schur.solve spans
            # already carry the tally, and the summariser sums per format
            sp.set(status=record.status)
        record.solve_seconds = time.perf_counter() - t_cell
        runs.append(record)

    return MatrixExperiment(
        matrix=test_matrix.name,
        reference=reference_record,
        runs=runs,
        seconds=time.perf_counter() - t_start,
    )


def run_experiment(
    suite: Iterable[TestMatrix],
    formats: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
    store: Optional["ResultStore"] = None,
    use_cache: bool = True,
    rerun_failed: bool = False,
    batch_formats: bool = False,
) -> ExperimentResult:
    """Run the experiment pipeline over a suite of matrices.

    The execution is *resumable*: with a ``store``, every finished
    (matrix, format) cell is committed to disk as it lands, cached cells are
    subtracted from the plan before any solver starts, and a crashed worker
    task yields a ``"failed"`` record instead of discarding its siblings.
    See :mod:`repro.experiments.store` for the plan/execute engine.

    Parameters
    ----------
    suite:
        Test matrices (``repro.datasets``).
    formats:
        Format names to evaluate (e.g. ``("float16", "bfloat16", "posit16",
        "takum16")``).
    config:
        Experiment configuration; defaults mirror the paper.
    workers:
        Worker processes; each worker handles whole matrices (reference solve
        plus all missing formats) so reference solutions are never recomputed
        within one run.
    store:
        A :class:`~repro.experiments.store.ResultStore` for caching and
        resume; ``None`` (default) runs fully in memory, exactly like the
        historical fire-and-forget pipeline.
    use_cache:
        With ``False`` cached cells are ignored (everything executes) but
        fresh results are still committed, refreshing the store.
    rerun_failed:
        Treat cached ``"failed"`` cells (crashed workers) as missing and
        retry them.
    batch_formats:
        Solve every matrix's missing formats as one lockstep batch
        (:func:`repro.core.lockstep.batched_partialschur`) instead of one
        sequential solver run per format.  Records are bit-identical either
        way, so batched and sequential runs share cache entries.
    """
    from .store import execute_plan, plan_experiment  # local: store imports us

    config = config or ExperimentConfig()
    plan = plan_experiment(
        suite,
        formats,
        config,
        store=store,
        use_cache=use_cache,
        rerun_failed=rerun_failed,
        batch_formats=batch_formats,
    )
    # Build the lookup-table rounding engine once in this process: forked
    # workers inherit the tables copy-on-write instead of re-enumerating the
    # value sets per worker, and the serial path pays the build exactly once.
    # Analytic-kernel verification runs (use_tables=False) never consult the
    # engine, and a fully cached (warm) plan executes no solver at all, so
    # skip the build there.
    if plan.tasks and config.use_tables is not False:
        preload_tables(formats)
    return execute_plan(plan, workers=workers)
