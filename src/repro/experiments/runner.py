"""Per-matrix experiment execution and the experiment driver.

``run_matrix_experiment`` reproduces the paper's pipeline for one test matrix
across a list of formats; ``run_experiment`` maps it over a whole suite
(optionally in parallel worker processes) and collects the records that the
aggregation layer turns into the cumulative error distributions of the
figures.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

import numpy as np

from ..arithmetic.context import get_context
from ..arithmetic.registry import preload_tables
from ..core.krylov_schur import partialschur
from ..datasets.testmatrix import TestMatrix
from ..utils.parallel import parallel_map
from .config import ExperimentConfig
from .errors import ErrorMetrics, error_metrics
from .matching import match_eigenpairs
from .tolerances import tolerance_for

__all__ = [
    "RunRecord",
    "ReferenceRecord",
    "MatrixExperiment",
    "ExperimentResult",
    "run_matrix_experiment",
    "run_experiment",
]

#: status values a run can end with (the last two are the paper's ∞ markers)
RUN_STATUSES = ("ok", "reference_failed", "no_convergence", "range_exceeded")


@dataclasses.dataclass
class ReferenceRecord:
    """Outcome of the extended-precision reference solve for one matrix."""

    matrix: str
    converged: bool
    eigenvalues: np.ndarray
    restarts: int
    matvecs: int


@dataclasses.dataclass
class RunRecord:
    """Outcome of one (matrix, format) experiment.

    ``status`` is ``"ok"`` for evaluated runs, ``"no_convergence"`` for the
    paper's ∞ω marker, ``"range_exceeded"`` for ∞σ and
    ``"reference_failed"`` when the reference solve itself did not converge
    (those matrices are excluded from the distributions, as in MuFoLAB).
    """

    matrix: str
    group: str
    category: str
    format: str
    status: str
    eigenvalue_relative_error: float = np.nan
    eigenvector_relative_error: float = np.nan
    eigenvalue_absolute_error: float = np.nan
    eigenvector_absolute_error: float = np.nan
    restarts: int = 0
    matvecs: int = 0
    solver_reason: str = ""

    @property
    def evaluated(self) -> bool:
        """True when error metrics are available for this run."""
        return self.status == "ok"


@dataclasses.dataclass
class MatrixExperiment:
    """All records produced for one test matrix."""

    matrix: str
    reference: ReferenceRecord
    runs: list[RunRecord]


@dataclasses.dataclass
class ExperimentResult:
    """Flat collection of run records for a whole suite."""

    records: list[RunRecord]
    references: list[ReferenceRecord]
    config: ExperimentConfig

    def by_format(self, format_name: str) -> list[RunRecord]:
        return [r for r in self.records if r.format == format_name]

    def formats(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.format not in seen:
                seen.append(record.format)
        return seen


def _reference_solve(test_matrix: TestMatrix, config: ExperimentConfig):
    """Reference partial spectral decomposition in extended precision."""
    ctx = get_context(config.context_spec("reference"))
    result = partialschur(
        test_matrix.matrix,
        nev=min(config.nev_total, test_matrix.n),
        which=config.which,
        tol=config.reference_tolerance,
        maxdim=config.maxdim,
        restarts=max(config.restarts, 100),
        ctx=ctx,
        seed=config.seed,
        eps_floor=True,
    )
    record = ReferenceRecord(
        matrix=test_matrix.name,
        converged=result.converged,
        eigenvalues=result.eigenvalues_float64(),
        restarts=result.restarts,
        matvecs=result.matvecs,
    )
    return result, record


def run_matrix_experiment(
    test_matrix: TestMatrix,
    formats: Sequence[str],
    config: Optional[ExperimentConfig] = None,
) -> MatrixExperiment:
    """Run the full per-matrix pipeline for every requested format."""
    config = config or ExperimentConfig()
    reference_result, reference_record = _reference_solve(test_matrix, config)
    runs: list[RunRecord] = []

    keep = min(config.eigenvalue_count, test_matrix.n)
    ref_vals = np.asarray(reference_result.eigenvalues, dtype=np.float64)
    ref_vecs = np.asarray(reference_result.eigenvectors, dtype=np.float64)

    for format_name in formats:
        record = RunRecord(
            matrix=test_matrix.name,
            group=test_matrix.group,
            category=test_matrix.category,
            format=format_name,
            status="ok",
        )
        if not reference_record.converged:
            record.status = "reference_failed"
            runs.append(record)
            continue
        ctx = get_context(config.context_spec(format_name))
        converted, info = ctx.convert_matrix(test_matrix.matrix)
        if info.range_exceeded:
            # the paper's ∞σ marker: the matrix entries do not fit the format
            record.status = "range_exceeded"
            runs.append(record)
            continue
        result = partialschur(
            converted,
            nev=min(config.nev_total, test_matrix.n),
            which=config.which,
            tol=tolerance_for(format_name),
            maxdim=config.maxdim,
            restarts=config.restarts,
            ctx=ctx,
            seed=config.seed,
            eps_floor=config.eps_floor,
        )
        record.restarts = result.restarts
        record.matvecs = result.matvecs
        record.solver_reason = result.reason
        if not result.converged or result.nev == 0:
            record.status = "no_convergence"
            runs.append(record)
            continue
        try:
            vals, vecs, _ = match_eigenpairs(
                ref_vals,
                ref_vecs,
                result.eigenvalues_float64(),
                result.eigenvectors_float64(),
                keep=keep,
            )
        except ValueError:
            record.status = "no_convergence"
            runs.append(record)
            continue
        metrics: ErrorMetrics = error_metrics(
            ref_vals[:keep], ref_vecs[:, :keep], vals, vecs
        )
        if not metrics.finite:
            record.status = "no_convergence"
            runs.append(record)
            continue
        record.eigenvalue_relative_error = metrics.eigenvalue_relative
        record.eigenvector_relative_error = metrics.eigenvector_relative
        record.eigenvalue_absolute_error = metrics.eigenvalue_absolute
        record.eigenvector_absolute_error = metrics.eigenvector_absolute
        runs.append(record)

    return MatrixExperiment(matrix=test_matrix.name, reference=reference_record, runs=runs)


@dataclasses.dataclass
class _Task:
    """Picklable work item for the parallel runner."""

    test_matrix: TestMatrix
    formats: tuple[str, ...]
    config: ExperimentConfig


def _run_task(task: _Task) -> MatrixExperiment:
    return run_matrix_experiment(task.test_matrix, task.formats, task.config)


def run_experiment(
    suite: Iterable[TestMatrix],
    formats: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> ExperimentResult:
    """Run the experiment pipeline over a suite of matrices.

    Parameters
    ----------
    suite:
        Test matrices (``repro.datasets``).
    formats:
        Format names to evaluate (e.g. ``("float16", "bfloat16", "posit16",
        "takum16")``).
    config:
        Experiment configuration; defaults mirror the paper.
    workers:
        Worker processes; each worker handles whole matrices (reference solve
        plus all formats) so reference solutions are never recomputed.
    """
    config = config or ExperimentConfig()
    # Build the lookup-table rounding engine once in this process: forked
    # workers inherit the tables copy-on-write instead of re-enumerating the
    # value sets per worker, and the serial path pays the build exactly once.
    # Analytic-kernel verification runs (use_tables=False) never consult the
    # engine, so skip the build entirely there.
    if config.use_tables is not False:
        preload_tables(formats)
    tasks = [_Task(tm, tuple(formats), config) for tm in suite]
    experiments = parallel_map(_run_task, tasks, workers=workers)
    records: list[RunRecord] = []
    references: list[ReferenceRecord] = []
    for experiment in experiments:
        references.append(experiment.reference)
        records.extend(experiment.runs)
    return ExperimentResult(records=records, references=references, config=config)
