"""Convergence tolerances per storage width (Section 2.2 of the paper).

The paper sets the relative convergence tolerance of ``partialschur`` to
10^-2 for 8-bit formats, 10^-4 for 16-bit, 10^-8 for 32-bit, 10^-12 for
64-bit and 10^-20 for the float128 reference.  The reference here is
``numpy.longdouble`` (64-bit significand), so its tolerance is relaxed to
10^-18 (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

from ..arithmetic.base import NumberFormat

__all__ = ["TOLERANCES", "REFERENCE_TOLERANCE", "tolerance_for"]

#: relative convergence tolerance per storage width in bits
TOLERANCES: dict[int, float] = {
    8: 1e-2,
    16: 1e-4,
    32: 1e-8,
    64: 1e-12,
}

#: tolerance of the extended-precision reference solve (paper: 1e-20 in
#: float128; adapted to the longdouble substitute)
REFERENCE_TOLERANCE: float = 1e-18


def tolerance_for(fmt) -> float:
    """Tolerance for a format, format name or bit width."""
    if isinstance(fmt, NumberFormat):
        bits = fmt.bits
    elif isinstance(fmt, str):
        lowered = fmt.lower()
        if lowered in ("reference", "float128", "longdouble"):
            return REFERENCE_TOLERANCE
        from ..arithmetic.registry import get_format

        bits = get_format(fmt).bits
    else:
        bits = int(fmt)
    try:
        return TOLERANCES[bits]
    except KeyError:
        raise KeyError(
            f"no tolerance defined for width {bits}; known: {sorted(TOLERANCES)}"
        ) from None
