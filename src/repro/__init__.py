"""repro — reproduction of "Numerical Performance of the Implicitly Restarted
Arnoldi Method in OFP8, Bfloat16, Posit, and Takum Arithmetics" (SC '25).

The package is organised as:

* :mod:`repro.arithmetic` — machine-number formats (OFP8, bfloat16, posits,
  takums, IEEE), the shared lookup-table rounding engine
  (:mod:`repro.arithmetic.tables`) that serves every format of up to 16 bits
  from one process-wide cache, and per-operation rounding compute contexts;
* :mod:`repro.sparse` — CSR/COO sparse-matrix substrate, Matrix Market and
  edge-list I/O, graph-Laplacian preparation;
* :mod:`repro.linalg` — dense kernels (Hessenberg, real Schur, symmetric
  tridiagonal QL) written against the compute contexts, plus the Hungarian
  assignment algorithm;
* :mod:`repro.core` — the implicitly restarted Arnoldi method with
  Krylov-Schur restarts (``partialschur``);
* :mod:`repro.datasets` — synthetic stand-ins for the SuiteSparse Matrix
  Collection and the Network Repository graph classes;
* :mod:`repro.experiments` — the experiment harness (tolerances, reference
  solves, eigenvector matching, error metrics, aggregation into the paper's
  cumulative error distributions).

Quickstart::

    from repro import partialschur, get_context
    from repro.datasets import graph_suite

    laplacian = graph_suite(classes="social", scale=0.002)[0].matrix
    result = partialschur(laplacian, nev=10, tol=1e-4, ctx="takum16")
    print(result.eigenvalues_float64())
"""

from . import arithmetic, core, datasets, experiments, linalg, sparse, utils
from .arithmetic import (
    ContextSpec,
    available_formats,
    get_context,
    get_format,
    precision,
)
from .core import partialschur

__version__ = "1.0.0"

__all__ = [
    "arithmetic",
    "core",
    "datasets",
    "experiments",
    "linalg",
    "sparse",
    "utils",
    "get_context",
    "get_format",
    "available_formats",
    "ContextSpec",
    "precision",
    "partialschur",
    "__version__",
]
