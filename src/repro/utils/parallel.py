"""Process-parallel map used by the experiment runner.

The per-matrix experiments are embarrassingly parallel (MuFoLAB runs them the
same way); a simple ``multiprocessing.Pool`` covers the use case without
adding an MPI dependency.  Worker functions must be picklable module-level
callables.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence

__all__ = ["default_workers", "parallel_map"]


def default_workers(fallback: int = 1) -> int:
    """Worker-count default from ``$REPRO_WORKERS``.

    Empty or non-numeric values fall back to ``fallback`` instead of
    raising, so a stray ``REPRO_WORKERS=`` in a CI environment cannot break
    every CLI invocation (including ``--help``).
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        return int(raw) if raw else fallback
    except ValueError:
        return fallback


def parallel_map(func: Callable, items: Sequence, workers: int = 1, chunksize: int = 1) -> list:
    """Apply ``func`` to every item, optionally across worker processes.

    Parameters
    ----------
    func:
        Module-level callable (must be picklable when ``workers > 1``).
    items:
        Sequence of arguments (one positional argument per call).
    workers:
        Number of worker processes; ``1`` (default) runs serially in-process,
        ``0`` or negative uses all available CPUs.
    chunksize:
        Work chunk size handed to each worker.

    Returns
    -------
    list
        Results in the order of ``items``.
    """
    items = list(items)
    if workers == 1 or len(items) <= 1:
        return [func(item) for item in items]
    if workers <= 0:
        workers = multiprocessing.cpu_count()
    workers = min(workers, len(items))
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(func, items, chunksize=max(1, chunksize))
