"""Process-parallel map used by the experiment runner.

The per-matrix experiments are embarrassingly parallel (MuFoLAB runs them the
same way); a ``multiprocessing.Pool`` covers the use case without adding an
MPI dependency.  Worker functions must be picklable module-level callables.

Two properties matter for the resumable experiment store built on top:

* **work stealing** — tasks are distributed with ``imap_unordered``, so a
  slow shard never idles the other workers, and results stream back to the
  parent the moment they finish (the parent commits each one to the on-disk
  store before the next arrives);
* **per-task exception capture** — a crashing task is materialised as a
  :class:`TaskOutcome` carrying the formatted traceback instead of poisoning
  the whole pool.  Callers either receive the outcomes (``capture=True``) or
  get the legacy fail-fast behaviour (a :class:`ParallelTaskError` raised
  after the surviving results streamed out).

``KeyboardInterrupt`` is deliberately *not* captured: Ctrl-C still tears the
pool down, and whatever the parent committed before the interrupt is exactly
what a re-invocation can resume from.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import threading
import time
import traceback
from typing import Any, Callable, Optional, Sequence

from ..telemetry import core as _telemetry
from ..telemetry.metrics import metrics as _metrics

__all__ = [
    "default_workers",
    "parallel_map",
    "TaskOutcome",
    "ParallelTaskError",
    "PoolSaturatedError",
    "BoundedPool",
]


def default_workers(fallback: int = 1) -> int:
    """Worker-count default from ``$REPRO_WORKERS``.

    Empty or non-numeric values fall back to ``fallback`` instead of
    raising, so a stray ``REPRO_WORKERS=`` in a CI environment cannot break
    every CLI invocation (including ``--help``).
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        return int(raw) if raw else fallback
    except ValueError:
        return fallback


@dataclasses.dataclass
class TaskOutcome:
    """Result of one task: either a value or a formatted traceback.

    Attributes
    ----------
    index:
        Position of the task in the input sequence (``imap_unordered``
        returns outcomes in completion order; the index restores input
        order).
    value:
        The callable's return value (``None`` when the task raised).
    error:
        ``traceback.format_exc()`` of the exception that killed the task,
        or ``None`` on success.
    seconds:
        Wall time the task spent executing in its worker (success or not).
    queue_seconds:
        Wall time between submission by the parent and the worker picking
        the task up (scheduling latency; 0.0 in the serial path).  Measured
        across processes with ``time.time``, so it is approximate.
    """

    index: int
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    queue_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the task returned normally."""
        return self.error is None


class ParallelTaskError(RuntimeError):
    """A task raised inside ``parallel_map`` (fail-fast mode).

    The worker's formatted traceback is embedded in the message — the
    original exception object may not survive pickling back from the worker
    process, but its traceback text always does.
    """

    def __init__(self, index: int, error: str):
        self.index = index
        self.error = error
        super().__init__(f"task {index} raised:\n{error}")


class _CaptureCall:
    """Picklable wrapper running one ``(index, item)`` task under capture.

    ``KeyboardInterrupt``/``SystemExit`` propagate (they must kill the
    pool); everything else becomes a failed :class:`TaskOutcome`.
    """

    def __init__(self, func: Callable):
        self.func = func

    def __call__(self, indexed_item) -> TaskOutcome:
        index, item, submitted = indexed_item
        started = time.time()
        t0 = time.perf_counter()
        try:
            outcome = TaskOutcome(index=index, value=self.func(item))
        except Exception:
            outcome = TaskOutcome(index=index, error=traceback.format_exc())
        outcome.seconds = time.perf_counter() - t0
        outcome.queue_seconds = max(0.0, started - submitted)
        return outcome


def parallel_map(
    func: Callable,
    items: Sequence,
    workers: int = 1,
    chunksize: int = 1,
    capture: bool = False,
    on_result: Optional[Callable[[TaskOutcome], None]] = None,
) -> list:
    """Apply ``func`` to every item, optionally across worker processes.

    Parameters
    ----------
    func:
        Module-level callable (must be picklable when ``workers > 1``).
    items:
        Sequence of arguments (one positional argument per call).
    workers:
        Number of worker processes; ``1`` (default) runs serially in-process,
        ``0`` or negative uses all available CPUs.
    chunksize:
        Work chunk size handed to each worker (``imap_unordered`` batches).
    capture:
        With ``capture=False`` (default, legacy behaviour) a raising task
        aborts the map with :class:`ParallelTaskError` — but only after all
        surviving outcomes were streamed to ``on_result``, so completed work
        is never silently discarded.  With ``capture=True`` the return value
        is a list of :class:`TaskOutcome` (input order) and no exception is
        raised for failing tasks.
    on_result:
        Parent-process callback invoked with each :class:`TaskOutcome` as it
        completes (completion order, not input order).  This is where the
        experiment store commits records: a later crash or Ctrl-C cannot
        take already-committed results with it.

    Returns
    -------
    list
        ``capture=False``: the results, in the order of ``items``.
        ``capture=True``: :class:`TaskOutcome` objects, in the order of
        ``items``.
    """
    items = list(items)
    call = _CaptureCall(func)
    outcomes: list[Optional[TaskOutcome]] = [None] * len(items)
    submitted = time.time()

    if workers == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            outcome = call((index, item, time.time()))
            outcome.queue_seconds = 0.0  # serial: no scheduling latency
            if _telemetry.ENABLED:
                _record_outcome(outcome)
            if on_result is not None:
                on_result(outcome)
            outcomes[index] = outcome
            if not capture and not outcome.ok:
                # fail fast like the historical serial loop did — nothing
                # after the crash has started, so nothing is lost
                raise ParallelTaskError(index, outcome.error)
        return _finalise(outcomes, capture)

    if workers <= 0:
        workers = multiprocessing.cpu_count()
    workers = min(workers, len(items))
    if _telemetry.ENABLED:
        _metrics.gauge("parallel.workers").set(workers)
    with multiprocessing.Pool(processes=workers) as pool:
        for outcome in pool.imap_unordered(
            call,
            [(index, item, submitted) for index, item in enumerate(items)],
            chunksize=max(1, chunksize),
        ):
            if _telemetry.ENABLED:
                _record_outcome(outcome)
            if on_result is not None:
                on_result(outcome)
            outcomes[outcome.index] = outcome
    return _finalise(outcomes, capture)


def _record_outcome(outcome: TaskOutcome) -> None:
    """Parent-side telemetry for one completed task (caller checks ENABLED)."""
    _metrics.counter("parallel.tasks", status="ok" if outcome.ok else "failed").inc()
    _metrics.histogram("parallel.task_seconds").observe(outcome.seconds)
    _metrics.histogram("parallel.queue_seconds").observe(outcome.queue_seconds)


def _finalise(outcomes: list, capture: bool) -> list:
    """Order-restored results; raise the first failure in fail-fast mode."""
    if capture:
        return outcomes
    for outcome in outcomes:
        if outcome is not None and not outcome.ok:
            raise ParallelTaskError(outcome.index, outcome.error)
    return [outcome.value for outcome in outcomes]


# ---------------------------------------------------------------------------
# bounded-submission executor (the serve worker-pool plumbing)


class PoolSaturatedError(RuntimeError):
    """A :class:`BoundedPool` refused a submission: every slot is taken.

    Carries the observed ``depth`` and the pool ``capacity`` so the caller
    can degrade gracefully (the serve layer turns this into HTTP 503 with a
    ``Retry-After`` estimate) instead of queueing without bound.
    """

    def __init__(self, depth: int, capacity: int):
        self.depth = depth
        self.capacity = capacity
        super().__init__(f"pool saturated: {depth} tasks in flight (capacity {capacity})")


class BoundedPool:
    """Executor with a hard cap on in-flight work: run slots + a small queue.

    ``parallel_map`` suits batch runs that hand over a fixed task list; a
    long-running service needs the opposite shape — one task at a time,
    admission control first.  ``submit`` accepts at most
    ``workers + queue_limit`` unfinished tasks and raises
    :class:`PoolSaturatedError` beyond that, so a request burst degrades
    into fast rejections instead of an unbounded queue (and, with process
    workers, unbounded memory).

    ``kind`` selects the executor: ``"process"`` (default) isolates solver
    work in forked worker processes — create the pool *after* warming the
    rounding tables so workers inherit them copy-on-write; ``"thread"``
    shares the calling process (used by the serve unit tests, where the
    store backend lives in memory).  Process workers are spawned lazily by
    ``concurrent.futures`` on first submission.
    """

    def __init__(self, workers: int = 1, queue_limit: int = 8, kind: str = "process"):
        if kind not in ("process", "thread"):
            raise ValueError(f"unknown pool kind {kind!r}; use 'process' or 'thread'")
        if workers <= 0:
            workers = multiprocessing.cpu_count()
        self.workers = workers
        self.queue_limit = max(0, queue_limit)
        self.kind = kind
        if kind == "process":
            self._executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        else:
            self._executor = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def capacity(self) -> int:
        """Maximum number of unfinished tasks ``submit`` accepts."""
        return self.workers + self.queue_limit

    @property
    def depth(self) -> int:
        """Unfinished tasks currently admitted (running + queued)."""
        with self._lock:
            return self._inflight

    def submit(self, fn: Callable, *args) -> concurrent.futures.Future:
        """Submit ``fn(*args)``; raises :class:`PoolSaturatedError` when full."""
        with self._lock:
            if self._inflight >= self.capacity:
                raise PoolSaturatedError(self._inflight, self.capacity)
            self._inflight += 1
        try:
            future = self._executor.submit(fn, *args)
        except BaseException:
            with self._lock:
                self._inflight -= 1
            raise
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: concurrent.futures.Future) -> None:
        with self._lock:
            self._inflight -= 1

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor; pending (queued, unstarted) tasks are cancelled."""
        self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "BoundedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
