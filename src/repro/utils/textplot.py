"""Plain-text rendering of cumulative error distributions and tables.

The paper's figures are cumulative error distributions (sorted relative
errors against the run percentile).  Without a plotting dependency the
benchmark harness renders them as ASCII line charts and aligned tables, which
is enough to compare the *shape* (which format wins, where the curves cross,
how large the ∞ω/∞σ tails are) against the published figures.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_plot", "format_table"]


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 68,
    height: int = 18,
    xlabel: str = "percentile",
    ylabel: str = "log10(relative error)",
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Each series gets a distinct marker character; non-finite y values are
    skipped (they are reported separately as ∞ω/∞σ counts).
    """
    markers = "*o+x#@%&$~^"
    points = {
        name: [(x, y) for x, y in pts if math.isfinite(x) and math.isfinite(y)]
        for name, pts in series.items()
    }
    finite = [p for pts in points.values() for p in pts]
    if not finite:
        return "(no finite data points)\n"
    xs = [p[0] for p in finite]
    ys = [p[1] for p in finite]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(points.items()):
        marker = markers[idx % len(markers)]
        for x, y in pts:
            col = int((x - xmin) / (xmax - xmin) * (width - 1))
            row = int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    lines.append(f"  {ylabel}  [{ymin:.2f}, {ymax:.2f}]")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   {xlabel}: {xmin:.0f}% .. {xmax:.0f}%")
    legend = "   legend: " + "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(points)
    )
    lines.append(legend)
    return "\n".join(lines) + "\n"


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"
