"""Small shared utilities: parallel execution and text rendering."""

from .parallel import default_workers, parallel_map
from .textplot import ascii_plot, format_table

__all__ = ["default_workers", "parallel_map", "ascii_plot", "format_table"]
