"""Small shared utilities: parallel execution and text rendering."""

from .parallel import ParallelTaskError, TaskOutcome, default_workers, parallel_map
from .textplot import ascii_plot, format_table

__all__ = [
    "default_workers",
    "parallel_map",
    "TaskOutcome",
    "ParallelTaskError",
    "ascii_plot",
    "format_table",
]
