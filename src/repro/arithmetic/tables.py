"""Lookup-table rounding engine shared by every emulated format of <= 16 bits.

Every elementary operation of an :class:`~repro.arithmetic.context.EmulatedContext`
funnels through ``NumberFormat.round_array``, so the whole experiment pipeline
is gated on per-format rounding throughput.  For storage widths of up to 16
bits the finite value set of a format is small enough to enumerate once; this
module turns that observation into a shared engine:

* :class:`ValueTable` lazily enumerates all finite representable magnitudes
  and codes of a format (via the format's own bit-accurate ``decode_code``,
  which stays the single source of truth) and derives three vectorised
  kernels from them:

  - :meth:`ValueTable.round_values` — round-to-nearest with ties to the even
    code via one ``searchsorted`` pass over the magnitude table;
  - a **direct-indexed** path for 8-bit formats: the float32 bit pattern of
    each input magnitude, truncated to its upper 16 bits, indexes a
    precomputed 2^16-entry table derived from the format's midpoints.  Bucket
    entries are only used where every value in the bucket provably rounds to
    the same code (midpoint-free buckets); the remaining buckets fall back to
    the ``searchsorted`` kernel, which keeps the fast path bit-exact;
  - :meth:`ValueTable.encode_values` / :meth:`ValueTable.decode_values` —
    vectorised bit-level conversion (``decode`` was previously a per-element
    Python loop).

* :class:`TableCache` is a process-wide registry keyed by format name.
  Number formats are module-level singletons, so a table built once is shared
  by every context of that format; :func:`warm_tables` pre-builds tables in
  the parent process so forked experiment workers inherit them copy-on-write
  instead of rebuilding per worker.

Formats opt in by returning a :class:`TableSemantics` from
``NumberFormat.table_semantics``; the descriptor captures the few behaviours
that differ between format families (sign encoding, saturation, overflow and
special-value policy).  The analytic ``round_array_analytic`` implementations
remain in the format modules as the ground truth that the tables are verified
against (``tests/test_tables.py``).

The engine can be disabled globally with the environment variable
``REPRO_DISABLE_ROUNDING_TABLES=1`` or at runtime with :func:`set_enabled`,
and per context with ``get_context(name, use_tables=False)``.
"""

from __future__ import annotations

import dataclasses
import math
import os
import threading
from typing import Optional

import numpy as np

from .base import (
    MAX_TABLE_BITS,
    SCALAR_CUTOFF,
    WIDE_SCALAR_CUTOFF,
    NumberFormat,
    nearest_in_table,
    nearest_in_table_scalar,
)
from ..telemetry import core as _telemetry
from ..telemetry.metrics import metrics as _metrics

#: deferred telemetry tallies (same pattern as ``base._dispatch_tally``;
#: the scalar_loop branch of ``round_values`` serves the solvers' *scalar*
#: operations, far too hot for a registry lookup per call):
#: ``(format, kernel) -> [calls, elements]``
_round_tally: dict[tuple[str, str], list] = {}


def _flush_table_tally(discard: bool = False) -> None:
    """Drain the deferred table-rounder tallies into the registry (or drop)."""
    for (fmt_name, kernel), entry in _round_tally.items():
        calls, elements = entry[0], entry[1]
        if not discard:
            if calls:
                _metrics.counter("table.round", format=fmt_name, kernel=kernel).inc(calls)
            if elements:
                _metrics.counter(
                    "table.round.elements", format=fmt_name, kernel=kernel
                ).inc(elements)
        entry[0] -= calls
        entry[1] -= elements


_metrics.register_flusher(_flush_table_tally)

__all__ = [
    "TableSemantics",
    "ValueTable",
    "TableCache",
    "TABLE_CACHE",
    "table_for",
    "warm_tables",
    "set_enabled",
    "tables_enabled",
    "MAX_TABLE_BITS",
    "DIRECT_INDEX_BITS",
    "SCALAR_CUTOFF",
    "WIDE_SCALAR_CUTOFF",
]

#: widths that additionally get the direct-indexed float32-pattern path
DIRECT_INDEX_BITS = 8

# MAX_TABLE_BITS and the SCALAR_CUTOFF / WIDE_SCALAR_CUTOFF size thresholds
# (below which rounding dispatches to the pure-Python scalar paths: the
# table ``bisect`` kernel and the analytic scalar kernels of the wide
# formats respectively) live in :mod:`repro.arithmetic.base`, which owns
# the dispatch, and are re-exported here for backwards compatibility.

_ENABLED = os.environ.get("REPRO_DISABLE_ROUNDING_TABLES", "").lower() not in (
    "1",
    "true",
    "yes",
)


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable the table backend; returns the previous state.

    Intended for verification runs that want to force the analytic kernels
    (``REPRO_DISABLE_ROUNDING_TABLES=1`` has the same effect at start-up).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def tables_enabled() -> bool:
    """Whether the table backend is globally enabled."""
    return _ENABLED


@dataclasses.dataclass(frozen=True)
class TableSemantics:
    """Format-family behaviours the shared kernels must reproduce.

    Attributes
    ----------
    negation:
        ``"sign_bit"`` (IEEE/OFP8 sign-magnitude codes) or
        ``"twos_complement"`` (posit/takum negation).
    unsigned_zero:
        Format has a single unsigned zero (posits, takums); ``-0.0`` inputs
        round to ``+0.0``.
    underflow_to_min:
        Rounding never flushes a non-zero magnitude to zero; it saturates at
        the smallest positive value instead (tapered formats).
    overflow_action:
        ``"saturate"`` clamps at the largest finite magnitude; ``"inf"`` and
        ``"nan"`` produce the respective special beyond ``overflow_threshold``.
    overflow_threshold:
        Magnitude at which ``"inf"``/``"nan"`` overflow fires (ignored for
        ``"saturate"``).
    overflow_strict:
        ``True``: overflow only for magnitudes strictly above the threshold
        (an exact threshold hit rounds down to the largest finite value);
        ``False``: the threshold itself already overflows (IEEE
        ties-to-even at the overflow boundary).
    inf_result:
        What an infinite *input* value becomes: ``"inf"`` (IEEE), ``"nan"``
        (posit/takum NaR, OFP8 E4M3) or ``"max"`` (saturating E4M3).
    nan_code:
        Canonical NaN/NaR code produced by ``encode``.
    pos_inf_code / neg_inf_code:
        Infinity codes for formats that have them.
    prefer_table_rounding:
        Whether :meth:`ValueTable.round_values` should replace the format's
        analytic ``round_array``.  Formats whose analytic kernel is already
        cheaper than a 2^15-entry ``searchsorted`` (the binary IEEE formats
        above 8 bits, whose quantum rounding is a handful of vector ops) set
        this to ``False`` and still get table-backed ``encode``/``decode``.
    """

    negation: str = "sign_bit"
    unsigned_zero: bool = False
    underflow_to_min: bool = False
    overflow_action: str = "saturate"
    overflow_threshold: Optional[float] = None
    overflow_strict: bool = True
    inf_result: str = "nan"
    nan_code: int = 0
    pos_inf_code: Optional[int] = None
    neg_inf_code: Optional[int] = None
    prefer_table_rounding: bool = True
    #: whether ``encode`` gives ``-0.0`` a distinct code (IEEE does; the
    #: OFP8 E4M3 encoder canonicalises it to the all-zeros code)
    signed_zero_code: bool = True


class ValueTable:
    """Enumerated value set of one format plus the vectorised kernels."""

    __slots__ = (
        "format_name",
        "bits",
        "work_dtype",
        "semantics",
        "decode_lut",
        "magnitudes",
        "codes",
        "_midpoints",
        "_direct_values",
        "_mags_list",
        "_codes_list",
    )

    def __init__(self, fmt: NumberFormat):
        semantics = fmt.table_semantics()
        if semantics is None:
            raise ValueError(f"format {fmt.name!r} declares no table semantics")
        if not 0 < fmt.bits <= MAX_TABLE_BITS:
            raise ValueError(
                f"format {fmt.name!r} is {fmt.bits} bits wide; tables support "
                f"at most {MAX_TABLE_BITS} bits"
            )
        self.format_name = fmt.name
        self.bits = int(fmt.bits)
        self.work_dtype = fmt.work_dtype
        self.semantics = semantics

        # Full decode table over every code.  The vectorised bit-kernel
        # decoder builds it in a handful of integer passes; formats without
        # one fall back to the per-code scalar decoder.  Either way the
        # scalar ``decode_code`` stays the single source of truth: the bit
        # decoders are verified against it code-for-code by the exhaustive
        # sweeps in ``tests/test_bitkernels.py``.
        n_codes = 1 << self.bits
        kern = fmt.bitkernel()
        if kern is not None:
            lut = np.asarray(
                kern.decode(np.arange(n_codes, dtype=np.uint64)), dtype=np.float64
            )
        else:
            lut = np.empty(n_codes, dtype=np.float64)
            decode_code = fmt.decode_code
            for code in range(n_codes):
                lut[code] = decode_code(code)
        self.decode_lut = lut

        # Non-negative finite magnitudes all live in the sign-clear half of
        # the code space for every supported family (IEEE/OFP8 sign-magnitude
        # and posit/takum two's complement alike).
        half = lut[: n_codes // 2]
        finite = np.isfinite(half)
        magnitudes = half[finite]
        codes = np.nonzero(finite)[0].astype(np.int64)
        order = np.argsort(magnitudes, kind="stable")
        self.magnitudes = np.ascontiguousarray(magnitudes[order])
        self.codes = np.ascontiguousarray(codes[order])
        if (
            self.magnitudes.size < 2
            or self.magnitudes[0] != 0.0
            or np.any(np.diff(self.magnitudes) <= 0.0)
        ):
            raise ValueError(
                f"format {fmt.name!r} violates the table engine's assumptions "
                "(strictly increasing non-negative magnitudes starting at zero)"
            )
        # plain-Python copies feed the scalar fast path (bisect + float ops)
        self._mags_list = self.magnitudes.tolist()
        self._codes_list = self.codes.tolist()
        self._midpoints: Optional[np.ndarray] = None
        self._direct_values: Optional[np.ndarray] = None
        if self.bits <= DIRECT_INDEX_BITS:
            self._build_direct()

    # ------------------------------------------------------------------ #
    # derived tables
    # ------------------------------------------------------------------ #
    @property
    def midpoints(self) -> np.ndarray:
        """Midpoints between adjacent magnitudes (exact in float64: adjacent
        representable magnitudes carry few significand bits)."""
        if self._midpoints is None:
            self._midpoints = (self.magnitudes[:-1] + self.magnitudes[1:]) * 0.5
        return self._midpoints

    def _build_direct(self) -> None:
        """Precompute the 2^16-entry direct-index table for 8-bit formats.

        Bucket ``h`` covers all float32 values whose bit pattern has upper
        half ``h``.  A bucket is *pure* when no rounding decision boundary
        (a midpoint between adjacent magnitudes, or the overflow threshold)
        falls inside ``[start - ulp32, end)``: the one-ulp guard below the
        bucket start covers float64 inputs whose float32 conversion rounds
        *up into* the bucket (conversion can land on the representable
        bucket start but can never carry a value down across it, so no upper
        guard is needed — a boundary exactly at ``end`` belongs to the next
        bucket).  Every magnitude in a pure bucket then rounds to the same
        result, which is baked into the table (including
        saturation-to-``minpos`` and overflow-to-inf policy).
        Mixed buckets — one per decision boundary, plus the huge-magnitude
        buckets of formats whose range exceeds float32 — hold ``-inf`` as a
        sentinel and fall back to the ``searchsorted`` kernel, so the fast
        path stays bit-exact, ties included (an exact tie always lands in a
        mixed bucket).  The table is mirrored over the sign half so lookups
        need no sign masking; baked-in overflow policy (±inf for IEEE, NaN
        for E4M3) keeps overflowing inputs on the fast path as well.
        """
        sem = self.semantics
        boundaries = self.midpoints
        if sem.overflow_action != "saturate":
            boundaries = np.sort(np.append(boundaries, sem.overflow_threshold))
        n_buckets = 1 << 15  # upper-half patterns of non-negative float32s
        patterns = np.arange(n_buckets + 1, dtype=np.uint32) << np.uint32(16)
        with np.errstate(invalid="ignore"):
            edges32 = patterns.view(np.float32)
            # one-ulp guard band below every bucket start
            lo = np.nextafter(edges32[:-1], np.float32(-np.inf)).astype(np.float64)
            ends = edges32[1:].astype(np.float64)
            starts = edges32[:-1].astype(np.float64)
        # NaN guard bounds (patterns past +inf) sort past every boundary, so
        # those dead buckets come out pure with the largest magnitude; they
        # are only ever hit by NaN inputs, which the caller patches last.
        mixed = np.searchsorted(boundaries, ends, side="left") > np.searchsorted(
            boundaries, lo, side="left"
        )
        values = self.magnitudes[np.searchsorted(self.midpoints, starts, side="right")]
        if sem.underflow_to_min:
            # tapered formats never round a non-zero magnitude to zero; exact
            # zeros are restored by the caller's unsigned-zero pass
            values = np.maximum(values, self.magnitudes[1])
        if sem.overflow_action != "saturate":
            overflow = np.inf if sem.overflow_action == "inf" else np.nan
            beyond = (
                starts > sem.overflow_threshold
                if sem.overflow_strict
                else starts >= sem.overflow_threshold
            )
            values = np.where(beyond, overflow, values)
        values[mixed] = -np.inf  # fallback sentinel (never a real magnitude)
        # mirror over the sign half: bucket indices come straight from the
        # upper 16 bits of the float32 pattern, sign bit included
        self._direct_values = np.concatenate([values, values])

    # ------------------------------------------------------------------ #
    # magnitude rounding
    # ------------------------------------------------------------------ #
    def _finish_magnitudes(self, a: np.ndarray, mag: np.ndarray) -> np.ndarray:
        """Apply the format's underflow/overflow policy to nearest-magnitude
        results ``mag`` for input magnitudes ``a``."""
        sem = self.semantics
        if sem.underflow_to_min:
            mag = np.where((mag == 0.0) & (a != 0.0), self.magnitudes[1], mag)
        if sem.overflow_action != "saturate":
            over = (
                a > sem.overflow_threshold
                if sem.overflow_strict
                else a >= sem.overflow_threshold
            )
            special = np.inf if sem.overflow_action == "inf" else np.nan
            mag = np.where(over, special, mag)
        return mag

    def _round_magnitudes(self, x: np.ndarray) -> np.ndarray:
        """Magnitudes of ``x`` rounded to the format (ties to the even code),
        with the underflow/overflow policy applied.  NaN/inf entries of ``x``
        produce placeholder magnitudes the caller patches afterwards."""
        if self._direct_values is not None:
            flat = np.ravel(x)  # no copy for contiguous input; 0-d becomes 1-d
            with np.errstate(over="ignore", invalid="ignore"):
                f32 = flat.astype(np.float32)
            bucket = f32.view(np.uint32) >> np.uint32(16)
            mag = self._direct_values[bucket]
            fallback = mag == -np.inf
            if fallback.any():
                sub = np.abs(flat[fallback])
                clipped = np.minimum(sub, self.magnitudes[-1])
                idx = nearest_in_table(clipped, self.magnitudes, self.codes)
                mag[fallback] = self._finish_magnitudes(sub, self.magnitudes[idx])
            return mag.reshape(x.shape)
        a = np.abs(x)
        clipped = np.minimum(a, self.magnitudes[-1])
        idx = nearest_in_table(clipped, self.magnitudes, self.codes)
        return self._finish_magnitudes(a, self.magnitudes[idx])

    def prefers_rounding(self, size: int) -> bool:
        """Whether the table backend should round an array of ``size``.

        Formats that keep analytic vector rounding (16-bit IEEE) still win
        from the scalar fast path on tiny arrays — the regime of the
        solvers' elementwise Givens/QL operations.
        """
        return self.semantics.prefer_table_rounding or size <= SCALAR_CUTOFF

    def round_one(self, v: float) -> float:
        """Round one scalar through the table, without any ndarray round-trip.

        Scalar twin of the vector kernel: same clipping, same
        ``nearest_in_table`` distance comparisons (Python floats are the same
        IEEE doubles NumPy uses, so every operation matches bit for bit).
        This is the path :meth:`round_values` takes element-wise for arrays
        of up to ``SCALAR_CUTOFF`` entries, and the path
        ``EmulatedContext`` feeds its scalar elementary operations through.

        Parameters
        ----------
        v:
            One work-precision value as a Python float.

        Returns
        -------
        float
            The nearest representable value of the format.
        """
        sem = self.semantics
        if v != v:  # NaN
            return math.nan
        if v == math.inf or v == -math.inf:
            if sem.inf_result == "inf":
                return v
            if sem.inf_result == "max":
                return math.copysign(self._mags_list[-1], v)
            return math.nan
        if v == 0.0:
            return 0.0 if sem.unsigned_zero else v
        a = abs(v)
        mags = self._mags_list
        last = len(mags) - 1
        clipped = a if a < mags[last] else mags[last]
        mag = mags[nearest_in_table_scalar(clipped, mags, self._codes_list)]
        if sem.underflow_to_min and mag == 0.0:
            mag = mags[1]  # v is non-zero here: saturate at minpos
        if sem.overflow_action != "saturate":
            over = (
                a > sem.overflow_threshold
                if sem.overflow_strict
                else a >= sem.overflow_threshold
            )
            if over:
                if sem.overflow_action == "inf":
                    return math.copysign(math.inf, v)
                return math.nan
        return math.copysign(mag, v)

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def round_values(self, values, out=None) -> np.ndarray:
        """Round work-precision values to the nearest representable values.

        Bit-identical to the format's ``round_array_analytic`` (verified by
        the exhaustive sweeps in ``tests/test_tables.py``).  ``out`` is an
        optional same-shape work-dtype array the result is written into
        (it may alias ``values``); returned when given.
        """
        sem = self.semantics
        x = np.asarray(values, dtype=self.work_dtype)
        if _telemetry.ENABLED:
            kernel = "scalar_loop" if x.size <= SCALAR_CUTOFF else "vector"
            key = (self.format_name, kernel)
            entry = _round_tally.get(key)
            if entry is None:
                entry = _round_tally[key] = [0, 0]
            entry[0] += 1
            entry[1] += x.size
        if x.size <= SCALAR_CUTOFF:
            # tiny arrays (the solvers' scalar operations) skip the ~10
            # NumPy dispatch round-trips of the vector path
            if out is None:
                out = np.empty(x.shape, dtype=self.work_dtype)
            flat = out.flat  # flatiter: assignment works for any layout
            for i, v in enumerate(x.flat):
                flat[i] = self.round_one(float(v))
            return out
        mag = self._round_magnitudes(x)
        res = np.copysign(mag, x)
        if sem.unsigned_zero:
            res = np.where(x == 0.0, 0.0, res)
        finite = np.isfinite(x)
        if not finite.all():
            inf_mask = np.isinf(x)
            if sem.inf_result == "inf":
                res = np.where(inf_mask, x, res)
            elif sem.inf_result == "max":
                res = np.where(inf_mask, np.copysign(self.magnitudes[-1], x), res)
            else:
                res = np.where(inf_mask, np.nan, res)
            res = np.where(~finite & ~inf_mask, np.nan, res)
        if out is not None:
            out[...] = res
            return out
        return res

    def encode_values(self, values) -> np.ndarray:
        """Round and encode values into integer codes (vectorised)."""
        return self.encode_representable(self.round_values(values))

    def encode_representable(self, res) -> np.ndarray:
        """Encode values that are already exactly representable."""
        sem = self.semantics
        res = np.asarray(res, dtype=self.work_dtype)
        finite = np.isfinite(res)
        a = np.abs(np.where(finite, res, 0.0))
        idx = np.searchsorted(self.magnitudes, a)
        out = self.codes[idx].astype(np.uint64)
        negative = np.signbit(res)
        if not sem.signed_zero_code:
            negative = negative & (res != 0.0)
        if sem.negation == "twos_complement":
            mask = np.uint64((1 << self.bits) - 1)
            out = np.where(negative, (np.uint64(1 << self.bits) - out) & mask, out)
        else:
            out = np.where(negative, out | np.uint64(1 << (self.bits - 1)), out)
        if sem.pos_inf_code is not None:
            out = np.where(res == np.inf, np.uint64(sem.pos_inf_code), out)
            out = np.where(res == -np.inf, np.uint64(sem.neg_inf_code), out)
        out = np.where(np.isnan(res), np.uint64(sem.nan_code), out)
        return out

    def decode_values(self, codes) -> np.ndarray:
        """Vectorised decode of an array of integer codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        values = self.decode_lut[codes & np.uint64((1 << self.bits) - 1)]
        return values.astype(self.work_dtype, copy=False)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the table set."""
        total = self.decode_lut.nbytes + self.magnitudes.nbytes + self.codes.nbytes
        for extra in (self._midpoints, self._direct_values):
            if extra is not None:
                total += extra.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - trivial
        kind = "direct" if self._direct_values is not None else "searchsorted"
        return (
            f"<ValueTable {self.format_name!r} ({self.magnitudes.size} magnitudes, "
            f"{kind}, {self.nbytes // 1024} KiB)>"
        )


class TableCache:
    """Process-wide cache of :class:`ValueTable` instances.

    Tables are memoised both on the format instance (formats are module-level
    singletons, so every context of a format shares one table) and in a
    name-keyed registry for introspection and pre-warming.  Worker processes
    forked after :func:`warm_tables` inherit the parent's tables
    copy-on-write instead of rebuilding them.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._tables: dict[str, ValueTable] = {}

    @staticmethod
    def supports(fmt: NumberFormat) -> bool:
        """Whether the engine can serve this format."""
        return (
            0 < fmt.bits <= MAX_TABLE_BITS
            and np.dtype(fmt.work_dtype) == np.dtype(np.float64)
            and fmt.table_semantics() is not None
        )

    def get(self, fmt: NumberFormat) -> Optional[ValueTable]:
        """Table for ``fmt``, built on first use; ``None`` if unsupported."""
        cached = fmt.__dict__.get("_value_table", _UNBUILT)
        if cached is not _UNBUILT:
            return cached
        with self._lock:
            cached = fmt.__dict__.get("_value_table", _UNBUILT)
            if cached is not _UNBUILT:
                return cached
            table = ValueTable(fmt) if self.supports(fmt) else None
            fmt._value_table = table
            if table is not None:
                self._tables.setdefault(fmt.name, table)
                if _telemetry.ENABLED:
                    _metrics.counter("table.build", format=fmt.name).inc()
                    _metrics.gauge("table.cache.nbytes").set(
                        sum(t.nbytes for t in self._tables.values())
                    )
            return table

    def loaded(self) -> list[str]:
        """Names of the formats whose tables have been built."""
        with self._lock:
            return sorted(self._tables)

    def nbytes(self) -> int:
        """Total memory footprint of all built tables."""
        with self._lock:
            return sum(table.nbytes for table in self._tables.values())


class _Unbuilt:
    """Sentinel distinguishing 'never built' from 'ineligible (None)'."""

    __slots__ = ()


_UNBUILT = _Unbuilt()

#: the process-wide table registry
TABLE_CACHE = TableCache()


def table_for(fmt: NumberFormat) -> Optional[ValueTable]:
    """The active :class:`ValueTable` for ``fmt``, or ``None`` when the
    format is not table-eligible or the engine is disabled."""
    if not _ENABLED:
        return None
    return TABLE_CACHE.get(fmt)


def warm_tables(format_names=None) -> list[str]:
    """Pre-build tables for the named formats (all registered when ``None``).

    Returns the names whose tables are loaded.  Called by the experiment
    runner before spawning worker processes so that forked workers share the
    parent's tables instead of each re-enumerating the value sets.
    """
    from .registry import FORMATS

    names = list(FORMATS) if format_names is None else list(format_names)
    loaded = []
    for name in names:
        fmt = FORMATS.get(name)
        if fmt is None:
            continue  # native/reference contexts have no emulated format
        if table_for(fmt) is not None:
            loaded.append(name)
    return loaded
