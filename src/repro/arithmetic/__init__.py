"""Machine-number formats and per-operation rounding compute contexts.

This subpackage provides software emulation of the arithmetic formats studied
in the paper:

* IEEE 754 style formats: ``float16``, ``bfloat16``, ``float32``, ``float64``
  and the OFP8 types ``E4M3`` and ``E5M2``;
* tapered-precision formats: posits (2022 standard, ``es = 2``) and linear
  takums at 8, 16, 32 and 64 bits;
* an extended-precision reference format backed by ``numpy.longdouble``.

Every format exposes a vectorised ``round`` operation (round an array of
work-precision values to the nearest representable value of the format) which
is the primitive used by the compute contexts in
:mod:`repro.arithmetic.context` to emulate "every scalar operation is
performed in the target arithmetic".

On top of the contexts sits the operator API
(:mod:`repro.arithmetic.farray`): ``ctx.array(...)`` / ``ctx.scalar(...)``
bind values to a context so that rounded kernels read as plain NumPy-style
expressions (``w - V @ h``) while every operator routes through the same
context methods; :func:`repro.arithmetic.precision` binds a precision for a
block of such code, and :class:`repro.arithmetic.ContextSpec` names a
context declaratively for the runner and CLI.

Three fast rounding backends serve the formats, all bit-identical to the
analytic ground truth: the shared lookup-table engine
(:mod:`repro.arithmetic.tables`; formats of up to 16 bits, enumerated once
per process, cached across contexts, pre-warmed before experiment workers
fork, direct-indexed O(1) for 8-bit widths), the integer bit-twiddling
kernels (:mod:`repro.arithmetic.bitkernels`; one family-parameterized
round/encode/decode engine over float64 words serving vector rounding of
the 16/32-bit posit/takum and non-cast IEEE formats), and the pure-Python
scalar kernels (``round_scalar_analytic``) that serve scalars and tiny
arrays — the regime of the solvers' elementwise operations — without NumPy
dispatch overhead; see ``docs/architecture.md`` for the full dispatch
matrix.  The analytic vector kernels remain available as ground truth
(``round_array_analytic`` / ``use_tables=False`` /
``set_tables_enabled(False)`` / ``set_bitkernels_enabled(False)`` /
``REPRO_DISABLE_ROUNDING_TABLES=1`` / ``REPRO_DISABLE_BITKERNELS=1``).
"""

from .base import LONGDOUBLE_EXTENDED, NumberFormat, RoundingInfo
from .bitkernels import (
    BitKernel,
    E4M3BitKernel,
    IEEEBitKernel,
    PositBitKernel,
    TakumBitKernel,
    bitkernels_enabled,
    set_enabled as set_bitkernels_enabled,
)
from .ieee import IEEEFormat, BFLOAT16, FLOAT16, FLOAT32, FLOAT64
from .ofp8 import OFP8E4M3, OFP8E5M2, E4M3, E5M2
from .posit import PositFormat, POSIT8, POSIT16, POSIT32, POSIT64
from .takum import TakumFormat, TAKUM8, TAKUM16, TAKUM32, TAKUM64
from .registry import (
    FORMATS,
    get_format,
    available_formats,
    formats_by_width,
    preload_tables,
)
from .tables import (
    TABLE_CACHE,
    TableCache,
    TableSemantics,
    ValueTable,
    table_for,
    tables_enabled,
    set_enabled as set_tables_enabled,
)
from .context import (
    ComputeContext,
    ContextSpec,
    EmulatedContext,
    NativeContext,
    ReferenceContext,
    get_context,
    DynamicRangeError,
)
from .farray import (
    BoundNamespace,
    ContextMismatchError,
    FArray,
    FScalar,
    PrecisionLeakError,
    precision,
)
from .batched import (
    BatchedContext,
    BatchedFArray,
    BatchSpec,
)

__all__ = [
    "NumberFormat",
    "RoundingInfo",
    "LONGDOUBLE_EXTENDED",
    "BitKernel",
    "IEEEBitKernel",
    "E4M3BitKernel",
    "PositBitKernel",
    "TakumBitKernel",
    "bitkernels_enabled",
    "set_bitkernels_enabled",
    "IEEEFormat",
    "BFLOAT16",
    "FLOAT16",
    "FLOAT32",
    "FLOAT64",
    "OFP8E4M3",
    "OFP8E5M2",
    "E4M3",
    "E5M2",
    "PositFormat",
    "POSIT8",
    "POSIT16",
    "POSIT32",
    "POSIT64",
    "TakumFormat",
    "TAKUM8",
    "TAKUM16",
    "TAKUM32",
    "TAKUM64",
    "FORMATS",
    "get_format",
    "available_formats",
    "formats_by_width",
    "preload_tables",
    "TABLE_CACHE",
    "TableCache",
    "TableSemantics",
    "ValueTable",
    "table_for",
    "tables_enabled",
    "set_tables_enabled",
    "ComputeContext",
    "ContextSpec",
    "EmulatedContext",
    "NativeContext",
    "ReferenceContext",
    "get_context",
    "DynamicRangeError",
    "BoundNamespace",
    "FArray",
    "FScalar",
    "PrecisionLeakError",
    "ContextMismatchError",
    "precision",
    "BatchSpec",
    "BatchedContext",
    "BatchedFArray",
]
