"""Stacked multi-format execution: a first-class format axis.

The paper's central experiment runs the *same* Krylov-Schur solve once per
number format.  The sequential engine pays the Python-level dispatch of
every rounded elementary operation (the Givens/QL scalar regime) once per
format.  This module introduces a batched execution model in which a stack
of ``(n_formats, ...)`` trajectories advances in lockstep:

* :class:`BatchSpec` binds an *ordered* list of
  :class:`~repro.arithmetic.context.ContextSpec` values and partitions them
  into work-dtype *lanes* (float64, float32, longdouble) — per-row work-dtype
  promotion is handled at this boundary, so every lane computes in exactly
  the dtype its sequential contexts would have used;
* :class:`BatchedContext` owns one context per batch row and exposes the
  same rounded-operation vocabulary as
  :class:`~repro.arithmetic.context.ComputeContext`, operating on stacked
  arrays whose leading axis is the format axis.  Every element of a result
  is rounded by *its own row's* format — narrow formats through the stacked
  integer bit-kernel tables, wide two-word formats through their own
  context's rounding backend;
* :class:`BatchedFArray` is the operator-form wrapper over a stacked array
  (the batched sibling of :class:`~repro.arithmetic.farray.FArray`).

Bit identity is the design contract, exactly as for the operator API: for
each batch row, every batched operation performs the *same* work-precision
computation and the *same* rounding as the sequential context would, so the
per-format trajectories of the lockstep solvers
(:mod:`repro.core.lockstep`) are bit-identical to the sequential engine
(proven in ``tests/test_lockstep.py``).  Two properties make this possible:

1. IEEE elementwise operations are deterministic: ``np.add`` on a stacked
   float64 row computes the same bits as the sequential scalar path's
   ``float(a) + float(b)``;
2. the rounding backends are value-identical (table == analytic == bit
   kernel, proven in the bit-kernel test suite), so a row may be rounded by
   whichever backend is fastest for the stacked layout.

The stacked rounder concatenates the per-row 4096-entry exponent-field
tables of the one-word integer bit kernels (:mod:`repro.arithmetic.
bitkernels`) into one ``(n_formats * 4096)`` table indexed by
``row * 4096 + (word >> 52)``, so one fused vector pass rounds every row by
its own format.  Rows the kernels cannot serve (two-word 64-bit formats,
forced-table or analytic-verification contexts) fall back to their own
context's ``round`` / ``round_scalar`` — slower, still bit-identical.
"""

from __future__ import annotations

import numpy as np

from .bitkernels import _SPECIAL_IDENTITY, _SPECIAL_RESOLVE
from .context import (
    ComputeContext,
    ContextSpec,
    EmulatedContext,
    NativeContext,
    get_context,
)

__all__ = ["BatchSpec", "BatchedContext", "BatchedFArray"]

_U = np.uint64

#: row-rounding modes
_IDENTITY = 0  # native dtype rows: rounding is the identity on lane values
_KERNEL = 1  # one-word integer bit kernel: served by the stacked tables
_FALLBACK = 2  # everything else: per-row ctx.round / round_scalar


def _as_spec(spec) -> ContextSpec:
    if isinstance(spec, ContextSpec):
        return spec
    if isinstance(spec, str):
        return ContextSpec(format=spec)
    raise TypeError(f"expected ContextSpec or format name, got {type(spec).__name__}")


class BatchSpec:
    """An ordered list of context specs forming one format axis.

    The order is the row order of every stacked array; results are reported
    in the same order.  All specs must agree on ``accumulation`` (mixing
    reduction orders in one lockstep sweep would make the shared index
    bookkeeping ambiguous); ``count_ops`` may vary per row.

    Rows may also be given as already-built
    :class:`~repro.arithmetic.context.ComputeContext` instances;
    :meth:`build_contexts` then returns those exact instances, so a caller
    (the experiment runner) keeps ownership of per-row state such as the
    rounded-op tally.
    """

    def __init__(self, specs):
        items = list(specs)
        if not items:
            raise ValueError("BatchSpec needs at least one context spec")
        prebuilt: list = []
        canonical: list = []
        for s in items:
            if isinstance(s, ComputeContext):
                prebuilt.append(s)
                canonical.append(
                    ContextSpec(
                        format=s.name,
                        accumulation=s.accumulation,
                        use_tables=getattr(s, "use_tables", None),
                        count_ops=s.count_ops,
                    )
                )
            else:
                prebuilt.append(None)
                canonical.append(_as_spec(s))
        accumulations = {s.accumulation for s in canonical}
        if len(accumulations) > 1:
            raise ValueError(
                "all batched specs must share one accumulation strategy, got "
                f"{sorted(accumulations)}"
            )
        self.specs = tuple(canonical)
        self._prebuilt = prebuilt
        self.accumulation = self.specs[0].accumulation

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def formats(self) -> tuple:
        return tuple(s.format for s in self.specs)

    def build_contexts(self) -> list:
        """One sequential compute context per row, in row order.

        Rows given as prebuilt contexts come back as those instances."""
        return [
            ctx if ctx is not None else get_context(s)
            for ctx, s in zip(self._prebuilt, self.specs)
        ]

    def lanes(self):
        """Partition the rows into work-dtype lanes.

        Returns ``[(contexts, indices), ...]`` where ``indices`` are the
        positions of the lane's rows in the original order.  Each lane is
        dtype-uniform, so a :class:`BatchedContext` can be built per lane
        and the per-row work-dtype promotion happens exactly here — at the
        batch boundary, never inside a kernel.
        """
        contexts = self.build_contexts()
        groups: dict = {}
        order: list = []
        for idx, ctx in enumerate(contexts):
            key = np.dtype(ctx.dtype).name
            if key not in groups:
                groups[key] = ([], [])
                order.append(key)
            groups[key][0].append(ctx)
            groups[key][1].append(idx)
        return [groups[key] for key in order]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BatchSpec({list(self.formats)!r})"


class _RowRounder:
    """Rounds each row of a stacked lane array by its own format.

    When every row is served by a one-word integer bit kernel (or is a
    native-dtype identity row), the rounder runs one fused pass over the
    stacked array using the concatenated per-row tables; otherwise it loops
    over the rows and delegates to each row's own context backend.  Both
    paths produce bit-identical values (backend equivalence).
    """

    #: exponent-field table length of the one-word kernels (sign-mirrored)
    _TABLE = 4096

    def __init__(self, contexts):
        self.contexts = contexts
        nrows = len(contexts)
        modes = []
        kernels = []
        lane_dtype = contexts[0].dtype
        for ctx in contexts:
            mode, kern = self._classify(ctx, lane_dtype)
            modes.append(mode)
            kernels.append(kern)
        self.modes = modes
        self.kernels = kernels
        #: rounding is the identity for every row (pure native lanes)
        self.noop = all(m == _IDENTITY for m in modes)
        #: one fused stacked pass serves every row
        self.stacked = (
            not self.noop
            and lane_dtype is np.float64
            and all(m in (_IDENTITY, _KERNEL) for m in modes)
        )
        if self.stacked:
            T = self._TABLE
            shift = np.ones(nrows * T, dtype=_U)
            bias = np.zeros(nrows * T, dtype=_U)
            special = np.zeros(nrows * T, dtype=np.uint8)
            for i, (mode, kern) in enumerate(zip(modes, kernels)):
                sl = slice(i * T, (i + 1) * T)
                if mode == _IDENTITY:
                    special[sl] = _SPECIAL_IDENTITY
                else:
                    if len(kern._shift) != T:
                        raise AssertionError("one-word kernel table size mismatch")
                    shift[sl] = kern._shift
                    bias[sl] = kern._bias
                    special[sl] = kern._special
            self._shift_all = shift
            self._bias_all = bias
            self._special_all = special
            self._scratch: dict = {}
            self._last_size = -1
            self._last_bufs: tuple = ()
            #: identity entries exist only for native rows or kernels with
            #: identity binades; without them ``special`` is 0/RESOLVE and
            #: the per-call IDENTITY scan can be skipped entirely
            self._any_identity = any(
                m == _IDENTITY or (k is not None and k._has_identity)
                for m, k in zip(modes, kernels)
            )
            #: zero-word mask per batch row: unsigned-zero formats clear the
            #: word, IEEE-style formats keep the signed-zero bit pattern
            self._zero_mask = np.array(
                [
                    _U(0) if (k is not None and k.unsigned_zero) else _U(0xFFFFFFFFFFFFFFFF)
                    for k in kernels
                ],
                dtype=_U,
            )
            #: (rows bytes, per_row) -> precomputed flat table offsets; the
            #: same sub-batch rounds thousands of times per sweep, so the
            #: multiply+repeat is worth caching
            self._offsets: dict = {}

    @staticmethod
    def _classify(ctx, lane_dtype):
        if isinstance(ctx, NativeContext):
            return _IDENTITY, None
        if not isinstance(ctx, EmulatedContext):  # pragma: no cover - defensive
            return _FALLBACK, None
        if ctx.use_tables is False or ctx._forced_table is not None:
            # verification / forced-table contexts: honour the row's own
            # backend selection through its round()/round_scalar()
            return _FALLBACK, None
        kern = ctx.format.bitkernel()
        if (
            lane_dtype is np.float64
            and kern is not None
            and kern.WORD_FRAC_BITS == 52  # one-word kernels only
        ):
            return _KERNEL, kern
        return _FALLBACK, None

    def _scratch_for(self, size: int):
        if size == self._last_size:  # consecutive same-shape ops dominate
            return self._last_bufs
        bufs = self._scratch.get(size)
        if bufs is None:
            bufs = (
                np.empty(size, dtype=np.int64),  # flat table index
                np.empty(size, dtype=_U),  # per-element shift
                np.empty(size, dtype=_U),  # lsb / scratch
                np.empty(size, dtype=_U),  # accumulator (rounded word)
                np.empty(size, dtype=np.uint8),  # special mask
            )
            if size <= 1 << 16 and len(self._scratch) < 32:
                self._scratch[size] = bufs
        self._last_size = size
        self._last_bufs = bufs
        return bufs

    def round(self, arr: np.ndarray, rows: np.ndarray) -> None:
        """Round ``arr`` in place; ``rows[i]`` is the format row of
        ``arr[i]`` (the leading axis is the format axis)."""
        if self.noop:
            return
        if self.stacked:
            self._stacked_round(arr, rows)
            return
        contexts = self.contexts
        if arr.ndim == 1:
            for i in range(arr.shape[0]):
                arr[i] = contexts[rows[i]].round_scalar(arr[i])
            return
        for i in range(arr.shape[0]):
            row = arr[i]
            contexts[rows[i]].round(row, out=row)

    def _offsets_for(self, rows: np.ndarray, per_row: int) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        key = (rows.tobytes(), per_row)
        off = self._offsets.get(key)
        if off is None:
            off = (rows * self._TABLE).repeat(per_row)
            if len(self._offsets) < 256:
                self._offsets[key] = off
        return off

    def _stacked_round(self, arr: np.ndarray, rows: np.ndarray) -> None:
        if arr.flags["C_CONTIGUOUS"]:
            buf = arr
        else:
            buf = np.ascontiguousarray(arr)
        flat = buf.reshape(-1)
        u = flat.view(_U)
        size = flat.size
        per_row = size // len(rows)
        idx, shift, lsb, acc, spec = self._scratch_for(size)
        np.right_shift(u, _U(52), out=idx.view(_U))
        # per-element table offset: row * 4096 (+ the word's exponent field)
        np.add(idx, self._offsets_for(rows, per_row), out=idx)
        self._shift_all.take(idx, out=shift)
        # RNE transform: ((u + (half - 1) + lsb) >> s) << s, ties to even
        np.right_shift(u, shift, out=lsb)
        np.bitwise_and(lsb, _U(1), out=lsb)
        self._bias_all.take(idx, out=acc)
        np.add(acc, u, out=acc)
        np.add(acc, lsb, out=acc)
        np.right_shift(acc, shift, out=acc)
        np.left_shift(acc, shift, out=acc)
        self._special_all.take(idx, out=spec)
        if spec.any():
            if self._any_identity:
                np.copyto(acc, u, where=spec == _SPECIAL_IDENTITY)
                mask = spec == _SPECIAL_RESOLVE
                if mask.any():
                    self._resolve_specials(flat, u, acc, mask, rows, per_row)
            else:
                # the table holds only 0/RESOLVE entries: any special needs
                # resolution and the IDENTITY scan can be skipped
                self._resolve_specials(flat, u, acc, spec.view(np.bool_), rows, per_row)
        flat.view(_U)[...] = acc
        if buf is not arr:
            # arr was not contiguous: the transform ran on a copy, so copy
            # the rounded values back through the float view
            arr[...] = buf

    def _resolve_specials(self, flat, u, acc, mask, rows, per_row) -> None:
        """Resolve masked elements through each row's *sequential* backend.

        Exact zeros — by far the most common special in solver data — are
        peeled inline, vectorised across all rows at once (bit-identical in
        every backend: unsigned-zero formats clear the word, IEEE-style
        formats keep the signed-zero pattern); the remaining special-band
        elements — subnormal, overflow and non-finite regions — are rounded
        by the row context itself, so even NaN payload bits match what the
        sequential engine produces (the table and kernel backends differ in
        the NaN sign bit, and a NaN's sign can leak into finite values
        through ``copysign``).
        """
        rows = np.asarray(rows, dtype=np.int64)
        sel = np.nonzero(mask)[0]
        vals = flat[sel]
        nonzero = vals != 0.0
        if not nonzero.all():
            zsel = sel if not nonzero.any() else sel[~nonzero]
            acc[zsel] = u[zsel] & self._zero_mask[rows[zsel // per_row]]
            if not nonzero.any():
                return
            sel = sel[nonzero]
        nzrows = rows[sel // per_row]
        order = np.argsort(nzrows, kind="stable")
        sel = sel[order]
        nzrows = nzrows[order]
        bounds = np.nonzero(np.diff(nzrows))[0] + 1
        for segment in np.split(sel, bounds):
            ctx = self.contexts[rows[segment[0] // per_row]]
            acc[segment] = np.asarray(ctx.round(flat[segment])).view(_U)


class BatchedContext:
    """Rounded stacked operations over one work-dtype lane of a batch.

    The methods mirror :class:`~repro.arithmetic.context.ComputeContext`
    op for op — same work-precision computation, same reduction pairing,
    same branch structure — on arrays whose *leading axis is the format
    axis*.  Every method takes ``rows``: an int array mapping each leading
    index to its batch row, so sub-batches (retirement masks, per-row
    divergence) gather the active rows, operate, and scatter back.

    All rows must share one work dtype (build one context per
    :meth:`BatchSpec.lanes` lane) and one accumulation strategy.
    """

    def __init__(self, contexts):
        if isinstance(contexts, BatchSpec):
            contexts = contexts.build_contexts()
        contexts = list(contexts)
        if not contexts:
            raise ValueError("BatchedContext needs at least one context")
        for ctx in contexts:
            if not isinstance(ctx, ComputeContext):
                raise TypeError("BatchedContext rows must be ComputeContext instances")
        dtypes = {np.dtype(ctx.dtype) for ctx in contexts}
        if len(dtypes) > 1:
            raise ValueError(
                "BatchedContext rows must share one work dtype (split the "
                f"batch into lanes first), got {sorted(d.name for d in dtypes)}"
            )
        accumulations = {ctx.accumulation for ctx in contexts}
        if len(accumulations) > 1:
            raise ValueError("BatchedContext rows must share one accumulation strategy")
        self.rows = tuple(contexts)
        self.nrows = len(contexts)
        self.dtype = contexts[0].dtype
        self.accumulation = contexts[0].accumulation
        self.count_ops = any(ctx.count_ops for ctx in contexts)
        self.names = tuple(ctx.name for ctx in contexts)
        self._rounder = _RowRounder(contexts)
        #: deferred per-op tallies: (rows, elements-per-row) pairs folded
        #: into the row contexts' op counters at flush_op_counts()
        self._pending_tallies: list = []
        #: identity row-map for full-batch operations
        self.all_rows = np.arange(self.nrows, dtype=np.int64)

    @classmethod
    def from_formats(cls, formats, **spec_kwargs) -> "BatchedContext":
        """Build a single-lane batched context from format names.

        Raises when the formats span several work dtypes; use
        :meth:`BatchSpec.lanes` for mixed-width batches.
        """
        return cls(BatchSpec(ContextSpec(format=f, **spec_kwargs) for f in formats))

    # ------------------------------------------------------------------ #
    # rounding & tallies
    # ------------------------------------------------------------------ #
    def _tally(self, rows, n: int) -> None:
        if self.count_ops:
            self._pending_tallies.append((rows, n))

    def flush_op_counts(self) -> None:
        """Fold the deferred per-op tallies into the row contexts.

        The batched ops defer their tallies (appending a pair is far
        cheaper than a scatter-add per elementary op); the lockstep solvers
        flush at phase boundaries so ``ctx.op_count`` of each row stays
        meaningful for records and telemetry.
        """
        if not self._pending_tallies:
            return
        totals = np.zeros(self.nrows, dtype=np.int64)
        for rows, n in self._pending_tallies:
            np.add.at(totals, rows, n)
        self._pending_tallies.clear()
        for i, ctx in enumerate(self.rows):
            if ctx.count_ops and totals[i]:
                ctx.op_count += int(totals[i])

    def round(self, arr: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Round ``arr`` in place, each leading-axis slice by its row's
        format, and return it."""
        self._rounder.round(arr, rows)
        return arr

    # ------------------------------------------------------------------ #
    # elementwise operations (mirroring ComputeContext op for op)
    # ------------------------------------------------------------------ #
    def add(self, a, b, rows, out=None):
        work = np.add(a, b, dtype=self.dtype, out=out)
        self._tally(rows, work.size // len(rows))
        return self.round(work, rows)

    def sub(self, a, b, rows, out=None):
        work = np.subtract(a, b, dtype=self.dtype, out=out)
        self._tally(rows, work.size // len(rows))
        return self.round(work, rows)

    def mul(self, a, b, rows, out=None):
        work = np.multiply(a, b, dtype=self.dtype, out=out)
        self._tally(rows, work.size // len(rows))
        return self.round(work, rows)

    def div(self, a, b, rows, out=None):
        work = np.divide(a, b, dtype=self.dtype, out=out)
        self._tally(rows, work.size // len(rows))
        return self.round(work, rows)

    def sqrt(self, a, rows, out=None):
        a = np.asarray(a, dtype=self.dtype)
        work = np.sqrt(a, out=out)
        if self.dtype is np.float64:
            # the sequential scalar path computes math.sqrt with a negative
            # guard returning +NaN; canonicalise so the bits agree
            neg = a < 0
            if neg.any():
                work[neg] = np.nan
        self._tally(rows, work.size // len(rows))
        return self.round(work, rows)

    def neg(self, a):
        """Exact negation (sign flips are exact in every supported format)."""
        return np.negative(np.asarray(a, dtype=self.dtype))

    def abs(self, a):
        """Exact magnitude (representable whenever the value is)."""
        return np.abs(np.asarray(a, dtype=self.dtype))

    def hypot(self, a, b, rows):
        """Overflow-safe ``sqrt(a^2 + b^2)``, the scalar-branch structure of
        :meth:`ComputeContext.hypot` applied per row.

        NaN / zero / infinite scales short-circuit exactly like the
        sequential scalar path (no rounded operations for those rows); the
        general rows run the five-operation scaled form in one sub-batch.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        aa = np.abs(a)
        ab = np.abs(b)
        nanm = np.isnan(aa) | np.isnan(ab)
        scale = np.maximum(aa, ab)
        small = np.minimum(aa, ab)
        zerom = (scale == 0) & ~nanm
        infm = np.isinf(scale) & ~nanm
        general = ~(nanm | zerom | infm)
        if general.all():
            t = self.div(small, scale, rows)
            one = self.dtype(1.0)
            return self.mul(
                scale, self.sqrt(self.add(one, self.mul(t, t, rows), rows), rows), rows
            )
        res = np.empty(scale.shape, dtype=self.dtype)
        res[nanm] = self.dtype(np.nan)
        res[zerom] = self.dtype(0.0)
        res[infm] = self.dtype(np.inf)
        if general.any():
            gi = np.nonzero(general)[0]
            sub_rows = rows[gi]
            t = self.div(small[gi], scale[gi], sub_rows)
            one = self.dtype(1.0)
            res[gi] = self.mul(
                scale[gi],
                self.sqrt(self.add(one, self.mul(t, t, sub_rows), sub_rows), sub_rows),
                sub_rows,
            )
        return res

    # ------------------------------------------------------------------ #
    # reductions & dense kernels
    # ------------------------------------------------------------------ #
    def reduce_last_inplace(self, buf: np.ndarray, rows) -> np.ndarray:
        """Rounded reduction along the last axis of an *owned* buffer.

        Mirrors :meth:`ComputeContext._reduce_last_axis_inplace` exactly:
        the pairwise strategy pairs live partials on a doubling stride, so
        the per-row pairing — and every intermediate rounding — is
        identical to the sequential reduction of each row.
        """
        m = buf.shape[-1]
        if m == 0:
            return np.zeros(buf.shape[:-1], dtype=self.dtype)
        if m > 1:
            if self.accumulation == "pairwise":
                step, count = 1, m
                while count > 1:
                    half = count // 2
                    even = buf[..., 0 : 2 * half * step : 2 * step]
                    odd = buf[..., step : 2 * half * step : 2 * step]
                    work = np.add(even, odd)
                    self._tally(rows, work.size // len(rows))
                    self.round(work, rows)
                    even[...] = work
                    count = half + (count & 1)
                    step *= 2
            else:
                acc = np.ascontiguousarray(buf[..., 0])
                for j in range(1, m):
                    self.add(acc, buf[..., j], rows, out=acc)
                return acc
        return np.ascontiguousarray(buf[..., 0])

    def dot(self, x, y, rows) -> np.ndarray:
        """Rowwise inner product ``(R, n) x (R, n) -> (R,)``."""
        return self.reduce_last_inplace(self.mul(x, y, rows), rows)

    def norm2(self, X, rows) -> np.ndarray:
        """Rowwise scaled Euclidean norm ``(R, n) -> (R,)``.

        Mirrors :meth:`ComputeContext.norm2` per row, including the exact
        zero / non-finite scale short-circuits (which perform no rounded
        operations in the sequential path either).
        """
        X = np.asarray(X, dtype=self.dtype)
        nrows = X.shape[0]
        if X.shape[-1] == 0:
            return np.zeros(nrows, dtype=self.dtype)
        scale = np.max(np.abs(X), axis=-1)
        res = np.empty(nrows, dtype=self.dtype)
        nanm = np.isnan(scale)
        infm = np.isinf(scale) & ~nanm
        zerom = (scale == 0) & ~nanm
        general = ~(nanm | infm | zerom)
        res[nanm] = self.dtype(np.nan)
        res[infm] = self.dtype(np.inf)
        res[zerom] = self.dtype(0.0)
        if general.all():
            xs = self.div(X, scale[:, None], rows)
            return self.mul(scale, self.sqrt(self.dot(xs, xs, rows), rows), rows)
        if general.any():
            gi = np.nonzero(general)[0]
            sub_rows = rows[gi]
            xs = self.div(X[gi], scale[gi][:, None], sub_rows)
            res[gi] = self.mul(
                scale[gi], self.sqrt(self.dot(xs, xs, sub_rows), sub_rows), sub_rows
            )
        return res

    def gemv(self, M, x, rows) -> np.ndarray:
        """Rowwise ``M @ x``: ``(R, m, n) x (R, n) -> (R, m)``."""
        M = np.asarray(M, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        if M.shape[2] == 0:
            return np.zeros(M.shape[:2], dtype=self.dtype)
        prods = self.mul(M, x[:, None, :], rows)
        return self.reduce_last_inplace(prods, rows)

    def gemv_t(self, M, x, rows) -> np.ndarray:
        """Rowwise ``M.T @ x``: ``(R, n, m) x (R, n) -> (R, m)``."""
        M = np.asarray(M, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        if M.shape[1] == 0:
            return np.zeros((M.shape[0], M.shape[2]), dtype=self.dtype)
        prods = self.mul(np.swapaxes(M, 1, 2), x[:, None, :], rows)
        return self.reduce_last_inplace(prods, rows)

    def gemm(self, A, B, rows) -> np.ndarray:
        """Rowwise ``A @ B``: ``(R, m, k) x (R, k, p) -> (R, m, p)``."""
        A = np.asarray(A, dtype=self.dtype)
        B = np.asarray(B, dtype=self.dtype)
        if A.shape[2] != B.shape[1]:
            raise ValueError("gemm dimension mismatch")
        if A.shape[2] == 0:
            return np.zeros((A.shape[0], A.shape[1], B.shape[2]), dtype=self.dtype)
        prods = self.mul(A[:, :, :, None], B[:, None, :, :], rows)
        return self.reduce_last_inplace(np.moveaxis(prods, 2, -1), rows)

    def spmv(self, data, indices, indptr, X, rows) -> np.ndarray:
        """Rowwise sparse CSR product over a *shared* sparsity pattern.

        ``data`` is the stacked per-row matrix values ``(R, nnz)`` (each row
        already converted into its format); ``X`` the stacked operand
        ``(R, n)``.  The segmented reduction mirrors
        :meth:`ComputeContext._segmented_reduce` — the index bookkeeping is
        row-independent because the pattern is shared, so the per-row
        pairing matches the sequential kernel exactly.
        """
        X = np.asarray(X, dtype=self.dtype)
        data = np.asarray(data, dtype=self.dtype)
        nrows_mat = len(indptr) - 1
        if data.shape[1] == 0:
            return np.zeros((data.shape[0], nrows_mat), dtype=self.dtype)
        prods = self.mul(data, X[:, indices], rows)
        return self._segmented_reduce(prods, indptr, nrows_mat, rows)

    def _segmented_reduce(self, vals, indptr, nseg, rows) -> np.ndarray:
        counts = np.diff(indptr).astype(np.int64)
        out = np.zeros((vals.shape[0], nseg), dtype=self.dtype)
        if vals.shape[1] == 0:
            return out
        if self.accumulation == "sequential":
            starts = np.asarray(indptr[:-1], dtype=np.int64)
            acc_rows = np.nonzero(counts > 0)[0]
            out[:, acc_rows] = vals[:, starts[acc_rows]]
            k = 1
            while True:
                segs = np.nonzero(counts > k)[0]
                if segs.size == 0:
                    break
                out[:, segs] = self.add(out[:, segs], vals[:, starts[segs] + k], rows)
                k += 1
            return out
        vals = np.array(vals, dtype=self.dtype, copy=True)
        counts = counts.copy()
        while counts.max(initial=0) > 1:
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            segid = np.repeat(np.arange(nseg), counts)
            local = np.arange(vals.shape[1]) - starts[segid]
            count_per_elem = counts[segid]
            is_left = (local % 2 == 0) & (local + 1 < count_per_elem)
            is_single = (local % 2 == 0) & (local + 1 >= count_per_elem)
            keep = is_left | is_single
            left_idx = np.nonzero(is_left)[0]
            merged = self.add(vals[:, left_idx], vals[:, left_idx + 1], rows)
            new_vals = vals[:, keep].copy()
            positions = np.cumsum(keep)[left_idx] - 1
            new_vals[:, positions] = merged
            vals = new_vals
            counts = (counts + 1) // 2
        nonempty = np.nonzero(counts == 1)[0]
        out[:, nonempty] = vals
        return out


class BatchedFArray:
    """A stacked array bound to a :class:`BatchedContext`.

    The batched sibling of :class:`~repro.arithmetic.farray.FArray`: the
    leading axis of :attr:`data` is the format axis, operators route
    through the batched rounded kernels, and every row of every result is
    rounded by its own format.  Construction does not round (``wrap``
    semantics — the in-solver fast path); use :meth:`BatchedContext.round`
    on raw input first when representability is not guaranteed.

    The per-row trajectories of operator chains are bit-identical to
    running the same chain on each row's sequential
    :class:`~repro.arithmetic.farray.FArray` — the migration contract of
    ``docs/api.md``.
    """

    __slots__ = ("ctx", "data", "rows")

    def __init__(self, ctx: BatchedContext, data, rows=None):
        self.ctx = ctx
        self.data = np.asarray(data, dtype=ctx.dtype)
        self.rows = ctx.all_rows if rows is None else np.asarray(rows, dtype=np.int64)
        if self.data.shape[0] != len(self.rows):
            raise ValueError(
                f"leading (format) axis {self.data.shape[0]} does not match "
                f"the row map of length {len(self.rows)}"
            )

    @property
    def shape(self):
        return self.data.shape

    @property
    def nrows(self) -> int:
        return int(self.data.shape[0])

    def row(self, i: int):
        """Row ``i`` unwrapped, bound to its own sequential context as an
        :class:`~repro.arithmetic.farray.FArray` (lockstep -> sequential
        hand-off)."""
        return self.ctx.rows[self.rows[i]].wrap(self.data[i])

    def copy(self) -> "BatchedFArray":
        return BatchedFArray(self.ctx, self.data.copy(), self.rows)

    def _operand(self, other):
        if isinstance(other, BatchedFArray):
            if other.ctx is not self.ctx:
                from .farray import ContextMismatchError

                raise ContextMismatchError(
                    "/".join(self.ctx.names), "/".join(other.ctx.names)
                )
            return other.data
        if isinstance(other, (int, float, np.floating, np.integer, np.ndarray)):
            return other
        return None

    def _binary(self, op, other):
        od = self._operand(other)
        if od is None:
            return NotImplemented
        return BatchedFArray(self.ctx, op(self.data, od, self.rows), self.rows)

    def __add__(self, other):
        return self._binary(self.ctx.add, other)

    def __sub__(self, other):
        return self._binary(self.ctx.sub, other)

    def __mul__(self, other):
        return self._binary(self.ctx.mul, other)

    def __truediv__(self, other):
        return self._binary(self.ctx.div, other)

    def __radd__(self, other):
        od = self._operand(other)
        if od is None:
            return NotImplemented
        return BatchedFArray(self.ctx, self.ctx.add(od, self.data, self.rows), self.rows)

    def __rmul__(self, other):
        od = self._operand(other)
        if od is None:
            return NotImplemented
        return BatchedFArray(self.ctx, self.ctx.mul(od, self.data, self.rows), self.rows)

    def __neg__(self):
        return BatchedFArray(self.ctx, self.ctx.neg(self.data), self.rows)

    def __abs__(self):
        return BatchedFArray(self.ctx, self.ctx.abs(self.data), self.rows)

    def sqrt(self) -> "BatchedFArray":
        return BatchedFArray(self.ctx, self.ctx.sqrt(self.data.copy(), self.rows), self.rows)

    def dot(self, other) -> "BatchedFArray":
        od = self._operand(other)
        return BatchedFArray(self.ctx, self.ctx.dot(self.data, od, self.rows), self.rows)

    def norm2(self) -> "BatchedFArray":
        return BatchedFArray(self.ctx, self.ctx.norm2(self.data, self.rows), self.rows)

    def hypot(self, other) -> "BatchedFArray":
        od = self._operand(other)
        return BatchedFArray(self.ctx, self.ctx.hypot(self.data, od, self.rows), self.rows)

    def __matmul__(self, other):
        od = self._operand(other)
        if od is None:
            return NotImplemented
        sd = self.data
        if sd.ndim == 3:
            res = self.ctx.gemv(sd, od, self.rows) if od.ndim == 2 else self.ctx.gemm(sd, od, self.rows)
        elif od.ndim == 3:
            res = self.ctx.gemv_t(od, sd, self.rows)  # x @ M == M^T x, per row
        else:
            res = self.ctx.dot(sd, od, self.rows)
        return BatchedFArray(self.ctx, res, self.rows)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BatchedFArray(shape={self.data.shape}, formats={self.ctx.names!r})"
