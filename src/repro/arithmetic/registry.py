"""Registry of the machine-number formats evaluated in the paper.

The registry maps format names (as used throughout the experiments, figures
and benchmarks) to :class:`~repro.arithmetic.base.NumberFormat` instances and
groups them by storage width, mirroring the four panels (8/16/32/64 bits) of
the paper's figures.
"""

from __future__ import annotations

from .base import NumberFormat
from .ieee import BFLOAT16, FLOAT16, FLOAT32, FLOAT64
from .ofp8 import E4M3, E5M2
from .posit import POSIT8, POSIT16, POSIT32, POSIT64
from .takum import TAKUM8, TAKUM16, TAKUM32, TAKUM64

__all__ = [
    "FORMATS",
    "get_format",
    "available_formats",
    "formats_by_width",
    "PAPER_FORMATS",
    "preload_tables",
]

#: every format instance known to the library, keyed by name
FORMATS: dict[str, NumberFormat] = {
    fmt.name: fmt
    for fmt in (
        E4M3,
        E5M2,
        POSIT8,
        TAKUM8,
        FLOAT16,
        BFLOAT16,
        POSIT16,
        TAKUM16,
        FLOAT32,
        POSIT32,
        TAKUM32,
        FLOAT64,
        POSIT64,
        TAKUM64,
    )
}

#: formats evaluated by the paper, grouped by bit width in figure order
PAPER_FORMATS: dict[int, tuple[str, ...]] = {
    8: ("E4M3", "E5M2", "takum8", "posit8"),
    16: ("float16", "takum16", "posit16", "bfloat16"),
    32: ("float32", "takum32", "posit32"),
    64: ("float64", "takum64", "posit64"),
}


def get_format(name: str) -> NumberFormat:
    """Return the registered format called ``name``.

    Raises
    ------
    KeyError
        If no format with that name is registered.
    """
    try:
        return FORMATS[name]
    except KeyError:
        raise KeyError(
            f"unknown number format {name!r}; available: {sorted(FORMATS)}"
        ) from None


def available_formats() -> list[str]:
    """Names of all registered formats."""
    return list(FORMATS)


def preload_tables(names=None) -> list[str]:
    """Build the lookup-table rounding engine for the named formats.

    Registered formats are process-wide singletons, so the tables built here
    are shared by every context that uses them afterwards; the experiment
    runner calls this before forking worker processes so workers inherit the
    tables copy-on-write instead of re-enumerating the value sets.  Names
    that are not registered formats (native/reference contexts) and formats
    the engine cannot serve are skipped.  Returns the loaded format names.
    """
    from .tables import warm_tables

    return warm_tables(names)


def formats_by_width(bits: int) -> list[NumberFormat]:
    """All registered formats with the given storage width, in figure order
    when the width is one of the paper's panels."""
    if bits in PAPER_FORMATS:
        return [FORMATS[name] for name in PAPER_FORMATS[bits]]
    return [fmt for fmt in FORMATS.values() if fmt.bits == bits]
