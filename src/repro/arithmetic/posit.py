"""Posit arithmetic (2022 Posit Standard, ``es = 2``).

A posit of width ``n`` encodes, from the most significant bit: a sign bit, a
variable-length regime (a run of identical bits terminated by the opposite
bit), ``es`` exponent bits and the remaining fraction bits.  Negative posits
are encoded as the two's complement of the positive pattern; the all-zeros
pattern is 0 and ``1000...0`` is NaR (not-a-real).

Posit semantics implemented here:

* round to nearest, ties to the even code,
* rounding never produces 0 or NaR from a finite non-zero value: magnitudes
  saturate at ``minpos``/``maxpos``,
* no signed zero and no infinities.

The hot path (:meth:`PositFormat.round_array`) is fully vectorised: formats of
16 bits or fewer use an exact table of representable magnitudes, wider formats
use an analytic binade-quantum computation with a small table for the extreme
regime regions (where fewer than one fraction bit survives).
"""

from __future__ import annotations

import math

import numpy as np

from . import base as _base
from .base import (
    SCALAR_CUTOFF,
    WIDE_SCALAR_CUTOFF,
    NumberFormat,
    nearest_in_table,
    nearest_in_table_scalar,
    round_to_quantum,
)
from .bitkernels import (
    PositBitKernel,
    PositExtendedBitKernel,
    extended_layout_supported,
)

__all__ = ["PositFormat", "POSIT8", "POSIT16", "POSIT32", "POSIT64"]


class PositFormat(NumberFormat):
    """Posit format of width ``nbits`` with ``es`` exponent bits (default 2).

    Parameters
    ----------
    nbits:
        Storage width in bits (at least 3).
    es:
        Number of exponent bits (2 in the 2022 standard).
    name:
        Registry name; defaults to ``"posit<nbits>"``.
    """

    saturating = True
    has_infinity = False
    has_scalar_kernel = True

    def __init__(self, nbits: int, es: int = 2, name: str | None = None):
        if nbits < 3:
            raise ValueError("posit width must be at least 3 bits")
        self.bits = int(nbits)
        self.es = int(es)
        self.name = name or f"posit{nbits}"
        # wide posits need > 52 significand bits near 1.0; on hosts whose
        # numpy.longdouble is genuinely wider than float64 they work in
        # longdouble, elsewhere (Windows/ARM: longdouble == float64) they
        # fall back to float64 work precision, where the one-word bit
        # kernel still serves them bit-exactly (binades whose posit grid is
        # finer than float64's become identity rows).  base.LONGDOUBLE_-
        # EXTENDED is read at construction time so tests can simulate the
        # degraded platforms by monkeypatching it.
        self.work_dtype = (
            np.longdouble if nbits > 32 and _base.LONGDOUBLE_EXTENDED else np.float64
        )
        # the 16-bit table kernel is a 2^15-entry searchsorted, which the
        # integer bit kernel beats at vector sizes (8-bit posits keep the
        # direct-indexed table, a single gather)
        self.prefer_bitkernel_rounding = 8 < nbits <= 16
        self._useed_exp = 1 << self.es  # exponent scale per regime step
        max_k = self.bits - 2
        self._max_exp = self._useed_exp * max_k
        # analytic region: binades that retain at least one fraction bit
        self._k_lo = -(self.bits - 3 - self.es)
        self._k_hi = self.bits - 4 - self.es
        self._full_table = self.bits <= 16
        self._magnitudes: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._lo_table: tuple[np.ndarray, np.ndarray] | None = None
        self._hi_table: tuple[np.ndarray, np.ndarray] | None = None
        self._scalar_state: tuple | None = None
        # the longdouble kernel pays NumPy scalar dispatch (~4 us/element),
        # which moves its break-even against the vector kernel down to ~8
        self.scalar_cutoff = (
            WIDE_SCALAR_CUTOFF if self.work_dtype is np.float64 else SCALAR_CUTOFF
        )
        if self.work_dtype is np.longdouble:
            # the two-word bitkernel's fixed cost (~12 us) is below two
            # longdouble scalar roundings, so hand off almost immediately
            self.bitkernel_scalar_cutoff = 2

    # ------------------------------------------------------------------ #
    # bit-level
    # ------------------------------------------------------------------ #
    def decode_code(self, code: int):
        """Decode one posit code (sign, regime run, exponent, fraction) into
        its work-precision value; ``0`` decodes to 0.0 and ``10…0`` to NaR
        (NaN).  Negative codes are two's-complement of the positive pattern."""
        n = self.bits
        code = int(code) & ((1 << n) - 1)
        if code == 0:
            return self.work_dtype(0.0)
        if code == 1 << (n - 1):
            return self.work_dtype(np.nan)
        sign = 1.0
        if code >> (n - 1):
            code = (1 << n) - code
            sign = -1.0
        body = code & ((1 << (n - 1)) - 1)
        # regime: run of identical bits starting at position n-2
        pos = n - 2
        first = (body >> pos) & 1
        run = 0
        while pos >= 0 and ((body >> pos) & 1) == first:
            run += 1
            pos -= 1
        k = (run - 1) if first == 1 else -run
        pos -= 1  # skip terminating bit (may step past the end; that is fine)
        remaining = max(pos + 1, 0)
        exp_bits = min(self.es, remaining)
        exponent = (body >> (remaining - exp_bits)) & ((1 << exp_bits) - 1) if exp_bits > 0 else 0
        exponent <<= self.es - exp_bits
        frac_bits = remaining - exp_bits
        frac = body & ((1 << frac_bits) - 1) if frac_bits > 0 else 0
        scale = k * self._useed_exp + exponent
        significand = (1 << frac_bits) + frac
        value = np.ldexp(self.work_dtype(significand), int(scale - frac_bits))
        return self.work_dtype(sign) * value

    def _build_bitkernel(self):
        """Integer bit-twiddling kernel: the one-word float64 kernel for
        float64-work widths, the two-word extended kernel for the 64-bit
        format on 80-bit-longdouble hosts (``None`` on other longdouble
        layouts).  The extreme-regime binades resolve through
        :meth:`round_array_analytic`, so either kernel is bit-identical to
        the analytic ground truth."""
        if np.dtype(self.work_dtype) == np.dtype(np.float64):
            return PositBitKernel(self.bits, self.es, self.round_array_analytic)
        if extended_layout_supported():
            return PositExtendedBitKernel(
                self.bits, self.es, self.round_array_analytic
            )
        return None

    def table_semantics(self):
        """Posit semantics for the shared lookup-table rounding engine."""
        from .tables import TableSemantics

        return TableSemantics(
            negation="twos_complement",
            unsigned_zero=True,
            underflow_to_min=True,
            overflow_action="saturate",
            inf_result="nan",
            nan_code=1 << (self.bits - 1),
        )

    def encode_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) encode: round through the analytic kernel,
        then emit the posit bit pattern per element.  Returns ``uint64``
        codes of the same shape as ``values``."""
        values = np.asarray(values, dtype=self.work_dtype)
        rounded = self.round_array_analytic(values)
        out = np.zeros(values.shape, dtype=np.uint64)
        flat = rounded.ravel()
        res = out.ravel()
        for i in range(flat.size):
            res[i] = self._encode_scalar(flat[i])
        return out

    def _encode_scalar(self, v) -> int:
        n = self.bits
        if np.isnan(v):
            return 1 << (n - 1)
        if v == 0:
            return 0
        neg = v < 0
        a = abs(v)
        # exact scale and fraction of an already-representable magnitude
        scale = int(np.floor(np.log2(a)))
        if np.ldexp(self.work_dtype(1.0), scale) > a:
            scale -= 1
        elif np.ldexp(self.work_dtype(1.0), scale + 1) <= a:
            scale += 1
        k, exponent = divmod(scale, self._useed_exp)
        regime_len = k + 2 if k >= 0 else -k + 1
        frac_bits = max(n - 1 - regime_len - self.es, 0)
        frac_val = a / np.ldexp(self.work_dtype(1.0), scale) - 1.0
        # stay in the work precision: posit64 fractions carry up to 59
        # bits, which a float64 round-trip would round to 53 and shift
        # the emitted code by one
        frac = int(np.rint(np.ldexp(frac_val, frac_bits)))
        body_bits = n - 1
        if k >= 0:
            regime_pattern = ((1 << (k + 1)) - 1) << 1  # k+1 ones then a zero
            regime_width = k + 2
            if regime_width > body_bits:  # maxpos: regime run fills the body
                regime_pattern = (1 << body_bits) - 1
                regime_width = body_bits
        else:
            regime_pattern = 1  # -k zeros then a one
            regime_width = -k + 1
        avail = body_bits - regime_width
        payload = (exponent << frac_bits) | frac
        payload_width = self.es + frac_bits
        if payload_width > avail:
            payload >>= payload_width - avail
            payload_width = avail
        body = (regime_pattern << (avail)) | (payload << (avail - payload_width))
        body &= (1 << body_bits) - 1
        code = body
        if neg:
            code = ((1 << n) - code) & ((1 << n) - 1)
        return code

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #
    def _ensure_tables(self) -> None:
        if self._full_table:
            if self._magnitudes is None:
                mags, codes = [], []
                for code in range(1, 1 << (self.bits - 1)):
                    mags.append(float(self.decode_code(code)))
                    codes.append(code)
                mags = np.asarray([0.0] + mags, dtype=np.float64)
                codes = np.asarray([0] + codes, dtype=np.int64)
                order = np.argsort(mags)
                self._magnitudes = mags[order]
                self._codes = codes[order]
            return
        if self._lo_table is None:
            lo_boundary = np.ldexp(
                self.work_dtype(1.0), self._k_lo * self._useed_exp
            )
            hi_boundary = np.ldexp(
                self.work_dtype(1.0), (self._k_hi + 1) * self._useed_exp
            )
            lo_mags, lo_codes = [], []
            code = 1
            while True:
                v = self.decode_code(code)
                lo_mags.append(v)
                lo_codes.append(code)
                if v >= lo_boundary or code > 4096:
                    break
                code += 1
            hi_mags, hi_codes = [], []
            code = (1 << (self.bits - 1)) - 1
            while True:
                v = self.decode_code(code)
                hi_mags.append(v)
                hi_codes.append(code)
                if v <= hi_boundary or code < (1 << (self.bits - 1)) - 4096:
                    break
                code -= 1
            self._lo_table = (
                np.asarray(lo_mags, dtype=self.work_dtype),
                np.asarray(lo_codes, dtype=np.int64),
            )
            order = np.argsort(np.asarray(hi_mags, dtype=self.work_dtype))
            self._hi_table = (
                np.asarray(hi_mags, dtype=self.work_dtype)[order],
                np.asarray(hi_codes, dtype=np.int64)[order],
            )

    def _build_scalar_state(self) -> tuple:
        """Assemble the constants the scalar kernel needs, once per format.

        For float64 work precision the tables are converted to plain Python
        lists and floats (``bisect`` plus float arithmetic beat NumPy scalar
        dispatch); the 64-bit format keeps ``longdouble`` arrays/scalars so
        the scalar arithmetic stays in extended precision.
        """
        self._ensure_tables()
        if self._full_table:
            state = (self._magnitudes.tolist(), self._codes.tolist())
        else:
            one = self.work_dtype(1.0)
            maxpos = np.ldexp(one, self._max_exp)
            minpos = np.ldexp(one, -self._max_exp)
            lo_b = np.ldexp(one, self._k_lo * self._useed_exp)
            hi_b = np.ldexp(one, (self._k_hi + 1) * self._useed_exp)
            lo_mags, lo_codes = self._lo_table
            hi_mags, hi_codes = self._hi_table
            if self.work_dtype is np.float64:
                state = (
                    float(maxpos),
                    float(minpos),
                    float(lo_b),
                    float(hi_b),
                    lo_mags.tolist(),
                    lo_codes.tolist(),
                    hi_mags.tolist(),
                    hi_codes.tolist(),
                )
            else:
                state = (
                    maxpos,
                    minpos,
                    lo_b,
                    hi_b,
                    lo_mags,
                    lo_codes,
                    hi_mags,
                    hi_codes,
                )
        self._scalar_state = state
        return state

    def round_scalar_analytic(self, value):
        """Scalar twin of :meth:`round_array_analytic` for one value.

        Pure-Python ``math.frexp``/``math.ldexp`` kernel (NumPy scalar ops
        for the extended-precision 64-bit format), bit-identical to the
        vector kernel: same clamp to ``maxpos``, same binade-quantum
        rounding with ties to even, same extreme-regime tables, same
        saturation.  Verified by ``tests/test_scalar_rounding.py``.
        """
        state = self._scalar_state
        if state is None:
            state = self._build_scalar_state()
        if self.work_dtype is np.float64:
            v = float(value)
            if v != v or v == math.inf or v == -math.inf:
                return math.nan  # posit NaR; infinities only arise from x/0
            if v == 0.0:
                return 0.0  # single unsigned zero
            a = -v if v < 0.0 else v
            if self._full_table:
                mags, codes = state
                last = mags[-1]
                clipped = a if a < last else last
                mag = mags[nearest_in_table_scalar(clipped, mags, codes)]
                if mag == 0.0:
                    mag = self.min_positive  # never round non-zero to zero
            else:
                maxpos, minpos, lo_b, hi_b, lo_mags, lo_codes, hi_mags, hi_codes = state
                safe = a if a < maxpos else maxpos
                if safe < lo_b:
                    mag = lo_mags[nearest_in_table_scalar(safe, lo_mags, lo_codes)]
                elif safe >= hi_b:
                    mag = hi_mags[nearest_in_table_scalar(safe, hi_mags, hi_codes)]
                else:
                    exp = math.frexp(safe)[1] - 1
                    k = exp // self._useed_exp
                    frac_bits = self.bits - 1 - (k + 2 if k >= 0 else 1 - k) - self.es
                    if frac_bits < 0:
                        frac_bits = 0
                    qexp = exp - frac_bits
                    mag = float(round(math.ldexp(safe, -qexp))) * math.ldexp(1.0, qexp)
                if mag < minpos:
                    mag = minpos
                elif mag > maxpos:
                    mag = maxpos
            return -mag if v < 0.0 else mag
        # extended-precision (longdouble) twin: same structure, NumPy scalars
        wd = self.work_dtype
        v = value if isinstance(value, wd) else wd(value)
        if v != v or v == np.inf or v == -np.inf:
            return wd(np.nan)
        if v == 0.0:
            return wd(0.0)
        a = -v if v < 0.0 else v
        maxpos, minpos, lo_b, hi_b, lo_mags, lo_codes, hi_mags, hi_codes = state
        safe = a if a < maxpos else maxpos
        if safe < lo_b:
            mag = lo_mags[nearest_in_table_scalar(safe, lo_mags, lo_codes)]
        elif safe >= hi_b:
            mag = hi_mags[nearest_in_table_scalar(safe, hi_mags, hi_codes)]
        else:
            exp = int(np.frexp(safe)[1]) - 1
            k = exp // self._useed_exp
            frac_bits = self.bits - 1 - (k + 2 if k >= 0 else 1 - k) - self.es
            if frac_bits < 0:
                frac_bits = 0
            qexp = exp - frac_bits
            mag = np.rint(np.ldexp(safe, -qexp)) * np.ldexp(wd(1.0), qexp)
        if mag < minpos:
            mag = minpos
        elif mag > maxpos:
            mag = maxpos
        return -mag if v < 0.0 else mag

    # ------------------------------------------------------------------ #
    # value-space rounding
    # ------------------------------------------------------------------ #
    def round_array_analytic(self, values) -> np.ndarray:
        """Vectorised ground-truth rounding.  Formats of <= 16 bits use an
        exact table of representable magnitudes; wider formats use an
        analytic binade-quantum computation with small tables for the
        extreme regime regions (where fewer than one fraction bit
        survives).  Saturates at minpos/maxpos, maps inf to NaR."""
        x = np.asarray(values, dtype=self.work_dtype)
        out = np.empty(x.shape, dtype=self.work_dtype)
        self._ensure_tables()
        nan_mask = ~np.isfinite(x) & ~np.isinf(x)  # NaN only
        inf_mask = np.isinf(x)
        zero_mask = x == 0
        a = np.abs(np.where(np.isfinite(x), x, 0.0))
        sign = np.where(np.signbit(x), self.work_dtype(-1.0), self.work_dtype(1.0))

        if self._full_table:
            # clamp to the largest magnitude first: far outside the table the
            # distances to the last two entries are indistinguishable in the
            # work precision and the tie rule could pick the wrong one
            clipped = np.minimum(a.astype(np.float64), self._magnitudes[-1])
            idx = nearest_in_table(clipped, self._magnitudes, self._codes)
            mag = self._magnitudes[idx].astype(self.work_dtype)
            # saturate: never round a non-zero magnitude to zero
            mag = np.where((mag == 0) & ~zero_mask, self.work_dtype(self.min_positive), mag)
        else:
            mag = self._round_magnitude_analytic(a, zero_mask)

        res = sign * mag
        res = np.where(zero_mask, self.work_dtype(0.0), res)
        # infinities arise only from division by exact zero in the work
        # precision; posit semantics map those to NaR
        res = np.where(inf_mask, self.work_dtype(np.nan), res)
        res = np.where(nan_mask, self.work_dtype(np.nan), res)
        out[...] = res
        return out

    def _round_magnitude_analytic(self, a, zero_mask) -> np.ndarray:
        work_one = self.work_dtype(1.0)
        maxpos = np.ldexp(work_one, self._max_exp)
        minpos = np.ldexp(work_one, -self._max_exp)
        lo_boundary = np.ldexp(work_one, self._k_lo * self._useed_exp)
        hi_boundary = np.ldexp(work_one, (self._k_hi + 1) * self._useed_exp)

        # clamp to the representable magnitude range up front (posit rounding
        # saturates, and values far beyond maxpos would make the nearest-table
        # distances indistinguishable in the work precision)
        safe = np.where(zero_mask, work_one, np.minimum(a, maxpos))
        _, e = np.frexp(safe)
        exp = e.astype(np.int64) - 1
        k = np.floor_divide(exp, self._useed_exp)
        regime_len = np.where(k >= 0, k + 2, -k + 1)
        frac_bits = self.bits - 1 - regime_len - self.es
        quantum = np.ldexp(work_one, (exp - np.maximum(frac_bits, 0)).astype(np.int64))
        mag = round_to_quantum(safe, quantum)

        extreme_lo = safe < lo_boundary
        extreme_hi = safe >= hi_boundary
        if extreme_lo.any():
            mags, codes = self._lo_table
            idx = nearest_in_table(safe[extreme_lo], mags, codes)
            mag[extreme_lo] = mags[idx]
        if extreme_hi.any():
            mags, codes = self._hi_table
            idx = nearest_in_table(safe[extreme_hi], mags, codes)
            mag[extreme_hi] = mags[idx]
        mag = np.clip(mag, minpos, maxpos)
        return np.where(zero_mask, self.work_dtype(0.0), mag)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def max_value(self) -> float:
        """Largest finite magnitude ``maxpos = 2^(2^es * (n - 2))``."""
        return float(np.ldexp(self.work_dtype(1.0), self._max_exp))

    @property
    def min_positive(self) -> float:
        """Smallest positive magnitude ``minpos = 1 / maxpos``."""
        return float(np.ldexp(self.work_dtype(1.0), -self._max_exp))

    def _compute_machine_epsilon(self) -> float:
        # fraction bits available around 1.0 (regime length 2)
        frac_bits = self.bits - 3 - self.es
        return math.ldexp(1.0, -frac_bits)


#: 8-bit posit, es = 2 (2022 standard)
POSIT8 = PositFormat(8)
#: 16-bit posit, es = 2
POSIT16 = PositFormat(16)
#: 32-bit posit, es = 2
POSIT32 = PositFormat(32)
#: 64-bit posit, es = 2
POSIT64 = PositFormat(64)
