"""Integer bit-twiddling rounding engine shared by every emulated format.

The analytic vector kernels of the posit/takum/IEEE format families each run
a chain of ~25 NumPy float passes (``frexp``, ``floor_divide``, ``ldexp``,
``rint``, divisions, ``np.where`` ladders) per ``round_array`` call.  This
module replaces those chains with **one** family-parameterized integer kernel
that views the work array as unsigned integer words and performs
round-to-nearest-even entirely in integer arithmetic:

* For every work binade, the number of work-significand bits a format
  retains is a pure function of the exponent field (the mantissa
  length taper of posits/takums, the constant significand of IEEE formats,
  the gradual-underflow taper of IEEE subnormals).  A lookup table over the
  **sign+exponent field** (4096 entries for float64 words, 65536 for the
  80-bit extended words) therefore yields, per element, the truncation
  shift ``s`` and the rounding bias ``2^(s-1) - 1``; the whole rounding
  step is then the classic integer RNE transform
  ``((u + bias + lsb) >> s) << s`` with ``lsb = (u >> s) & 1`` breaking
  ties towards the even retained word.  For float64 work arrays the
  transform operates on the *full* word, sign bit included: in the binades
  the LUT serves, the carry of a round-up can reach the exponent field
  (that is exactly how a binade boundary rounds up) but provably never the
  sign bit.

* The 64-bit posit/takum formats work in 80-bit x87 extended precision
  (``numpy.longdouble``), whose 16-byte memory layout is **two** uint64
  words: a full 64-bit significand with an explicit integer bit, and a
  sign + 15-bit-exponent word (the remaining six bytes are unspecified
  padding).  :class:`ExtendedBitKernel` runs the same RNE transform on the
  significand word alone — magnitudes round independently of the sign — and
  handles the binade-boundary carry manually: the uint64 add wraps exactly
  when the rounded significand is ``2^64``, in which case the result is
  significand ``2^63`` with the exponent word incremented.  No longdouble
  float operation is involved; the kernel is pure integer arithmetic over
  the extended representation.

* Binades where the representable values are **not** a uniform power-of-two
  grid — posit/takum extreme regimes, IEEE overflow and deep-subnormal
  binades, zeros, infinities and NaNs — are marked *special* in the LUT and
  resolved by the format's preserved analytic kernel on the (rare) masked
  elements, which keeps the fast path bit-identical by construction.
  Binades where the format grid is at least as *fine* as the work grid
  (possible when a 64-bit format degrades to float64 work precision on
  hosts without extended longdouble) are marked *identity* and copied
  through unchanged.

The kernels allocate nothing per call beyond a small per-size scratch set
(reused across calls) and support writing the result into a caller-provided
``out=`` buffer — the entry point `EmulatedContext` uses to round operation
results in place instead of allocating a second array per elementary op.

Correctness invariants of the LUT-served ("main region") binades, checked by
the builders and the exhaustive/sweep tests in ``tests/test_bitkernels.py``:

1. *uniform grid*: all representable magnitudes in the binade are the
   multiples of one power-of-two quantum, so truncating the word is exact
   quantum rounding;
2. *carry safety*: ``2^(e+1)`` is representable (a round-up out of the top
   of the binade lands on a representable value);
3. *parity safety*: at least one fraction bit is retained (``keep >= 1``),
   so the retained word's LSB parity equals the parity of the quantized
   significand and ties resolve exactly as the analytic
   ``rint``-ties-to-even does.

Encode/decode twins are provided per family: vectorised bit-field
construction replacing the per-element Python loops of the analytic
encoders, and vectorised decoding used (among others) by the lookup-table
engine to enumerate value sets at construction time.

The engine can be disabled for verification with the environment variable
``REPRO_DISABLE_BITKERNELS=1`` or at runtime with :func:`set_enabled`; the
analytic kernels (``round_array_analytic``) remain the ground truth and are
also reachable per context via ``get_context(name, use_tables=False)``.

Note: the per-size scratch buffers make a kernel instance not reentrant;
this matches the library's existing single-threaded-per-context model (the
contexts' op counters are unsynchronised too).
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

from ..telemetry import core as _telemetry
from ..telemetry.metrics import metrics as _metrics

#: deferred telemetry tallies (same pattern as ``base._dispatch_tally``:
#: kernel calls are too hot for per-call registry lookups, so plain dicts
#: accumulate here and the registry drains them at read time):
#: ``(family, event) -> count`` for scratch alloc/reuse decisions
_scratch_tally: dict[tuple[str, str], int] = {}
#: ``(family, bits) -> [elements, lut_fallback, zero_peeled]``
_round_tally: dict[tuple[str, int], list] = {}


def _flush_bitkernel_tally(discard: bool = False) -> None:
    """Drain the deferred kernel tallies into the registry (or drop)."""
    for (family, event), count in _scratch_tally.items():
        if count and not discard:
            _metrics.counter("bitkernel.scratch", family=family, event=event).inc(count)
        _scratch_tally[family, event] -= count
    for (family, bits), entry in _round_tally.items():
        elements, lut, peeled = entry[0], entry[1], entry[2]
        if not discard:
            if elements:
                _metrics.counter("bitkernel.elements", family=family, bits=bits).inc(elements)
            if lut:
                _metrics.counter("bitkernel.lut_fallback", family=family, bits=bits).inc(lut)
            if peeled:
                _metrics.counter("bitkernel.zero_peeled", family=family, bits=bits).inc(peeled)
        entry[0] -= elements
        entry[1] -= lut
        entry[2] -= peeled


_metrics.register_flusher(_flush_bitkernel_tally)

__all__ = [
    "BitKernel",
    "IEEEBitKernel",
    "E4M3BitKernel",
    "PositBitKernel",
    "TakumBitKernel",
    "ExtendedBitKernel",
    "PositExtendedBitKernel",
    "TakumExtendedBitKernel",
    "extended_layout_supported",
    "set_enabled",
    "bitkernels_enabled",
]

_U = np.uint64
_ONE = _U(1)
_MAG64 = _U(0x7FFFFFFFFFFFFFFF)
_MANT52 = _U(0x000FFFFFFFFFFFFF)
#: extended-layout significand of 1.0 in the next binade up (carry target)
_EXT_TOP = _U(1 << 63)

#: special-LUT codes: resolve through the analytic kernel / copy through
_SPECIAL_RESOLVE = 1
_SPECIAL_IDENTITY = 2

#: scratch sets cached per kernel (bounded; see BitKernel._scratch_for)
_MAX_SCRATCH_SIZES = 8
#: calls larger than this allocate fresh scratch instead of pinning ~33
#: bytes/element in the cache (the solvers' arrays are far below this; the
#: 64k benchmark arrays still fit)
_MAX_SCRATCH_ELEMENTS = 1 << 17

_ENABLED = os.environ.get("REPRO_DISABLE_BITKERNELS", "").lower() not in (
    "1",
    "true",
    "yes",
)


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable the bit kernels; returns the previous state.

    Intended for verification runs that want to force the analytic kernels
    (``REPRO_DISABLE_BITKERNELS=1`` has the same effect at start-up).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def bitkernels_enabled() -> bool:
    """Whether the bit-twiddling kernels are globally enabled."""
    return _ENABLED


def extended_layout_supported() -> bool:
    """Whether ``numpy.longdouble`` is the 80-bit x87 format in 16-byte slots.

    That is the two-word (significand word + sign/exponent word) memory
    layout the extended kernels operate on.  False where longdouble is plain
    float64 (Windows, most ARM builds), IEEE binary128, or the 12-byte ix86
    layout — those hosts keep the analytic fallback (or, when longdouble
    degenerates to float64, the one-word float64 kernels).
    """
    return (
        np.finfo(np.longdouble).nmant == 63
        and np.dtype(np.longdouble).itemsize == 16
    )


class BitKernel:
    """Family-parameterized integer round/encode/decode kernel.

    Subclasses define the format family by implementing :meth:`_keep_bits`
    (how many work-significand bits survive in a given binade, or ``None``
    for binades the analytic resolver must handle) plus the family's
    :meth:`decode` / :meth:`encode` bit-field layouts.

    Parameters
    ----------
    bits:
        Storage width of the emulated format.
    resolve:
        Callback rounding a float64 array with the format's ground-truth
        analytic kernel; applied to the special-masked elements.
    """

    #: family tag used in reprs and dispatch diagnostics
    family = "abstract"
    #: whether the format has one unsigned zero (posit/takum: ``-0.0``
    #: rounds to ``+0.0``) or keeps the sign of zero (IEEE families)
    unsigned_zero = False

    #: work-word layout: exponent-field width, exponent bias and fraction
    #: bits of the word the kernel transforms (float64 by default; the
    #: extended kernels override all three for the 80-bit x87 layout)
    WORD_EXP_BITS = 11
    WORD_BIAS = 1023
    WORD_FRAC_BITS = 52
    #: whether the family's vectorised decode/encode twins serve this
    #: kernel's word layout (the extended kernels have none: the 64-bit
    #: formats keep their per-element codecs)
    supports_codec = True

    def __init__(self, bits: int, resolve: Callable[[np.ndarray], np.ndarray]):
        self.bits = int(bits)
        self._resolve = resolve
        self._scratch: dict[int, tuple] = {}
        exp_fields = 1 << self.WORD_EXP_BITS
        frac_bits = self.WORD_FRAC_BITS
        shift = np.ones(2 * exp_fields, dtype=_U)
        bias = np.zeros(2 * exp_fields, dtype=_U)
        special = np.zeros(2 * exp_fields, dtype=np.uint8)
        for exp_field in range(exp_fields):
            keep = None
            if 0 < exp_field < exp_fields - 1:  # zeros/subnormals, inf/NaN
                keep = self._keep_bits(exp_field - self.WORD_BIAS)
            for idx in (exp_field, exp_field + exp_fields):  # mirror the sign half
                if keep is None:
                    special[idx] = _SPECIAL_RESOLVE
                elif keep >= frac_bits:
                    # the format grid is at least as fine as the work grid in
                    # this binade (a 64-bit format degraded to float64 work
                    # precision): every work value is already representable
                    # and copies through unchanged.  keep == frac_bits would
                    # need s = 0, where the RNE transform degenerates (lsb
                    # must not be added), so it lands here too.
                    special[idx] = _SPECIAL_IDENTITY
                else:
                    if keep < 1:
                        raise ValueError(
                            f"{type(self).__name__}: keep={keep} below the "
                            "parity-safe minimum of 1 for exponent "
                            f"{exp_field - self.WORD_BIAS}"
                        )
                    s = frac_bits - keep
                    shift[idx] = s
                    bias[idx] = (1 << (s - 1)) - 1
        self._shift = shift
        self._bias = bias
        self._special = special
        self._has_identity = bool(np.any(special == _SPECIAL_IDENTITY))

    # ------------------------------------------------------------------ #
    # family hooks
    # ------------------------------------------------------------------ #
    def _keep_bits(self, e: int) -> Optional[int]:
        """Retained significand bits for binade ``2^e`` (``None``: special).

        Returned values must satisfy the three main-region invariants in the
        module docstring (uniform grid, carry safety, parity safety).
        """
        raise NotImplementedError

    def decode(self, codes) -> np.ndarray:
        """Vectorised decode of integer codes into float64 values."""
        raise NotImplementedError

    def encode(self, values) -> np.ndarray:
        """Vectorised encode of *representable* float64 values into codes."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # rounding
    # ------------------------------------------------------------------ #
    def _scratch_for(self, size: int) -> tuple:
        bufs = self._scratch.get(size)
        if bufs is None:
            bufs = (
                np.empty(size, dtype=_U),  # exponent-field index
                np.empty(size, dtype=_U),  # per-element shift
                np.empty(size, dtype=_U),  # lsb / scratch
                np.empty(size, dtype=_U),  # accumulator (rounded word)
                np.empty(size, dtype=np.uint8),  # special mask
            )
            if size <= _MAX_SCRATCH_ELEMENTS:  # don't pin memory for huge calls
                if len(self._scratch) >= _MAX_SCRATCH_SIZES:
                    self._scratch.clear()
                self._scratch[size] = bufs
            if _telemetry.ENABLED:
                key = (self.family, "alloc")
                _scratch_tally[key] = _scratch_tally.get(key, 0) + 1
        elif _telemetry.ENABLED:
            key = (self.family, "reuse")
            _scratch_tally[key] = _scratch_tally.get(key, 0) + 1
        return bufs

    def round(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Round float64 ``values`` to the format, bit-identical to the
        analytic kernel.

        Parameters
        ----------
        values:
            Array of float64 work values (any shape).
        out:
            Optional float64 array of the same shape to write the result
            into; may alias ``values`` (the rounded word is accumulated in
            scratch and copied in one final pass).

        Returns
        -------
        numpy.ndarray
            ``out`` if given, else a fresh array.
        """
        x = np.asarray(values, dtype=np.float64)
        flat = x.ravel()  # view when contiguous, copy otherwise
        u = flat.view(_U)
        idx, shift, lsb, acc, spec = self._scratch_for(flat.size)
        np.right_shift(u, _U(52), out=idx)
        idx_i = idx.view(np.int64)  # free reinterpret; values are < 4096
        # ndarray.take (not np.take: the dispatch wrapper is measurable at
        # solver-call sizes)
        self._shift.take(idx_i, out=shift)
        # RNE: ((u + (half - 1) + lsb) >> s) << s, ties to the even word
        np.right_shift(u, shift, out=lsb)
        np.bitwise_and(lsb, _ONE, out=lsb)
        self._bias.take(idx_i, out=acc)
        np.add(acc, u, out=acc)
        np.add(acc, lsb, out=acc)
        np.right_shift(acc, shift, out=acc)
        np.left_shift(acc, shift, out=acc)
        self._special.take(idx_i, out=spec)
        resolved = peeled = 0
        if spec.any():
            if self._has_identity:
                # identity binades (format grid at least as fine as the
                # work grid): the input word passes through unchanged
                np.copyto(acc, u, where=spec == _SPECIAL_IDENTITY)
                mask = spec == _SPECIAL_RESOLVE
                need_resolve = bool(mask.any())
            else:
                mask = spec.view(bool)
                need_resolve = True
        else:
            need_resolve = False
        if need_resolve:
            sub = flat[mask]
            nonzero = sub != 0.0
            if nonzero.all():
                acc[mask] = self._resolve(sub).view(_U)
                resolved = sub.size
            else:
                # exact zeros are by far the most common "special" in solver
                # data (structurally zero matrix entries); peel them off
                # inline instead of paying an analytic-kernel call
                res = u[mask]
                if self.unsigned_zero:
                    res = res & np.where(nonzero, _U(0xFFFFFFFFFFFFFFFF), _U(0))
                if nonzero.any():
                    nz = sub[nonzero]
                    res[nonzero] = self._resolve(nz).view(_U)
                    resolved = nz.size
                peeled = sub.size - resolved
                acc[mask] = res
        if _telemetry.ENABLED:
            # LUT fallback fraction = lut_fallback / elements per family
            key = (self.family, self.bits)
            entry = _round_tally.get(key)
            if entry is None:
                entry = _round_tally[key] = [0, 0, 0]
            entry[0] += flat.size
            entry[1] += resolved
            entry[2] += peeled
        if out is None:
            out = np.empty(x.shape, dtype=np.float64)
        # copyto handles non-contiguous out (e.g. a column view being
        # updated in place); acc is scratch, so the copy is mandatory
        np.copyto(out, acc.view(np.float64).reshape(x.shape))
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        half = len(self._special) // 2
        served = int(np.count_nonzero(self._special[:half] == 0))
        return (
            f"<{type(self).__name__} {self.family!r} ({self.bits} bits, "
            f"{served}/{half} binades integer-served)>"
        )


def _as_code_array(codes, bits: int) -> np.ndarray:
    codes = np.asarray(codes, dtype=_U)
    return codes & _U((1 << bits) - 1)


def _bit_length_u64(v: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for uint64 values below 2**53.

    The float64 conversion is exact in that range, so the biased exponent
    field of the converted value is ``bit_length - 1`` for non-zero inputs.
    """
    f = v.astype(np.float64)
    bl = (f.view(np.int64) >> 52) - 1022  # exponent + 1
    return np.where(v == 0, np.int64(0), bl)


class IEEEBitKernel(BitKernel):
    """Kernel for IEEE-754 style formats (sign / ``ebits`` / ``mbits``).

    Serves the normal range below the top binade at a constant shift and the
    gradual-underflow taper down to the last binade that retains a fraction
    bit.  The top binade (where a round-up must overflow to infinity), the
    deep-subnormal binades (``keep < 1``) and the specials go to the
    resolver.
    """

    family = "ieee"

    def __init__(self, ebits: int, mbits: int, resolve):
        self.ebits = int(ebits)
        self.mbits = int(mbits)
        self.bias_f = (1 << (ebits - 1)) - 1
        self.emin = 1 - self.bias_f
        self.emax = self.bias_f
        super().__init__(1 + ebits + mbits, resolve)

    def _keep_bits(self, e: int) -> Optional[int]:
        if self.emin <= e < self.emax:
            return self.mbits
        if self.emin - self.mbits < e < self.emin:
            return self.mbits + (e - self.emin)  # gradual underflow taper
        return None

    # -------------------------------------------------------------- #
    def decode(self, codes) -> np.ndarray:
        c = _as_code_array(codes, self.bits)
        mbits, ebits = self.mbits, self.ebits
        sign = c >> _U(self.bits - 1)
        exp_field = (c >> _U(mbits)) & _U((1 << ebits) - 1)
        mant = c & _U((1 << mbits) - 1)
        # normals: rebias into the float64 exponent field, shift the mantissa
        vbits = ((exp_field + _U(1023 - self.bias_f)) << _U(52)) | (
            mant << _U(52 - mbits)
        )
        value = vbits.view(np.float64)  # fresh ufunc output: contiguous uint64
        # subnormals: exact small-integer scaling
        sub = mant.astype(np.float64) * float(np.ldexp(1.0, self.emin - mbits))
        value = np.where(exp_field == 0, sub, value)
        top = exp_field == _U((1 << ebits) - 1)
        value = np.where(top & (mant == 0), np.inf, value)
        value = np.where(sign == 1, -value, value)
        value = np.where(top & (mant != 0), np.nan, value)
        return value

    def encode(self, values) -> np.ndarray:
        v = np.ascontiguousarray(values, dtype=np.float64)
        u = v.view(_U).reshape(v.shape)
        mbits = self.mbits
        sign = u >> _U(63)
        m = u & _MAG64
        e = (m >> _U(52)).view(np.int64) - 1023
        # normal targets
        exp_field = np.clip(e + self.bias_f, 0, (1 << self.ebits) - 1)
        mant = (m & _MANT52) >> _U(52 - mbits)
        # subnormal targets: denormalise the full significand
        sub_shift = np.clip(52 - mbits + (self.emin - e), 0, 63).astype(_U)
        sub_mant = ((m & _MANT52) | (_ONE << _U(52))) >> sub_shift
        subnormal = e < self.emin
        mant = np.where(subnormal, sub_mant, mant)
        exp_field = np.where(subnormal, np.int64(0), exp_field)
        code = (
            (sign << _U(self.bits - 1))
            | (exp_field.astype(_U) << _U(mbits))
            | mant
        )
        zero = m == 0
        code = np.where(zero, sign << _U(self.bits - 1), code)
        inf_code = _U(((1 << self.ebits) - 1) << mbits)
        code = np.where(m == _U(0x7FF0000000000000), (sign << _U(self.bits - 1)) | inf_code, code)
        nan_code = _U(
            (1 << (self.bits - 1))
            | (((1 << self.ebits) - 1) << mbits)
            | (1 << (mbits - 1))
        )
        code = np.where(m > _U(0x7FF0000000000000), nan_code, code)
        return code.astype(_U)


class E4M3BitKernel(IEEEBitKernel):
    """Kernel for the OFP8 E4M3 format (1-4-3, bias 7, no infinities).

    The rounding grid matches a 1-4-3 IEEE format except in the top binade,
    where the all-ones exponent still encodes normal values and overflow
    resolves to NaN (or saturates) — that binade is special, so the policy
    lives entirely in the analytic resolver.
    """

    family = "e4m3"

    def __init__(self, resolve):
        # the top *encodable* binade is e = emax + 1 = 8 (exponent field 15
        # holds normals); its round-ups overflow to NaN/448, so it resolves
        # analytically and the inherited _keep_bits stopping at e = emax - 1
        # (like plain IEEE, whose top binade overflows to inf) is exactly
        # right here too
        super().__init__(4, 3, resolve)

    def decode(self, codes) -> np.ndarray:
        c = _as_code_array(codes, 8)
        sign = c >> _U(7)
        exp_field = (c >> _U(3)) & _U(0xF)
        mant = c & _U(0x7)
        vbits = ((exp_field + _U(1023 - self.bias_f)) << _U(52)) | (mant << _U(49))
        value = vbits.view(np.float64)  # fresh ufunc output: contiguous uint64
        sub = mant.astype(np.float64) * float(np.ldexp(1.0, -9))
        value = np.where(exp_field == 0, sub, value)
        value = np.where(sign == 1, -value, value)
        value = np.where((exp_field == _U(0xF)) & (mant == _U(0x7)), np.nan, value)
        return value

    def encode(self, values) -> np.ndarray:
        v = np.ascontiguousarray(values, dtype=np.float64)
        u = v.view(_U).reshape(v.shape)
        sign = u >> _U(63)
        m = u & _MAG64
        e = (m >> _U(52)).view(np.int64) - 1023
        exp_field = np.clip(e + self.bias_f, 0, 15)
        mant = (m & _MANT52) >> _U(49)
        sub_shift = np.clip(49 + (self.emin - e), 0, 63).astype(_U)
        sub_mant = ((m & _MANT52) | (_ONE << _U(52))) >> sub_shift
        subnormal = e < self.emin
        mant = np.where(subnormal, sub_mant, mant)
        exp_field = np.where(subnormal, np.int64(0), exp_field)
        code = (sign << _U(7)) | (exp_field.astype(_U) << _U(3)) | mant
        # E4M3 canonicalises -0.0 to the all-zeros code (no signed zero code)
        code = np.where(m == 0, _U(0), code)
        # canonical (only) NaN 0x7F; infinities cannot occur post-rounding
        code = np.where(m >= _U(0x7FF0000000000000), _U(0x7F), code)
        return code.astype(_U)


class PositBitKernel(BitKernel):
    """Kernel for posit formats (2022 standard layout, parametric ``es``).

    Serves every binade that retains at least one fraction bit (the
    ``k_lo..k_hi`` regime range of the analytic kernel); the extreme regimes
    — where the representable magnitudes stop forming a uniform grid — plus
    zeros and non-finite values go to the resolver, which applies the
    analytic extreme-region tables and minpos/maxpos saturation.
    """

    family = "posit"
    unsigned_zero = True

    def __init__(self, nbits: int, es: int, resolve):
        self.es = int(es)
        self._useed_exp = 1 << self.es
        super().__init__(nbits, resolve)

    def _keep_bits(self, e: int) -> Optional[int]:
        k = e // self._useed_exp
        regime_len = k + 2 if k >= 0 else 1 - k
        frac_bits = self.bits - 1 - regime_len - self.es
        return frac_bits if frac_bits >= 1 else None

    # -------------------------------------------------------------- #
    def decode(self, codes) -> np.ndarray:
        n = self.bits
        c = _as_code_array(codes, n)
        zero = c == 0
        nar = c == _U(1 << (n - 1))
        neg = (c >> _U(n - 1)) == _ONE
        body = np.where(neg, _U(1 << n) - c, c) & _U((1 << (n - 1)) - 1)
        first = (body >> _U(n - 2)) & _ONE
        inverted = np.where(first == _ONE, body ^ _U((1 << (n - 1)) - 1), body)
        run = np.int64(n - 1) - _bit_length_u64(inverted)
        k = np.where(first == _ONE, run - 1, -run)
        remaining = np.maximum(np.int64(n - 2) - run, 0)
        exp_bits = np.minimum(np.int64(self.es), remaining)
        exponent = (body >> (remaining - exp_bits).astype(_U)) & (
            (_ONE << exp_bits.astype(_U)) - _ONE
        )
        exponent = exponent.astype(np.int64) << (self.es - exp_bits)
        frac_bits = remaining - exp_bits
        frac = body & ((_ONE << frac_bits.astype(_U)) - _ONE)
        scale = k * self._useed_exp + exponent
        vbits = ((scale + 1023).astype(_U) << _U(52)) | (
            frac << (52 - frac_bits).astype(_U)
        )
        vbits = vbits | (neg.astype(_U) << _U(63))
        value = vbits.view(np.float64).reshape(c.shape)
        value = np.where(zero, 0.0, value)
        value = np.where(nar, np.nan, value)
        return value

    def encode(self, values) -> np.ndarray:
        n, es = self.bits, self.es
        v = np.ascontiguousarray(values, dtype=np.float64)
        u = v.view(_U).reshape(v.shape)
        m = u & _MAG64
        neg = (u >> _U(63)) == _ONE
        e = (m >> _U(52)).view(np.int64) - 1023
        k = np.floor_divide(e, self._useed_exp)
        exponent = (e - k * self._useed_exp).astype(_U)
        regime_len = np.where(k >= 0, k + 2, 1 - k)
        body_bits = n - 1
        # k >= 0: k+1 ones then a zero (regime run may fill the body at
        # maxpos); k < 0: -k zeros then a one
        regime_width = np.minimum(regime_len, body_bits).astype(_U)
        pattern_pos = ((_ONE << np.minimum(k + 1, body_bits).astype(_U)) - _ONE) << _ONE
        pattern_pos = np.where(regime_len > body_bits, (_ONE << _U(body_bits)) - _ONE, pattern_pos)
        regime_pattern = np.where(k >= 0, pattern_pos, _ONE)
        avail = (_U(body_bits) - regime_width).astype(np.int64)
        frac_bits = np.maximum(n - 1 - regime_len - es, 0)
        frac = (m & _MANT52) >> (52 - frac_bits).astype(_U)
        payload = (exponent << frac_bits.astype(_U)) | frac
        payload_width = np.int64(es) + frac_bits
        over = payload_width > avail
        payload = np.where(over, payload >> (payload_width - avail).astype(_U), payload)
        payload_width = np.where(over, avail, payload_width)
        body = (regime_pattern << avail.astype(_U)) | (
            payload << (avail - payload_width).astype(_U)
        )
        body = body & _U((1 << body_bits) - 1)
        code = np.where(neg, (_U(1 << n) - body) & _U((1 << n) - 1), body)
        code = np.where(m == 0, _U(0), code)
        code = np.where(m > _U(0x7FF0000000000000), _U(1 << (n - 1)), code)
        return code.astype(_U)


class TakumBitKernel(BitKernel):
    """Kernel for linear takum formats (Hunhold 2024 layout).

    Serves every binade whose characteristic lies strictly inside
    ``[-255, 254]`` and retains at least one mantissa bit; the boundary
    binades (where rounding can leave the representable range and must
    saturate at minpos/maxval), the truncated-characteristic binades of very
    narrow takums, and the specials go to the resolver.
    """

    family = "takum"
    unsigned_zero = True

    _C_MIN = -255
    _C_MAX = 254

    def _keep_bits(self, e: int) -> Optional[int]:
        if not self._C_MIN < e < self._C_MAX:
            return None
        r = (e + 1).bit_length() - 1 if e >= 0 else (-e).bit_length() - 1
        p = self.bits - 5 - r
        return p if p >= 1 else None

    # -------------------------------------------------------------- #
    def decode(self, codes) -> np.ndarray:
        n = self.bits
        c = _as_code_array(codes, n)
        zero = c == 0
        nar = c == _U(1 << (n - 1))
        sign = (c >> _U(n - 1)) & _ONE
        direction = (c >> _U(n - 2)) & _ONE
        regime = (c >> _U(n - 5)) & _U(0x7)
        r = np.where(direction == _ONE, regime, _U(7) - regime).astype(np.int64)
        tail_bits = n - 5
        tail = c & _U((1 << tail_bits) - 1)
        wide = tail_bits >= r  # characteristic fully present
        char_wide = np.where(
            r > 0, tail >> np.maximum(tail_bits - r, 0).astype(_U), _U(0)
        ).astype(np.int64)
        char_narrow = (tail.astype(np.int64)) << np.maximum(r - tail_bits, 0)
        characteristic = np.where(wide, char_wide, char_narrow)
        p = np.where(wide, tail_bits - r, 0)
        mant = np.where(
            wide & (p > 0), tail & ((_ONE << p.astype(_U)) - _ONE), _U(0)
        ).astype(np.int64)
        cval = np.where(
            direction == _ONE,
            (np.int64(1) << r) - 1 + characteristic,
            -(np.int64(2) << r) + 1 + characteristic,
        )
        # positive: (2^p + mant) * 2^(c - p)
        pos_bits = ((cval + 1023).astype(_U) << _U(52)) | (
            mant.astype(_U) << (52 - p).astype(_U)
        )
        # negative, mant == 0: -(2^-c); mant > 0: -(2^(p+1) - mant) * 2^(-c-1-p)
        neg_pow = ((1023 - cval).astype(_U) << _U(52))
        neg_frac = ((-cval - 1 + 1023).astype(_U) << _U(52)) | (
            ((np.int64(1) << p) - mant).astype(_U) << (52 - p).astype(_U)
        )
        vbits = np.where(sign == 0, pos_bits, np.where(mant == 0, neg_pow, neg_frac))
        vbits = vbits | (sign << _U(63))
        value = vbits.view(np.float64).reshape(c.shape)
        value = np.where(zero, 0.0, value)
        value = np.where(nar, np.nan, value)
        return value

    def encode(self, values) -> np.ndarray:
        n = self.bits
        v = np.ascontiguousarray(values, dtype=np.float64)
        u = v.view(_U).reshape(v.shape)
        m = u & _MAG64
        sign = (u >> _U(63)).astype(np.int64)
        e = (m >> _U(52)).view(np.int64) - 1023  # floor(log2 |v|), exact
        mant52 = (m & _MANT52).astype(np.int64)
        # (c, mantissa) from the logarithmic value l = (-1)^S (c + f/2^p)
        frac_zero = mant52 == 0
        c = np.where(sign == 0, e, np.where(frac_zero, -e, -e - 1))
        r = np.where(
            c >= 0,
            _bit_length_u64((c + 1).astype(_U)) - 1,
            _bit_length_u64((-c).astype(_U)) - 1,
        )
        tail_bits = n - 5
        p = tail_bits - r
        # mantissa field: f * 2^p for positives, (1 - f) * 2^p for negatives
        shift = np.clip(52 - p, 0, 63)
        mpos = mant52 >> shift
        mneg = np.where(frac_zero, np.int64(0), (np.int64(1) << np.maximum(p, 0)) - mpos)
        mfield = np.where(sign == 0, mpos, mneg)
        characteristic = np.where(
            c >= 0, c - ((np.int64(1) << r) - 1), c + (np.int64(2) << r) - 1
        )
        wide = p >= 0
        tail = np.where(
            wide,
            (characteristic << np.maximum(p, 0)) | mfield,
            characteristic >> np.maximum(r - tail_bits, 0),
        )
        direction = (c >= 0).astype(np.int64)
        regime = np.where(direction == 1, r, 7 - r)
        code = (
            (sign.astype(_U) << _U(n - 1))
            | (direction.astype(_U) << _U(n - 2))
            | (regime.astype(_U) << _U(n - 5))
            | (tail.astype(_U) & _U((1 << tail_bits) - 1))
        )
        code = np.where(m == 0, _U(0), code)
        # infinite inputs and NaN alike encode as NaR
        code = np.where(m >= _U(0x7FF0000000000000), _U(1 << (n - 1)), code)
        return code.astype(_U)


class ExtendedBitKernel(BitKernel):
    """Two-word rounding kernel for 80-bit extended (x87) work arrays.

    ``numpy.longdouble`` on x86 stores each value in 16 bytes: a uint64
    significand word with an **explicit** integer bit at position 63,
    followed by a word whose low 16 bits are the sign bit and the 15-bit
    biased exponent (bias 16383) — the remaining six bytes are unspecified
    padding that must be masked on read and is written as zeros on output.

    The RNE transform runs on the significand word alone (magnitude rounding
    is sign-independent; the parity of the retained word still decides
    ties).  Unlike the one-word float64 kernels, a round-up out of the top
    of a binade cannot carry into the exponent automatically: the uint64 add
    wraps exactly when the rounded significand is ``2^64`` (the bias plus
    tie bit never exceed ``2^(s-1)``, so the add wraps at most once and the
    wrapped, truncated word is provably 0), and the kernel then rewrites the
    element as significand ``2^63`` with the exponent word incremented —
    which never reaches the sign bit in a LUT-served binade.

    Subclasses combine this mixin with a format family
    (``class PositExtendedBitKernel(ExtendedBitKernel, PositBitKernel)``):
    the family contributes ``_keep_bits`` and the special-binade policy,
    this class contributes the word layout and the two-word ``round``.  The
    family codecs are float64-word specific, so :attr:`supports_codec` is
    False and the 64-bit formats keep their per-element decode/encode.
    """

    WORD_EXP_BITS = 15
    WORD_BIAS = 16383
    WORD_FRAC_BITS = 63
    supports_codec = False

    #: sign + 15-bit exponent; everything above is padding garbage
    _HI_MASK = _U(0xFFFF)

    def decode(self, codes) -> np.ndarray:
        raise NotImplementedError(
            "extended kernels have no vectorised codec; use the format's "
            "per-element decode"
        )

    def encode(self, values) -> np.ndarray:
        raise NotImplementedError(
            "extended kernels have no vectorised codec; use the format's "
            "per-element encode"
        )

    def _scratch_for(self, size: int) -> tuple:
        bufs = self._scratch.get(size)
        if bufs is None:
            bufs = (
                np.empty(size, dtype=_U),  # masked exponent word / LUT index
                np.empty(size, dtype=_U),  # per-element shift
                np.empty(size, dtype=_U),  # lsb / scratch
                np.empty(size, dtype=_U),  # significand accumulator
                np.empty(size, dtype=_U),  # exponent-word accumulator
                np.empty(size, dtype=bool),  # significand carry-out
                np.empty(size, dtype=np.uint8),  # special mask
                np.empty(2 * size, dtype=_U),  # interleaved output words
            )
            if size <= _MAX_SCRATCH_ELEMENTS:  # don't pin memory for huge calls
                if len(self._scratch) >= _MAX_SCRATCH_SIZES:
                    self._scratch.clear()
                self._scratch[size] = bufs
            if _telemetry.ENABLED:
                key = (self.family, "alloc")
                _scratch_tally[key] = _scratch_tally.get(key, 0) + 1
        elif _telemetry.ENABLED:
            key = (self.family, "reuse")
            _scratch_tally[key] = _scratch_tally.get(key, 0) + 1
        return bufs

    def round(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Round longdouble ``values`` to the format, bit-identical to the
        analytic kernel (same contract as :meth:`BitKernel.round`, with
        ``numpy.longdouble`` in place of float64)."""
        x = np.asarray(values, dtype=np.longdouble)
        flat = x.ravel()  # view when contiguous, copy otherwise
        u = flat.view(_U)  # [sig0, exp0, sig1, exp1, ...] (little-endian)
        lo = u[0::2]
        hi = u[1::2]
        idx, shift, lsb, acc, hexp, wrap, spec, pair = self._scratch_for(flat.size)
        np.bitwise_and(hi, self._HI_MASK, out=idx)  # drop the padding bytes
        idx_i = idx.view(np.int64)  # free reinterpret; values are < 65536
        self._shift.take(idx_i, out=shift)
        # RNE on the significand word: ((lo + (half - 1) + lsb) >> s) << s
        np.right_shift(lo, shift, out=lsb)
        np.bitwise_and(lsb, _ONE, out=lsb)
        self._bias.take(idx_i, out=acc)
        np.add(acc, lo, out=acc)
        np.add(acc, lsb, out=acc)
        np.less(acc, lo, out=wrap)  # uint64 wrap == carry out of the binade
        np.right_shift(acc, shift, out=acc)
        np.left_shift(acc, shift, out=acc)
        np.add(idx, wrap, out=hexp)  # exponent + 1 on carry
        np.copyto(acc, _EXT_TOP, where=wrap)  # significand 1.0 next binade up
        self._special.take(idx_i, out=spec)
        resolved = peeled = 0
        if spec.any():
            mask = spec.view(bool)
            sub = flat[mask]
            nonzero = sub != 0.0
            if nonzero.all():
                rw = np.ascontiguousarray(self._resolve(sub)).view(_U)
                acc[mask] = rw[0::2]
                hexp[mask] = rw[1::2] & self._HI_MASK
                resolved = sub.size
            else:
                # exact zeros are by far the most common "special" in solver
                # data; peel them off inline instead of paying an
                # analytic-kernel call
                rlo = lo[mask]
                rhi = idx[mask]
                if self.unsigned_zero:
                    rhi[~nonzero] = _U(0)  # -0.0 rounds to +0.0
                if nonzero.any():
                    nz = sub[nonzero]
                    rw = np.ascontiguousarray(self._resolve(nz)).view(_U)
                    rlo[nonzero] = rw[0::2]
                    rhi[nonzero] = rw[1::2] & self._HI_MASK
                    resolved = nz.size
                peeled = sub.size - resolved
                acc[mask] = rlo
                hexp[mask] = rhi
        if _telemetry.ENABLED:
            key = (self.family, self.bits)
            entry = _round_tally.get(key)
            if entry is None:
                entry = _round_tally[key] = [0, 0, 0]
            entry[0] += flat.size
            entry[1] += resolved
            entry[2] += peeled
        # reassemble into canonical 16-byte slots: the padding bytes of
        # every output word are written as zeros (the input padding is
        # unspecified memory and must not leak into results)
        pair[0::2] = acc
        pair[1::2] = hexp
        if out is None:
            out = np.empty(x.shape, dtype=np.longdouble)
        np.copyto(out, pair.view(np.longdouble).reshape(x.shape))
        return out


class PositExtendedBitKernel(ExtendedBitKernel, PositBitKernel):
    """Posit kernel on the extended two-word layout (serves posit64)."""


class TakumExtendedBitKernel(ExtendedBitKernel, TakumBitKernel):
    """Takum kernel on the extended two-word layout (serves takum64)."""
