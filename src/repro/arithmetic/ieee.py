"""IEEE-754 style binary floating-point formats.

The generic :class:`IEEEFormat` covers every "classical" format used in the
paper: ``float16`` (1-5-10), ``bfloat16`` (1-8-7), ``float32`` (1-8-23) and
``float64`` (1-11-52), as well as the IEEE-style OFP8 format ``E5M2``
(1-5-2).  The OFP8 ``E4M3`` format deviates from IEEE special-value encoding
and lives in :mod:`repro.arithmetic.ofp8`.

The emulation keeps values in ``float64`` "value space" and rounds after each
operation; rounding is round-to-nearest, ties-to-even, with gradual underflow
(subnormals) and overflow to the signed infinity of the format.
"""

from __future__ import annotations

import math

import numpy as np

from .base import NumberFormat, round_to_quantum
from .bitkernels import IEEEBitKernel

__all__ = ["IEEEFormat", "FLOAT16", "BFLOAT16", "FLOAT32", "FLOAT64"]


class IEEEFormat(NumberFormat):
    """Parametric IEEE-754 binary format with ``ebits`` exponent bits and
    ``mbits`` explicit mantissa bits.

    Parameters
    ----------
    ebits, mbits:
        Field widths; total width is ``1 + ebits + mbits``.
    name:
        Registry name of the format.
    """

    has_infinity = True
    saturating = False
    work_dtype = np.float64
    has_scalar_kernel = True

    def __init__(self, ebits: int, mbits: int, name: str):
        if ebits < 2 or mbits < 1:
            raise ValueError("IEEEFormat requires ebits >= 2 and mbits >= 1")
        self.ebits = int(ebits)
        self.mbits = int(mbits)
        self.name = name
        self.bits = 1 + self.ebits + self.mbits
        self.bias = (1 << (self.ebits - 1)) - 1
        #: minimum normal exponent
        self.emin = 1 - self.bias
        #: maximum normal exponent
        self.emax = self.bias
        self._max_value = float(
            math.ldexp(2.0 - math.ldexp(1.0, -self.mbits), self.emax)
        )
        self._min_positive = float(math.ldexp(1.0, self.emin - self.mbits))
        self._min_normal = float(math.ldexp(1.0, self.emin))
        # float32/float64 round via a single hardware cast; there the vector
        # kernel beats any per-element Python loop, so the small-array scalar
        # dispatch is disabled (the scalar kernel itself stays available for
        # the contexts' scalar elementary operations)
        self._cast_dtype = None
        if (self.ebits, self.mbits) == (11, 52):
            self._cast_dtype = np.float64
            self.scalar_cutoff = 0
        elif (self.ebits, self.mbits) == (8, 23):
            self._cast_dtype = np.float32
            self.scalar_cutoff = 0

    # ------------------------------------------------------------------ #
    # bit-level
    # ------------------------------------------------------------------ #
    def decode_code(self, code: int) -> float:
        """Decode one IEEE code (sign, biased exponent, mantissa) into its
        float64 value: subnormals for exponent field 0, ±inf/NaN for the
        all-ones exponent field."""
        code = int(code) & ((1 << self.bits) - 1)
        sign = -1.0 if (code >> (self.bits - 1)) & 1 else 1.0
        exp_field = (code >> self.mbits) & ((1 << self.ebits) - 1)
        mant = code & ((1 << self.mbits) - 1)
        if exp_field == (1 << self.ebits) - 1:
            if mant == 0:
                return sign * math.inf
            return math.nan
        if exp_field == 0:
            return sign * math.ldexp(mant, self.emin - self.mbits)
        return sign * math.ldexp(
            (1 << self.mbits) + mant, exp_field - self.bias - self.mbits
        )

    def _build_bitkernel(self):
        """Integer bit-twiddling kernel for the non-cast widths.

        float32/float64 round via a single hardware cast, which no integer
        kernel can beat; every other width (float16, bfloat16, E5M2) gets
        the LUT-driven RNE kernel with overflow and deep-subnormal binades
        resolved through :meth:`round_array_analytic`."""
        if self._cast_dtype is not None:
            return None
        return IEEEBitKernel(self.ebits, self.mbits, self.round_array_analytic)

    def table_semantics(self):
        """IEEE semantics for the shared lookup-table rounding engine.

        IEEE formats above 8 bits keep their analytic quantum rounding (a
        handful of vector ops, measurably cheaper than a 2^15-entry
        ``searchsorted``) and use the tables for vectorised encode/decode;
        the 8-bit E5M2 gets the direct-indexed rounding path.
        """
        from .tables import DIRECT_INDEX_BITS, TableSemantics

        inf_code = ((1 << self.ebits) - 1) << self.mbits
        # round-to-nearest overflows to infinity from half an ulp (of the top
        # binade) past the largest finite value; the threshold itself is a
        # tie whose even neighbour is the next power of two, i.e. infinity
        quantum_top = math.ldexp(1.0, self.emax - self.mbits)
        return TableSemantics(
            negation="sign_bit",
            unsigned_zero=False,
            underflow_to_min=False,
            overflow_action="inf",
            overflow_threshold=self._max_value + quantum_top / 2.0,
            overflow_strict=False,
            inf_result="inf",
            nan_code=(1 << (self.bits - 1)) | inf_code | (1 << (self.mbits - 1)),
            pos_inf_code=inf_code,
            neg_inf_code=(1 << (self.bits - 1)) | inf_code,
            prefer_table_rounding=self.bits <= DIRECT_INDEX_BITS,
        )

    def encode_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) encode: round through the analytic kernel,
        then emit the sign/exponent/mantissa fields per element.  Returns
        ``uint64`` codes of the same shape as ``values``."""
        values = np.asarray(values, dtype=self.work_dtype)
        rounded = self.round_array_analytic(values)
        out = np.zeros(values.shape, dtype=np.uint64)
        flat = rounded.ravel()
        res = out.ravel()
        for i in range(flat.size):
            res[i] = self._encode_scalar(float(flat[i]))
        return out

    def _encode_scalar(self, v: float) -> int:
        sign_bit = 1 if (math.copysign(1.0, v) < 0) else 0
        if math.isnan(v):
            # canonical quiet NaN: all exponent bits set, MSB of mantissa set
            return (
                (1 << (self.bits - 1))
                | (((1 << self.ebits) - 1) << self.mbits)
                | (1 << (self.mbits - 1))
            )
        if math.isinf(v):
            return (sign_bit << (self.bits - 1)) | (
                ((1 << self.ebits) - 1) << self.mbits
            )
        a = abs(v)
        if a == 0.0:
            return sign_bit << (self.bits - 1)
        if a < self._min_normal:
            mant = int(round(a / self._min_positive))
            exp_field = 0
            if mant >= (1 << self.mbits):
                exp_field, mant = 1, 0
        else:
            exp = math.floor(math.log2(a))
            # guard against log2 rounding at binade boundaries
            if math.ldexp(1.0, exp) > a:
                exp -= 1
            elif math.ldexp(1.0, exp + 1) <= a:
                exp += 1
            mant = int(round(math.ldexp(a, self.mbits - exp))) - (1 << self.mbits)
            exp_field = exp + self.bias
            if mant >= (1 << self.mbits):
                mant = 0
                exp_field += 1
        return (sign_bit << (self.bits - 1)) | (exp_field << self.mbits) | mant

    # ------------------------------------------------------------------ #
    # value-space rounding
    # ------------------------------------------------------------------ #
    def round_scalar_analytic(self, value):
        """Scalar twin of :meth:`round_array_analytic` for one value.

        ``float64`` is the identity, ``float32`` one hardware cast; every
        other width runs the pure-Python quantum kernel
        (``math.frexp``/``math.ldexp``, ties to even via Python's banker
        ``round``) with gradual underflow and overflow to signed infinity,
        bit-identical to the vector kernel — including the sign of zero.
        """
        v = float(value)
        if self._cast_dtype is np.float64:
            return v
        if self._cast_dtype is not None:
            return float(np.float32(v))
        return self._round_scalar_quantum(v)

    def round_scalar(self, value: float) -> float:
        """Scalar rounding without table lookup for the cast formats.

        ``float64`` values round to themselves and ``float32`` needs one
        hardware cast, so those formats skip the generic table/kernel
        dispatch of :meth:`NumberFormat.round_scalar` entirely — this is
        the hottest scalar path of the native-width solver runs.
        """
        if self._cast_dtype is np.float64:
            return float(value)
        if self._cast_dtype is not None:
            return float(np.float32(value))
        return super().round_scalar(value)

    def _round_scalar_quantum(self, v: float) -> float:
        """Pure-Python quantum rounding of one float (non-cast widths)."""
        if v != v or v == math.inf or v == -math.inf:
            return v  # non-finite values pass through unchanged
        if v == 0.0:
            return v  # preserve the sign of zero
        a = -v if v < 0.0 else v
        exp = math.frexp(a)[1] - 1
        if exp < self.emin:
            exp = self.emin  # gradual underflow: subnormal quantum
        qexp = exp - self.mbits
        mag = float(round(math.ldexp(a, -qexp))) * math.ldexp(1.0, qexp)
        if mag > self._max_value:
            mag = math.inf
        return -mag if v < 0.0 else mag

    def round_array_analytic(self, values) -> np.ndarray:
        """Vectorised ground-truth rounding: a single hardware cast for
        float32/float64, otherwise quantum rounding at the magnitude's
        (clamped) binade — gradual underflow below ``emin``, overflow to
        the signed infinity beyond ``max_value``."""
        x = np.asarray(values, dtype=self.work_dtype)
        if self.ebits == 11 and self.mbits == 52:
            return x.astype(np.float64)
        if self.ebits == 8 and self.mbits == 23:
            return x.astype(np.float32).astype(self.work_dtype)
        out = np.array(x, dtype=self.work_dtype, copy=True)
        finite = np.isfinite(x)
        if not finite.any():
            return out
        a = np.abs(np.where(finite, x, 0.0))
        # exponent of each magnitude; frexp(0) -> (0, 0) which is harmless
        _, e = np.frexp(a)
        exp = e.astype(np.int64) - 1
        exp_eff = np.maximum(exp, self.emin)
        quantum = np.ldexp(np.ones_like(a), (exp_eff - self.mbits).astype(np.int64))
        rounded = round_to_quantum(np.where(finite, x, 0.0), quantum)
        over = np.abs(rounded) > self._max_value
        rounded = np.where(over, np.copysign(np.inf, rounded), rounded)
        out[finite] = rounded[finite]
        return out

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def max_value(self) -> float:
        """Largest finite magnitude ``(2 - 2^-mbits) * 2^emax``."""
        return self._max_value

    @property
    def min_positive(self) -> float:
        """Smallest positive (subnormal) magnitude ``2^(emin - mbits)``."""
        return self._min_positive

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return self._min_normal

    def _compute_machine_epsilon(self) -> float:
        return math.ldexp(1.0, -self.mbits)


#: IEEE binary16 ("half precision")
FLOAT16 = IEEEFormat(5, 10, "float16")
#: Google Brain bfloat16
BFLOAT16 = IEEEFormat(8, 7, "bfloat16")
#: IEEE binary32
FLOAT32 = IEEEFormat(8, 23, "float32")
#: IEEE binary64
FLOAT64 = IEEEFormat(11, 52, "float64")
