"""OFP8 8-bit floating-point formats (OCP 8-bit Floating Point Specification).

Two formats are defined by the specification:

* ``E5M2`` (1-5-2) follows IEEE-754 special-value conventions (signed
  infinities, NaNs with non-zero mantissa in the top exponent) and is simply
  an :class:`~repro.arithmetic.ieee.IEEEFormat` instance.
* ``E4M3`` (1-4-3) trades the infinities for one extra binade: the top
  exponent field still encodes normal numbers except for the all-ones
  mantissa, which is the (only) NaN.  The largest finite value is 448.

E4M3 overflow behaviour is configurable: the specification's default
(non-saturating) mode maps overflows to NaN, the saturating mode clamps to
±448.  The experiments use the NaN mode by default; the saturation ablation
benchmark exercises the alternative.
"""

from __future__ import annotations

import math

import numpy as np

from .base import SCALAR_CUTOFF, NumberFormat, nearest_in_table, nearest_in_table_scalar
from .bitkernels import E4M3BitKernel
from .ieee import IEEEFormat

__all__ = ["OFP8E4M3", "OFP8E5M2", "E4M3", "E5M2"]


class OFP8E4M3(NumberFormat):
    """OFP8 E4M3: 4 exponent bits, 3 mantissa bits, bias 7, no infinities.

    Parameters
    ----------
    saturate:
        Overflow policy: ``False`` (specification default) maps overflowing
        magnitudes to NaN, ``True`` clamps them to ±448.
    name:
        Registry name; defaults to ``"E4M3"`` / ``"E4M3sat"``.
    """

    bits = 8
    has_infinity = False
    work_dtype = np.float64
    has_scalar_kernel = True
    # the analytic vector kernel is itself a searchsorted over the value
    # table, so the scalar bisect only wins in the table-engine cutoff regime
    scalar_cutoff = SCALAR_CUTOFF

    #: magnitude beyond which round-to-nearest can no longer return 448
    _overflow_threshold = 464.0

    def __init__(self, saturate: bool = False, name: str | None = None):
        self.saturate = bool(saturate)
        self.name = name or ("E4M3sat" if saturate else "E4M3")
        self.bias = 7
        self._build_table()
        self._scalar_state: tuple | None = None

    def _build_table(self) -> None:
        mags = []
        codes = []
        for code in range(128):  # non-negative codes
            v = self.decode_code(code)
            if math.isnan(v):
                continue
            mags.append(v)
            codes.append(code)
        order = np.argsort(np.asarray(mags))
        self._magnitudes = np.asarray(mags, dtype=np.float64)[order]
        self._codes = np.asarray(codes, dtype=np.int64)[order]

    def _build_bitkernel(self):
        """Integer bit-twiddling kernel; the top binade (overflow-to-NaN or
        saturation policy) and deep subnormals resolve through
        :meth:`round_array_analytic`, so both overflow variants share one
        kernel construction."""
        return E4M3BitKernel(self.round_array_analytic)

    def table_semantics(self):
        """E4M3 semantics for the shared lookup-table rounding engine."""
        from .tables import TableSemantics

        if self.saturate:
            return TableSemantics(
                negation="sign_bit",
                overflow_action="saturate",
                inf_result="max",
                nan_code=0x7F,
                signed_zero_code=False,
            )
        return TableSemantics(
            negation="sign_bit",
            overflow_action="nan",
            overflow_threshold=self._overflow_threshold,
            overflow_strict=True,
            inf_result="nan",
            nan_code=0x7F,
            signed_zero_code=False,
        )

    # ------------------------------------------------------------------ #
    def decode_code(self, code: int) -> float:
        """Decode one E4M3 code: IEEE-style fields except the all-ones
        exponent still encodes normals, with ``S.1111.111`` the only NaN
        and no infinities."""
        code = int(code) & 0xFF
        sign = -1.0 if code & 0x80 else 1.0
        exp_field = (code >> 3) & 0xF
        mant = code & 0x7
        if exp_field == 0xF and mant == 0x7:
            return math.nan
        if exp_field == 0:
            return sign * math.ldexp(mant, -6 - 3)
        return sign * math.ldexp(8 + mant, exp_field - self.bias - 3)

    def encode_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) encode: round through the analytic kernel,
        then look each magnitude up in the enumerated code table.  Returns
        ``uint64`` codes; ``-0.0`` canonicalises to the all-zeros code."""
        values = np.asarray(values, dtype=self.work_dtype)
        rounded = self.round_array_analytic(values)
        out = np.zeros(values.shape, dtype=np.uint64)
        flat = rounded.ravel()
        res = out.ravel()
        for i in range(flat.size):
            v = float(flat[i])
            if math.isnan(v):
                res[i] = 0x7F
                continue
            idx = int(np.searchsorted(self._magnitudes, abs(v)))
            idx = min(idx, len(self._magnitudes) - 1)
            code = int(self._codes[idx])
            if math.copysign(1.0, v) < 0 and v != 0.0:
                code |= 0x80
            res[i] = code
        return out

    def round_scalar_analytic(self, value):
        """Scalar twin of :meth:`round_array_analytic` for one value.

        Bisect over the enumerated magnitude table with ties to the even
        code, plus the configured overflow policy (NaN above 464, or
        saturation at ±448); bit-identical to the vector kernel, including
        the sign of zero.
        """
        state = self._scalar_state
        if state is None:
            state = (self._magnitudes.tolist(), self._codes.tolist())
            self._scalar_state = state
        v = float(value)
        if v != v:
            return math.nan
        a = -v if v < 0.0 else v
        if a > self._overflow_threshold:  # includes infinite inputs
            mag = 448.0 if self.saturate else math.nan
        else:
            mags, codes = state
            mag = mags[nearest_in_table_scalar(a, mags, codes)]
        return math.copysign(mag, v)

    def round_array_analytic(self, values) -> np.ndarray:
        """Vectorised ground-truth rounding: nearest entry of the
        enumerated magnitude table (ties to the even code), with the
        configured overflow policy above 464 (NaN, or ±448 when
        saturating)."""
        x = np.asarray(values, dtype=self.work_dtype)
        out = np.empty(x.shape, dtype=self.work_dtype)
        nan_mask = np.isnan(x)
        a = np.abs(np.where(nan_mask, 0.0, x))
        idx = nearest_in_table(
            np.where(np.isfinite(a), a, self.max_value), self._magnitudes, self._codes
        )
        mags = self._magnitudes[idx]
        over = a > self._overflow_threshold
        if self.saturate:
            mags = np.where(over, self.max_value, mags)
        else:
            mags = np.where(over, np.nan, mags)
        out[...] = np.copysign(mags, np.where(nan_mask, 1.0, x))
        out[nan_mask] = np.nan
        return out

    @property
    def max_value(self) -> float:
        """Largest finite magnitude (code ``S.1111.110``)."""
        return 448.0

    @property
    def min_positive(self) -> float:
        """Smallest positive (subnormal) magnitude ``2^-9``."""
        return math.ldexp(1.0, -9)

    def _compute_machine_epsilon(self) -> float:
        return 0.125


class OFP8E5M2(IEEEFormat):
    """OFP8 E5M2: IEEE-style 1-5-2 format with infinities and NaNs."""

    def __init__(self):
        super().__init__(5, 2, "E5M2")


#: module-level singletons used by the registry
E4M3 = OFP8E4M3()
E5M2 = OFP8E5M2()
