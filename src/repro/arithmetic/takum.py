"""Takum arithmetic (linear takums, Hunhold 2024).

An ``n``-bit takum is the bit string ``S D R C M`` with a sign bit ``S``, a
direction bit ``D``, a 3-bit regime ``R``, an ``r``-bit characteristic ``C``
and a ``p = n - 5 - r``-bit mantissa ``M`` where::

    r = R            if D = 1 else 7 - R
    c = 2^r - 1 + C  if D = 1 else -2^(r+1) + 1 + C
    m = M / 2^p
    l = (-1)^S (c + m)

The *linear* takum value is ``(-1)^S * 2^floor(l) * (1 + (l - floor(l)))``;
``0...0`` encodes zero and ``10...0`` encodes NaR.  The characteristic spans
[-255, 254], giving a dynamic range of roughly 10^±76 regardless of width,
while the mantissa length adapts to the magnitude (tapered precision).
Formats narrower than 12 bits decode by implicitly zero-padding the tail.

Takum rounding follows posit conventions: round to nearest (ties to even
code), never round a non-zero value to zero or NaR, saturate at the largest /
smallest representable magnitude.
"""

from __future__ import annotations

import math

import numpy as np

from . import base as _base
from .base import (
    SCALAR_CUTOFF,
    WIDE_SCALAR_CUTOFF,
    NumberFormat,
    nearest_in_table,
    nearest_in_table_scalar,
    round_to_quantum,
)
from .bitkernels import (
    TakumBitKernel,
    TakumExtendedBitKernel,
    extended_layout_supported,
)

__all__ = ["TakumFormat", "TAKUM8", "TAKUM16", "TAKUM32", "TAKUM64"]

#: characteristic range shared by all takum widths
_C_MIN = -255
_C_MAX = 254


class TakumFormat(NumberFormat):
    """Linear takum format of width ``nbits``.

    Parameters
    ----------
    nbits:
        Storage width in bits (at least 6).
    name:
        Registry name; defaults to ``"takum<nbits>"``.
    """

    saturating = True
    has_infinity = False
    has_scalar_kernel = True

    def __init__(self, nbits: int, name: str | None = None):
        if nbits < 6:
            raise ValueError("takum width must be at least 6 bits")
        self.bits = int(nbits)
        self.name = name or f"takum{nbits}"
        # near 1.0 a takum has up to n - 5 mantissa bits, which exceeds the
        # 52-bit float64 significand for the 64-bit format; on hosts whose
        # longdouble degenerates to float64 (Windows/ARM) the 64-bit format
        # falls back to float64 work precision, where the one-word bit
        # kernel still serves it bit-exactly (binades whose takum grid is
        # finer than float64's become identity rows).  base.LONGDOUBLE_-
        # EXTENDED is read at construction time so tests can simulate the
        # degraded platforms by monkeypatching it.
        self.work_dtype = (
            np.longdouble if nbits > 32 and _base.LONGDOUBLE_EXTENDED else np.float64
        )
        # the 16-bit table kernel is a 2^15-entry searchsorted, which the
        # integer bit kernel beats at vector sizes (8-bit takums keep the
        # direct-indexed table, a single gather)
        self.prefer_bitkernel_rounding = 8 < nbits <= 16
        self._full_table = self.bits <= 16
        self._magnitudes: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._max_value = self._decode_magnitude_of_code((1 << (self.bits - 1)) - 1)
        self._min_positive = self._decode_magnitude_of_code(1)
        self._scalar_state: tuple | None = None
        # the longdouble kernel pays NumPy scalar dispatch (~4 us/element),
        # which moves its break-even against the vector kernel down to ~8
        self.scalar_cutoff = (
            WIDE_SCALAR_CUTOFF if self.work_dtype is np.float64 else SCALAR_CUTOFF
        )
        if self.work_dtype is np.longdouble:
            # the two-word bitkernel's fixed cost (~12 us) is below two
            # longdouble scalar roundings, so hand off almost immediately
            self.bitkernel_scalar_cutoff = 2

    def _decode_magnitude_of_code(self, code: int):
        return abs(self.decode_code(code))

    # ------------------------------------------------------------------ #
    # bit-level
    # ------------------------------------------------------------------ #
    def decode_code(self, code: int):
        """Decode one takum code (sign, direction, regime, characteristic,
        mantissa) into its work-precision value; ``0`` decodes to 0.0 and
        ``10…0`` to NaR (NaN)."""
        n = self.bits
        code = int(code) & ((1 << n) - 1)
        if code == 0:
            return self.work_dtype(0.0)
        if code == 1 << (n - 1):
            return self.work_dtype(np.nan)
        sign = (code >> (n - 1)) & 1
        direction = (code >> (n - 2)) & 1
        regime = (code >> (n - 5)) & 0x7
        r = regime if direction else 7 - regime
        tail_bits = n - 5
        tail = code & ((1 << tail_bits) - 1)
        if tail_bits >= r:
            characteristic = tail >> (tail_bits - r) if r > 0 else 0
            p = tail_bits - r
            mantissa = tail & ((1 << p) - 1) if p > 0 else 0
        else:
            characteristic = tail << (r - tail_bits)
            p = 0
            mantissa = 0
        c = (2**r - 1 + characteristic) if direction else (-(2 ** (r + 1)) + 1 + characteristic)
        one = self.work_dtype(1.0)
        if sign == 0:
            significand = (1 << p) + mantissa if p > 0 else 1
            return np.ldexp(self.work_dtype(significand), int(c - p))
        # negative branch: l = -(c + m)
        if mantissa == 0:
            return -np.ldexp(one, int(-c))
        significand = (1 << (p + 1)) - mantissa  # (2 - m) * 2^p
        return -np.ldexp(self.work_dtype(significand), int(-c - 1 - p))

    def _build_bitkernel(self):
        """Integer bit-twiddling kernel: the one-word float64 kernel for
        float64-work widths, the two-word extended kernel for the 64-bit
        format on 80-bit-longdouble hosts (``None`` on other longdouble
        layouts).  The characteristic-boundary and truncated-characteristic
        binades resolve through :meth:`round_array_analytic`, so either
        kernel is bit-identical to the analytic ground truth."""
        if np.dtype(self.work_dtype) == np.dtype(np.float64):
            return TakumBitKernel(self.bits, self.round_array_analytic)
        if extended_layout_supported():
            return TakumExtendedBitKernel(self.bits, self.round_array_analytic)
        return None

    def table_semantics(self):
        """Takum semantics for the shared lookup-table rounding engine."""
        from .tables import TableSemantics

        return TableSemantics(
            negation="twos_complement",
            unsigned_zero=True,
            underflow_to_min=True,
            overflow_action="saturate",
            inf_result="nan",
            nan_code=1 << (self.bits - 1),
        )

    def encode_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) encode: round through the analytic kernel,
        then emit the takum bit pattern per element.  Returns ``uint64``
        codes of the same shape as ``values``."""
        values = np.asarray(values, dtype=self.work_dtype)
        rounded = self.round_array_analytic(values)
        out = np.zeros(values.shape, dtype=np.uint64)
        flat = rounded.ravel()
        res = out.ravel()
        for i in range(flat.size):
            res[i] = self._encode_scalar(flat[i])
        return out

    def _encode_scalar(self, v) -> int:
        n = self.bits
        if np.isnan(v):
            return 1 << (n - 1)
        if v == 0:
            return 0
        sign = 1 if v < 0 else 0
        g = abs(v)
        lfloor = int(np.floor(np.log2(g)))
        one = self.work_dtype(1.0)
        if np.ldexp(one, lfloor) > g:
            lfloor -= 1
        elif np.ldexp(one, lfloor + 1) <= g:
            lfloor += 1
        # fraction in [0, 1), kept in the work precision: for 64-bit takums
        # it carries up to 59 bits, which a float64 round-trip would corrupt
        frac = g / np.ldexp(one, lfloor) - one
        if sign == 0:
            c = lfloor
            m = frac
        else:
            if frac == 0:
                c, m = -lfloor, self.work_dtype(0.0)
            else:
                c, m = -lfloor - 1, one - frac
        if c >= 0:
            direction = 1
            r = int(math.floor(math.log2(c + 1)))
            characteristic = c - (2**r - 1)
        else:
            direction = 0
            r = int(math.floor(math.log2(-c)))
            characteristic = c + 2 ** (r + 1) - 1
        tail_bits = n - 5
        p = tail_bits - r
        if p >= 0:
            # ldexp and rint are exact in the work precision for
            # representable inputs (m has at most p fraction bits)
            mantissa = int(np.rint(np.ldexp(m, p)))
            if mantissa >= (1 << p) and p > 0:
                mantissa = (1 << p) - 1  # cannot happen for representable v
            tail = (characteristic << p) | mantissa if p > 0 else characteristic
        else:
            tail = characteristic >> (r - tail_bits)
        regime = r if direction else 7 - r
        return (
            (sign << (n - 1))
            | (direction << (n - 2))
            | (regime << (n - 5))
            | (tail & ((1 << tail_bits) - 1))
        )

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #
    def _ensure_tables(self) -> None:
        if not self._full_table or self._magnitudes is not None:
            return
        mags, codes = [0.0], [0]
        for code in range(1, 1 << (self.bits - 1)):
            mags.append(float(self.decode_code(code)))
            codes.append(code)
        mags = np.asarray(mags, dtype=np.float64)
        codes = np.asarray(codes, dtype=np.int64)
        order = np.argsort(mags)
        self._magnitudes = mags[order]
        self._codes = codes[order]

    def _build_scalar_state(self) -> tuple:
        """Assemble the constants the scalar kernel needs, once per format.

        Float64-work formats get plain Python lists/floats; the 64-bit
        format keeps ``longdouble`` scalars so the arithmetic stays in
        extended precision.
        """
        self._ensure_tables()
        if self._full_table:
            state = (self._magnitudes.tolist(), self._codes.tolist())
        elif self.work_dtype is np.float64:
            state = (float(self._min_positive), float(self._max_value))
        else:
            state = (self._min_positive, self._max_value)
        self._scalar_state = state
        return state

    def round_scalar_analytic(self, value):
        """Scalar twin of :meth:`round_array_analytic` for one value.

        Pure-Python ``math.frexp``/``math.ldexp`` kernel (NumPy scalar ops
        for the extended-precision 64-bit format).  The characteristic-field
        length ``r = floor(log2(...))`` is computed exactly with integer
        ``bit_length`` instead of a float ``log2``; everything else mirrors
        the vector kernel operation for operation.  Verified bit-identical
        by ``tests/test_scalar_rounding.py``.
        """
        state = self._scalar_state
        if state is None:
            state = self._build_scalar_state()
        if self.work_dtype is np.float64:
            v = float(value)
            if v != v or v == math.inf or v == -math.inf:
                return math.nan  # takum NaR
            if v == 0.0:
                return 0.0  # single unsigned zero
            a = -v if v < 0.0 else v
            if self._full_table:
                mags, codes = state
                last = mags[-1]
                clipped = a if a < last else last
                mag = mags[nearest_in_table_scalar(clipped, mags, codes)]
                if mag == 0.0:
                    mag = float(self._min_positive)
            else:
                minpos, maxval = state
                c = math.frexp(a)[1] - 1
                if c < _C_MIN:
                    c = _C_MIN
                elif c > _C_MAX:
                    c = _C_MAX
                r = (c + 1).bit_length() - 1 if c >= 0 else (-c).bit_length() - 1
                qexp = c - (self.bits - 5 - r)
                mag = float(round(math.ldexp(a, -qexp))) * math.ldexp(1.0, qexp)
                if mag < minpos:
                    mag = minpos
                elif mag > maxval:
                    mag = maxval
            return -mag if v < 0.0 else mag
        # extended-precision (longdouble) twin: same structure, NumPy scalars
        wd = self.work_dtype
        v = value if isinstance(value, wd) else wd(value)
        if v != v or v == np.inf or v == -np.inf:
            return wd(np.nan)
        if v == 0.0:
            return wd(0.0)
        a = -v if v < 0.0 else v
        minpos, maxval = state
        c = int(np.frexp(a)[1]) - 1
        if c < _C_MIN:
            c = _C_MIN
        elif c > _C_MAX:
            c = _C_MAX
        r = (c + 1).bit_length() - 1 if c >= 0 else (-c).bit_length() - 1
        qexp = c - (self.bits - 5 - r)
        mag = np.rint(np.ldexp(a, -qexp)) * np.ldexp(wd(1.0), qexp)
        if mag < minpos:
            mag = minpos
        elif mag > maxval:
            mag = maxval
        return -mag if v < 0.0 else mag

    # ------------------------------------------------------------------ #
    # value-space rounding
    # ------------------------------------------------------------------ #
    def round_array_analytic(self, values) -> np.ndarray:
        """Vectorised ground-truth rounding.  Formats of <= 16 bits use an
        exact table of representable magnitudes; wider formats clamp the
        characteristic to [-255, 254] and round to the mantissa quantum of
        the containing binade.  Saturates at the smallest/largest
        representable magnitude, maps inf to NaR."""
        x = np.asarray(values, dtype=self.work_dtype)
        out = np.empty(x.shape, dtype=self.work_dtype)
        self._ensure_tables()
        nan_mask = np.isnan(x)
        inf_mask = np.isinf(x)
        zero_mask = x == 0
        finite = np.isfinite(x)
        a = np.abs(np.where(finite, x, 0.0))
        sign = np.where(np.signbit(x), self.work_dtype(-1.0), self.work_dtype(1.0))

        if self._full_table:
            # clamp to the largest magnitude first: far outside the table the
            # distances to the last two entries are indistinguishable in the
            # work precision and the tie rule could pick the wrong one
            clipped = np.minimum(a.astype(np.float64), self._magnitudes[-1])
            idx = nearest_in_table(clipped, self._magnitudes, self._codes)
            mag = self._magnitudes[idx].astype(self.work_dtype)
            mag = np.where(
                (mag == 0) & ~zero_mask, self.work_dtype(self._min_positive), mag
            )
        else:
            mag = self._round_magnitude_analytic(a, zero_mask)

        res = sign * mag
        res = np.where(zero_mask, self.work_dtype(0.0), res)
        res = np.where(inf_mask | nan_mask, self.work_dtype(np.nan), res)
        out[...] = res
        return out

    def _round_magnitude_analytic(self, a, zero_mask) -> np.ndarray:
        one = self.work_dtype(1.0)
        safe = np.where(zero_mask, one, a)
        _, e = np.frexp(safe)
        c = np.clip(e.astype(np.int64) - 1, _C_MIN, _C_MAX)
        cf = c.astype(np.float64)
        # characteristic-field length: floor(log2(c+1)) for c >= 0, and
        # floor(log2(-c)) for c < 0; both arguments are >= 1 by construction
        log_arg = np.where(c >= 0, cf + 1.0, -cf)
        r = np.floor(np.log2(log_arg)).astype(np.int64)
        p = self.bits - 5 - r
        quantum = np.ldexp(one, (c - p).astype(np.int64))
        mag = round_to_quantum(safe, quantum)
        mag = np.clip(mag, self._min_positive, self._max_value)
        return np.where(zero_mask, self.work_dtype(0.0), mag)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def max_value(self) -> float:
        """Largest finite magnitude (decode of code ``01…1``, ≈ 2^255)."""
        return float(self._max_value)

    @property
    def min_positive(self) -> float:
        """Smallest positive magnitude (decode of code ``0…01``, ≈ 2^-255)."""
        return float(self._min_positive)

    def _compute_machine_epsilon(self) -> float:
        # around 1.0: c = 0 -> r = 0 -> p = n - 5 mantissa bits
        return math.ldexp(1.0, -(self.bits - 5))


#: 8-bit linear takum
TAKUM8 = TakumFormat(8)
#: 16-bit linear takum
TAKUM16 = TakumFormat(16)
#: 32-bit linear takum
TAKUM32 = TakumFormat(32)
#: 64-bit linear takum
TAKUM64 = TakumFormat(64)
