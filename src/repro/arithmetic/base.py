"""Abstract base class and shared helpers for machine-number formats.

A :class:`NumberFormat` describes a finite set of representable real values
(plus special values such as NaN/NaR and, for IEEE-style formats, signed
infinities).  The formats operate in *value space*: arrays hold work-precision
floating-point numbers (``float64`` or ``numpy.longdouble``) whose values are
exactly representable in the emulated format.  Rounding an arbitrary
work-precision array onto that set is the performance-critical primitive
(:meth:`NumberFormat.round_array`); bit-level encode/decode is provided for
storage, interchange and testing.
"""

from __future__ import annotations

import bisect
import dataclasses
import warnings
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from . import bitkernels as _bitkernels
from ..telemetry import core as _telemetry
from ..telemetry.metrics import metrics as _metrics

__all__ = [
    "NumberFormat",
    "RoundingInfo",
    "round_to_quantum",
    "nearest_in_table",
    "nearest_in_table_scalar",
    "MAX_TABLE_BITS",
    "SCALAR_CUTOFF",
    "WIDE_SCALAR_CUTOFF",
    "LONGDOUBLE_EXTENDED",
    "require_extended_longdouble",
]

#: widest format the lookup-table engine will enumerate (2^15 positive
#: codes).  Lives here rather than in :mod:`repro.arithmetic.tables` so the
#: dispatch in :meth:`NumberFormat.round_scalar` can skip the table lookup
#: for formats that can never be table-served; re-exported by ``tables``.
MAX_TABLE_BITS = 16

#: memoised reference to repro.arithmetic.tables.table_for (set on first use;
#: the tables module imports this one, so a top-level import would be a cycle)
_TABLE_FOR = None

#: sentinel distinguishing 'bit kernel never built' from 'ineligible (None)'
_UNSET = object()

#: arrays up to this size round element-wise in pure Python when a lookup
#: table is available (a ``bisect`` over the table beats ~10 NumPy dispatch
#: round-trips on tiny arrays, the regime of the solvers' scalar Givens/QL
#: operations).  Re-exported by :mod:`repro.arithmetic.tables`.
SCALAR_CUTOFF = 8

#: arrays up to this size round element-wise through the pure-Python
#: analytic scalar kernels (:meth:`NumberFormat.round_scalar_analytic`) for
#: formats the table engine cannot serve (posit/takum/IEEE wider than 16
#: bits).  The wide vector kernels pay ~25 NumPy dispatch round-trips
#: (~35 us) regardless of size while a scalar call costs ~1.5 us, so the
#: break-even sits near 24 elements.
WIDE_SCALAR_CUTOFF = 24

#: whether ``numpy.longdouble`` carries more significand bits than float64
#: on this platform.  On Windows and most ARM builds longdouble *is*
#: float64; the 64-bit posit/takum formats then construct with a float64
#: work dtype (their one-word bit kernels serve them there, with identity
#: binades where the format grid is finer than float64's) instead of
#: pretending to an extended precision the platform cannot deliver.  The
#: tests that need genuine extended precision skip via the capability
#: marker in ``tests/conftest.py``; the forced-fallback tests simulate the
#: degraded platforms by monkeypatching this flag before constructing a
#: format.
LONGDOUBLE_EXTENDED = np.finfo(np.longdouble).nmant > np.finfo(np.float64).nmant

_LONGDOUBLE_WARNED = False


#: deferred dispatch tallies, ``(format, path) -> [calls, elements]``.
#: ``round_array`` sits on the contexts' array hot path where even one
#: registry lookup (label canonicalisation + lock) per call blows the ≤2%
#: telemetry budget of ``benchmarks/bench_telemetry.py``; a plain-dict
#: increment costs ~0.2µs and the registry drains the tally at read time
#: (see :meth:`repro.telemetry.MetricsRegistry.register_flusher`).
_dispatch_tally: dict[tuple[str, str], list] = {}


def _count_dispatch(fmt: "NumberFormat", path: str, n: int) -> None:
    """Tally one vector rounding dispatch decision (caller checks ENABLED)."""
    key = (fmt.name, path)
    entry = _dispatch_tally.get(key)
    if entry is None:
        entry = _dispatch_tally[key] = [0, 0]
    entry[0] += 1
    entry[1] += n


def _flush_dispatch_tally(discard: bool = False) -> None:
    """Drain the deferred tallies into the registry (or drop on reset)."""
    for (fmt_name, path), entry in _dispatch_tally.items():
        calls, elements = entry[0], entry[1]
        if calls and not discard:
            _metrics.counter("rounding.dispatch", format=fmt_name, path=path).inc(calls)
        if elements and not discard:
            _metrics.counter("rounding.elements", format=fmt_name, path=path).inc(elements)
        entry[0] -= calls
        entry[1] -= elements


_metrics.register_flusher(_flush_dispatch_tally)


def require_extended_longdouble(format_name: str) -> bool:
    """Check the extended-precision capability for ``format_name``.

    Returns ``True`` when ``numpy.longdouble`` is wider than float64; emits
    a single ``RuntimeWarning`` and returns ``False`` otherwise.

    Retained for external callers that want the loud capability probe; the
    64-bit posit/takum formats no longer call it — they degrade cleanly to
    a float64 work dtype (served bit-exactly by the one-word kernels)
    instead of warning about a precision they silently lost.
    """
    global _LONGDOUBLE_WARNED
    if LONGDOUBLE_EXTENDED:
        return True
    if not _LONGDOUBLE_WARNED:
        _LONGDOUBLE_WARNED = True
        warnings.warn(
            f"numpy.longdouble on this platform is plain float64, so the "
            f"extended-precision work arithmetic of {format_name!r} (and the "
            "other 64-bit posit/takum formats) loses precision below the "
            "52nd significand bit; 64-bit emulated results will not be "
            "bit-accurate here.  Use an x86 Linux/macOS build for the "
            "64-bit format experiments.",
            RuntimeWarning,
            stacklevel=3,
        )
    return False


@dataclasses.dataclass
class RoundingInfo:
    """Diagnostics of a conversion into a target format.

    Attributes
    ----------
    overflowed:
        Number of finite non-zero inputs that became non-finite (infinity or
        NaN) because the magnitude exceeded the format's dynamic range.
    underflowed:
        Number of finite non-zero inputs that were flushed to zero because the
        magnitude fell below the smallest representable positive value.
    saturated:
        Number of finite non-zero inputs clamped to the largest/smallest
        representable magnitude (tapered formats saturate instead of
        overflowing).
    """

    overflowed: int = 0
    underflowed: int = 0
    saturated: int = 0

    @property
    def range_exceeded(self) -> bool:
        """True when the input's dynamic range did not fit the format."""
        return self.overflowed > 0 or self.underflowed > 0


def round_to_quantum(x: np.ndarray, quantum: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest integer multiple of ``quantum``.

    Parameters
    ----------
    x:
        Values to round (any float dtype, broadcastable with ``quantum``).
    quantum:
        Per-element rounding grain.  Must consist of powers of two so that
        the division and multiplication are exact.

    Returns
    -------
    numpy.ndarray
        Nearest multiples; ties are resolved towards the even multiple
        (``numpy.rint`` semantics), which coincides with round-half-to-even
        on the retained significand bit.
    """
    return np.rint(x / quantum) * quantum


def nearest_in_table(
    a: np.ndarray,
    magnitudes: np.ndarray,
    codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Round non-negative values ``a`` to the nearest entry of ``magnitudes``.

    Parameters
    ----------
    a:
        Non-negative finite values (any float dtype).
    magnitudes:
        Sorted (ascending) array of representable non-negative magnitudes.
    codes:
        Optional array of integer codes parallel to ``magnitudes``; when
        given, exact ties between two neighbouring magnitudes are resolved
        towards the entry with an even code (ties-to-even encoding), otherwise
        ties resolve towards the smaller magnitude.

    Returns
    -------
    numpy.ndarray
        Array of indices into ``magnitudes``.
    """
    a = np.asarray(a)
    hi = np.searchsorted(magnitudes, a, side="left")
    hi = np.clip(hi, 0, len(magnitudes) - 1)
    lo = np.clip(hi - 1, 0, len(magnitudes) - 1)
    d_hi = np.abs(magnitudes[hi] - a)
    d_lo = np.abs(a - magnitudes[lo])
    take_lo = d_lo < d_hi
    tie = d_lo == d_hi
    if codes is not None:
        lo_even = (codes[lo] % 2) == 0
        take_lo = take_lo | (tie & lo_even)
    else:
        take_lo = take_lo | tie
    return np.where(take_lo, lo, hi)


def nearest_in_table_scalar(a, magnitudes, codes=None) -> int:
    """Scalar twin of :func:`nearest_in_table` for one non-negative value.

    Parameters
    ----------
    a:
        One non-negative finite value (Python float or work-dtype scalar).
    magnitudes:
        Sorted (ascending) sequence of representable non-negative magnitudes
        (a plain list for float64 work precision, a NumPy array for
        ``longdouble`` so that the distance arithmetic keeps the extended
        precision).
    codes:
        Optional parallel sequence of integer codes; ties resolve towards the
        even code exactly as in the vector kernel, otherwise towards the
        smaller magnitude.

    Returns
    -------
    int
        Index of the nearest entry.  Every comparison mirrors the vector
        kernel operation for operation (Python floats are the same IEEE
        doubles NumPy uses), so the result is bit-identical.
    """
    last = len(magnitudes) - 1
    hi = bisect.bisect_left(magnitudes, a)
    if hi > last:
        hi = last
    lo = hi - 1 if hi > 0 else 0
    d_hi = abs(magnitudes[hi] - a)
    d_lo = abs(a - magnitudes[lo])
    if d_lo < d_hi:
        return lo
    if d_lo == d_hi and (codes[lo] % 2 == 0 if codes is not None else True):
        return lo
    return hi


class NumberFormat(ABC):
    """A machine-number format emulated in software.

    Subclasses must provide bit-level ``decode_code``/representable-value
    enumeration and a vectorised :meth:`round_array_analytic`.  All formats
    share the conventions:

    * NaN in value space represents the format's NaN/NaR,
    * ``numpy.inf`` is only produced by formats that have infinities,
    * rounding is round-to-nearest with ties to the even code.

    Formats of up to 16 bits that declare :meth:`table_semantics` are served
    by the shared lookup-table engine (:mod:`repro.arithmetic.tables`) for
    :meth:`round_array`, :meth:`encode` and :meth:`decode`; the analytic
    implementations remain the ground truth the tables are verified against.

    Formats the table engine cannot serve (wider than 16 bits) may declare a
    pure-Python scalar kernel instead (:attr:`has_scalar_kernel` /
    :meth:`round_scalar_analytic`): :meth:`round_array` then routes arrays of
    up to :attr:`scalar_cutoff` elements — the regime of the solvers'
    elementwise Givens/QL operations — through the scalar kernel, which
    skips the ~25 NumPy dispatch round-trips of the vector kernels.  The
    scalar kernels are verified bit-identical to :meth:`round_array_analytic`
    by the sweeps in ``tests/test_scalar_rounding.py``.

    Both fast backends can be bypassed for verification, from coarse to
    fine: the ``REPRO_DISABLE_ROUNDING_TABLES=1`` environment variable and
    :func:`repro.arithmetic.tables.set_enabled` disable the table engine
    process-wide, and ``get_context(name, use_tables=False)`` forces one
    context onto the analytic *vector* kernels for arrays and scalars
    alike, bypassing the scalar kernels as well (``use_tables=True``
    forces the tables even when globally disabled).
    """

    #: short identifier, e.g. ``"posit16"``
    name: str = "abstract"
    #: storage width in bits
    bits: int = 0
    #: work dtype used in value space (float64 or longdouble)
    work_dtype: type = np.float64
    #: whether the format has signed infinities
    has_infinity: bool = False
    #: whether out-of-range magnitudes saturate (tapered formats) instead of
    #: overflowing to infinity/NaN
    saturating: bool = False
    #: whether :meth:`round_scalar_analytic` implements a fast scalar kernel
    #: (as opposed to the default fallback through the vector kernel)
    has_scalar_kernel: bool = False
    #: largest array size :meth:`round_array` routes through the scalar
    #: kernel when no lookup table serves the format; 0 disables the scalar
    #: dispatch (formats whose vector kernel is a plain dtype cast)
    scalar_cutoff: int = WIDE_SCALAR_CUTOFF
    #: the same cutoff when an integer bit kernel serves the format: the
    #: kernel's fixed dispatch cost (~20 us) undercuts the analytic vector
    #: chain (~80 us), which moves the scalar-loop break-even down from ~24
    #: to ~12 elements
    bitkernel_scalar_cutoff: int = 12

    # ------------------------------------------------------------------ #
    # lookup-table backend
    # ------------------------------------------------------------------ #
    def table_semantics(self):
        """Describe this format to the shared lookup-table rounding engine.

        Returns a :class:`repro.arithmetic.tables.TableSemantics` for formats
        the engine can serve, ``None`` (the default) otherwise.
        """
        return None

    def _rounding_table(self):
        """The active :class:`~repro.arithmetic.tables.ValueTable`, if any."""
        # tables imports this module, so the reference is resolved lazily —
        # but only once: this sits on the per-scalar rounding path, where a
        # per-call ``from . import tables`` is measurable
        global _TABLE_FOR
        if _TABLE_FOR is None:
            from .tables import table_for as _table_for

            _TABLE_FOR = _table_for
        return _TABLE_FOR(self)

    @property
    def table_backed(self) -> bool:
        """Whether the lookup-table engine currently serves this format."""
        return self._rounding_table() is not None

    # ------------------------------------------------------------------ #
    # integer bit-twiddling backend
    # ------------------------------------------------------------------ #
    #: whether the bit kernel should replace the lookup-table *rounding*
    #: path at vector sizes (set by formats whose table kernel is a
    #: 2^15-entry searchsorted, which the integer kernel beats; the 8-bit
    #: direct-indexed table stays faster and keeps the table path)
    prefer_bitkernel_rounding = False

    def _build_bitkernel(self):
        """Construct the family's :class:`~repro.arithmetic.bitkernels.BitKernel`
        (``None`` by default: no integer kernel serves this format)."""
        return None

    def bitkernel(self):
        """The active integer bit kernel for this format, or ``None``.

        Built lazily once per format instance; gated on the global
        :func:`repro.arithmetic.bitkernels.set_enabled` switch.  The format
        picks the kernel flavour in :meth:`_build_bitkernel`: float64-work
        formats get the one-word kernels, the extended-precision 64-bit
        posit/takum formats get the two-word kernels operating on the
        80-bit longdouble memory layout (``None`` on hosts whose longdouble
        is neither that layout nor plain float64).
        """
        if not _bitkernels.bitkernels_enabled():
            return None
        kern = self.__dict__.get("_bitkernel_obj", _UNSET)
        if kern is _UNSET:
            kern = self._build_bitkernel()
            self._bitkernel_obj = kern
        return kern

    # ------------------------------------------------------------------ #
    # bit-level interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def decode_code(self, code: int) -> float:
        """Decode a single integer code into its work-precision value.

        NaN/NaR codes decode to ``nan``; infinity codes (if any) to ``inf``.
        """

    def decode(self, codes) -> np.ndarray:
        """Vectorised decode of an array of integer codes.

        Parameters
        ----------
        codes:
            Integer codes (any shape; converted to ``uint64``).

        Returns
        -------
        numpy.ndarray
            Work-precision values, same shape as ``codes``.  Served by the
            lookup-table engine when it covers this format, otherwise by a
            per-element :meth:`decode_code` loop.
        """
        table = self._rounding_table()
        if table is not None:
            return table.decode_values(codes)
        kern = self.bitkernel()
        if kern is not None and kern.supports_codec:
            return kern.decode(codes)
        codes = np.asarray(codes, dtype=np.uint64)
        out = np.empty(codes.shape, dtype=self.work_dtype)
        flat = codes.ravel()
        res = out.ravel()
        for i in range(flat.size):
            res[i] = self.decode_code(int(flat[i]))
        return out

    def encode(self, values) -> np.ndarray:
        """Encode work-precision values into integer codes (nearest).

        Parameters
        ----------
        values:
            Work-precision values (any shape).

        Returns
        -------
        numpy.ndarray
            ``uint64`` codes, same shape as ``values``; each value is first
            rounded through :meth:`round_array`, then encoded (non-canonical
            NaNs collapse to the canonical NaN/NaR code).
        """
        table = self._rounding_table()
        if table is not None:
            # round through whichever backend this format prefers (the 16-bit
            # IEEE formats keep the cheaper analytic quantum rounding), then
            # encode the representable results through the table
            return table.encode_representable(self.round_array(values))
        kern = self.bitkernel()
        if kern is not None and kern.supports_codec:
            return kern.encode(self.round_array(values))
        return self.encode_analytic(values)

    @abstractmethod
    def encode_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) implementation of :meth:`encode`."""

    # ------------------------------------------------------------------ #
    # value-space interface
    # ------------------------------------------------------------------ #
    def round_array(self, values, *args, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Round an array of work-precision values to the nearest
        representable values of this format (returned in work precision).

        Parameters
        ----------
        values:
            Work-precision values (any shape).
        out:
            Optional pre-allocated work-dtype array of the same shape the
            result is written into; ``out`` may alias ``values``, which is
            how the contexts round operation results in place instead of
            allocating a second array per elementary op.  Returned when
            given.  Keyword-only under the unified signature contract
            (``docs/api.md``); a positional buffer still works through the
            deprecation shim.

        Dispatches by (format width, array size):

        * tiny arrays (the solvers' elementwise Givens/QL regime) round
          element-wise through the scalar paths — the lookup-table
          ``bisect`` kernel or the format's pure-Python scalar kernel;
        * table-served formats (<= 16 bits) route through the lookup-table
          engine whenever it prefers the size, unless the format marks
          :attr:`prefer_bitkernel_rounding` (the 16-bit tapered formats,
          whose 2^15-entry ``searchsorted`` loses to the integer kernel);
        * formats with an integer bit kernel
          (:mod:`repro.arithmetic.bitkernels`) route through it;
        * everything else falls through to the vectorised
          :meth:`round_array_analytic` ground truth.
        """
        if args:
            from .context import _positional_out

            out = _positional_out(args, out)
        table = self._rounding_table()
        values = np.asarray(values, dtype=self.work_dtype)
        n = values.size
        if table is not None:
            if table.prefers_rounding(n) and not (
                self.prefer_bitkernel_rounding
                and n > SCALAR_CUTOFF
                and self.bitkernel() is not None
            ):
                if _telemetry.ENABLED:
                    _count_dispatch(self, "table", n)
                return table.round_values(values, out=out)
            kern = self.bitkernel()
        else:
            kern = self.bitkernel()
            if self.has_scalar_kernel and n <= (
                self.scalar_cutoff if kern is None else self.bitkernel_scalar_cutoff
            ):
                if _telemetry.ENABLED:
                    _count_dispatch(self, "scalar_kernel", n)
                return self._round_small_array(values, out=out)
        if kern is not None:
            if _telemetry.ENABLED:
                _count_dispatch(self, "bitkernel", n)
            return kern.round(values, out=out)
        if _telemetry.ENABLED:
            _count_dispatch(self, "analytic", n)
        res = self.round_array_analytic(values)
        if out is not None:
            out[...] = res
            return out
        return res

    def _round_small_array(self, values: np.ndarray, out=None) -> np.ndarray:
        """Round a tiny array element-wise through the scalar kernel."""
        if out is None:
            out = np.empty(values.shape, dtype=self.work_dtype)
        flat = out.flat  # flatiter: assignment works for any memory layout
        kernel = self.round_scalar_analytic
        for i, v in enumerate(values.flat):
            flat[i] = kernel(v)
        return out

    @abstractmethod
    def round_array_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) implementation of :meth:`round_array`.

        Kept as the bit-level ground truth that the lookup-table engine and
        the scalar kernels are verified against; also serves large arrays of
        formats wider than 16 bits."""

    def round_scalar_analytic(self, value):
        """Scalar twin of :meth:`round_array_analytic` for one value.

        Parameters
        ----------
        value:
            One work-precision value (Python float or work-dtype scalar).

        Returns
        -------
        A work-precision scalar (Python float for float64 formats, a
        ``numpy.longdouble`` scalar for extended-precision formats),
        bit-identical to what the vector kernel produces for the same input.

        The default implementation falls back to the vector kernel; formats
        that set :attr:`has_scalar_kernel` override it with a pure-Python
        (``math.frexp``/``math.ldexp``) kernel that skips NumPy dispatch.
        """
        return self.round_array_analytic(
            np.asarray([value], dtype=self.work_dtype)
        )[0]

    def round_scalar(self, value: float) -> float:
        """Round a single scalar without an ndarray round-trip.

        Routes through the lookup-table scalar path when the table engine
        serves this format, through :meth:`round_scalar_analytic` when a
        scalar kernel exists, and falls back to the vector kernel otherwise.
        Returns a Python float (wide extended-precision formats lose the
        sub-float64 bits here; use :meth:`round_scalar_analytic` to keep the
        work precision).
        """
        if self.bits <= MAX_TABLE_BITS:
            table = self._rounding_table()
            if table is not None:
                return table.round_one(float(value))
        return float(self.round_scalar_analytic(value))

    def convert(self, values) -> tuple[np.ndarray, RoundingInfo]:
        """Convert ``values`` into the format, reporting range diagnostics.

        Used when casting an input matrix into the target arithmetic; the
        returned :class:`RoundingInfo` feeds the ∞σ ("dynamic range of matrix
        entries exceeded") failure flag of the experiments.
        """
        values = np.asarray(values, dtype=self.work_dtype)
        rounded = self.round_array(values)
        finite_nonzero = np.isfinite(values) & (values != 0)
        overflowed = int(np.count_nonzero(finite_nonzero & ~np.isfinite(rounded)))
        underflowed = int(np.count_nonzero(finite_nonzero & (rounded == 0)))
        saturated = 0
        if self.saturating:
            max_mag = self.max_value
            min_mag = self.min_positive
            saturated_high = np.count_nonzero(
                finite_nonzero & (np.abs(rounded) == max_mag) & (np.abs(values) > max_mag)
            )
            saturated_low = np.count_nonzero(
                finite_nonzero & (np.abs(rounded) == min_mag) & (np.abs(values) < min_mag)
            )
            saturated = int(saturated_high + saturated_low)
        return rounded, RoundingInfo(overflowed, underflowed, saturated)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def max_value(self) -> float:
        """Largest finite representable magnitude."""

    @property
    @abstractmethod
    def min_positive(self) -> float:
        """Smallest positive representable magnitude."""

    @property
    def machine_epsilon(self) -> float:
        """Distance between 1 and the next representable value above 1.

        Memoised on the instance: formats without a closed form probe the
        value via repeated :meth:`round_array` calls, which would otherwise
        re-run on every access.
        """
        eps = self.__dict__.get("_machine_epsilon")
        if eps is None:
            eps = float(self._compute_machine_epsilon())
            self._machine_epsilon = eps
        return eps

    def _compute_machine_epsilon(self) -> float:
        """Probe the spacing above 1.0; overridden with closed forms by the
        concrete formats."""
        one = np.asarray([1.0], dtype=self.work_dtype)
        nxt = self.round_array(one * (1.0 + 2.0 ** (-self.bits)))
        if float(nxt[0]) > 1.0:
            return float(nxt[0]) - 1.0
        # search upward in coarse steps until a representable value above one
        # is found (always terminates: 2.0 is representable in every format)
        step = 2.0 ** (-self.bits)
        while True:
            step *= 2.0
            cand = self.round_array(np.asarray([1.0 + step], dtype=self.work_dtype))
            if float(cand[0]) > 1.0:
                return float(cand[0]) - 1.0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r} ({self.bits} bits)>"

    def __eq__(self, other) -> bool:
        return isinstance(other, NumberFormat) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)
