"""Abstract base class and shared helpers for machine-number formats.

A :class:`NumberFormat` describes a finite set of representable real values
(plus special values such as NaN/NaR and, for IEEE-style formats, signed
infinities).  The formats operate in *value space*: arrays hold work-precision
floating-point numbers (``float64`` or ``numpy.longdouble``) whose values are
exactly representable in the emulated format.  Rounding an arbitrary
work-precision array onto that set is the performance-critical primitive
(:meth:`NumberFormat.round_array`); bit-level encode/decode is provided for
storage, interchange and testing.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

__all__ = ["NumberFormat", "RoundingInfo", "round_to_quantum", "nearest_in_table"]


@dataclasses.dataclass
class RoundingInfo:
    """Diagnostics of a conversion into a target format.

    Attributes
    ----------
    overflowed:
        Number of finite non-zero inputs that became non-finite (infinity or
        NaN) because the magnitude exceeded the format's dynamic range.
    underflowed:
        Number of finite non-zero inputs that were flushed to zero because the
        magnitude fell below the smallest representable positive value.
    saturated:
        Number of finite non-zero inputs clamped to the largest/smallest
        representable magnitude (tapered formats saturate instead of
        overflowing).
    """

    overflowed: int = 0
    underflowed: int = 0
    saturated: int = 0

    @property
    def range_exceeded(self) -> bool:
        """True when the input's dynamic range did not fit the format."""
        return self.overflowed > 0 or self.underflowed > 0


def round_to_quantum(x: np.ndarray, quantum: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest integer multiple of ``quantum``.

    ``quantum`` must consist of powers of two so that the division and
    multiplication are exact; ties are resolved towards the even multiple
    (``numpy.rint`` semantics), which coincides with round-half-to-even on the
    retained significand bit.
    """
    return np.rint(x / quantum) * quantum


def nearest_in_table(
    a: np.ndarray,
    magnitudes: np.ndarray,
    codes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Round non-negative values ``a`` to the nearest entry of ``magnitudes``.

    Parameters
    ----------
    a:
        Non-negative finite values (any float dtype).
    magnitudes:
        Sorted (ascending) array of representable non-negative magnitudes.
    codes:
        Optional array of integer codes parallel to ``magnitudes``; when
        given, exact ties between two neighbouring magnitudes are resolved
        towards the entry with an even code (ties-to-even encoding), otherwise
        ties resolve towards the smaller magnitude.

    Returns
    -------
    numpy.ndarray
        Array of indices into ``magnitudes``.
    """
    a = np.asarray(a)
    hi = np.searchsorted(magnitudes, a, side="left")
    hi = np.clip(hi, 0, len(magnitudes) - 1)
    lo = np.clip(hi - 1, 0, len(magnitudes) - 1)
    d_hi = np.abs(magnitudes[hi] - a)
    d_lo = np.abs(a - magnitudes[lo])
    take_lo = d_lo < d_hi
    tie = d_lo == d_hi
    if codes is not None:
        lo_even = (codes[lo] % 2) == 0
        take_lo = take_lo | (tie & lo_even)
    else:
        take_lo = take_lo | tie
    return np.where(take_lo, lo, hi)


class NumberFormat(ABC):
    """A machine-number format emulated in software.

    Subclasses must provide bit-level ``decode_code``/representable-value
    enumeration and a vectorised :meth:`round_array_analytic`.  All formats
    share the conventions:

    * NaN in value space represents the format's NaN/NaR,
    * ``numpy.inf`` is only produced by formats that have infinities,
    * rounding is round-to-nearest with ties to the even code.

    Formats of up to 16 bits that declare :meth:`table_semantics` are served
    by the shared lookup-table engine (:mod:`repro.arithmetic.tables`) for
    :meth:`round_array`, :meth:`encode` and :meth:`decode`; the analytic
    implementations remain the ground truth the tables are verified against.
    """

    #: short identifier, e.g. ``"posit16"``
    name: str = "abstract"
    #: storage width in bits
    bits: int = 0
    #: work dtype used in value space (float64 or longdouble)
    work_dtype: type = np.float64
    #: whether the format has signed infinities
    has_infinity: bool = False
    #: whether out-of-range magnitudes saturate (tapered formats) instead of
    #: overflowing to infinity/NaN
    saturating: bool = False

    # ------------------------------------------------------------------ #
    # lookup-table backend
    # ------------------------------------------------------------------ #
    def table_semantics(self):
        """Describe this format to the shared lookup-table rounding engine.

        Returns a :class:`repro.arithmetic.tables.TableSemantics` for formats
        the engine can serve, ``None`` (the default) otherwise.
        """
        return None

    def _rounding_table(self):
        """The active :class:`~repro.arithmetic.tables.ValueTable`, if any."""
        from . import tables

        return tables.table_for(self)

    @property
    def table_backed(self) -> bool:
        """Whether the lookup-table engine currently serves this format."""
        return self._rounding_table() is not None

    # ------------------------------------------------------------------ #
    # bit-level interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def decode_code(self, code: int) -> float:
        """Decode a single integer code into its work-precision value.

        NaN/NaR codes decode to ``nan``; infinity codes (if any) to ``inf``.
        """

    def decode(self, codes) -> np.ndarray:
        """Vectorised decode of an array of integer codes."""
        table = self._rounding_table()
        if table is not None:
            return table.decode_values(codes)
        codes = np.asarray(codes, dtype=np.uint64)
        out = np.empty(codes.shape, dtype=self.work_dtype)
        flat = codes.ravel()
        res = out.ravel()
        for i in range(flat.size):
            res[i] = self.decode_code(int(flat[i]))
        return out

    def encode(self, values) -> np.ndarray:
        """Encode work-precision values into integer codes (nearest)."""
        table = self._rounding_table()
        if table is not None:
            # round through whichever backend this format prefers (the 16-bit
            # IEEE formats keep the cheaper analytic quantum rounding), then
            # encode the representable results through the table
            return table.encode_representable(self.round_array(values))
        return self.encode_analytic(values)

    @abstractmethod
    def encode_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) implementation of :meth:`encode`."""

    # ------------------------------------------------------------------ #
    # value-space interface
    # ------------------------------------------------------------------ #
    def round_array(self, values) -> np.ndarray:
        """Round an array of work-precision values to the nearest
        representable values of this format (returned in work precision)."""
        table = self._rounding_table()
        if table is not None:
            values = np.asarray(values, dtype=self.work_dtype)
            if table.prefers_rounding(values.size):
                return table.round_values(values)
        return self.round_array_analytic(values)

    @abstractmethod
    def round_array_analytic(self, values) -> np.ndarray:
        """Analytic (table-free) implementation of :meth:`round_array`.

        Kept as the bit-level ground truth that the lookup-table engine is
        verified against; also serves formats wider than 16 bits."""

    def round_scalar(self, value: float) -> float:
        """Round a single scalar; convenience wrapper over
        :meth:`round_array`."""
        return float(self.round_array(np.asarray([value], dtype=self.work_dtype))[0])

    def convert(self, values) -> tuple[np.ndarray, RoundingInfo]:
        """Convert ``values`` into the format, reporting range diagnostics.

        Used when casting an input matrix into the target arithmetic; the
        returned :class:`RoundingInfo` feeds the ∞σ ("dynamic range of matrix
        entries exceeded") failure flag of the experiments.
        """
        values = np.asarray(values, dtype=self.work_dtype)
        rounded = self.round_array(values)
        finite_nonzero = np.isfinite(values) & (values != 0)
        overflowed = int(np.count_nonzero(finite_nonzero & ~np.isfinite(rounded)))
        underflowed = int(np.count_nonzero(finite_nonzero & (rounded == 0)))
        saturated = 0
        if self.saturating:
            max_mag = self.max_value
            min_mag = self.min_positive
            saturated_high = np.count_nonzero(
                finite_nonzero & (np.abs(rounded) == max_mag) & (np.abs(values) > max_mag)
            )
            saturated_low = np.count_nonzero(
                finite_nonzero & (np.abs(rounded) == min_mag) & (np.abs(values) < min_mag)
            )
            saturated = int(saturated_high + saturated_low)
        return rounded, RoundingInfo(overflowed, underflowed, saturated)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def max_value(self) -> float:
        """Largest finite representable magnitude."""

    @property
    @abstractmethod
    def min_positive(self) -> float:
        """Smallest positive representable magnitude."""

    @property
    def machine_epsilon(self) -> float:
        """Distance between 1 and the next representable value above 1.

        Memoised on the instance: formats without a closed form probe the
        value via repeated :meth:`round_array` calls, which would otherwise
        re-run on every access.
        """
        eps = self.__dict__.get("_machine_epsilon")
        if eps is None:
            eps = float(self._compute_machine_epsilon())
            self._machine_epsilon = eps
        return eps

    def _compute_machine_epsilon(self) -> float:
        """Probe the spacing above 1.0; overridden with closed forms by the
        concrete formats."""
        one = np.asarray([1.0], dtype=self.work_dtype)
        nxt = self.round_array(one * (1.0 + 2.0 ** (-self.bits)))
        if float(nxt[0]) > 1.0:
            return float(nxt[0]) - 1.0
        # search upward in coarse steps until a representable value above one
        # is found (always terminates: 2.0 is representable in every format)
        step = 2.0 ** (-self.bits)
        while True:
            step *= 2.0
            cand = self.round_array(np.asarray([1.0 + step], dtype=self.work_dtype))
            if float(cand[0]) > 1.0:
                return float(cand[0]) - 1.0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r} ({self.bits} bits)>"

    def __eq__(self, other) -> bool:
        return isinstance(other, NumberFormat) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)
