"""Compute contexts: every elementary operation rounds to a target format.

The numerical experiments of the paper run a *type-generic* Arnoldi
implementation where each scalar operation (add, multiply, divide, square
root, ...) is performed in the arithmetic under evaluation.  In this library
the same effect is achieved with a :class:`ComputeContext`:

* a :class:`NativeContext` uses a hardware dtype (``float32``, ``float64`` or
  ``numpy.longdouble`` for the extended-precision reference) directly;
* an :class:`EmulatedContext` stores values in a work dtype but rounds the
  result of every elementary operation to the nearest value of a
  :class:`~repro.arithmetic.base.NumberFormat` (bfloat16, OFP8, posit, takum,
  ...).

Vector and matrix kernels (dot products, dense and sparse matrix-vector
products) are built from the rounded elementary operations.  Accumulations
use a pairwise (tree) reduction by default — each partial sum is rounded — so
the whole kernel is expressible with a logarithmic number of vectorised
passes; a strictly sequential accumulation order is available for the
accumulation-order ablation study.

Scalar operands bypass ndarrays entirely: the elementary operations detect
them, compute in the work precision (Python floats for float64 contexts,
NumPy scalars for float32/longdouble) and round through ``round_scalar`` —
the lookup-table ``bisect`` path for narrow formats, the pure-Python
analytic scalar kernels for wide ones.  This is the regime of the solvers'
Givens/QL operations, where NumPy dispatch on 1-element arrays used to
dominate wide-format wall time.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from .base import MAX_TABLE_BITS, NumberFormat, RoundingInfo
from .registry import get_format
from ..telemetry import core as _telemetry
from ..telemetry.metrics import metrics as _metrics

#: operand types the elementary operations treat as scalars
_SCALAR_TYPES = (float, int, np.floating, np.integer)


def _is_scalar(x) -> bool:
    """Whether ``x`` is a scalar operand (Python number, NumPy scalar or
    0-d array) that the elementary operations can keep out of ndarray
    round-trips."""
    return isinstance(x, _SCALAR_TYPES) or (isinstance(x, np.ndarray) and x.ndim == 0)


def _positional_out(args: tuple, out):
    """Deprecation shim for the pre-format-axis keyword order.

    The rounded operations used to accept the output buffer as a trailing
    positional argument; the unified signature contract (see
    ``docs/api.md``) makes it keyword-only — ``out=`` — so the scalar
    convention (scalar operands return work-dtype scalars and leave ``out``
    untouched) reads identically across native, emulated and batched
    contexts.  Old-style positional calls still work, with a
    :class:`DeprecationWarning`.
    """
    if len(args) != 1 or out is not None:
        raise TypeError("rounded operations take a single out= buffer")
    warnings.warn(
        "passing the output buffer positionally is deprecated; "
        "pass it by keyword (out=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    return args[0]

__all__ = [
    "ComputeContext",
    "ContextSpec",
    "NativeContext",
    "EmulatedContext",
    "ReferenceContext",
    "get_context",
    "DynamicRangeError",
]


@dataclasses.dataclass(frozen=True)
class ContextSpec:
    """Declarative description of a compute context.

    Replaces the loose ``(name, accumulation=..., use_tables=..., ...)``
    keyword plumbing between the CLI, the experiment runner and
    :func:`get_context`: one frozen, picklable value names the arithmetic
    *and* how it is evaluated, and can be passed wherever a format name is
    accepted (``get_context(spec)``, ``partialschur(..., ctx=spec)``).

    Attributes
    ----------
    format:
        Format or context name (``"posit16"``, ``"float64"``,
        ``"reference"``, ...).
    accumulation:
        Reduction order of the rounded kernels (``"pairwise"`` or
        ``"sequential"``).
    use_tables:
        Lookup-table rounding-backend override (``None`` = automatic; see
        :class:`EmulatedContext`).  Ignored by native contexts.
    count_ops:
        Whether the context tallies rounded elementary operations.
    """

    format: str = "float64"
    accumulation: str = "pairwise"
    use_tables: Optional[bool] = None
    count_ops: bool = True

    def build(self) -> "ComputeContext":
        """Construct the described compute context."""
        return get_context(self)

    def with_format(self, name: str) -> "ContextSpec":
        """This spec with the format swapped (runner convenience)."""
        return dataclasses.replace(self, format=name)


class DynamicRangeError(ValueError):
    """Raised when the dynamic range of input data exceeds a number format.

    This corresponds to the ∞σ failure marker of the paper: the input matrix
    cannot even be represented in the target arithmetic (entries overflow to
    infinity/NaN or flush to zero).
    """

    def __init__(self, message: str, info: Optional[RoundingInfo] = None):
        super().__init__(message)
        self.info = info


class ComputeContext(ABC):
    """Interface of a rounding arithmetic used by the solvers.

    All kernels operate on NumPy arrays whose dtype is :attr:`dtype` and whose
    values are exactly representable in the context's arithmetic.  Methods
    never modify their inputs.
    """

    #: identifier (format name or dtype name)
    name: str = "abstract"
    #: NumPy dtype used for storage in value space
    dtype: type = np.float64
    #: bit width of the emulated arithmetic
    bits: int = 64
    #: accumulation strategy: "pairwise" or "sequential"
    accumulation: str = "pairwise"

    def __init__(self, accumulation: str = "pairwise", count_ops: bool = True):
        if accumulation not in ("pairwise", "sequential"):
            raise ValueError("accumulation must be 'pairwise' or 'sequential'")
        self.accumulation = accumulation
        self.count_ops = count_ops
        self.op_count: int = 0
        # ops already flushed into the telemetry registry (publish_op_count)
        self._published_ops: int = 0

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    @abstractmethod
    def round(self, values, *args, out=None):
        """Round work-precision values to the context's arithmetic.

        Array inputs return an ndarray of :attr:`dtype`; scalar and 0-d
        inputs return a work-dtype *scalar* (via :meth:`round_scalar`), so
        scalars never round-trip through ndarrays.  ``asarray`` inherits
        the same convention.

        ``out`` (keyword-only; positional still accepted through the
        deprecation shim) is an optional pre-allocated array of
        :attr:`dtype` the result is written into; it may alias ``values``
        and is left untouched by scalar inputs.  The elementwise operations
        exploit this to round their work-precision result in place instead
        of allocating a second array per op.
        """

    def round_scalar(self, value):
        """Round one work-precision scalar into the context.

        Scalar twin of :meth:`round`: takes a Python/NumPy scalar and
        returns a work-dtype scalar without any ndarray round-trip.  This is
        the path the elementary operations use for scalar operands (the
        solvers' Givens/QL regime).  The default implementation falls back
        to the array kernel; subclasses override it with direct scalar
        dispatch.
        """
        return self.round(np.asarray([value], dtype=self.dtype))[0]

    def asarray(self, values) -> np.ndarray:
        """Convert arbitrary data into the context (rounding each entry).

        Scalar inputs come back as work-dtype scalars, everything else as
        an ndarray of :attr:`dtype` (the :meth:`round` convention).
        """
        return self.round(np.asarray(values, dtype=self.dtype))

    def zeros(self, shape) -> np.ndarray:
        """An all-zeros array of the context's storage dtype."""
        return np.zeros(shape, dtype=self.dtype)

    # ------------------------------------------------------------------ #
    # operator-API constructors (repro.arithmetic.farray)
    # ------------------------------------------------------------------ #
    # The wrapper classes are installed as class attributes when
    # repro.arithmetic.farray is imported — a per-call ``from .farray
    # import ...`` would cost more than wrapping itself on the solvers'
    # scalar paths.
    _farray_cls = None
    _fscalar_cls = None

    @classmethod
    def _operator_classes(cls):
        if cls._farray_cls is None:  # context imported without the package
            from . import farray  # noqa: F401  (registers the classes)
        return cls._farray_cls, cls._fscalar_cls

    def array(self, values):
        """Round arbitrary input into the context and bind it as an
        :class:`~repro.arithmetic.farray.FArray` (the operator API).

        Scalar (0-d) input comes back as an
        :class:`~repro.arithmetic.farray.FScalar` instead — the wrapper
        convention everywhere is that 0-d results are scalars.
        """
        farray_cls, fscalar_cls = self._operator_classes()
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim == 0:
            return fscalar_cls(self, self.round_scalar(values[()]))
        return farray_cls(self, self.round(values))

    def scalar(self, value):
        """Round one value into the context and bind it as an
        :class:`~repro.arithmetic.farray.FScalar`."""
        _, fscalar_cls = self._operator_classes()
        return fscalar_cls(self, self.round_scalar(value))

    def wrap(self, data):
        """Bind already-representable data as an
        :class:`~repro.arithmetic.farray.FArray` *without* rounding.

        This is the in-solver fast path; the caller guarantees every entry
        is a value of the context (use :meth:`array` otherwise).
        """
        cls = self._farray_cls
        if cls is None:
            cls, _ = self._operator_classes()
        return cls(self, data)

    def wrap_scalar(self, value):
        """Bind one already-representable scalar as an
        :class:`~repro.arithmetic.farray.FScalar` *without* rounding."""
        cls = self._fscalar_cls
        if cls is None:
            _, cls = self._operator_classes()
        return cls(self, value)

    def _tally(self, n: int) -> None:
        if self.count_ops:
            self.op_count += int(n)

    def publish_op_count(self) -> int:
        """Flush the context-local op tally into the telemetry registry.

        :attr:`op_count` is deliberately per-instance and unsynchronised —
        incrementing a process-wide registry per elementary operation would
        dominate the scalar hot path.  Instead the solvers and the
        experiment runner call this at phase boundaries: the *delta* since
        the previous flush is added to the ``ops.rounded`` counter (labelled
        by context name), so totals survive context re-entry and re-created
        contexts instead of silently resetting with each instance.

        Returns the flushed delta (0 when nothing new was tallied).  The
        local tally keeps working with telemetry disabled; the publication
        cursor still advances, so enabling mid-run only publishes ops
        tallied after that point.
        """
        delta = self.op_count - self._published_ops
        self._published_ops = self.op_count
        if delta and _telemetry.ENABLED:
            _metrics.counter("ops.rounded", format=self.name).inc(delta)
        return delta

    # ------------------------------------------------------------------ #
    # elementwise operations (each result is rounded once)
    # ------------------------------------------------------------------ #
    # Scalar operands take a pure-scalar path: the work-precision operation
    # runs on Python floats (float64 contexts) or NumPy scalars (float32 /
    # longdouble, whose arithmetic must stay in the work precision) and the
    # result is rounded through ``round_scalar`` — no ndarray round-trip.
    # This is the regime of the solvers' elementwise Givens/QL operations,
    # where NumPy dispatch on 1-element arrays dominates the arithmetic.

    # The ``_scalar_*`` twins implement exactly the scalar branch of each
    # operation.  The operator API (:mod:`repro.arithmetic.farray`) calls
    # them directly — an :class:`~repro.arithmetic.farray.FScalar` already
    # knows its payload is a scalar, so skipping the dynamic detection here
    # offsets the cost of the wrapper object.

    def _scalar_add(self, a, b):
        if self.count_ops:
            self.op_count += 1
        if self.dtype is np.float64:
            return self.round_scalar(float(a) + float(b))
        return self.round_scalar(self.dtype(a) + self.dtype(b))

    def _scalar_sub(self, a, b):
        if self.count_ops:
            self.op_count += 1
        if self.dtype is np.float64:
            return self.round_scalar(float(a) - float(b))
        return self.round_scalar(self.dtype(a) - self.dtype(b))

    def _scalar_mul(self, a, b):
        if self.count_ops:
            self.op_count += 1
        if self.dtype is np.float64:
            return self.round_scalar(float(a) * float(b))
        return self.round_scalar(self.dtype(a) * self.dtype(b))

    def _scalar_div(self, a, b):
        if self.count_ops:
            self.op_count += 1
        if self.dtype is np.float64:
            fb = float(b)
            if fb == 0.0:
                # IEEE inf/nan semantics (plus the RuntimeWarning the
                # vector path would emit) instead of ZeroDivisionError
                return self.round_scalar(float(np.divide(float(a), fb)))
            return self.round_scalar(float(a) / fb)
        return self.round_scalar(np.divide(self.dtype(a), self.dtype(b)))

    def _scalar_sqrt(self, a):
        if self.count_ops:
            self.op_count += 1
        if self.dtype is np.float64:
            fa = float(a)
            # math.sqrt raises on negative input where the vector kernel
            # yields NaN; NaN inputs propagate through math.sqrt fine
            return self.round_scalar(
                math.sqrt(fa) if fa >= 0.0 or fa != fa else math.nan
            )
        return self.round_scalar(np.sqrt(self.dtype(a)))

    # The array branches of the elementwise operations compute the
    # work-precision result (one fresh ufunc output, or the caller's ``out``
    # buffer) and round *into that same buffer* whenever the rounding
    # backend can exploit it (:meth:`_round_work_inplace`): with the
    # ``out=``-aware backends this halves the allocations of every rounded
    # op, and a caller-provided ``out`` is honoured unconditionally.

    def _round_work_inplace(self) -> bool:
        """Whether the ops should hand their fresh work buffer to ``round``.

        True when the vector rounding backend writes into ``out`` natively
        (hardware casts, integer bit kernels); False when it would have to
        append a full-array copy to honour ``out`` (table ``searchsorted``
        and analytic vector kernels), where rounding into a fresh array is
        strictly cheaper.  Purely a performance hint: an *explicit* caller
        ``out=`` is always honoured regardless.
        """
        return True

    def add(self, a, b, *args, out=None):
        """Rounded elementwise ``a + b`` (scalars stay scalars).

        ``out`` (keyword-only) receives the rounded result when the
        operands form an *array* operation, and may alias an operand — the
        in-place accumulation path of the operator API.  All-scalar
        operands return a work-dtype scalar and leave ``out`` untouched
        (scalars never round-trip through ndarrays).  This contract is
        shared by every rounded operation of every context; see
        ``docs/api.md``.
        """
        if args:
            out = _positional_out(args, out)
        if _is_scalar(a) and _is_scalar(b):
            return self._scalar_add(a, b)
        self._tally(np.broadcast(a, b).size)
        work = np.add(a, b, dtype=self.dtype, out=out)
        if out is None and not self._round_work_inplace():
            return self.round(work)
        return self.round(work, out=work)

    def sub(self, a, b, *args, out=None):
        """Rounded elementwise ``a - b`` (scalars stay scalars)."""
        if args:
            out = _positional_out(args, out)
        if _is_scalar(a) and _is_scalar(b):
            return self._scalar_sub(a, b)
        self._tally(np.broadcast(a, b).size)
        work = np.subtract(a, b, dtype=self.dtype, out=out)
        if out is None and not self._round_work_inplace():
            return self.round(work)
        return self.round(work, out=work)

    def mul(self, a, b, *args, out=None):
        """Rounded elementwise ``a * b`` (scalars stay scalars)."""
        if args:
            out = _positional_out(args, out)
        if _is_scalar(a) and _is_scalar(b):
            return self._scalar_mul(a, b)
        self._tally(np.broadcast(a, b).size)
        work = np.multiply(a, b, dtype=self.dtype, out=out)
        if out is None and not self._round_work_inplace():
            return self.round(work)
        return self.round(work, out=work)

    def div(self, a, b, *args, out=None):
        """Rounded elementwise ``a / b`` (scalars stay scalars)."""
        if args:
            out = _positional_out(args, out)
        if _is_scalar(a) and _is_scalar(b):
            return self._scalar_div(a, b)
        self._tally(np.broadcast(a, b).size)
        work = np.divide(a, b, dtype=self.dtype, out=out)
        if out is None and not self._round_work_inplace():
            return self.round(work)
        return self.round(work, out=work)

    def sqrt(self, a, *args, out=None):
        """Rounded elementwise square root (scalars stay scalars)."""
        if args:
            out = _positional_out(args, out)
        if _is_scalar(a):
            return self._scalar_sqrt(a)
        self._tally(np.size(a))
        work = np.sqrt(np.asarray(a, dtype=self.dtype), out=out)
        if out is None and not self._round_work_inplace():
            return self.round(work)
        return self.round(work, out=work)

    def neg(self, a, *, out=None):
        """Exact negation (sign flips are exact in every supported format)."""
        if _is_scalar(a):
            return -self.dtype(a)
        return np.negative(np.asarray(a, dtype=self.dtype), out=out)

    def abs(self, a, *, out=None):
        """Exact magnitude (representable whenever the value is)."""
        if _is_scalar(a):
            return abs(self.dtype(a))
        return np.abs(np.asarray(a, dtype=self.dtype), out=out)

    def hypot(self, a, b, *, out=None):
        """Overflow-safe ``sqrt(a^2 + b^2)`` from rounded elementary operations.

        The naive composition squares its operands, which leaves the dynamic
        range of narrow formats for perfectly representable inputs (E4M3
        overflows to NaN above ``sqrt(448)``; posits/takums saturate and
        silently return a wrong magnitude).  Like :meth:`norm2`, the
        computation is scaled by ``scale = max(|a|, |b|)``:
        ``scale * sqrt(1 + (min/max)^2)``, where the intermediate quantities
        stay within ``[1, 2]``.  The division of the larger operand by
        ``scale`` is exactly 1 in every format, so it is elided; the result
        is bit-identical to dividing both operands the way :meth:`norm2`
        does, at five rounded operations instead of seven.
        """
        if _is_scalar(a) and _is_scalar(b):
            aa = self.abs(a)
            ab = self.abs(b)
            if aa != aa or ab != ab:  # NaN operands propagate
                return self.dtype(np.nan)
            scale, small = (aa, ab) if aa >= ab else (ab, aa)
            if scale == 0:
                return self.dtype(0.0)
            if scale == np.inf:
                return self.dtype(np.inf)
            t = self._scalar_div(small, scale)
            return self._scalar_mul(
                scale,
                self._scalar_sqrt(self._scalar_add(1.0, self._scalar_mul(t, t))),
            )
        aa = np.abs(np.asarray(a, dtype=self.dtype))
        ab = np.abs(np.asarray(b, dtype=self.dtype))
        scale = np.maximum(aa, ab)
        small = np.minimum(aa, ab)
        # a zero (or NaN) scale divides by 1 instead; the final product then
        # restores the exact 0 (or propagates the NaN) unchanged.  An
        # infinite scale takes t = 0 so the result is inf, not inf/inf = NaN
        safe = np.where(scale > 0, scale, self.dtype(1.0))
        small = np.where(np.isinf(scale), self.dtype(0.0), small)
        t = self.div(small, safe)
        return self.mul(
            scale, self.sqrt(self.add(self.dtype(1.0), self.mul(t, t))), out=out
        )

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def reduce_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sum along ``axis`` with per-addition rounding.

        The pairwise strategy reduces adjacent pairs level by level (a
        balanced tree, matching Julia's pairwise summation); the sequential
        strategy accumulates left to right.  Only the first reduction level
        allocates — the caller's array is never modified — and the
        remaining levels run in place on that buffer
        (:meth:`_reduce_last_axis_inplace`), so an m-way reduction costs one
        buffer instead of ``log2(m)`` of them.
        """
        v = np.asarray(values, dtype=self.dtype)
        v = np.moveaxis(v, axis, -1)
        m = v.shape[-1]
        if m == 0:
            return np.zeros(v.shape[:-1], dtype=self.dtype)
        if m == 1:
            return v[..., 0]
        if self.accumulation == "pairwise":
            half = m // 2
            buf = self.add(v[..., 0 : 2 * half : 2], v[..., 1 : 2 * half : 2])
            if m % 2:
                buf = np.concatenate([buf, v[..., -1:]], axis=-1)
            return self._reduce_last_axis_inplace(buf)
        if v.ndim == 1:
            acc = v[0]
            for j in range(1, m):
                acc = self.add(acc, v[j])
            return acc
        buf = self.add(v[..., 0], v[..., 1])
        for j in range(2, m):
            self.add(buf, v[..., j], out=buf)
        return buf

    def _reduce_last_axis_inplace(self, buf: np.ndarray) -> np.ndarray:
        """Reduce an *owned* buffer along its last axis, mutating it.

        ``buf`` must be a work-dtype array this context allocated itself
        (the rounded-products buffer of :meth:`dot`/:meth:`gemv`/
        :meth:`gemm`, or the first pairwise level of :meth:`reduce_sum`) —
        callers donate it and must not rely on its contents afterwards.

        Pairwise levels pair live partials in place on a doubling stride:
        at stride ``step`` the partials sit at positions ``j * step``, each
        ``add`` writes the even slots, and an odd leftover at
        ``(count - 1) * step`` is already on the doubled stride, so the
        pairing order — and therefore every intermediate rounding — is
        identical to reducing into freshly concatenated buffers.  The
        sequential strategy accumulates into the first slot (1-D keeps the
        pure-scalar loop of the scalar hot path).
        """
        m = buf.shape[-1]
        if m == 0:
            return np.zeros(buf.shape[:-1], dtype=self.dtype)
        if m > 1:
            if self.accumulation == "pairwise":
                step, count = 1, m
                while count > 1:
                    half = count // 2
                    even = buf[..., 0 : 2 * half * step : 2 * step]
                    odd = buf[..., step : 2 * half * step : 2 * step]
                    self.add(even, odd, out=even)
                    count = half + (count & 1)
                    step *= 2
            elif buf.ndim == 1:
                acc = buf[0]
                for j in range(1, m):
                    acc = self.add(acc, buf[j])
                return acc
            else:
                acc = buf[..., 0]
                for j in range(1, m):
                    self.add(acc, buf[..., j], out=acc)
        if buf.ndim == 1:
            return buf[0]
        # a view of column 0 would pin the whole donated buffer alive
        return np.ascontiguousarray(buf[..., 0])

    def dot(self, x, y):
        """Inner product with rounded products and rounded accumulation.

        The rounded-products buffer is donated to the in-place reduction,
        so the whole contraction allocates once.
        """
        return self._reduce_last_axis_inplace(self.mul(x, y))

    def norm2(self, x):
        """Euclidean norm built from rounded operations.

        The computation is scaled by the largest entry magnitude (as Julia's
        generic ``norm`` and LAPACK's ``dnrm2`` do) so that the norm of a
        representable vector does not spuriously overflow or underflow in
        narrow formats whose squares would leave the dynamic range.
        """
        x = np.asarray(x, dtype=self.dtype)
        if x.size == 0:
            return self.dtype(0.0)
        scale = np.max(np.abs(x))
        if not np.isfinite(scale):
            return self.dtype(np.nan) if np.isnan(scale) else self.dtype(np.inf)
        if float(scale) == 0.0:
            return self.dtype(0.0)
        xs = self.div(x, scale)
        return self.mul(scale, self.sqrt(self.dot(xs, xs)))

    def norm2_naive(self, x):
        """Unscaled Euclidean norm ``sqrt(dot(x, x))`` (ablation variant)."""
        return self.sqrt(self.dot(x, x))

    def axpy(self, alpha, x, y, out=None):
        """``y + alpha * x`` with per-operation rounding.

        Without ``out`` the product buffer is reused as the sum's output,
        so the whole update costs one allocation.  With ``out`` the update
        is fully fused — the product is computed straight into ``out`` and
        the sum rounds in place, touching memory once per element with no
        temporary at all.  ``out`` may alias ``x`` or ``y`` elementwise
        (e.g. ``axpy(a, x, y, out=y)``); when it aliases ``y`` the product
        falls back to a fresh buffer so the addend is not clobbered before
        it is read.
        """
        if (
            out is not None
            and isinstance(out, np.ndarray)
            and not _is_scalar(x)
            and not np.may_share_memory(out, np.asarray(y))
        ):
            t = self.mul(alpha, x, out=out)
            return self.add(y, t, out=out)
        t = self.mul(alpha, x)
        if isinstance(t, np.ndarray):
            return self.add(y, t, out=t if out is None else out)
        res = self.add(y, t)
        if out is None or not isinstance(res, np.ndarray):
            return res
        out[...] = res
        return out

    def scale(self, alpha, x):
        """``alpha * x`` elementwise."""
        return self.mul(alpha, x)

    # ------------------------------------------------------------------ #
    # dense kernels
    # ------------------------------------------------------------------ #
    def gemv(self, M, x):
        """Dense matrix-vector product ``M @ x`` (rows reduced independently)."""
        M = np.asarray(M, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        if M.shape[1] == 0:
            return np.zeros(M.shape[0], dtype=self.dtype)
        prods = self.mul(M, x[np.newaxis, :])
        return self._reduce_last_axis_inplace(prods)

    def gemv_t(self, M, x):
        """Dense transposed matrix-vector product ``M.T @ x``."""
        M = np.asarray(M, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        if M.shape[0] == 0:
            return np.zeros(M.shape[1], dtype=self.dtype)
        prods = self.mul(M.T, x[np.newaxis, :])
        return self._reduce_last_axis_inplace(prods)

    def gemm(self, A, B):
        """Dense matrix-matrix product with per-operation rounding.

        Intended for the small projected problems of the Krylov-Schur
        iteration (dimensions of a few dozen).
        """
        A = np.asarray(A, dtype=self.dtype)
        B = np.asarray(B, dtype=self.dtype)
        if A.shape[1] != B.shape[0]:
            raise ValueError("gemm dimension mismatch")
        if A.shape[1] == 0:
            return np.zeros((A.shape[0], B.shape[1]), dtype=self.dtype)
        prods = self.mul(A[:, :, np.newaxis], B[np.newaxis, :, :])
        return self._reduce_last_axis_inplace(np.moveaxis(prods, 1, -1))

    # ------------------------------------------------------------------ #
    # sparse kernel
    # ------------------------------------------------------------------ #
    def spmv(self, matrix, x):
        """Sparse CSR matrix-vector product with per-operation rounding.

        ``matrix`` must expose ``data``, ``indices``, ``indptr`` and ``shape``
        (the CSR substrate of :mod:`repro.sparse`), with ``data`` already
        converted into the context.
        """
        x = np.asarray(x, dtype=self.dtype)
        nrows = matrix.shape[0]
        data = np.asarray(matrix.data, dtype=self.dtype)
        if data.size == 0:
            return np.zeros(nrows, dtype=self.dtype)
        prods = self.mul(data, x[matrix.indices])
        return self._segmented_reduce(prods, matrix.indptr, nrows)

    def _segmented_reduce(self, vals, indptr, nrows) -> np.ndarray:
        counts = np.diff(indptr).astype(np.int64)
        out = np.zeros(nrows, dtype=self.dtype)
        if vals.size == 0:
            return out
        if self.accumulation == "sequential":
            starts = np.asarray(indptr[:-1], dtype=np.int64)
            acc_rows = np.nonzero(counts > 0)[0]
            out[acc_rows] = vals[starts[acc_rows]]
            k = 1
            while True:
                rows = np.nonzero(counts > k)[0]
                if rows.size == 0:
                    break
                out[rows] = self.add(out[rows], vals[starts[rows] + k])
                k += 1
            return out
        # pairwise segmented reduction
        vals = np.array(vals, dtype=self.dtype, copy=True)
        counts = counts.copy()
        while counts.max(initial=0) > 1:
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            rowid = np.repeat(np.arange(nrows), counts)
            local = np.arange(vals.size) - starts[rowid]
            count_per_elem = counts[rowid]
            is_left = (local % 2 == 0) & (local + 1 < count_per_elem)
            is_single = (local % 2 == 0) & (local + 1 >= count_per_elem)
            keep = is_left | is_single
            left_idx = np.nonzero(is_left)[0]
            merged = self.add(vals[left_idx], vals[left_idx + 1])
            new_vals = vals[keep].copy()
            positions = np.cumsum(keep)[left_idx] - 1
            new_vals[positions] = merged
            vals = new_vals
            counts = (counts + 1) // 2
        nonempty = np.nonzero(counts == 1)[0]
        out[nonempty] = vals
        return out

    # ------------------------------------------------------------------ #
    # conversion of input data
    # ------------------------------------------------------------------ #
    def convert_matrix(self, matrix):
        """Convert a CSR matrix into the context.

        Returns the converted matrix together with a
        :class:`~repro.arithmetic.base.RoundingInfo` describing overflow /
        underflow of the entries (the paper's ∞σ condition).
        """
        data, info = self.convert_values(np.asarray(matrix.data))
        return matrix.with_data(data), info

    def convert_values(self, values) -> tuple[np.ndarray, RoundingInfo]:
        """Convert raw values into the context, reporting range diagnostics."""
        values = np.asarray(values, dtype=self.dtype)
        rounded = self.round(values)
        finite_nonzero = np.isfinite(values) & (values != 0)
        overflowed = int(np.count_nonzero(finite_nonzero & ~np.isfinite(rounded)))
        underflowed = int(np.count_nonzero(finite_nonzero & (rounded == 0)))
        return rounded, RoundingInfo(overflowed, underflowed, 0)

    # ------------------------------------------------------------------ #
    # numerical metadata
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def machine_epsilon(self) -> float:
        """Unit roundoff scale of the arithmetic (spacing above 1.0)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


class NativeContext(ComputeContext):
    """Context backed directly by a hardware floating-point dtype."""

    def __init__(self, dtype, name: Optional[str] = None, **kwargs):
        super().__init__(**kwargs)
        self.dtype = np.dtype(dtype).type
        self.name = name or np.dtype(dtype).name
        self.bits = np.dtype(dtype).itemsize * 8

    def round(self, values, *args, out=None):
        """Hardware dtypes round by conversion (a cast is the rounding);
        scalar inputs return dtype scalars.  ``out`` receives the converted
        values when given (no-op when it aliases an already-converted
        ``values``)."""
        if args:
            out = _positional_out(args, out)
        if _is_scalar(values):
            return self.dtype(values)
        arr = np.asarray(values, dtype=self.dtype)
        if out is not None and out is not arr:
            out[...] = arr
            return out
        return arr

    def round_scalar(self, value):
        """Hardware dtypes round by conversion; returns a dtype scalar."""
        return self.dtype(value)

    @property
    def machine_epsilon(self) -> float:
        """Spacing above 1.0 of the hardware dtype (``numpy.finfo`` eps)."""
        return float(np.finfo(self.dtype).eps)


class ReferenceContext(NativeContext):
    """Extended-precision reference context.

    The paper computes reference solutions in ``float128``; this environment
    substitutes ``numpy.longdouble`` (80-bit extended precision on x86, 64-bit
    significand), which retains a comfortable accuracy margin over the widest
    formats under test.  See DESIGN.md, substitution 3.
    """

    def __init__(self, **kwargs):
        super().__init__(np.longdouble, name="reference", **kwargs)


class EmulatedContext(ComputeContext):
    """Context that rounds every elementary result to a software format.

    Formats of up to 16 bits are transparently served by the shared
    lookup-table rounding engine (:mod:`repro.arithmetic.tables`); wider
    formats round scalars through their pure-Python scalar kernels and
    arrays through the analytic vector kernels (the dispatch matrix is
    documented in ``docs/architecture.md``).

    Parameters
    ----------
    fmt:
        Target :class:`~repro.arithmetic.base.NumberFormat` or registry
        name.
    use_tables:
        Rounding-backend override, the finest level of the opt-out
        hierarchy (below ``REPRO_DISABLE_ROUNDING_TABLES`` and
        :func:`repro.arithmetic.tables.set_enabled`):  ``None`` (default)
        picks the fastest bit-identical backend; ``False`` forces the
        analytic *vector* kernels for arrays and scalars alike, bypassing
        the tables and the scalar kernels (so either fast path can be
        verified against the ground truth); ``True`` forces the table
        kernels even when the engine is globally disabled, and raises for
        formats the engine cannot serve.
    """

    def __init__(self, fmt: NumberFormat | str, use_tables: Optional[bool] = None, **kwargs):
        super().__init__(**kwargs)
        if isinstance(fmt, str):
            fmt = get_format(fmt)
        self.format = fmt
        self.dtype = fmt.work_dtype
        self.name = fmt.name
        self.bits = fmt.bits
        self.use_tables = use_tables
        self._forced_table = None
        if use_tables is True:
            from .tables import TABLE_CACHE

            self._forced_table = TABLE_CACHE.get(fmt)
            if self._forced_table is None:
                raise ValueError(
                    f"use_tables=True: format {fmt.name!r} ({fmt.bits} bits) "
                    "cannot be served by the lookup-table engine"
                )
        self._machine_epsilon: Optional[float] = None
        self._inplace_rounding: Optional[bool] = None

    def _round_work_inplace(self) -> bool:
        """Whether this format's vector rounding writes into ``out`` natively.

        True when the dispatch lands on an integer bit kernel at vector
        sizes (posit/takum 16/32, non-cast IEEE); False when it lands on the
        table ``searchsorted``/direct-index kernels (8-bit formats, forced
        tables) or the analytic kernels (``use_tables=False``, 64-bit
        tapered formats), which would pay a copy to honour ``out``.  Cached:
        the answer only depends on the context configuration (a later
        global engine toggle may stale it, which costs at most one copy per
        op, never correctness).
        """
        flag = self._inplace_rounding
        if flag is None:
            fmt = self.format
            table = fmt._rounding_table()
            flag = (
                self.use_tables is not False
                and self._forced_table is None
                and fmt.bitkernel() is not None
                and (
                    table is None
                    or fmt.prefer_bitkernel_rounding
                    or not table.semantics.prefer_table_rounding
                )
            )
            self._inplace_rounding = flag
        return flag

    def round(self, values, *args, out=None):
        """Round values to the format through the selected backend (scalar
        inputs return work-dtype scalars via :meth:`round_scalar`).  ``out``
        (keyword-only, may alias ``values``) receives the rounded array —
        the in-place path the elementwise operations use."""
        if args:
            out = _positional_out(args, out)
        if _is_scalar(values):
            return self.round_scalar(values)
        values = np.asarray(values, dtype=self.dtype)
        if self.use_tables is False:
            res = self.format.round_array_analytic(values)
            if out is not None:
                out[...] = res
                return out
            return res
        if self._forced_table is not None:
            return self._forced_table.round_values(values, out=out)
        return self.format.round_array(values, out=out)

    def round_scalar(self, value):
        """Round one scalar to the format without an ndarray round-trip.

        Honours the same backend selection as :meth:`round`:
        ``use_tables=False`` forces the analytic scalar kernel,
        ``use_tables=True`` the forced table's scalar path, and the default
        picks the table engine when it serves the format, then the format's
        scalar kernel, then the vector fallback.  Returns a work-dtype
        scalar (``longdouble`` formats keep their extended precision).
        """
        fmt = self.format
        if self.use_tables is False:
            # verification mode: force the vector analytic ground truth,
            # bypassing the scalar kernels as well as the tables (so a
            # suspect fast path can actually be isolated)
            return fmt.round_array_analytic(np.asarray([value], dtype=self.dtype))[0]
        table = self._forced_table
        if table is None and fmt.bits <= MAX_TABLE_BITS:
            table = fmt._rounding_table()
        if table is not None:
            return self.dtype(table.round_one(float(value)))
        if fmt.has_scalar_kernel:
            return self.dtype(fmt.round_scalar_analytic(value))
        return fmt.round_array(np.asarray([value], dtype=self.dtype))[0]

    @property
    def machine_epsilon(self) -> float:
        """Spacing above 1.0 of the emulated format (memoised: the fallback
        probe in NumberFormat rounds repeatedly and this property sits on
        hot solver paths — tolerances, eps floors)."""
        if self._machine_epsilon is None:
            self._machine_epsilon = float(self.format.machine_epsilon)
        return self._machine_epsilon


def get_context(name: str | ContextSpec, use_tables: Optional[bool] = None, **kwargs) -> ComputeContext:
    """Build the compute context for a format name or :class:`ContextSpec`.

    ``float32`` and ``float64`` use hardware arithmetic; ``reference`` (also
    accepted as ``float128`` or ``longdouble``) uses the extended-precision
    reference; every other registered format is emulated.  ``use_tables``
    controls the lookup-table rounding backend of emulated contexts
    (``None`` picks the table engine whenever the format is eligible;
    ``False`` forces the analytic kernels for verification).

    A :class:`ContextSpec` bundles the format name with the evaluation
    options; it cannot be combined with loose keyword arguments.
    """
    if isinstance(name, ContextSpec):
        if use_tables is not None or kwargs:
            raise TypeError(
                "get_context(ContextSpec) already carries the evaluation "
                "options; pass them inside the spec instead of as keywords"
            )
        spec = name
        name = spec.format
        use_tables = spec.use_tables
        kwargs = {"accumulation": spec.accumulation, "count_ops": spec.count_ops}
    lowered = name.lower()
    if lowered in ("reference", "float128", "longdouble"):
        return ReferenceContext(**kwargs)
    if lowered == "float64":
        return NativeContext(np.float64, name="float64", **kwargs)
    if lowered == "float32":
        return NativeContext(np.float32, name="float32", **kwargs)
    return EmulatedContext(get_format(name), use_tables=use_tables, **kwargs)
