"""Compute contexts: every elementary operation rounds to a target format.

The numerical experiments of the paper run a *type-generic* Arnoldi
implementation where each scalar operation (add, multiply, divide, square
root, ...) is performed in the arithmetic under evaluation.  In this library
the same effect is achieved with a :class:`ComputeContext`:

* a :class:`NativeContext` uses a hardware dtype (``float32``, ``float64`` or
  ``numpy.longdouble`` for the extended-precision reference) directly;
* an :class:`EmulatedContext` stores values in a work dtype but rounds the
  result of every elementary operation to the nearest value of a
  :class:`~repro.arithmetic.base.NumberFormat` (bfloat16, OFP8, posit, takum,
  ...).

Vector and matrix kernels (dot products, dense and sparse matrix-vector
products) are built from the rounded elementary operations.  Accumulations
use a pairwise (tree) reduction by default — each partial sum is rounded — so
the whole kernel is expressible with a logarithmic number of vectorised
passes; a strictly sequential accumulation order is available for the
accumulation-order ablation study.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from .base import NumberFormat, RoundingInfo
from .registry import get_format

__all__ = [
    "ComputeContext",
    "NativeContext",
    "EmulatedContext",
    "ReferenceContext",
    "get_context",
    "DynamicRangeError",
]


class DynamicRangeError(ValueError):
    """Raised when the dynamic range of input data exceeds a number format.

    This corresponds to the ∞σ failure marker of the paper: the input matrix
    cannot even be represented in the target arithmetic (entries overflow to
    infinity/NaN or flush to zero).
    """

    def __init__(self, message: str, info: Optional[RoundingInfo] = None):
        super().__init__(message)
        self.info = info


class ComputeContext(ABC):
    """Interface of a rounding arithmetic used by the solvers.

    All kernels operate on NumPy arrays whose dtype is :attr:`dtype` and whose
    values are exactly representable in the context's arithmetic.  Methods
    never modify their inputs.
    """

    #: identifier (format name or dtype name)
    name: str = "abstract"
    #: NumPy dtype used for storage in value space
    dtype: type = np.float64
    #: bit width of the emulated arithmetic
    bits: int = 64
    #: accumulation strategy: "pairwise" or "sequential"
    accumulation: str = "pairwise"

    def __init__(self, accumulation: str = "pairwise", count_ops: bool = True):
        if accumulation not in ("pairwise", "sequential"):
            raise ValueError("accumulation must be 'pairwise' or 'sequential'")
        self.accumulation = accumulation
        self.count_ops = count_ops
        self.op_count: int = 0

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    @abstractmethod
    def round(self, values) -> np.ndarray:
        """Round work-precision values to the context's arithmetic."""

    def asarray(self, values) -> np.ndarray:
        """Convert arbitrary data into the context (rounding each entry)."""
        return self.round(np.asarray(values, dtype=self.dtype))

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def _tally(self, n: int) -> None:
        if self.count_ops:
            self.op_count += int(n)

    # ------------------------------------------------------------------ #
    # elementwise operations (each result is rounded once)
    # ------------------------------------------------------------------ #
    def add(self, a, b):
        self._tally(np.broadcast(a, b).size)
        return self.round(np.add(a, b, dtype=self.dtype))

    def sub(self, a, b):
        self._tally(np.broadcast(a, b).size)
        return self.round(np.subtract(a, b, dtype=self.dtype))

    def mul(self, a, b):
        self._tally(np.broadcast(a, b).size)
        return self.round(np.multiply(a, b, dtype=self.dtype))

    def div(self, a, b):
        self._tally(np.broadcast(a, b).size)
        return self.round(np.divide(a, b, dtype=self.dtype))

    def sqrt(self, a):
        self._tally(np.size(a))
        return self.round(np.sqrt(np.asarray(a, dtype=self.dtype)))

    def neg(self, a):
        # sign flips are exact in every supported format
        return np.negative(np.asarray(a, dtype=self.dtype))

    def abs(self, a):
        # magnitude is representable whenever the value is
        return np.abs(np.asarray(a, dtype=self.dtype))

    def hypot(self, a, b):
        """sqrt(a^2 + b^2) composed from rounded elementary operations."""
        return self.sqrt(self.add(self.mul(a, a), self.mul(b, b)))

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def reduce_sum(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sum along ``axis`` with per-addition rounding.

        The pairwise strategy reduces adjacent pairs level by level (a
        balanced tree, matching Julia's pairwise summation); the sequential
        strategy accumulates left to right.
        """
        v = np.asarray(values, dtype=self.dtype)
        v = np.moveaxis(v, axis, -1)
        if v.shape[-1] == 0:
            return np.zeros(v.shape[:-1], dtype=self.dtype)
        if self.accumulation == "pairwise":
            while v.shape[-1] > 1:
                m = v.shape[-1]
                half = m // 2
                paired = self.add(v[..., 0 : 2 * half : 2], v[..., 1 : 2 * half : 2])
                if m % 2:
                    paired = np.concatenate([paired, v[..., -1:]], axis=-1)
                v = paired
            return v[..., 0]
        acc = v[..., 0]
        for j in range(1, v.shape[-1]):
            acc = self.add(acc, v[..., j])
        return acc

    def dot(self, x, y):
        """Inner product with rounded products and rounded accumulation."""
        return self.reduce_sum(self.mul(x, y))

    def norm2(self, x):
        """Euclidean norm built from rounded operations.

        The computation is scaled by the largest entry magnitude (as Julia's
        generic ``norm`` and LAPACK's ``dnrm2`` do) so that the norm of a
        representable vector does not spuriously overflow or underflow in
        narrow formats whose squares would leave the dynamic range.
        """
        x = np.asarray(x, dtype=self.dtype)
        if x.size == 0:
            return self.dtype(0.0)
        scale = np.max(np.abs(x))
        if not np.isfinite(scale):
            return self.dtype(np.nan) if np.isnan(scale) else self.dtype(np.inf)
        if float(scale) == 0.0:
            return self.dtype(0.0)
        xs = self.div(x, scale)
        return self.mul(scale, self.sqrt(self.dot(xs, xs)))

    def norm2_naive(self, x):
        """Unscaled Euclidean norm ``sqrt(dot(x, x))`` (ablation variant)."""
        return self.sqrt(self.dot(x, x))

    def axpy(self, alpha, x, y):
        """``y + alpha * x`` with per-operation rounding."""
        return self.add(y, self.mul(alpha, x))

    def scale(self, alpha, x):
        """``alpha * x`` elementwise."""
        return self.mul(alpha, x)

    # ------------------------------------------------------------------ #
    # dense kernels
    # ------------------------------------------------------------------ #
    def gemv(self, M, x):
        """Dense matrix-vector product ``M @ x`` (rows reduced independently)."""
        M = np.asarray(M, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        if M.shape[1] == 0:
            return np.zeros(M.shape[0], dtype=self.dtype)
        prods = self.mul(M, x[np.newaxis, :])
        return self.reduce_sum(prods, axis=-1)

    def gemv_t(self, M, x):
        """Dense transposed matrix-vector product ``M.T @ x``."""
        M = np.asarray(M, dtype=self.dtype)
        x = np.asarray(x, dtype=self.dtype)
        if M.shape[0] == 0:
            return np.zeros(M.shape[1], dtype=self.dtype)
        prods = self.mul(M.T, x[np.newaxis, :])
        return self.reduce_sum(prods, axis=-1)

    def gemm(self, A, B):
        """Dense matrix-matrix product with per-operation rounding.

        Intended for the small projected problems of the Krylov-Schur
        iteration (dimensions of a few dozen).
        """
        A = np.asarray(A, dtype=self.dtype)
        B = np.asarray(B, dtype=self.dtype)
        if A.shape[1] != B.shape[0]:
            raise ValueError("gemm dimension mismatch")
        if A.shape[1] == 0:
            return np.zeros((A.shape[0], B.shape[1]), dtype=self.dtype)
        prods = self.mul(A[:, :, np.newaxis], B[np.newaxis, :, :])
        return self.reduce_sum(prods, axis=1)

    # ------------------------------------------------------------------ #
    # sparse kernel
    # ------------------------------------------------------------------ #
    def spmv(self, matrix, x):
        """Sparse CSR matrix-vector product with per-operation rounding.

        ``matrix`` must expose ``data``, ``indices``, ``indptr`` and ``shape``
        (the CSR substrate of :mod:`repro.sparse`), with ``data`` already
        converted into the context.
        """
        x = np.asarray(x, dtype=self.dtype)
        nrows = matrix.shape[0]
        data = np.asarray(matrix.data, dtype=self.dtype)
        if data.size == 0:
            return np.zeros(nrows, dtype=self.dtype)
        prods = self.mul(data, x[matrix.indices])
        return self._segmented_reduce(prods, matrix.indptr, nrows)

    def _segmented_reduce(self, vals, indptr, nrows) -> np.ndarray:
        counts = np.diff(indptr).astype(np.int64)
        out = np.zeros(nrows, dtype=self.dtype)
        if vals.size == 0:
            return out
        if self.accumulation == "sequential":
            starts = np.asarray(indptr[:-1], dtype=np.int64)
            acc_rows = np.nonzero(counts > 0)[0]
            out[acc_rows] = vals[starts[acc_rows]]
            k = 1
            while True:
                rows = np.nonzero(counts > k)[0]
                if rows.size == 0:
                    break
                out[rows] = self.add(out[rows], vals[starts[rows] + k])
                k += 1
            return out
        # pairwise segmented reduction
        vals = np.array(vals, dtype=self.dtype, copy=True)
        counts = counts.copy()
        while counts.max(initial=0) > 1:
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            rowid = np.repeat(np.arange(nrows), counts)
            local = np.arange(vals.size) - starts[rowid]
            count_per_elem = counts[rowid]
            is_left = (local % 2 == 0) & (local + 1 < count_per_elem)
            is_single = (local % 2 == 0) & (local + 1 >= count_per_elem)
            keep = is_left | is_single
            left_idx = np.nonzero(is_left)[0]
            merged = self.add(vals[left_idx], vals[left_idx + 1])
            new_vals = vals[keep].copy()
            positions = np.cumsum(keep)[left_idx] - 1
            new_vals[positions] = merged
            vals = new_vals
            counts = (counts + 1) // 2
        nonempty = np.nonzero(counts == 1)[0]
        out[nonempty] = vals
        return out

    # ------------------------------------------------------------------ #
    # conversion of input data
    # ------------------------------------------------------------------ #
    def convert_matrix(self, matrix):
        """Convert a CSR matrix into the context.

        Returns the converted matrix together with a
        :class:`~repro.arithmetic.base.RoundingInfo` describing overflow /
        underflow of the entries (the paper's ∞σ condition).
        """
        data, info = self.convert_values(np.asarray(matrix.data))
        return matrix.with_data(data), info

    def convert_values(self, values) -> tuple[np.ndarray, RoundingInfo]:
        """Convert raw values into the context, reporting range diagnostics."""
        values = np.asarray(values, dtype=self.dtype)
        rounded = self.round(values)
        finite_nonzero = np.isfinite(values) & (values != 0)
        overflowed = int(np.count_nonzero(finite_nonzero & ~np.isfinite(rounded)))
        underflowed = int(np.count_nonzero(finite_nonzero & (rounded == 0)))
        return rounded, RoundingInfo(overflowed, underflowed, 0)

    # ------------------------------------------------------------------ #
    # numerical metadata
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def machine_epsilon(self) -> float:
        """Unit roundoff scale of the arithmetic (spacing above 1.0)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


class NativeContext(ComputeContext):
    """Context backed directly by a hardware floating-point dtype."""

    def __init__(self, dtype, name: Optional[str] = None, **kwargs):
        super().__init__(**kwargs)
        self.dtype = np.dtype(dtype).type
        self.name = name or np.dtype(dtype).name
        self.bits = np.dtype(dtype).itemsize * 8

    def round(self, values) -> np.ndarray:
        return np.asarray(values, dtype=self.dtype)

    @property
    def machine_epsilon(self) -> float:
        return float(np.finfo(self.dtype).eps)


class ReferenceContext(NativeContext):
    """Extended-precision reference context.

    The paper computes reference solutions in ``float128``; this environment
    substitutes ``numpy.longdouble`` (80-bit extended precision on x86, 64-bit
    significand), which retains a comfortable accuracy margin over the widest
    formats under test.  See DESIGN.md, substitution 3.
    """

    def __init__(self, **kwargs):
        super().__init__(np.longdouble, name="reference", **kwargs)


class EmulatedContext(ComputeContext):
    """Context that rounds every elementary result to a software format.

    Formats of up to 16 bits are transparently served by the shared
    lookup-table rounding engine (:mod:`repro.arithmetic.tables`).
    ``use_tables=False`` forces the analytic kernels (e.g. to verify the
    table backend against its ground truth); ``use_tables=True`` forces the
    table kernels even when the engine is globally disabled, and raises for
    formats the engine cannot serve.
    """

    def __init__(self, fmt: NumberFormat | str, use_tables: Optional[bool] = None, **kwargs):
        super().__init__(**kwargs)
        if isinstance(fmt, str):
            fmt = get_format(fmt)
        self.format = fmt
        self.dtype = fmt.work_dtype
        self.name = fmt.name
        self.bits = fmt.bits
        self.use_tables = use_tables
        self._forced_table = None
        if use_tables is True:
            from .tables import TABLE_CACHE

            self._forced_table = TABLE_CACHE.get(fmt)
            if self._forced_table is None:
                raise ValueError(
                    f"use_tables=True: format {fmt.name!r} ({fmt.bits} bits) "
                    "cannot be served by the lookup-table engine"
                )
        self._machine_epsilon: Optional[float] = None

    def round(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=self.dtype)
        if self.use_tables is False:
            return self.format.round_array_analytic(values)
        if self._forced_table is not None:
            return self._forced_table.round_values(values)
        return self.format.round_array(values)

    @property
    def machine_epsilon(self) -> float:
        # memoised: the fallback probe in NumberFormat rounds repeatedly and
        # this property sits on hot solver paths (tolerances, eps floors)
        if self._machine_epsilon is None:
            self._machine_epsilon = float(self.format.machine_epsilon)
        return self._machine_epsilon


def get_context(name: str, use_tables: Optional[bool] = None, **kwargs) -> ComputeContext:
    """Build the compute context for a format name.

    ``float32`` and ``float64`` use hardware arithmetic; ``reference`` (also
    accepted as ``float128`` or ``longdouble``) uses the extended-precision
    reference; every other registered format is emulated.  ``use_tables``
    controls the lookup-table rounding backend of emulated contexts
    (``None`` picks the table engine whenever the format is eligible;
    ``False`` forces the analytic kernels for verification).
    """
    lowered = name.lower()
    if lowered in ("reference", "float128", "longdouble"):
        return ReferenceContext(**kwargs)
    if lowered == "float64":
        return NativeContext(np.float64, name="float64", **kwargs)
    if lowered == "float32":
        return NativeContext(np.float32, name="float32", **kwargs)
    return EmulatedContext(get_format(name), use_tables=use_tables, **kwargs)
