"""Context-bound operator API: :class:`FArray` and :class:`FScalar`.

The paper's experiments hinge on a *type-generic* solver whose every
elementary operation rounds in the arithmetic under evaluation.  The explicit
:class:`~repro.arithmetic.context.ComputeContext` methods express this as
``ctx.sub(w, ctx.gemv(V, h))`` — correct, but it obscures the numerics.  The
wrappers in this module bind a NumPy array (or a work-dtype scalar) to a
context so that the same computation reads ``w - V @ h``: every operator
routes through the corresponding context method, which performs the operation
in the work precision and rounds the result once.

Design rules (these are what make the API safe to use in the solvers):

* **Bit identity** — each operator maps 1:1 onto one context call, in source
  order, so an operator-form kernel produces *exactly* the trajectory of its
  explicit-context spelling (proven in ``tests/test_operator_equivalence.py``).
* **Scalars stay scalars** — operations between :class:`FScalar` values run
  the work-precision operation directly on the two work-dtype payloads and
  round once through ``round_scalar``; no 1-element ndarray is ever created.
  This is the regime of the solvers' Givens/QL operations.
* **No silent leaks** — NumPy ufuncs and dispatched functions applied to a
  bound value raise :class:`PrecisionLeakError` instead of silently computing
  an unrounded result.  Reading values *out* is always explicit: ``.data``,
  ``.value``, ``float(...)`` or ``np.asarray(...)``.

Constructing bound values:

* ``ctx.array(values)`` / ``ctx.scalar(value)`` round arbitrary input into
  the context and wrap it;
* ``ctx.wrap(data)`` / ``ctx.wrap_scalar(value)`` wrap data that is already
  representable (no rounding) — the fast path used inside the solvers;
* :func:`precision` is a small context manager yielding a bound namespace::

      with precision("posit16") as p:
          x = p.array([1.0, 2.0, 3.0])
          print(float(x.norm2()))
"""

from __future__ import annotations

import contextlib

import numpy as np

from .context import ComputeContext, get_context

__all__ = [
    "FArray",
    "FScalar",
    "PrecisionLeakError",
    "ContextMismatchError",
    "BoundNamespace",
    "precision",
]

#: plain-number operand types accepted next to a bound value
_NUMBERS = (float, int, np.floating, np.integer)

_new = object.__new__


class PrecisionLeakError(TypeError):
    """A NumPy operation would have bypassed the per-operation rounding.

    Raised by the ``__array_ufunc__`` / ``__array_function__`` guards of
    :class:`FArray` and :class:`FScalar` when an unrounded NumPy kernel is
    applied to a context-bound value (e.g. ``np.add(x, y)`` instead of
    ``x + y``).  Unwrap explicitly with ``.data`` / ``.value`` /
    ``np.asarray(...)`` if work-precision NumPy math is intended.
    """


def _leak(obj, name):
    raise PrecisionLeakError(
        f"NumPy operation {name!r} on a context-bound "
        f"{type(obj).__name__} would bypass {obj.ctx.name!r} rounding; "
        "use the bound operators/methods, or unwrap explicitly with "
        "'.data'/'.value' for work-precision glue code"
    )


class ContextMismatchError(PrecisionLeakError):
    """Operands of one operation are bound to *different* compute contexts.

    Mixing bindings (``posit16 + bfloat16``) is always a bug: values of one
    arithmetic are not representable in another, so there is no correct
    rounding for the result.  The error names both formats; convert
    deliberately by unwrapping (``.data`` / ``.value``) and re-binding
    through ``ctx.array`` / ``ctx.scalar``.

    Subclasses :class:`PrecisionLeakError` (and therefore ``TypeError``), so
    existing handlers keep working.
    """

    def __init__(self, left_name: str, right_name: str):
        super().__init__(
            f"operands are bound to different compute contexts "
            f"({left_name!r} vs {right_name!r}); values of {left_name!r} are "
            f"not representable in {right_name!r} — unwrap with "
            "'.data'/'.value' and re-bind through ctx.array/ctx.scalar to "
            "convert deliberately"
        )
        #: format/context names of the two operands, for programmatic use
        self.left_name = left_name
        self.right_name = right_name


def _ctx_mismatch(left_ctx, right_ctx):
    raise ContextMismatchError(left_ctx.name, right_ctx.name)


#: ufuncs with a rounded context equivalent the guard reroutes to
_UFUNC_BINARY = {
    np.add: "add",
    np.subtract: "sub",
    np.multiply: "mul",
    np.true_divide: "div",
}
#: unary ufuncs with a context equivalent (neg/abs exact, sqrt rounded)
_UFUNC_UNARY = {np.negative: "neg", np.absolute: "abs", np.sqrt: "sqrt"}
#: predicate/comparison/sign-transfer ufuncs with exact results
_UFUNC_EXACT = frozenset(
    {
        np.isfinite,
        np.isnan,
        np.isinf,
        np.sign,
        np.copysign,
        np.equal,
        np.not_equal,
        np.less,
        np.less_equal,
        np.greater,
        np.greater_equal,
    }
)


def _route_ufunc(bound, ufunc, method, inputs, kwargs):
    """NEP-13 entry point shared by :class:`FArray` and :class:`FScalar`.

    NumPy routes *all* mixed binary operators (``ndarray + FArray``,
    ``np.float64(2) / FScalar``, ...) through the right-hand operand's
    ``__array_ufunc__``, so this is both the guard and the interoperability
    shim: ufuncs with a rounded context equivalent are rerouted through the
    context (the result stays bound), exact queries (``np.isfinite``,
    comparisons, ``np.copysign``) are answered on the raw values, and
    anything else — the unrounded operations that would silently leak work
    precision — raises :class:`PrecisionLeakError`.
    """
    ctx = bound.ctx
    # anything beyond a plain call — reductions, out= targets, where= masks,
    # casting/dtype overrides — has no rounded equivalent: fail loudly
    # instead of silently ignoring the modifier
    if method != "__call__" or any(v is not None for v in kwargs.values()):
        _leak(bound, f"{ufunc.__name__}.{method}" if method != "__call__" else ufunc.__name__)
    raw = []
    for x in inputs:
        tx = type(x)
        if tx is FArray:
            if x.ctx is not ctx:
                _ctx_mismatch(ctx, x.ctx)
            raw.append(x.data)
        elif tx is FScalar:
            if x.ctx is not ctx:
                _ctx_mismatch(ctx, x.ctx)
            raw.append(x.value)
        else:
            raw.append(x)
    name = _UFUNC_BINARY.get(ufunc)
    if name is not None and len(raw) == 2:
        return _wrap(ctx, getattr(ctx, name)(raw[0], raw[1]))
    if ufunc in _UFUNC_EXACT:
        out = ufunc(*raw)
        # copysign/sign preserve representability; predicates are plain
        return _wrap(ctx, out) if out.dtype == ctx.dtype else out
    name = _UFUNC_UNARY.get(ufunc)
    if name is not None and len(raw) == 1:
        return _wrap(ctx, getattr(ctx, name)(raw[0]))
    if ufunc is np.matmul and len(raw) == 2:
        a, b = raw
        if a.ndim == 2:
            return _wrap(ctx, ctx.gemv(a, b) if b.ndim == 1 else ctx.gemm(a, b))
        if b.ndim == 2:
            return _wrap(ctx, ctx.gemv_t(b, a))
        return _wrap(ctx, ctx.dot(a, b))
    _leak(bound, ufunc.__name__)


def _wrap(ctx, out):
    """Wrap a context-method result: ndarray -> FArray, scalar -> FScalar.

    0-d ndarrays count as scalars, matching the contexts' own convention
    (their reductions may hand back 0-d views).
    """
    if isinstance(out, np.ndarray):
        if out.ndim:
            arr = _new(FArray)
            arr.ctx = ctx
            arr.data = out
            return arr
        out = out[()]
    s = _new(FScalar)
    s.ctx = ctx
    s.value = out
    return s


class FScalar:
    """A work-dtype scalar bound to a :class:`ComputeContext`.

    Arithmetic operators (``+ - * / ** -x abs``) perform the operation in the
    work precision and round the result through the context's scalar fast
    path (:meth:`ComputeContext.round_scalar` underneath) — results are again
    :class:`FScalar`, never 1-element ndarrays.  Comparisons are exact (no
    rounding) and return plain booleans.

    The public attributes are :attr:`ctx` (the binding) and :attr:`value`
    (the underlying work-dtype scalar, the explicit way out).
    """

    __slots__ = ("ctx", "value")

    def __init__(self, ctx: ComputeContext, value):
        self.ctx = ctx
        self.value = value if isinstance(value, ctx.dtype) else ctx.dtype(value)

    # ------------------------------------------------------------------ #
    # arithmetic operators (each is exactly one rounded context call)
    # ------------------------------------------------------------------ #
    # The hot bodies are the solvers' Givens/QL regime.  They skip the
    # generic context dispatch entirely: both payloads of an
    # FScalar-FScalar operation are work-dtype scalars by class invariant,
    # so the work-precision operation runs directly on them (NumPy scalar
    # arithmetic keeps IEEE semantics, including inf-with-warning on
    # division by zero) and only the single rounding call remains.  This is
    # bit-identical to ComputeContext.add/sub/mul/div for every format --
    # guarded by tests/test_operator_equivalence.py; foreign NumPy scalars
    # are converted into the work dtype first so no silent promotion to a
    # wider dtype can occur.

    def __add__(self, other):
        c = self.ctx
        t = type(other)
        if t is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            other = other.value
        elif t is float or t is int:
            # exact for float64 work dtypes; narrower/wider dtypes convert
            # first so the work-precision op cannot promote (NumPy-1 value
            # based casting would compute float32 op float in float64)
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)  # foreign NumPy scalar: convert first
        elif isinstance(other, FArray):
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.add(self.value, other.data))
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.add(self.value, other))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(self.value + other)
        return r

    def __radd__(self, other):
        c = self.ctx
        t = type(other)
        if t is float or t is int:
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.add(other, self.value))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(other + self.value)
        return r

    def __sub__(self, other):
        c = self.ctx
        t = type(other)
        if t is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            other = other.value
        elif t is float or t is int:
            # exact for float64 work dtypes; narrower/wider dtypes convert
            # first so the work-precision op cannot promote (NumPy-1 value
            # based casting would compute float32 op float in float64)
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)  # foreign NumPy scalar: convert first
        elif isinstance(other, FArray):
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.sub(self.value, other.data))
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.sub(self.value, other))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(self.value - other)
        return r

    def __rsub__(self, other):
        c = self.ctx
        t = type(other)
        if t is float or t is int:
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.sub(other, self.value))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(other - self.value)
        return r

    def __mul__(self, other):
        c = self.ctx
        t = type(other)
        if t is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            other = other.value
        elif t is float or t is int:
            # exact for float64 work dtypes; narrower/wider dtypes convert
            # first so the work-precision op cannot promote (NumPy-1 value
            # based casting would compute float32 op float in float64)
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)  # foreign NumPy scalar: convert first
        elif isinstance(other, FArray):
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.mul(self.value, other.data))
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.mul(self.value, other))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(self.value * other)
        return r

    def __rmul__(self, other):
        c = self.ctx
        t = type(other)
        if t is float or t is int:
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.mul(other, self.value))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(other * self.value)
        return r

    def __truediv__(self, other):
        c = self.ctx
        t = type(other)
        if t is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            other = other.value
        elif t is float or t is int:
            # exact for float64 work dtypes; narrower/wider dtypes convert
            # first so the work-precision op cannot promote (NumPy-1 value
            # based casting would compute float32 op float in float64)
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)  # foreign NumPy scalar: convert first
        elif isinstance(other, FArray):
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.div(self.value, other.data))
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.div(self.value, other))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(self.value / other)
        return r

    def __rtruediv__(self, other):
        c = self.ctx
        t = type(other)
        if t is float or t is int:
            if c.dtype is not np.float64:
                other = c.dtype(other)
        elif isinstance(other, _NUMBERS):
            other = c.dtype(other)
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.div(other, self.value))
        else:
            return NotImplemented
        if c.count_ops:
            c.op_count += 1
        r = _new(FScalar)
        r.ctx = c
        r.value = c.round_scalar(other / self.value)
        return r

    def __neg__(self):
        r = _new(FScalar)
        r.ctx = c = self.ctx
        r.value = c.neg(self.value)
        return r

    def __pos__(self):
        return self

    def __abs__(self):
        r = _new(FScalar)
        r.ctx = c = self.ctx
        r.value = c.abs(self.value)
        return r

    def __pow__(self, exponent):
        if exponent == 2:  # the only power the kernels need: one rounded mul
            r = _new(FScalar)
            r.ctx = c = self.ctx
            r.value = c._scalar_mul(self.value, self.value)
            return r
        return NotImplemented

    # ------------------------------------------------------------------ #
    # rounded methods
    # ------------------------------------------------------------------ #
    def sqrt(self) -> "FScalar":
        """Rounded square root (one context operation)."""
        r = _new(FScalar)
        r.ctx = c = self.ctx
        r.value = c._scalar_sqrt(self.value)
        return r

    def hypot(self, other) -> "FScalar":
        """Overflow-safe ``sqrt(self² + other²)`` (:meth:`ComputeContext.hypot`)."""
        c = self.ctx
        if type(other) is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            other = other.value
        elif isinstance(other, FArray):
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.hypot(self.value, other.data))
        elif isinstance(other, np.ndarray):
            return _wrap(c, c.hypot(self.value, other))
        r = _new(FScalar)
        r.ctx = c
        r.value = c.hypot(self.value, other)
        return r

    def copysign(self, other) -> "FScalar":
        """Magnitude of ``self`` with the sign of ``other`` (exact)."""
        c = self.ctx
        if type(other) is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            other = other.value
        elif isinstance(other, FArray):
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, np.copysign(self.value, other.data))
        elif isinstance(other, np.ndarray):
            return _wrap(c, np.copysign(self.value, other))
        r = _new(FScalar)
        r.ctx = c
        r.value = np.copysign(self.value, other)
        return r

    # ------------------------------------------------------------------ #
    # exact queries (no rounding involved)
    # ------------------------------------------------------------------ #
    def isfinite(self) -> bool:
        """Whether the value is finite (exact query, plain bool)."""
        return bool(np.isfinite(self.value))

    def __float__(self) -> float:
        return float(self.value)

    def __array__(self, dtype=None, copy=None):
        # explicit read-out (np.asarray(s) -> 0-d work-dtype array);
        # arithmetic ufuncs still go through the guard
        return np.array(self.value, dtype=dtype)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other):
        if isinstance(other, FScalar):
            other = other.value
        if isinstance(other, _NUMBERS):
            return bool(self.value == other)
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __lt__(self, other):
        if isinstance(other, FScalar):
            other = other.value
        if isinstance(other, _NUMBERS):
            return bool(self.value < other)
        return NotImplemented

    def __le__(self, other):
        if isinstance(other, FScalar):
            other = other.value
        if isinstance(other, _NUMBERS):
            return bool(self.value <= other)
        return NotImplemented

    def __gt__(self, other):
        if isinstance(other, FScalar):
            other = other.value
        if isinstance(other, _NUMBERS):
            return bool(self.value > other)
        return NotImplemented

    def __ge__(self, other):
        if isinstance(other, FScalar):
            other = other.value
        if isinstance(other, _NUMBERS):
            return bool(self.value >= other)
        return NotImplemented

    __hash__ = None  # mutable-context-bound values are not hashable

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FScalar({self.value!r}, ctx={self.ctx.name!r})"

    # ------------------------------------------------------------------ #
    # leak guard / NumPy interoperability
    # ------------------------------------------------------------------ #
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        return _route_ufunc(self, ufunc, method, inputs, kwargs)

    def __array_function__(self, func, types, args, kwargs):
        _leak(self, getattr(func, "__name__", str(func)))


class FArray:
    """An ndarray bound to a :class:`ComputeContext`.

    Operators and methods route through the context's rounded kernels:
    ``+ - * /`` are the elementwise operations, ``@`` dispatches to
    ``gemv``/``gemv_t``/``gemm``/``dot`` (and to the rounded ``spmv`` when
    the left operand is a CSR matrix), :meth:`dot`/:meth:`norm2`/:meth:`sum`
    are the rounded reductions.  Indexing preserves the binding: slices come
    back as bound *views* (writes through them are visible in the parent,
    exactly like NumPy), scalar reads come back as :class:`FScalar`.

    The constructor wraps ``data`` without rounding (it trusts the caller —
    this is the in-solver fast path); use :meth:`ComputeContext.array` to
    round arbitrary input into the context first.
    """

    __slots__ = ("ctx", "data")

    def __init__(self, ctx: ComputeContext, data):
        self.ctx = ctx
        self.data = np.asarray(data, dtype=ctx.dtype)

    # ------------------------------------------------------------------ #
    # shape & views
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "FArray":
        return _wrap(self.ctx, self.data.T)

    def copy(self) -> "FArray":
        return _wrap(self.ctx, self.data.copy())

    def __len__(self) -> int:
        return len(self.data)

    def __bool__(self) -> bool:
        # mirror ndarray semantics: a multi-element truth value is ambiguous
        # (default object truthiness would silently take the true branch)
        return bool(self.data)

    def __getitem__(self, key):
        out = self.data[key]
        if type(out) is np.ndarray:
            if out.ndim:
                r = _new(FArray)
                r.ctx = self.ctx
                r.data = out
                return r
            out = out[()]
        s = _new(FScalar)
        s.ctx = self.ctx
        s.value = out
        return s

    def __setitem__(self, key, value):
        if type(value) is FScalar:
            if value.ctx is not self.ctx:
                _ctx_mismatch(self.ctx, value.ctx)
            value = value.value
        elif type(value) is FArray:
            if value.ctx is not self.ctx:
                _ctx_mismatch(self.ctx, value.ctx)
            value = value.data
        else:
            # unbound values are rounded into the context on the way in, so
            # assignment cannot smuggle unrepresentable values past the
            # operators (rounding is the identity on representable data)
            value = self.ctx.round(np.asarray(value, dtype=self.ctx.dtype))
        self.data[key] = value

    def __iter__(self):
        for i in range(len(self.data)):
            yield self[i]

    # ------------------------------------------------------------------ #
    # elementwise operators (one rounded context call each)
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        c = self.ctx
        if type(other) is FArray or type(other) is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.add(self.data, other.data if type(other) is FArray else other.value))
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.add(self.data, other))
        return NotImplemented

    def __radd__(self, other):
        c = self.ctx
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.add(other, self.data))
        return NotImplemented

    def __sub__(self, other):
        c = self.ctx
        if type(other) is FArray or type(other) is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.sub(self.data, other.data if type(other) is FArray else other.value))
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.sub(self.data, other))
        return NotImplemented

    def __rsub__(self, other):
        c = self.ctx
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.sub(other, self.data))
        return NotImplemented

    def __mul__(self, other):
        c = self.ctx
        if type(other) is FArray or type(other) is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.mul(self.data, other.data if type(other) is FArray else other.value))
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.mul(self.data, other))
        return NotImplemented

    def __rmul__(self, other):
        c = self.ctx
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.mul(other, self.data))
        return NotImplemented

    def __truediv__(self, other):
        c = self.ctx
        if type(other) is FArray or type(other) is FScalar:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            return _wrap(c, c.div(self.data, other.data if type(other) is FArray else other.value))
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.div(self.data, other))
        return NotImplemented

    def __rtruediv__(self, other):
        c = self.ctx
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return _wrap(c, c.div(other, self.data))
        return NotImplemented

    def __neg__(self):
        return _wrap(self.ctx, self.ctx.neg(self.data))

    def __pos__(self):
        return self

    def __abs__(self):
        return _wrap(self.ctx, self.ctx.abs(self.data))

    # ------------------------------------------------------------------ #
    # in-place operators (allocation-free: the work-precision operation
    # writes into this array's buffer and the rounding backend rounds it in
    # place via the contexts' ``out=`` path — no temporary per update)
    # ------------------------------------------------------------------ #
    def _inplace_operand(self, other):
        """Unwrap an operand for an in-place op (``None``: unsupported)."""
        t = type(other)
        if t is FArray or t is FScalar:
            if other.ctx is not self.ctx:
                _ctx_mismatch(self.ctx, other.ctx)
            return other.data if t is FArray else other.value
        if isinstance(other, _NUMBERS) or isinstance(other, np.ndarray):
            return other
        return None

    def _inplace(self, op, od):
        if self.data.ndim == 0:
            # the contexts' all-scalar branch treats a 0-d buffer as a
            # scalar operand, returns the rounded scalar and ignores
            # ``out`` — write the result back explicitly instead of
            # silently dropping the update
            self.data[...] = op(self.data, od)
        else:
            op(self.data, od, out=self.data)
        return self

    def __iadd__(self, other):
        od = self._inplace_operand(other)
        if od is None:
            return NotImplemented
        return self._inplace(self.ctx.add, od)

    def __isub__(self, other):
        od = self._inplace_operand(other)
        if od is None:
            return NotImplemented
        return self._inplace(self.ctx.sub, od)

    def __imul__(self, other):
        od = self._inplace_operand(other)
        if od is None:
            return NotImplemented
        return self._inplace(self.ctx.mul, od)

    def __itruediv__(self, other):
        od = self._inplace_operand(other)
        if od is None:
            return NotImplemented
        return self._inplace(self.ctx.div, od)

    # ------------------------------------------------------------------ #
    # matrix products
    # ------------------------------------------------------------------ #
    def __matmul__(self, other):
        c = self.ctx
        if type(other) is FArray:
            if other.ctx is not c:
                _ctx_mismatch(c, other.ctx)
            od = other.data
        elif isinstance(other, np.ndarray):
            od = other
        else:
            return NotImplemented
        sd = self.data
        if sd.ndim == 2:
            return _wrap(c, c.gemv(sd, od) if od.ndim == 1 else c.gemm(sd, od))
        if od.ndim == 2:
            return _wrap(c, c.gemv_t(od, sd))  # x @ M == M^T x
        return _wrap(c, c.dot(sd, od))

    def __rmatmul__(self, other):
        c = self.ctx
        if hasattr(other, "indptr") and hasattr(other, "indices"):
            # CSR substrate: the rounded sparse kernel
            return _wrap(c, c.spmv(other, self.data))
        if isinstance(other, np.ndarray):
            sd = self.data
            if other.ndim == 2:
                return _wrap(c, c.gemv(other, sd) if sd.ndim == 1 else c.gemm(other, sd))
            if sd.ndim == 2:
                return _wrap(c, c.gemv_t(sd, other))
            return _wrap(c, c.dot(other, sd))
        return NotImplemented

    # ------------------------------------------------------------------ #
    # rounded reductions & methods
    # ------------------------------------------------------------------ #
    def sqrt(self) -> "FArray":
        """Rounded elementwise square root."""
        return _wrap(self.ctx, self.ctx.sqrt(self.data))

    def dot(self, other) -> "FScalar":
        """Rounded inner product (products and accumulation both round)."""
        if type(other) is FArray:
            if other.ctx is not self.ctx:
                _ctx_mismatch(self.ctx, other.ctx)
            other = other.data
        return _wrap(self.ctx, self.ctx.dot(self.data, other))

    def norm2(self) -> "FScalar":
        """Overflow-safe rounded Euclidean norm (:meth:`ComputeContext.norm2`)."""
        return _wrap(self.ctx, self.ctx.norm2(self.data))

    def axpy(self, alpha, x) -> "FArray":
        """Fused rounded update ``self + alpha * x``.

        Element-for-element identical to ``self + alpha * x`` written as
        two operator calls, but the product buffer doubles as the sum's
        output (:meth:`ComputeContext.axpy`), halving the memory traffic of
        the dominant solver update.  ``alpha`` may be a scalar or
        :class:`FScalar`; ``x`` an :class:`FArray` or ndarray.
        """
        if type(alpha) is FScalar:
            if alpha.ctx is not self.ctx:
                _ctx_mismatch(self.ctx, alpha.ctx)
            alpha = alpha.value
        if type(x) is FArray:
            if x.ctx is not self.ctx:
                _ctx_mismatch(self.ctx, x.ctx)
            x = x.data
        return _wrap(self.ctx, self.ctx.axpy(alpha, x, self.data))

    def sum(self, axis: int | None = None):
        """Rounded sum (:meth:`ComputeContext.reduce_sum` underneath).

        ``axis=None`` (default) reduces over all elements, as ``np.sum``
        does; an integer axis reduces along it.
        """
        if axis is None:
            out = self.ctx.reduce_sum(self.data.reshape(-1), axis=-1)
        else:
            out = self.ctx.reduce_sum(self.data, axis=axis)
        return _wrap(self.ctx, out)

    # ------------------------------------------------------------------ #
    # exact queries (no rounding involved)
    # ------------------------------------------------------------------ #
    def isfinite(self) -> np.ndarray:
        """Elementwise finiteness as a plain boolean ndarray (exact query)."""
        return np.isfinite(self.data)

    def all_finite(self) -> bool:
        """Whether every entry is finite (exact query, plain bool)."""
        return bool(np.all(np.isfinite(self.data)))

    def __eq__(self, other):
        if type(other) is FArray:
            other = other.data
        elif type(other) is FScalar:
            other = other.value
        if isinstance(other, (np.ndarray,) + _NUMBERS):
            return self.data == other
        return NotImplemented

    def __ne__(self, other):
        if type(other) is FArray:
            other = other.data
        elif type(other) is FScalar:
            other = other.value
        if isinstance(other, (np.ndarray,) + _NUMBERS):
            return self.data != other
        return NotImplemented

    __hash__ = None

    def __array__(self, dtype=None, copy=None):
        # explicit read-out (np.asarray(x)); arithmetic ufuncs still raise
        if dtype is None and not copy:
            return self.data
        # copy=None means copy-if-needed (NumPy 2 semantics) — forward it
        return np.array(self.data, dtype=dtype, copy=copy)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FArray({self.data!r}, ctx={self.ctx.name!r})"

    # ------------------------------------------------------------------ #
    # leak guard / NumPy interoperability
    # ------------------------------------------------------------------ #
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        return _route_ufunc(self, ufunc, method, inputs, kwargs)

    def __array_function__(self, func, types, args, kwargs):
        _leak(self, getattr(func, "__name__", str(func)))


class BoundNamespace:
    """NumPy-style namespace bound to one compute context.

    Yielded by :func:`precision`; exposes the bound constructors plus every
    attribute of the underlying context (``p.machine_epsilon``,
    ``p.format``, ...).
    """

    __slots__ = ("ctx",)

    def __init__(self, ctx: ComputeContext):
        self.ctx = ctx

    def array(self, values) -> FArray:
        """Round arbitrary input into the context and bind it."""
        return self.ctx.array(values)

    def scalar(self, value) -> FScalar:
        """Round one value into the context and bind it."""
        return self.ctx.scalar(value)

    def zeros(self, shape) -> FArray:
        """A bound all-zeros array (zero is exact in every format)."""
        return _wrap(self.ctx, self.ctx.zeros(shape))

    def eye(self, n: int) -> FArray:
        """A bound identity matrix (0 and 1 are exact in every format)."""
        return _wrap(self.ctx, np.eye(n, dtype=self.ctx.dtype))

    def __getattr__(self, name):
        return getattr(self.ctx, name)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<BoundNamespace {self.ctx.name!r}>"


@contextlib.contextmanager
def precision(spec, **kwargs):
    """Bind a precision for a block of NumPy-style rounded code.

    ``spec`` is a format name, a :class:`ContextSpec` or an existing
    :class:`ComputeContext`; extra keyword arguments are forwarded to
    :func:`~repro.arithmetic.context.get_context` when a new context is
    built.  Yields a :class:`BoundNamespace`::

        from repro.arithmetic import precision

        with precision("posit16") as p:
            x = p.array([3.0, 4.0])
            assert float(x.norm2()) == 5.0
    """
    if isinstance(spec, ComputeContext):
        ctx = spec
    else:
        ctx = get_context(spec, **kwargs)
    yield BoundNamespace(ctx)


# register the wrapper classes with the contexts (ctx.array/scalar/wrap
# construct them without re-importing this module per call)
ComputeContext._farray_cls = FArray
ComputeContext._fscalar_cls = FScalar
