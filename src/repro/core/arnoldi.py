"""Arnoldi expansion of a Krylov(-Schur) decomposition.

The solver maintains the generalised Krylov decomposition::

    A V_k = V_k S_k + v_{k+1} b_k^T

with ``V_k`` orthonormal, ``S_k`` the projected matrix and ``b_k`` the
residual coupling vector (after a plain Arnoldi expansion ``b_k`` is
``beta * e_k``; after a Krylov-Schur truncation it is a dense "spike" row).
:func:`arnoldi_expand` grows such a decomposition column by column with
classical Gram-Schmidt plus one DGKS re-orthogonalisation pass, all in the
target arithmetic.

The expansion is written in the operator form of
:mod:`repro.arithmetic.farray` — ``w - V @ h`` instead of
``ctx.sub(w, ctx.gemv(V, h))`` — with every operator performing exactly one
rounded context operation, so the trajectories are bit-identical to the
explicit spelling.  The :class:`KrylovDecomposition` state keeps plain
ndarrays, as before.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..telemetry import trace as _trace
from .results import ArnoldiBreakdown

__all__ = ["KrylovDecomposition", "arnoldi_expand"]


@dataclasses.dataclass
class KrylovDecomposition:
    """State of a generalised Krylov decomposition of order ``k``.

    Attributes
    ----------
    V:
        ``(n, k)`` orthonormal basis.
    S:
        ``(k, k)`` projected matrix.
    b:
        ``(k,)`` residual coupling vector.
    residual:
        The next, normalised basis vector ``v_{k+1}`` (``None`` when the
        subspace became invariant).
    invariant:
        True when the Krylov space is (numerically) invariant — the residual
        vanished during expansion.
    """

    V: np.ndarray
    S: np.ndarray
    b: np.ndarray
    residual: np.ndarray | None
    invariant: bool = False

    @property
    def order(self) -> int:
        return int(self.V.shape[1])


#: DGKS acceptance factor: a Gram-Schmidt pass is trusted when it retains at
#: least this fraction of the vector's norm (the classical 1/sqrt(2) value)
_DGKS_ETA = 0.7071


def _orthogonalize(ctx, V_active, w):
    """Classical Gram-Schmidt with DGKS re-orthogonalisation.

    ``V_active`` and ``w`` are context-bound arrays; returns
    ``(w_orth, h, norm, breakdown)``: the orthogonalised vector, the
    accumulated projection coefficients, the remaining norm and a flag that is
    True when even the second pass could not produce a vector that is
    numerically independent of the basis (the new direction is pure rounding
    noise — continuing by normalising it would destroy orthogonality).
    """
    norm_before = w.norm2()
    h = w @ V_active  # V^T w
    w = w - V_active @ h
    norm_after = w.norm2()
    if norm_after.isfinite() and float(norm_after) > _DGKS_ETA * float(norm_before):
        return w, h, norm_after, False
    # DGKS re-orthogonalisation: a second pass removes the components the
    # first (rounded) pass left behind, which is essential at low precision
    h2 = w @ V_active
    w = w - V_active @ h2
    h = h + h2
    norm_final = w.norm2()
    breakdown = not norm_final.isfinite() or float(norm_final) <= _DGKS_ETA * float(
        norm_after
    ) or float(norm_final) == 0.0
    return w, h, norm_final, breakdown


def _random_orthonormal(ctx, V_active, rng):
    """A random unit vector orthogonalised against the basis, or ``None``.

    Used to continue the Arnoldi process after a (numerical) invariant
    subspace has been found, exactly like ARPACK's deflation restart.
    """
    n = V_active.shape[0]
    for _ in range(3):
        candidate = ctx.array(rng.standard_normal(n))
        candidate, _, norm, breakdown = _orthogonalize(ctx, V_active, candidate)
        if not breakdown and norm.isfinite() and float(norm) > 0.0:
            return candidate / norm
    return None


def arnoldi_expand(
    ctx, matrix, decomp: KrylovDecomposition, target_order: int, rng=None
):
    """Grow ``decomp`` to order ``target_order`` by Arnoldi steps.

    Parameters
    ----------
    ctx:
        Compute context (arithmetic under evaluation).
    matrix:
        CSR matrix already converted into the context.
    decomp:
        Current Krylov decomposition (may have order 0).
    target_order:
        Desired subspace dimension after expansion.
    rng:
        Random generator used to continue past (numerical) invariant
        subspaces with a fresh orthogonal direction, as ARPACK does; a
        default generator is created when omitted.

    Returns
    -------
    (decomp, matvecs):
        The expanded decomposition and the number of matrix-vector products
        performed.  The expansion stops early if the subspace becomes
        invariant and no new direction can be injected.

    Raises
    ------
    ArnoldiBreakdown
        If non-finite values appear in the basis (overflow/NaR propagation).
    """
    n = matrix.shape[0]
    k = decomp.order
    target_order = min(target_order, n)
    if rng is None:
        rng = np.random.default_rng(0)
    if k >= target_order or decomp.invariant:
        return decomp, 0
    with _trace.span("arnoldi.expand", fmt=ctx.name, start=k, target=target_order):
        return _expand(ctx, matrix, decomp, target_order, rng, n, k)


def _expand(ctx, matrix, decomp, target_order, rng, n, k):
    V = ctx.wrap(np.zeros((n, target_order), dtype=ctx.dtype))
    S = ctx.wrap(np.zeros((target_order, target_order), dtype=ctx.dtype))
    if k:
        # plain buffer copies through .data: the previous decomposition was
        # produced by this context, so re-rounding it would be the identity
        # at the cost of a vector kernel pass per restart
        V.data[:, :k] = decomp.V
        S.data[:k, :k] = decomp.S
        # spike row produced by the previous truncation (dense coupling of
        # the truncated decomposition against the incoming residual; k is
        # strictly below target_order here, so the row always fits)
        S.data[k, :k] = decomp.b
    b = ctx.wrap(np.zeros(target_order, dtype=ctx.dtype))
    v_next = None if decomp.residual is None else ctx.wrap(decomp.residual)
    matvecs = 0

    for j in range(k, target_order):
        if v_next is None or not v_next.all_finite():
            raise ArnoldiBreakdown("non-finite Krylov vector")
        V[:, j] = v_next
        w = matrix @ V[:, j]  # the rounded sparse kernel (ctx.spmv)
        matvecs += 1
        if not w.all_finite():
            raise ArnoldiBreakdown("matrix-vector product overflowed")
        w, h, beta, broke_down = _orthogonalize(ctx, V[:, : j + 1], w)
        if not np.all(np.isfinite(np.asarray(h.data, dtype=np.float64))):
            raise ArnoldiBreakdown("orthogonalisation coefficients overflowed")
        S[: j + 1, j] = h
        if not beta.isfinite():
            raise ArnoldiBreakdown("residual norm overflowed")
        if broke_down or float(beta) == 0.0:
            # the Krylov space is (numerically) invariant: the residual of
            # this column is pure noise.  Record a zero coupling and try to
            # continue with a fresh random orthogonal direction (ARPACK's
            # deflation restart); stop as invariant if that is impossible.
            replacement = _random_orthonormal(ctx, V[:, : j + 1], rng)
            if replacement is None:
                return (
                    KrylovDecomposition(
                        V=V.data[:, : j + 1],
                        S=S.data[: j + 1, : j + 1],
                        b=np.zeros(j + 1, dtype=ctx.dtype),
                        residual=None,
                        invariant=True,
                    ),
                    matvecs,
                )
            v_next = replacement
            if j + 1 < target_order:
                S[j + 1, j] = 0.0
            else:
                b[:] = 0.0
            continue
        v_next = w / beta
        if j + 1 < target_order:
            S[j + 1, j] = beta
        else:
            b[:] = 0.0
            b[j] = beta

    return (
        KrylovDecomposition(
            V=V.data, S=S.data, b=b.data, residual=None if v_next is None else v_next.data, invariant=False
        ),
        matvecs,
    )
