"""Implicitly restarted Arnoldi method with Krylov-Schur restarts.

This is the reproduction of the algorithmic core the paper evaluates
(``partialschur`` of ``ArnoldiMethod.jl``): a partial Schur / spectral
decomposition of a large sparse symmetric matrix, computed with Arnoldi
expansions and Krylov-Schur (thick) restarts, where every arithmetic
operation is carried out in the target machine-number format via a
:class:`~repro.arithmetic.context.ComputeContext`.
"""

from .results import PartialSchurResult, ArnoldiBreakdown
from .arnoldi import arnoldi_expand, KrylovDecomposition
from .krylov_schur import partialschur

__all__ = [
    "PartialSchurResult",
    "ArnoldiBreakdown",
    "KrylovDecomposition",
    "arnoldi_expand",
    "partialschur",
]
