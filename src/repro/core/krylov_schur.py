"""``partialschur`` — implicitly restarted Arnoldi with Krylov-Schur restarts.

The driver mirrors the interface the paper uses from ``ArnoldiMethod.jl``:
``partialschur(matrix, nev, which="LM", tol=...)`` returns the ``nev`` most
wanted Ritz pairs of a sparse symmetric matrix.  Every arithmetic operation
(including the dense eigendecomposition of the projected matrix) runs in the
compute context, so the solver can be executed in OFP8, bfloat16, posit,
takum or IEEE arithmetic unchanged — the "untailored" setting of the study.

Algorithm outline (thick restart / Krylov-Schur for symmetric operators):

1. expand the Krylov decomposition to the maximum dimension with Arnoldi
   steps (classical Gram-Schmidt + DGKS re-orthogonalisation);
2. diagonalise the projected matrix in the target arithmetic
   (:func:`repro.linalg.symmetric_eigen`);
3. estimate Ritz residuals from the coupling vector, count converged pairs;
4. stop when ``nev`` wanted pairs are converged (or the space is invariant /
   the restart budget is exhausted); otherwise truncate the decomposition to
   the wanted subspace plus a few extra vectors and go back to 1.
"""

from __future__ import annotations

import numpy as np

from ..arithmetic.context import ComputeContext, ContextSpec, get_context
from ..linalg.ordering import select_order
from ..linalg.tridiagonal import EigenConvergenceError, symmetric_eigen
from ..telemetry import trace as _trace
from .arnoldi import KrylovDecomposition, arnoldi_expand
from .results import ArnoldiBreakdown, PartialSchurResult

__all__ = ["partialschur", "default_maxdim"]


def default_maxdim(nev: int, n: int) -> int:
    """Default maximum Krylov dimension (mirrors ``ArnoldiMethod.jl``)."""
    return int(min(max(2 * nev + 1, 20), n))


def _initial_vector(ctx: ComputeContext, n: int, v0, seed: int) -> np.ndarray:
    if v0 is not None:
        v = ctx.array(np.asarray(v0, dtype=np.float64))
    else:
        rng = np.random.default_rng(seed)
        v = ctx.array(rng.standard_normal(n))
    nrm = v.norm2()
    if not nrm.isfinite() or float(nrm) == 0.0:
        v = ctx.array(np.ones(n) / np.sqrt(n))
        nrm = v.norm2()
    return (v / nrm).data


def _ritz_decomposition(ctx, decomp):
    """Diagonalise the projected matrix and transform the coupling vector."""
    theta, Y = symmetric_eigen(ctx, decomp.S)
    # residual coupling in the Ritz basis: b' = Y^T b
    b_ritz = (ctx.wrap(decomp.b) @ ctx.wrap(Y)).data  # Y^T b
    return theta, Y, b_ritz


def _count_converged(theta, b_ritz, order, nev, tol):
    """Number of leading wanted Ritz pairs whose residual estimate passes."""
    converged = 0
    for idx in order[:nev]:
        lam = abs(float(theta[idx]))
        resid = abs(float(b_ritz[idx]))
        bound = tol * lam if lam > 0 else tol
        if resid <= bound:
            converged += 1
        else:
            break
    return converged


def effective_tolerance(tol: float, ctx: ComputeContext, eps_floor: bool = True) -> float:
    """Convergence tolerance actually used by the solver.

    ARPACK replaces a user tolerance below what the working precision can
    deliver by ``eps^(2/3)``; the same floor is applied here (relative to the
    *context's* machine epsilon) so that low-precision runs terminate once
    they have reached the accuracy attainable in that arithmetic instead of
    spinning until the restart budget is exhausted.  Disable with
    ``eps_floor=False`` for the strict-tolerance ablation.
    """
    if not eps_floor:
        return float(tol)
    return float(max(tol, float(ctx.machine_epsilon) ** (2.0 / 3.0)))


def partialschur(
    matrix,
    nev: int = 6,
    which: str = "LM",
    tol: float = 1e-8,
    maxdim: int | None = None,
    restarts: int = 100,
    ctx: ComputeContext | ContextSpec | str | None = None,
    v0=None,
    seed: int = 0,
    history: bool = False,
    eps_floor: bool = True,
) -> PartialSchurResult:
    """Compute a partial spectral decomposition of a sparse symmetric matrix.

    Parameters
    ----------
    matrix:
        CSR matrix (``repro.sparse.CSRMatrix``).  Its values should already
        be representable in the context (use ``ctx.convert_matrix``),
        otherwise they are rounded on the fly.
    nev:
        Number of Ritz pairs to compute.
    which:
        Ordering rule (``"LM"``, ``"SM"``, ``"LR"``, ``"SR"``).
    tol:
        Relative convergence tolerance on the Ritz residual estimate
        ``|b^T y_i| <= tol * |theta_i|``.
    maxdim:
        Maximum Krylov dimension (default ``min(max(2 nev + 1, 20), n)``).
    restarts:
        Maximum number of Krylov-Schur restarts.
    ctx:
        Compute context, :class:`~repro.arithmetic.ContextSpec` or format
        name; defaults to native float64.
    v0:
        Optional starting vector; a seeded random vector otherwise.
    seed:
        Seed for the default starting vector.
    history:
        Record the per-restart convergence counts.
    eps_floor:
        Apply ARPACK's ``eps^(2/3)`` floor (in the context's machine epsilon)
        to the tolerance, so that runs terminate once they reach the accuracy
        attainable in the arithmetic (default True).

    Returns
    -------
    PartialSchurResult
        Ritz values/vectors ordered most-wanted-first and solver diagnostics.
        ``converged`` is False when the restart budget was exhausted or the
        arithmetic broke down (the paper's ∞ω condition).
    """
    if ctx is None:
        ctx = get_context("float64")
    elif isinstance(ctx, (str, ContextSpec)):
        ctx = get_context(ctx)
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("partialschur requires a square matrix")
    if nev < 1:
        raise ValueError("nev must be positive")
    nev = min(nev, n)
    if maxdim is None:
        maxdim = default_maxdim(nev, n)
    maxdim = int(min(max(maxdim, nev + 2), n))
    solver_tol = effective_tolerance(tol, ctx, eps_floor)

    matrix = matrix.with_data(ctx.round(np.asarray(matrix.data, dtype=ctx.dtype)))

    v_start = _initial_vector(ctx, n, v0, seed)
    deflation_rng = np.random.default_rng([seed, 0x5EED])
    decomp = KrylovDecomposition(
        V=np.zeros((n, 0), dtype=ctx.dtype),
        S=np.zeros((0, 0), dtype=ctx.dtype),
        b=np.zeros(0, dtype=ctx.dtype),
        residual=v_start,
        invariant=False,
    )

    matvecs = 0
    restart_count = 0
    hist: list[int] = []
    reason = "maxiter"
    theta = Y = b_ritz = None
    order = None

    with _trace.span("krylov_schur.solve", fmt=ctx.name) as _sp:
        try:
            while True:
                decomp, used = arnoldi_expand(ctx, matrix, decomp, maxdim, rng=deflation_rng)
                matvecs += used
                with _trace.span("krylov_schur.ritz", fmt=ctx.name):
                    theta, Y, b_ritz = _ritz_decomposition(ctx, decomp)
                if not np.all(np.isfinite(np.asarray(theta, dtype=np.float64))):
                    raise ArnoldiBreakdown("non-finite Ritz values")
                order = select_order(np.asarray(theta, dtype=np.float64), which)
                nconv = _count_converged(theta, b_ritz, order, min(nev, decomp.order), solver_tol)
                if history:
                    hist.append(nconv)
                if decomp.invariant:
                    reason = "invariant"
                    break
                if nconv >= min(nev, decomp.order):
                    reason = "converged"
                    break
                if restart_count >= restarts:
                    reason = "maxiter"
                    break
                restart_count += 1
                # truncate: keep the wanted Ritz vectors plus half of the rest
                with _trace.span("krylov_schur.restart", fmt=ctx.name):
                    keep = min(
                        decomp.order - 1,
                        max(nev + (decomp.order - nev) // 2, nev + 1),
                    )
                    sel = order[:keep]
                    Ysel = np.asarray(Y)[:, sel]
                    V_new = (ctx.wrap(decomp.V) @ ctx.wrap(Ysel)).data
                    S_new = np.zeros((keep, keep), dtype=ctx.dtype)
                    S_new[np.arange(keep), np.arange(keep)] = np.asarray(theta)[sel]
                    b_new = np.asarray(b_ritz)[sel].astype(ctx.dtype)
                    decomp = KrylovDecomposition(
                        V=V_new, S=S_new, b=b_new, residual=decomp.residual, invariant=False
                    )

            # assemble the result from the last Ritz decomposition
            nret = min(nev, decomp.order)
            sel = order[:nret]
            theta_np = np.asarray(theta)
            lam = theta_np[sel]
            Ysel = np.asarray(Y)[:, sel]
            X = (ctx.wrap(decomp.V) @ ctx.wrap(Ysel)).data
            residuals = np.abs(np.asarray(b_ritz, dtype=np.float64))[sel]
            if decomp.invariant:
                residuals = np.zeros(nret)
            nconv = (
                _count_converged(theta, b_ritz, order, nret, solver_tol)
                if not decomp.invariant
                else nret
            )
            converged = reason in ("converged", "invariant") and nconv >= nret

            return PartialSchurResult(
                eigenvalues=lam,
                eigenvectors=X,
                residuals=residuals,
                converged=converged,
                nconverged=nconv,
                restarts=restart_count,
                matvecs=matvecs,
                reason=reason,
                which=which,
                tolerance=tol,
                format_name=ctx.name,
                history=hist if history else None,
            )
        except (ArnoldiBreakdown, EigenConvergenceError):
            # the arithmetic broke down (overflow, NaR propagation or a projected
            # eigensolver that cannot deflate): report a non-converged run, the
            # experiments translate this into the paper's ∞ω marker
            return PartialSchurResult(
                eigenvalues=np.zeros(0, dtype=ctx.dtype),
                eigenvectors=np.zeros((n, 0), dtype=ctx.dtype),
                residuals=np.zeros(0),
                converged=False,
                nconverged=0,
                restarts=restart_count,
                matvecs=matvecs,
                reason="breakdown",
                which=which,
                tolerance=tol,
                format_name=ctx.name,
                history=hist if history else None,
            )
        finally:
            # flush the solve's op tally into the registry and annotate the
            # span on every exit path (converged, breakdown, propagated error)
            _sp.set(restarts=restart_count, matvecs=matvecs, ops=ctx.publish_op_count())
