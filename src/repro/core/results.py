"""Result and exception types of the partial Schur solver."""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

__all__ = ["PartialSchurResult", "ArnoldiBreakdown"]


class ArnoldiBreakdown(RuntimeError):
    """Unrecoverable breakdown of the Arnoldi process.

    Raised when non-finite values contaminate the Krylov basis (overflow,
    division by a vanishing norm, NaR propagation) — a typical failure mode
    of the 8-bit formats in the study.
    """


@dataclasses.dataclass
class PartialSchurResult:
    """Outcome of :func:`repro.core.partialschur`.

    Attributes
    ----------
    eigenvalues:
        Ritz values ordered by the requested rule (most wanted first),
        length ``nev`` (fewer if the Krylov space was exhausted earlier).
    eigenvectors:
        Matrix whose columns are the corresponding Ritz (eigen-)vectors, in
        the arithmetic's work dtype.
    residuals:
        Ritz residual estimates ``|b^T y_i|`` for each returned pair.
    converged:
        Whether at least ``nev`` pairs satisfied the convergence tolerance.
    nconverged:
        Number of converged pairs among the returned ones.
    restarts:
        Number of Krylov-Schur restarts performed.
    matvecs:
        Number of sparse matrix-vector products.
    reason:
        Human-readable termination reason (``"converged"``, ``"maxiter"``,
        ``"breakdown"``, ``"invariant"``, ``"eigensolver-failure"``).
    which:
        Ordering rule the eigenvalues are sorted by.
    tolerance:
        Relative convergence tolerance used.
    format_name:
        Name of the arithmetic the computation ran in.
    history:
        Per-restart record of the number of converged pairs (diagnostics).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    residuals: np.ndarray
    converged: bool
    nconverged: int
    restarts: int
    matvecs: int
    reason: str
    which: str
    tolerance: float
    format_name: str
    history: Optional[list] = None

    @property
    def nev(self) -> int:
        """Number of returned Ritz pairs."""
        return int(self.eigenvalues.shape[0])

    def to_dict(self) -> dict:
        """JSON-serialisable view (arrays converted to float64 lists).

        Work-dtype arrays (e.g. ``longdouble`` reference solves) are
        narrowed to float64 — the same representation every reporting path
        uses — so the round-trip through :meth:`from_dict` reproduces the
        reported result exactly, not the internal work precision.
        """
        return {
            "eigenvalues": self.eigenvalues_float64().tolist(),
            "eigenvectors": self.eigenvectors_float64().tolist(),
            "residuals": np.asarray(self.residuals, dtype=np.float64).tolist(),
            "converged": bool(self.converged),
            "nconverged": int(self.nconverged),
            "restarts": int(self.restarts),
            "matvecs": int(self.matvecs),
            "reason": self.reason,
            "which": self.which,
            "tolerance": float(self.tolerance),
            "format_name": self.format_name,
            "history": list(self.history) if self.history is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PartialSchurResult":
        """Inverse of :meth:`to_dict` (float64 arrays, extra keys ignored)."""
        return cls(
            eigenvalues=np.asarray(payload["eigenvalues"], dtype=np.float64),
            eigenvectors=np.asarray(payload["eigenvectors"], dtype=np.float64),
            residuals=np.asarray(payload["residuals"], dtype=np.float64),
            converged=bool(payload["converged"]),
            nconverged=int(payload["nconverged"]),
            restarts=int(payload["restarts"]),
            matvecs=int(payload["matvecs"]),
            reason=payload["reason"],
            which=payload["which"],
            tolerance=float(payload["tolerance"]),
            format_name=payload["format_name"],
            history=payload.get("history"),
        )

    def eigenvalues_float64(self) -> np.ndarray:
        """Eigenvalues converted to float64 (for reporting)."""
        return np.asarray(self.eigenvalues, dtype=np.float64)

    def eigenvectors_float64(self) -> np.ndarray:
        """Eigenvectors converted to float64 (for reporting)."""
        return np.asarray(self.eigenvectors, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "converged" if self.converged else f"NOT converged ({self.reason})"
        return (
            f"<PartialSchurResult {self.format_name}: {self.nev} pairs, "
            f"{status}, {self.restarts} restarts, {self.matvecs} matvecs>"
        )
