"""Lockstep Krylov-Schur: one solve, a whole stack of formats.

:func:`batched_partialschur` runs the paper's central experiment — the same
partial spectral decomposition across many number formats — as *one*
lockstep sweep per work-dtype lane instead of one full solver run per
format.  Per-row trajectories are bit-identical to
:func:`repro.core.krylov_schur.partialschur`: every rounded operation of
the sequential solver is performed for each row, on the same values, in
the same order, merely vectorised across the format axis through
:class:`repro.arithmetic.BatchedContext`.

The solver is inherently divergent across formats — an 8-bit run breaks
down in the first sweep while float64 restarts dozens of times — so the
batch carries **per-format retirement masks**: a row leaves the lockstep
the moment its sequential twin would have returned (converged, invariant
subspace, breakdown, or restart budget), and the remaining rows continue
without it.  Divergent low-frequency paths (deflation restarts, invariant
sub-space assembly) drop to the row's own sequential context — the code
path is literally the sequential implementation — keeping the hot lockstep
sweeps uniform: after every expansion all active rows sit at order
``maxdim``, and the restart truncation keeps the same number of vectors
for every row, so the batch never stalls waiting for a straggler.

Telemetry: each call emits ``batch.formats`` (rows entering the batch),
``batch.retired`` (rows leaving, labelled by reason) and
``batch.lockstep_seconds`` (wall time of the batched solve).
"""

from __future__ import annotations

import time

import numpy as np

from ..arithmetic.batched import BatchedContext, BatchSpec
from ..linalg.lockstep import lockstep_symmetric_eigen
from ..linalg.ordering import select_order
from ..linalg.tridiagonal import EigenConvergenceError
from ..telemetry import trace as _trace
from ..telemetry.metrics import metrics as _metrics
from .arnoldi import _DGKS_ETA, KrylovDecomposition, _random_orthonormal
from .krylov_schur import (
    _count_converged,
    _initial_vector,
    _ritz_decomposition,
    default_maxdim,
    effective_tolerance,
)
from .results import PartialSchurResult

__all__ = ["batched_partialschur"]


def batched_partialschur(
    matrix,
    specs,
    nev: int = 6,
    which: str = "LM",
    tol=1e-8,
    maxdim: int | None = None,
    restarts: int = 100,
    v0=None,
    seed: int = 0,
    eps_floor: bool = True,
) -> list:
    """Partial spectral decompositions of one matrix in many formats.

    The batched sibling of :func:`repro.core.krylov_schur.partialschur`:
    runs the solve for every context in ``specs`` in lockstep and returns
    one :class:`~repro.core.results.PartialSchurResult` per spec, in spec
    order, each bit-identical (eigenvalues, eigenvectors, residuals,
    restart/matvec counts, reason) to the sequential solver with the same
    arguments.

    Parameters
    ----------
    matrix:
        CSR matrix, or a sequence of CSR matrices (one per spec, sharing
        one sparsity pattern) whose values are already converted per
        format — re-rounding converted values is the identity, so both
        spellings produce the same trajectories.
    specs:
        :class:`~repro.arithmetic.BatchSpec`, or an ordered iterable of
        :class:`~repro.arithmetic.ContextSpec` / format names.
    tol:
        Scalar tolerance for all rows, or a sequence with one tolerance
        per spec (the runner passes per-format tolerances).
    nev, which, maxdim, restarts, v0, seed, eps_floor:
        As for the sequential solver, applied to every row.
    """
    spec = specs if isinstance(specs, BatchSpec) else BatchSpec(specs)
    nfmt = len(spec)
    mats = _per_row_matrices(matrix, nfmt)
    n = mats[0].shape[0]
    if mats[0].shape[0] != mats[0].shape[1]:
        raise ValueError("batched_partialschur requires a square matrix")
    if nev < 1:
        raise ValueError("nev must be positive")
    nev = min(nev, n)
    if maxdim is None:
        maxdim = default_maxdim(nev, n)
    maxdim = int(min(max(maxdim, nev + 2), n))
    tols = _per_row_tols(tol, nfmt)

    results: list = [None] * nfmt
    start = time.perf_counter()
    with _trace.span("krylov_schur.solve_batched", formats=nfmt) as _sp:
        _metrics.counter("batch.formats").inc(nfmt)
        retired: dict = {}
        for contexts, indices in spec.lanes():
            lane_results = _lane_solve(
                contexts,
                [mats[i] for i in indices],
                n,
                nev,
                which,
                [tols[i] for i in indices],
                maxdim,
                restarts,
                v0,
                seed,
                eps_floor,
            )
            for pos, res in zip(indices, lane_results):
                results[pos] = res
                retired[res.reason] = retired.get(res.reason, 0) + 1
        for reason, count in retired.items():
            _metrics.counter("batch.retired", reason=reason).inc(count)
        elapsed = time.perf_counter() - start
        _metrics.histogram("batch.lockstep_seconds").observe(elapsed)
        _sp.set(retired=dict(sorted(retired.items())), seconds=round(elapsed, 6))
    return results


def _per_row_matrices(matrix, nfmt: int) -> list:
    if hasattr(matrix, "indptr"):
        return [matrix] * nfmt
    mats = list(matrix)
    if len(mats) != nfmt:
        raise ValueError(
            f"got {len(mats)} matrices for {nfmt} specs; pass one matrix or "
            "one per spec"
        )
    first = mats[0]
    for m in mats[1:]:
        if not (
            np.array_equal(m.indptr, first.indptr)
            and np.array_equal(m.indices, first.indices)
        ):
            raise ValueError(
                "per-row matrices must share one sparsity pattern "
                "(same indptr/indices); convert one matrix per format"
            )
    return mats


def _per_row_tols(tol, nfmt: int) -> list:
    if np.ndim(tol) == 0:
        return [float(tol)] * nfmt
    tols = [float(t) for t in tol]
    if len(tols) != nfmt:
        raise ValueError(f"got {len(tols)} tolerances for {nfmt} specs")
    return tols


def _breakdown_result(ctx, n, which, tol, restart_count, matvecs) -> PartialSchurResult:
    """The sequential solver's breakdown (∞ω) result for one row."""
    return PartialSchurResult(
        eigenvalues=np.zeros(0, dtype=ctx.dtype),
        eigenvectors=np.zeros((n, 0), dtype=ctx.dtype),
        residuals=np.zeros(0),
        converged=False,
        nconverged=0,
        restarts=restart_count,
        matvecs=matvecs,
        reason="breakdown",
        which=which,
        tolerance=tol,
        format_name=ctx.name,
        history=None,
    )


def _assemble(
    ctx,
    Vd,
    theta,
    Y,
    b_ritz,
    order,
    decomp_order,
    invariant,
    nev,
    which,
    solver_tol,
    tol,
    reason,
    restart_count,
    matvecs,
) -> PartialSchurResult:
    """Assemble one row's result exactly as the sequential driver does."""
    nret = min(nev, decomp_order)
    sel = order[:nret]
    theta_np = np.asarray(theta)
    lam = theta_np[sel]
    Ysel = np.asarray(Y)[:, sel]
    X = (ctx.wrap(Vd) @ ctx.wrap(Ysel)).data
    residuals = np.abs(np.asarray(b_ritz, dtype=np.float64))[sel]
    if invariant:
        residuals = np.zeros(nret)
    nconv = (
        nret if invariant else _count_converged(theta, b_ritz, order, nret, solver_tol)
    )
    converged = reason in ("converged", "invariant") and nconv >= nret
    return PartialSchurResult(
        eigenvalues=lam,
        eigenvectors=X,
        residuals=residuals,
        converged=converged,
        nconverged=nconv,
        restarts=restart_count,
        matvecs=matvecs,
        reason=reason,
        which=which,
        tolerance=tol,
        format_name=ctx.name,
        history=None,
    )


def _finish_invariant(
    ctx, decomp, nev, which, solver_tol, tol, n, restart_count, matvecs
) -> PartialSchurResult:
    """Finish a row whose subspace became invariant (sequential path).

    Runs the remaining sequential driver steps — Ritz decomposition of the
    (smaller-order) projected matrix, finiteness check, assembly with
    ``reason="invariant"`` — in the row's own context.
    """
    try:
        theta, Y, b_ritz = _ritz_decomposition(ctx, decomp)
    except EigenConvergenceError:
        return _breakdown_result(ctx, n, which, tol, restart_count, matvecs)
    if not np.all(np.isfinite(np.asarray(theta, dtype=np.float64))):
        return _breakdown_result(ctx, n, which, tol, restart_count, matvecs)
    order = select_order(np.asarray(theta, dtype=np.float64), which)
    return _assemble(
        ctx,
        decomp.V,
        theta,
        Y,
        b_ritz,
        order,
        decomp.order,
        True,
        nev,
        which,
        solver_tol,
        tol,
        "invariant",
        restart_count,
        matvecs,
    )


def _borthogonalize(bctx, Vact, w, sub):
    """Batched classical Gram-Schmidt with per-row DGKS second pass.

    Mirrors :func:`repro.core.arnoldi._orthogonalize`; only the rows whose
    first pass lost too much norm run the re-orthogonalisation, exactly as
    their sequential twins would.
    """
    norm_before = bctx.norm2(w, sub)
    h = bctx.gemv_t(Vact, w, sub)
    w = bctx.sub(w, bctx.gemv(Vact, h, sub), sub)
    norm = bctx.norm2(w, sub)
    nb64 = np.asarray(norm_before, dtype=np.float64)
    na64 = np.asarray(norm, dtype=np.float64)
    ok = np.isfinite(na64) & (na64 > _DGKS_ETA * nb64)
    breakdown = np.zeros(len(sub), dtype=bool)
    if not ok.all():
        gi = np.nonzero(~ok)[0]
        s2 = sub[gi]
        Vsub = np.ascontiguousarray(Vact[gi])
        h2 = bctx.gemv_t(Vsub, w[gi], s2)
        w2 = bctx.sub(w[gi], bctx.gemv(Vsub, h2, s2), s2)
        h[gi] = bctx.add(h[gi], h2, s2)
        norm_final = bctx.norm2(w2, s2)
        nf64 = np.asarray(norm_final, dtype=np.float64)
        # compare against the first-pass norms before overwriting them —
        # na64 may alias ``norm`` when the lane dtype is already float64
        breakdown[gi] = (
            ~np.isfinite(nf64) | (nf64 <= _DGKS_ETA * na64[gi]) | (nf64 == 0.0)
        )
        w[gi] = w2
        norm[gi] = norm_final
    return w, h, norm, breakdown


def _lane_solve(
    contexts,
    mats,
    n,
    nev,
    which,
    lane_tols,
    maxdim,
    restarts,
    v0,
    seed,
    eps_floor,
):
    """Lockstep solve of one work-dtype lane; returns results in lane order."""
    bctx = BatchedContext(contexts)
    nrows = bctx.nrows
    dtype = bctx.dtype
    indices = mats[0].indices
    indptr = mats[0].indptr
    nnz = len(indices)
    # mirror the sequential solver's entry re-round of the matrix values
    data_stack = np.empty((nrows, nnz), dtype=dtype)
    for a, ctx in enumerate(contexts):
        data_stack[a] = ctx.round(np.asarray(mats[a].data, dtype=ctx.dtype))
    solver_tols = [
        effective_tolerance(t, ctx, eps_floor) for t, ctx in zip(lane_tols, contexts)
    ]
    v_next = np.stack([_initial_vector(ctx, n, v0, seed) for ctx in contexts]).astype(
        dtype, copy=False
    )
    rngs = [np.random.default_rng([seed, 0x5EED]) for _ in contexts]

    results: list = [None] * nrows
    matvecs = np.zeros(nrows, dtype=np.int64)
    restart_count = 0
    k = 0
    V_prev = np.zeros((nrows, n, 0), dtype=dtype)
    S_prev = np.zeros((nrows, 0, 0), dtype=dtype)
    b_prev = np.zeros((nrows, 0), dtype=dtype)
    alive = np.arange(nrows, dtype=np.int64)

    # matvecs "committed" to the driver: the sequential driver adds an
    # expansion's count only when arnoldi_expand *returns* — a raised
    # ArnoldiBreakdown discards the partial count — so breakdown results
    # report the committed value, not the in-flight one
    mv_committed = np.zeros(nrows, dtype=np.int64)

    def _retire_breakdown(a: int) -> None:
        results[a] = _breakdown_result(
            contexts[a], n, which, lane_tols[a], restart_count, int(mv_committed[a])
        )

    with np.errstate(all="ignore"):
        while alive.size:
            # ---------------- lockstep Arnoldi expansion ---------------- #
            V = np.zeros((nrows, n, maxdim), dtype=dtype)
            S = np.zeros((nrows, maxdim, maxdim), dtype=dtype)
            b = np.zeros((nrows, maxdim), dtype=dtype)
            if k:
                V[alive, :, :k] = V_prev[alive]
                S[alive, :k, :k] = S_prev[alive]
                S[alive, k, :k] = b_prev[alive]
            exp = alive
            for j in range(k, maxdim):
                if exp.size == 0:
                    break
                finite = np.isfinite(v_next[exp]).all(axis=1)
                for a in exp[~finite]:
                    _retire_breakdown(a)  # "non-finite Krylov vector"
                exp = exp[finite]
                if exp.size == 0:
                    break
                V[exp, :, j] = v_next[exp]
                w = bctx.spmv(data_stack[exp], indices, indptr, v_next[exp], exp)
                matvecs[exp] += 1
                finite = np.isfinite(w).all(axis=1)
                for a in exp[~finite]:
                    _retire_breakdown(a)  # "matrix-vector product overflowed"
                exp = exp[finite]
                w = w[finite]
                if exp.size == 0:
                    break
                Vact = np.ascontiguousarray(V[exp, :, : j + 1])
                w, h, beta, broke = _borthogonalize(bctx, Vact, w, exp)
                hfinite = np.isfinite(np.asarray(h, dtype=np.float64)).all(axis=1)
                for a in exp[~hfinite]:
                    _retire_breakdown(a)  # "orthogonalisation coefficients overflowed"
                keep = hfinite
                exp = exp[keep]
                w, h, beta, broke = w[keep], h[keep], beta[keep], broke[keep]
                if exp.size == 0:
                    break
                S[exp, : j + 1, j] = h
                bfinite = np.isfinite(np.asarray(beta, dtype=np.float64))
                for a in exp[~bfinite]:
                    _retire_breakdown(a)  # "residual norm overflowed"
                keep = bfinite
                exp = exp[keep]
                w, beta, broke = w[keep], beta[keep], broke[keep]
                if exp.size == 0:
                    break
                defl = broke | (beta == 0)
                if defl.any():
                    # deflation: per-row sequential code (divergent, rare)
                    survivors = []
                    for pos in np.nonzero(defl)[0]:
                        a = int(exp[pos])
                        ctx = contexts[a]
                        repl = _random_orthonormal(
                            ctx, ctx.wrap(V[a, :, : j + 1]), rngs[a]
                        )
                        if repl is None:
                            decomp = KrylovDecomposition(
                                V=np.ascontiguousarray(V[a, :, : j + 1]),
                                S=np.ascontiguousarray(S[a, : j + 1, : j + 1]),
                                b=np.zeros(j + 1, dtype=ctx.dtype),
                                residual=None,
                                invariant=True,
                            )
                            results[a] = _finish_invariant(
                                ctx,
                                decomp,
                                nev,
                                which,
                                solver_tols[a],
                                lane_tols[a],
                                n,
                                restart_count,
                                int(matvecs[a]),
                            )
                        else:
                            v_next[a] = repl.data
                            survivors.append(pos)
                            # S[j+1, j] / b stay zero, as sequential writes
                    keep = ~defl
                    for pos in survivors:
                        keep[pos] = True
                    exp_live = exp[~defl]
                    w_live, beta_live = w[~defl], beta[~defl]
                else:
                    exp_live = exp
                    w_live, beta_live = w, beta
                    keep = np.ones(exp.size, dtype=bool)
                if exp_live.size:
                    v_next[exp_live] = bctx.div(
                        w_live, beta_live[:, None], exp_live
                    )
                    if j + 1 < maxdim:
                        S[exp_live, j + 1, j] = beta_live
                    else:
                        b[exp_live, j] = beta_live
                exp = exp[keep]
            alive = exp
            mv_committed[alive] = matvecs[alive]
            bctx.flush_op_counts()
            if alive.size == 0:
                break

            # ---------------- lockstep Ritz decomposition --------------- #
            theta, Y, errs = lockstep_symmetric_eigen(
                bctx, np.ascontiguousarray(S[alive]), alive
            )
            ok = np.ones(alive.size, dtype=bool)
            for pos, err in enumerate(errs):
                if err is not None:
                    _retire_breakdown(int(alive[pos]))
                    ok[pos] = False
            tfinite = np.isfinite(np.asarray(theta, dtype=np.float64)).all(axis=1)
            for pos in np.nonzero(ok & ~tfinite)[0]:
                _retire_breakdown(int(alive[pos]))  # "non-finite Ritz values"
            ok &= tfinite
            alive, theta, Y = alive[ok], theta[ok], Y[ok]
            bctx.flush_op_counts()
            if alive.size == 0:
                break
            b_ritz = bctx.gemv_t(np.ascontiguousarray(Y), b[alive], alive)
            orders = [
                select_order(np.asarray(theta[pos], dtype=np.float64), which)
                for pos in range(alive.size)
            ]
            nret = min(nev, maxdim)
            nconv = np.array(
                [
                    _count_converged(
                        theta[pos], b_ritz[pos], orders[pos], nret, solver_tols[a]
                    )
                    for pos, a in enumerate(alive)
                ],
                dtype=np.int64,
            )

            # the sequential driver checks convergence before the restart
            # budget, so a row converging on its last allowed expansion is
            # "converged", not "maxiter"
            conv = nconv >= nret
            done = (
                conv
                if restart_count < restarts
                else np.ones(alive.size, dtype=bool)
            )
            for pos in np.nonzero(done)[0]:
                a = int(alive[pos])
                results[a] = _assemble(
                    contexts[a],
                    np.ascontiguousarray(V[a]),
                    theta[pos],
                    Y[pos],
                    b_ritz[pos],
                    orders[pos],
                    maxdim,
                    False,
                    nev,
                    which,
                    solver_tols[a],
                    lane_tols[a],
                    "converged" if conv[pos] else "maxiter",
                    restart_count,
                    int(matvecs[a]),
                )
            cont = ~done
            alive = alive[cont]
            bctx.flush_op_counts()
            if alive.size == 0:
                break

            # ---------------- lockstep Krylov-Schur restart -------------- #
            restart_count += 1
            theta, Y, b_ritz = theta[cont], Y[cont], b_ritz[cont]
            orders = [o for o, c in zip(orders, cont) if c]
            keep_n = min(maxdim - 1, max(nev + (maxdim - nev) // 2, nev + 1))
            Ysel = np.stack(
                [Y[pos][:, orders[pos][:keep_n]] for pos in range(alive.size)]
            )
            V_new = bctx.gemm(np.ascontiguousarray(V[alive]), Ysel, alive)
            V_prev = np.zeros((nrows, n, keep_n), dtype=dtype)
            S_prev = np.zeros((nrows, keep_n, keep_n), dtype=dtype)
            b_prev = np.zeros((nrows, keep_n), dtype=dtype)
            ar = np.arange(keep_n)
            for pos, a in enumerate(alive):
                sel = orders[pos][:keep_n]
                V_prev[a] = V_new[pos]
                S_prev[a, ar, ar] = np.asarray(theta[pos])[sel]
                b_prev[a] = np.asarray(b_ritz[pos])[sel].astype(dtype)
            k = keep_n
            bctx.flush_op_counts()

    bctx.flush_op_counts()
    for ctx in contexts:
        ctx.publish_op_count()
    return results
