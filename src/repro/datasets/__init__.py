"""Synthetic stand-ins for the paper's matrix collections.

The paper evaluates two data sources that cannot be downloaded in this
environment (see DESIGN.md, substitutions 1 and 2):

* 302 general symmetric matrices from the SuiteSparse Matrix Collection
  (``<= 20 000`` non-zeros) — replaced by :func:`suitesparse_like`;
* graph Laplacians derived from Network-Repository graphs, organised in 31
  categories that aggregate into four classes (Table 1) — replaced by
  :func:`graph_suite` with seeded random-graph generators per category.

Both suites return :class:`TestMatrix` objects carrying the matrix plus
metadata, exactly like MuFoLAB's ``TestMatrices`` layer.
"""

from .testmatrix import TestMatrix, CATEGORY_TO_CLASS, CLASS_NAMES, classify_category
from .suitesparse import suitesparse_like, GENERAL_FAMILIES
from .graphs import (
    graph_suite,
    generate_graph,
    category_counts,
    table1_counts,
    GRAPH_CATEGORIES,
)
from .registry import get_suite, available_suites

__all__ = [
    "TestMatrix",
    "CATEGORY_TO_CLASS",
    "CLASS_NAMES",
    "classify_category",
    "suitesparse_like",
    "GENERAL_FAMILIES",
    "graph_suite",
    "generate_graph",
    "category_counts",
    "table1_counts",
    "GRAPH_CATEGORIES",
    "get_suite",
    "available_suites",
]
