"""Synthetic stand-in for the Network Repository graph collection.

The paper scrapes ~3 300 graphs (archives below 500 kB) from 31 categories
and aggregates them into four classes (Table 1).  Offline, each category is
emulated with a seeded random-graph model whose structure matches the kind of
network the category contains (duplication-divergence for protein interaction
networks, lattice-like graphs for road/power networks, preferential attachment
for social/web graphs, Erdős–Rényi for the ``rand``/``misc`` categories, ...).

The per-category *counts* follow Table 1, scaled down by a configurable
factor so that the full pipeline runs in minutes; ``scale=1.0`` reproduces
the paper's population sizes.
"""

from __future__ import annotations

import math
import zlib
from typing import Callable

import networkx as nx
import numpy as np

from ..sparse import COOMatrix, CSRMatrix, laplacian_from_adjacency
from .testmatrix import CATEGORY_TO_CLASS, TestMatrix

__all__ = [
    "GRAPH_CATEGORIES",
    "TABLE1_COUNTS",
    "generate_graph",
    "graph_suite",
    "category_counts",
    "table1_counts",
]


#: Table 1 of the paper: number of graphs per Network-Repository category
#: after the 500 kB archive-size filter.
TABLE1_COUNTS: dict[str, int] = {
    "bio": 24,
    "eco": 6,
    "protein": 1178,
    "bn": 11,
    "inf": 4,
    "massive": 0,
    "power": 8,
    "road": 3,
    "tech": 5,
    "web": 9,
    "ca": 7,
    "cit": 1,
    "dynamic": 43,
    "econ": 12,
    "email": 6,
    "ia": 17,
    "proximity": 6,
    "rec": 2,
    "retweet_graphs": 28,
    "rt": 31,
    "soc": 21,
    "socfb": 27,
    "tscc": 33,
    "dimacs": 62,
    "dimacs10": 17,
    "graph500": 0,
    "heter": 0,
    "labeled": 47,
    "misc": 1555,
    "rand": 139,
    "sc": 0,
}

#: all known categories, in Table-1 order
GRAPH_CATEGORIES: tuple[str, ...] = tuple(TABLE1_COUNTS)


# --------------------------------------------------------------------------- #
# per-category graph models
# --------------------------------------------------------------------------- #
def _seed_int(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**31 - 1))


def _duplication(n, rng):
    return nx.duplication_divergence_graph(n, float(rng.uniform(0.2, 0.5)), seed=_seed_int(rng))


def _small_world(n, rng, k=6, p=0.3):
    k = min(k, max(2, n - 1))
    if k % 2:
        k -= 1
    return nx.watts_strogatz_graph(n, max(k, 2), p, seed=_seed_int(rng))


def _power_grid(n, rng):
    return nx.newman_watts_strogatz_graph(n, 2, 0.08, seed=_seed_int(rng))


def _grid_like(n, rng):
    side = max(2, int(math.sqrt(n)))
    g = nx.grid_2d_graph(side, max(2, n // side))
    g = nx.convert_node_labels_to_integers(g)
    # drop a few edges to break the perfect lattice
    rs = np.random.default_rng(_seed_int(rng))
    edges = list(g.edges())
    drop = rs.choice(len(edges), size=max(1, len(edges) // 20), replace=False)
    g.remove_edges_from([edges[i] for i in drop])
    return g


def _preferential(n, rng, m=2):
    return nx.barabasi_albert_graph(n, min(m, max(1, n - 1)), seed=_seed_int(rng))


def _powerlaw_cluster(n, rng, m=2, p=0.3):
    return nx.powerlaw_cluster_graph(n, min(m, max(1, n - 1)), p, seed=_seed_int(rng))


def _gnp(n, rng, avg_degree=6.0):
    p = min(1.0, avg_degree / max(n - 1, 1))
    return nx.gnp_random_graph(n, p, seed=_seed_int(rng))


def _geometric(n, rng):
    radius = math.sqrt(4.0 / max(n, 4))
    return nx.random_geometric_graph(n, radius, seed=_seed_int(rng))


def _blocks(n, rng):
    n_blocks = int(rng.integers(2, 5))
    sizes = [max(2, n // n_blocks)] * n_blocks
    p_in, p_out = 0.25, 0.02
    probs = [[p_in if i == j else p_out for j in range(n_blocks)] for i in range(n_blocks)]
    return nx.stochastic_block_model(sizes, probs, seed=_seed_int(rng))


def _regular(n, rng, d=3):
    d = min(d, n - 1)
    if (n * d) % 2:
        d += 1
        d = min(d, n - 1)
    if d < 1:
        d = 1
    try:
        return nx.random_regular_graph(d, n, seed=_seed_int(rng))
    except nx.NetworkXError:
        return _gnp(n, rng, avg_degree=d)


def _tree_like(n, rng):
    branching = int(rng.integers(2, 4))
    height = max(1, int(math.log(max(n, 2), branching)))
    g = nx.balanced_tree(branching, height)
    return nx.convert_node_labels_to_integers(g)


def _bipartite(n, rng):
    a = max(2, n // 3)
    b = max(2, n - a)
    return nx.bipartite.random_graph(a, b, 0.1, seed=_seed_int(rng))


def _star_bursts(n, rng):
    # retweet cascades: a few hubs with many leaves
    g = nx.barabasi_albert_graph(n, 1, seed=_seed_int(rng))
    return g


#: category -> graph model
_CATEGORY_MODELS: dict[str, Callable] = {
    "bio": lambda n, rng: _duplication(n, rng),
    "eco": lambda n, rng: _gnp(n, rng, avg_degree=8.0),
    "protein": lambda n, rng: _duplication(n, rng),
    "bn": lambda n, rng: _small_world(n, rng, k=8, p=0.2),
    "inf": lambda n, rng: _small_world(n, rng, k=4, p=0.1),
    "massive": lambda n, rng: _preferential(n, rng, m=3),
    "power": _power_grid,
    "road": _grid_like,
    "tech": lambda n, rng: _preferential(n, rng, m=2),
    "web": lambda n, rng: _preferential(n, rng, m=1),
    "ca": lambda n, rng: _powerlaw_cluster(n, rng, m=2, p=0.4),
    "cit": lambda n, rng: _preferential(n, rng, m=3),
    "dynamic": lambda n, rng: _gnp(n, rng, avg_degree=4.0),
    "econ": lambda n, rng: _gnp(n, rng, avg_degree=5.0),
    "email": lambda n, rng: _powerlaw_cluster(n, rng, m=2, p=0.1),
    "ia": lambda n, rng: _gnp(n, rng, avg_degree=4.0),
    "proximity": _geometric,
    "rec": _bipartite,
    "retweet_graphs": _star_bursts,
    "rt": _star_bursts,
    "soc": _blocks,
    "socfb": lambda n, rng: _powerlaw_cluster(n, rng, m=3, p=0.2),
    "tscc": lambda n, rng: _gnp(n, rng, avg_degree=3.0),
    "dimacs": lambda n, rng: _regular(n, rng, d=int(rng.integers(3, 6))),
    "dimacs10": _grid_like,
    "graph500": lambda n, rng: _preferential(n, rng, m=4),
    "heter": lambda n, rng: _gnp(n, rng, avg_degree=5.0),
    "labeled": _tree_like,
    "misc": lambda n, rng: _gnp(n, rng, avg_degree=float(rng.uniform(2.0, 10.0))),
    "rand": lambda n, rng: _gnp(n, rng, avg_degree=float(rng.uniform(3.0, 8.0))),
    "sc": _grid_like,
}

#: categories whose graphs get random edge weights (exercises the weighted
#: Laplacian path; most Network-Repository graphs are unweighted)
_WEIGHTED_CATEGORIES = {"econ", "rec", "retweet_graphs", "rt"}


def _adjacency_from_graph(graph, rng: np.random.Generator, weighted: bool) -> CSRMatrix:
    n = graph.number_of_nodes()
    rows, cols, vals = [], [], []
    for u, v in graph.edges():
        if u == v:
            continue
        w = float(rng.uniform(0.2, 5.0)) if weighted else 1.0
        rows += [u, v]
        cols += [v, u]
        vals += [w, w]
    if not rows:
        # completely disconnected graph: return the empty adjacency
        return CSRMatrix(
            np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(n + 1, dtype=np.int64), (n, n)
        )
    return COOMatrix(rows, cols, vals, (n, n)).tocsr()


def _category_key(category: str) -> int:
    """Deterministic per-category RNG seed component.

    ``hash(str)`` is randomised per process (PYTHONHASHSEED), which used to
    make the "seeded" workloads differ between runs — rare marginal
    matrices then flip solver convergence and flake the test/benchmark
    suites.  CRC32 is stable across processes and platforms.
    """
    return zlib.crc32(category.encode("utf-8")) % (2**31)


def generate_graph(
    category: str, index: int, size: int, seed: int = 0
) -> tuple[CSRMatrix, str]:
    """Generate one synthetic graph adjacency for a category.

    Returns ``(adjacency, model_name)``; the adjacency is symmetric with zero
    diagonal (self-loops are dropped).
    """
    if category not in _CATEGORY_MODELS:
        raise KeyError(f"unknown graph category {category!r}")
    rng = np.random.default_rng([seed, _category_key(category), index])
    size = max(8, int(size))
    graph = _CATEGORY_MODELS[category](size, rng)
    adjacency = _adjacency_from_graph(graph, rng, category in _WEIGHTED_CATEGORIES)
    return adjacency, type(graph).__name__


def table1_counts() -> dict[str, int]:
    """The paper's Table-1 per-category graph counts."""
    return dict(TABLE1_COUNTS)


def category_counts(scale: float = 1.0, min_count: int = 1) -> dict[str, int]:
    """Per-category counts scaled down from Table 1.

    Categories that are empty in the paper stay empty; non-empty categories
    keep at least ``min_count`` graphs so every model is represented.
    """
    counts = {}
    for category, full in TABLE1_COUNTS.items():
        if full == 0:
            counts[category] = 0
        else:
            counts[category] = max(min_count, int(round(full * scale)))
    return counts


def graph_suite(
    classes: str | tuple[str, ...] = "all",
    scale: float = 0.01,
    size_range: tuple[int, int] = (24, 96),
    seed: int = 0,
) -> list[TestMatrix]:
    """Generate the synthetic graph-Laplacian suite.

    Parameters
    ----------
    classes:
        ``"all"`` or one/more of ``"biological"``, ``"infrastructure"``,
        ``"social"``, ``"miscellaneous"``.
    scale:
        Fraction of the Table-1 counts to generate per category.
    size_range:
        Range of vertex counts to draw from.
    seed:
        Base seed (suite is deterministic).

    Returns
    -------
    list[TestMatrix]
        One entry per graph; ``matrix`` is the symmetrically normalised
        Laplacian, ``group`` the aggregate class and ``category`` the
        Network-Repository category.
    """
    if isinstance(classes, str):
        wanted = None if classes == "all" else {classes}
    else:
        wanted = set(classes)
    counts = category_counts(scale)
    suite: list[TestMatrix] = []
    for category, count in counts.items():
        cls = CATEGORY_TO_CLASS[category]
        if wanted is not None and cls not in wanted:
            continue
        for index in range(count):
            rng = np.random.default_rng([seed, 7919, _category_key(category), index])
            size = int(rng.integers(size_range[0], size_range[1] + 1))
            adjacency, model = generate_graph(category, index, size, seed=seed)
            laplacian = laplacian_from_adjacency(adjacency)
            suite.append(
                TestMatrix(
                    name=f"{category}/{category}_{index:04d}",
                    matrix=laplacian,
                    group=cls,
                    category=category,
                    kind=f"normalised Laplacian of synthetic {model}",
                )
            )
    return suite
