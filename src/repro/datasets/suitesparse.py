"""Synthetic stand-in for the SuiteSparse Matrix Collection subset.

The paper uses 302 general symmetric matrices (all symmetric matrices of the
collection with at most 20 000 non-zeros, prepared as in the companion ARITH
paper).  Offline, this module generates a comparable population: symmetric
sparse matrices drawn from several structural families with a wide spread of
sizes, condition numbers and entry dynamic ranges — the properties that drive
the numerical behaviour studied in the paper (range overflow for OFP8,
tapered-precision effects for posits/takums).

Every matrix is produced deterministically from ``(family, index, seed)``.
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix
from .testmatrix import TestMatrix

__all__ = ["GENERAL_FAMILIES", "suitesparse_like"]


# --------------------------------------------------------------------------- #
# individual generator families
# --------------------------------------------------------------------------- #
def _banded_geometric(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Banded symmetric matrix with geometrically graded diagonal.

    The diagonal spans several orders of magnitude, giving a controlled
    condition number while staying well inside float64 range.
    """
    bandwidth = int(rng.integers(1, 4))
    span = float(rng.uniform(1.0, 5.0))  # log10 of the diagonal spread
    diag = 10.0 ** np.linspace(-span / 2, span / 2, n)
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        vals.append(diag[i])
    for off in range(1, bandwidth + 1):
        coupling = rng.uniform(0.05, 0.4)
        for i in range(n - off):
            v = coupling * np.sqrt(diag[i] * diag[i + off])
            rows += [i, i + off]
            cols += [i + off, i]
            vals += [v, v]
    return COOMatrix(rows, cols, vals, (n, n)).tocsr()


def _laplacian_2d(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Standard 5-point Laplacian stencil on a rectangular grid (~n nodes)."""
    nx_ = max(2, int(np.sqrt(n)))
    ny_ = max(2, int(np.ceil(n / nx_)))
    total = nx_ * ny_
    rows, cols, vals = [], [], []

    def idx(i, j):
        return i * ny_ + j

    for i in range(nx_):
        for j in range(ny_):
            center = idx(i, j)
            rows.append(center)
            cols.append(center)
            vals.append(4.0)
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx_ and 0 <= jj < ny_:
                    rows.append(center)
                    cols.append(idx(ii, jj))
                    vals.append(-1.0)
    return COOMatrix(rows, cols, vals, (total, total)).tocsr()


def _random_symmetric(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Random sparse symmetric matrix with standard-normal entries."""
    density = float(rng.uniform(0.02, 0.08))
    nnz_target = max(n, int(density * n * n / 2))
    rows = rng.integers(0, n, nnz_target)
    cols = rng.integers(0, n, nnz_target)
    vals = rng.standard_normal(nnz_target)
    all_rows = np.concatenate([rows, cols, np.arange(n)])
    all_cols = np.concatenate([cols, rows, np.arange(n)])
    all_vals = np.concatenate([vals * 0.5, vals * 0.5, rng.standard_normal(n)])
    return COOMatrix(all_rows, all_cols, all_vals, (n, n)).tocsr()


def _spd_gram(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Sparse symmetric positive definite Gram-like matrix.

    Built as a weighted graph Laplacian plus a random positive diagonal shift
    (which keeps the matrix sparse, unlike an explicit ``B^T B``).
    """
    avg_degree = int(rng.integers(2, 6))
    m = n * avg_degree
    rows = rng.integers(0, n, m)
    cols = rng.integers(0, n, m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    w = rng.uniform(0.1, 2.0, rows.size)
    lap_rows = np.concatenate([rows, cols, rows, cols])
    lap_cols = np.concatenate([cols, rows, rows, cols])
    lap_vals = np.concatenate([-w, -w, w, w])
    shift = rng.uniform(0.01, 1.0, n)
    all_rows = np.concatenate([lap_rows, np.arange(n)])
    all_cols = np.concatenate([lap_cols, np.arange(n)])
    all_vals = np.concatenate([lap_vals, shift])
    return COOMatrix(all_rows, all_cols, all_vals, (n, n)).tocsr()


def _wide_dynamic_range(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Symmetric matrix whose entries span many orders of magnitude.

    These matrices exercise the ∞σ condition of the paper: their entries
    overflow/underflow the 8-bit formats (and sometimes float16) while being
    unproblematic for the tapered-precision formats.
    """
    span = float(rng.uniform(6.0, 16.0))  # log10 of the entry spread
    diag = 10.0 ** rng.uniform(-span / 2, span / 2, n)
    rows = list(range(n))
    cols = list(range(n))
    vals = list(diag)
    extra = n // 2
    up = rng.integers(0, n - 1, extra)
    for i in up:
        v = 10.0 ** rng.uniform(-span / 2, span / 2)
        rows += [int(i), int(i) + 1]
        cols += [int(i) + 1, int(i)]
        vals += [v, v]
    return COOMatrix(rows, cols, vals, (n, n)).tocsr()


def _arrowhead(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Arrowhead matrix: dense first row/column plus a graded diagonal."""
    diag = np.linspace(1.0, float(rng.uniform(5.0, 50.0)), n)
    coupling = rng.uniform(0.1, 1.0, n - 1)
    rows = list(range(n)) + list(range(1, n)) + [0] * (n - 1)
    cols = list(range(n)) + [0] * (n - 1) + list(range(1, n))
    vals = list(diag) + list(coupling) + list(coupling)
    return COOMatrix(rows, cols, vals, (n, n)).tocsr()


def _tridiagonal_toeplitz(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Tridiagonal Toeplitz matrix (known, well-separated spectrum)."""
    a = float(rng.uniform(1.0, 4.0))
    b = float(rng.uniform(0.2, 1.0))
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        vals.append(a)
        if i + 1 < n:
            rows += [i, i + 1]
            cols += [i + 1, i]
            vals += [b, b]
    return COOMatrix(rows, cols, vals, (n, n)).tocsr()


def _clustered_spectrum(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Nearly block-diagonal matrix with tightly clustered eigenvalues.

    Clusters of close eigenvalues are the motivation for the paper's
    eigenvalue-buffer / Hungarian-matching machinery: tiny perturbations
    reorder them between precisions.
    """
    n_clusters = max(2, n // 8)
    centers = rng.uniform(1.0, 10.0, n_clusters)
    diag = np.empty(n)
    for i in range(n):
        c = centers[i % n_clusters]
        diag[i] = c * (1.0 + 1e-6 * rng.standard_normal())
    rows = list(range(n))
    cols = list(range(n))
    vals = list(diag)
    for i in range(n - 1):
        v = 1e-4 * rng.standard_normal()
        rows += [i, i + 1]
        cols += [i + 1, i]
        vals += [v, v]
    return COOMatrix(rows, cols, vals, (n, n)).tocsr()


def _scaled_stencil(n: int, rng: np.random.Generator) -> CSRMatrix:
    """Ill-conditioned matrix: D L D with L a stencil and D a graded diagonal."""
    base = _laplacian_2d(n, rng)
    m = base.shape[0]
    span = float(rng.uniform(2.0, 6.0))
    d = 10.0 ** np.linspace(-span / 2, span / 2, m)
    coo = base.tocoo()
    vals = coo.values * d[coo.rows] * d[coo.cols]
    return COOMatrix(coo.rows, coo.cols, vals, base.shape).tocsr()


#: family name -> generator(n, rng) -> CSRMatrix
GENERAL_FAMILIES: dict[str, callable] = {
    "banded_geometric": _banded_geometric,
    "laplacian_2d": _laplacian_2d,
    "random_symmetric": _random_symmetric,
    "spd_gram": _spd_gram,
    "wide_dynamic_range": _wide_dynamic_range,
    "arrowhead": _arrowhead,
    "tridiagonal_toeplitz": _tridiagonal_toeplitz,
    "clustered_spectrum": _clustered_spectrum,
    "scaled_stencil": _scaled_stencil,
}


def suitesparse_like(
    count: int = 302,
    size_range: tuple[int, int] = (24, 400),
    max_nnz: int = 20000,
    seed: int = 0,
) -> list[TestMatrix]:
    """Generate the synthetic "general symmetric matrices" suite.

    Parameters
    ----------
    count:
        Number of matrices (the paper uses 302).
    size_range:
        Inclusive range of matrix orders to draw from.
    max_nnz:
        Matrices exceeding this non-zero count are regenerated smaller
        (mirrors the paper's 20 000-non-zero cut-off).
    seed:
        Base seed; the suite is fully deterministic.

    Returns
    -------
    list[TestMatrix]
        Matrices tagged with ``group="general"`` and their family name.
    """
    families = list(GENERAL_FAMILIES)
    suite: list[TestMatrix] = []
    for index in range(count):
        family = families[index % len(families)]
        rng = np.random.default_rng([seed, index])
        n = int(rng.integers(size_range[0], size_range[1] + 1))
        matrix = GENERAL_FAMILIES[family](n, rng)
        while matrix.nnz > max_nnz and n > size_range[0]:
            n = max(size_range[0], n // 2)
            matrix = GENERAL_FAMILIES[family](n, rng)
        suite.append(
            TestMatrix(
                name=f"general/{family}_{index:04d}",
                matrix=matrix,
                group="general",
                category=family,
                kind="synthetic SuiteSparse-like symmetric matrix",
            )
        )
    return suite
