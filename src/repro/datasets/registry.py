"""Suite registry: look up the paper's workloads by name."""

from __future__ import annotations

from .graphs import graph_suite
from .suitesparse import suitesparse_like
from .testmatrix import CLASS_NAMES, TestMatrix

__all__ = ["available_suites", "get_suite"]

#: suite names understood by :func:`get_suite`
_SUITES = ("general",) + CLASS_NAMES + ("all-graphs",)


def available_suites() -> tuple[str, ...]:
    """Names accepted by :func:`get_suite`."""
    return _SUITES


def get_suite(name: str, **kwargs) -> list[TestMatrix]:
    """Build a workload suite by name.

    ``"general"`` maps to the SuiteSparse-like matrices (Figure 1),
    ``"biological"``/``"infrastructure"``/``"social"``/``"miscellaneous"`` to
    the corresponding graph-Laplacian classes (Figures 2-5) and
    ``"all-graphs"`` to the union of the four classes.  Keyword arguments are
    forwarded to the underlying generator (``count``, ``scale``,
    ``size_range``, ``seed``, ...).
    """
    if name == "general":
        return suitesparse_like(**kwargs)
    if name == "all-graphs":
        return graph_suite(classes="all", **kwargs)
    if name in CLASS_NAMES:
        return graph_suite(classes=name, **kwargs)
    raise KeyError(f"unknown suite {name!r}; available: {_SUITES}")
