"""Test-matrix metadata structure and the Table-1 category/class mapping."""

from __future__ import annotations

import dataclasses

import numpy as np

from ..sparse import CSRMatrix

__all__ = ["TestMatrix", "CATEGORY_TO_CLASS", "CLASS_NAMES", "classify_category"]


#: the four aggregate classes used throughout the paper's graph experiments
CLASS_NAMES: tuple[str, ...] = (
    "biological",
    "infrastructure",
    "social",
    "miscellaneous",
)

#: Table 1 of the paper: mapping of the 31 Network-Repository categories to
#: the four aggregate classes
CATEGORY_TO_CLASS: dict[str, str] = {
    # biological
    "bio": "biological",
    "eco": "biological",
    "protein": "biological",
    "bn": "biological",
    # infrastructure
    "inf": "infrastructure",
    "massive": "infrastructure",
    "power": "infrastructure",
    "road": "infrastructure",
    "tech": "infrastructure",
    "web": "infrastructure",
    # social
    "ca": "social",
    "cit": "social",
    "dynamic": "social",
    "econ": "social",
    "email": "social",
    "ia": "social",
    "proximity": "social",
    "rec": "social",
    "retweet_graphs": "social",
    "rt": "social",
    "soc": "social",
    "socfb": "social",
    "tscc": "social",
    # miscellaneous
    "dimacs": "miscellaneous",
    "dimacs10": "miscellaneous",
    "graph500": "miscellaneous",
    "heter": "miscellaneous",
    "labeled": "miscellaneous",
    "misc": "miscellaneous",
    "rand": "miscellaneous",
    "sc": "miscellaneous",
}


def classify_category(category: str) -> str:
    """Aggregate class of a Network-Repository category (Table 1)."""
    try:
        return CATEGORY_TO_CLASS[category]
    except KeyError:
        raise KeyError(
            f"unknown graph category {category!r}; known: {sorted(CATEGORY_TO_CLASS)}"
        ) from None


@dataclasses.dataclass
class TestMatrix:
    """A matrix under test plus its metadata (MuFoLAB's ``TestMatrix``).

    (The leading ``Test`` mirrors MuFoLAB's naming; ``__test__ = False``
    keeps pytest from trying to collect it.)

    Attributes
    ----------
    name:
        Unique identifier (``"<category>/<name>"`` for graphs).
    matrix:
        The symmetric CSR matrix the experiments run on (for graphs this is
        already the symmetrically normalised Laplacian).
    group:
        Collection the matrix belongs to: ``"general"`` for the
        SuiteSparse-like suite or one of :data:`CLASS_NAMES` for graphs.
    category:
        Fine-grained category (synthetic family name or graph category).
    kind:
        Free-form description of the generator / matrix kind.
    """

    __test__ = False  # not a pytest test class

    name: str
    matrix: CSRMatrix
    group: str
    category: str = ""
    kind: str = ""

    @property
    def n(self) -> int:
        """Matrix order."""
        return self.matrix.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return self.matrix.nnz

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        return self.matrix.is_symmetric(tol=tol)

    def dynamic_range(self) -> float:
        """Ratio of the largest to the smallest non-zero entry magnitude."""
        lo = self.matrix.min_abs_nonzero()
        hi = self.matrix.max_abs()
        if lo == 0.0:
            return np.inf if hi > 0 else 1.0
        return hi / lo

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<TestMatrix {self.name!r} group={self.group} n={self.n} nnz={self.nnz}>"
        )
