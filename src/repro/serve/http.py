"""Minimal asyncio HTTP/1.1 layer for the spectral-analysis service.

No new runtime dependency: requests are parsed straight off the
``asyncio.StreamReader`` and responses rendered to bytes.  The subset is
exactly what the service needs — ``GET``/``POST``, query strings, JSON
bodies bounded by ``Content-Length``, and HTTP/1.1 keep-alive (one
connection serves many requests; ``Connection: close`` or EOF ends it).
Chunked transfer encoding and HTTP/1.0 pipelining niceties are deliberately
out of scope; a request using them gets a clean 4xx instead of undefined
behaviour.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import urllib.parse
from typing import Awaitable, Callable, Optional

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "AsyncHTTPServer",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
]

#: request line + headers larger than this are rejected with 431
MAX_HEADER_BYTES = 16 * 1024
#: bodies larger than this are rejected with 413 (cell requests are tiny)
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """Handler-raised error rendered as a JSON error response."""

    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        super().__init__(f"{status}: {message}")

    def to_response(self) -> "Response":
        """The JSON error document for this failure."""
        return Response.json_document(
            {"error": self.message, "status": self.status},
            status=self.status,
            headers=self.headers,
        )


@dataclasses.dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    def json(self) -> dict:
        """The JSON object in the body (400 on anything else)."""
        if not self.body:
            return {}
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HTTPError(400, "request body is not valid JSON") from None
        if not isinstance(document, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return document

    @property
    def wants_close(self) -> bool:
        """Whether the client asked to drop the connection after this reply."""
        return self.headers.get("connection", "").lower() == "close"


@dataclasses.dataclass
class Response:
    """One response: status, body bytes, content type, extra headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = dataclasses.field(default_factory=dict)

    @classmethod
    def json_document(
        cls, document, status: int = 200, headers: Optional[dict] = None
    ) -> "Response":
        """JSON-serialise ``document`` (sorted keys for stable output)."""
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def raw_json(cls, body: bytes, status: int = 200, headers: Optional[dict] = None) -> "Response":
        """Pre-serialised JSON bytes, passed through untouched.

        The warm serving path uses this so the response body is
        byte-identical to the stored payload.
        """
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def text(cls, content: str, status: int = 200) -> "Response":
        return cls(status=status, body=content.encode("utf-8"), content_type="text/plain")

    def render(self, keep_alive: bool) -> bytes:
        """Serialise the full HTTP/1.1 response to wire bytes."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HTTPError` for malformed or unsupported requests — the
    connection loop replies and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests (keep-alive teardown)
        raise HTTPError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes") from None
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")[:-2]
    except ValueError:
        raise HTTPError(400, "malformed request head") from None
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts
    if method not in ("GET", "POST", "HEAD"):
        raise HTTPError(501, f"method {method} not implemented")

    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(501, "chunked transfer encoding not supported")

    parsed = urllib.parse.urlsplit(target)
    query = {k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query, keep_blank_values=True).items()}

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HTTPError(400, "truncated request body") from None

    return Request(
        method=method,
        path=urllib.parse.unquote(parsed.path),
        query=query,
        headers=headers,
        body=body,
    )


class AsyncHTTPServer:
    """Keep-alive HTTP/1.1 server dispatching to one async handler.

    The handler receives a :class:`Request` and returns a :class:`Response`;
    raising :class:`HTTPError` produces the corresponding error reply, any
    other exception a 500.  One connection serves requests sequentially
    until EOF, ``Connection: close``, a protocol error, or the idle timeout.
    """

    def __init__(
        self,
        handler: Callable[[Request], Awaitable[Response]],
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: float = 60.0,
    ):
        self.handler = handler
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting connections (updates ``port`` when 0)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=MAX_HEADER_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting connections and tear down the live ones."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader), timeout=self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: just drop it
                except HTTPError as exc:
                    writer.write(exc.to_response().render(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    response = await self.handler(request)
                except HTTPError as exc:
                    response = exc.to_response()
                except Exception as exc:  # handler bug: report, keep serving
                    response = Response.json_document(
                        {"error": f"internal error: {type(exc).__name__}: {exc}", "status": 500},
                        status=500,
                    )
                keep_alive = not request.wants_close
                if request.method == "HEAD":
                    response = dataclasses.replace(response, body=b"")
                writer.write(response.render(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away or server shutting down
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
