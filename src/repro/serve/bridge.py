"""Worker bridge: cold cells onto a bounded pool via the plan/execute engine.

A cold request becomes one ``solve_cell`` task: re-plan the single
(matrix, format) cell against the store (another replica may have committed
it meanwhile — then nothing executes) and run :func:`execute_plan` with the
store attached, so the record and the per-matrix reference commit through
the same atomic path as a batch run.  With the default ``"process"`` pool
the task runs in a forked worker that opens its own handle onto the store
directory; with a ``"thread"`` pool (unit tests, in-memory
:class:`~repro.experiments.store.DictBackend`) it shares the service's
store object.

Admission control is the whole point of the bridge: the underlying
:class:`~repro.utils.parallel.BoundedPool` accepts at most
``workers + queue_limit`` unfinished solves and raises
:class:`~repro.utils.parallel.PoolSaturatedError` beyond that.  The service
maps that to ``503`` + ``Retry-After`` — an overloaded replica degrades
into fast rejections with an honest backoff hint instead of an unbounded
queue.
"""

from __future__ import annotations

import asyncio
import collections
import math
import time
from typing import Callable, Optional

from ..datasets.testmatrix import TestMatrix
from ..experiments.config import ExperimentConfig
from ..experiments.store import ExecutionReport, LocalDirBackend, ResultStore
from ..telemetry import core as _telemetry
from ..telemetry.metrics import metrics as _metrics
from ..utils.parallel import BoundedPool, PoolSaturatedError

__all__ = ["solve_cell", "solve_cells", "WorkerBridge"]


def solve_cell(
    store: ResultStore,
    test_matrix: TestMatrix,
    format_name: str,
    config: ExperimentConfig,
) -> ExecutionReport:
    """Solve one (matrix, format) cell through the plan/execute engine.

    Planning subtracts anything the store already holds (a racing replica
    may have won), execution commits the record and the per-matrix reference
    atomically as they land.  Returns the execution report; the caller reads
    the committed payload back from the store.
    """
    from ..experiments.store import execute_plan, plan_experiment

    plan = plan_experiment([test_matrix], [format_name], config, store=store, use_cache=True)
    result = execute_plan(plan, workers=1)
    return result.report


def solve_cells(
    store: ResultStore,
    test_matrix: TestMatrix,
    format_names: list[str],
    config: ExperimentConfig,
) -> ExecutionReport:
    """Solve several formats of one matrix as a single lockstep batch.

    Planning still subtracts store hits, so cells a racing replica committed
    meanwhile drop out of the batch before it runs; whatever remains becomes
    one shard solved by the batched engine (``batch_formats=True``).  Cache
    keys and payloads are identical to the per-cell path — the batched
    trajectories are bit-for-bit those of the sequential engine.
    """
    from ..experiments.store import execute_plan, plan_experiment

    plan = plan_experiment(
        [test_matrix],
        list(format_names),
        config,
        store=store,
        use_cache=True,
        batch_formats=True,
    )
    result = execute_plan(plan, workers=1)
    return result.report


def _solve_cell_local(
    root: str, test_matrix: TestMatrix, format_name: str, config: ExperimentConfig
) -> ExecutionReport:
    """Process-pool entry point: open the store by path in the worker."""
    return solve_cell(ResultStore(root), test_matrix, format_name, config)


def _solve_cells_local(
    root: str, test_matrix: TestMatrix, format_names: list[str], config: ExperimentConfig
) -> ExecutionReport:
    """Process-pool entry point for a format batch."""
    return solve_cells(ResultStore(root), test_matrix, format_names, config)


def _solve_cells_via(
    solve_fn: Callable,
    store: ResultStore,
    test_matrix: TestMatrix,
    format_names: list[str],
    config: ExperimentConfig,
):
    """Drive an injected per-cell ``solve_fn`` over a format batch.

    Test doubles provide the single-cell signature; inside the one pool slot
    the batch occupies we just iterate them, preserving whatever gating or
    counting the double implements.  Returns the last report.
    """
    report = None
    for format_name in format_names:
        report = solve_fn(store, test_matrix, format_name, config)
    return report


class WorkerBridge:
    """Submits cold-cell solves onto a bounded worker pool.

    Parameters
    ----------
    store:
        The service's result store.  A ``"process"`` pool requires a
        :class:`~repro.experiments.store.LocalDirBackend` store (workers
        re-open it by path); any backend works with a ``"thread"`` pool.
    workers:
        Concurrent solve slots (``<= 0``: all CPUs).
    queue_limit:
        Admitted-but-not-running solves beyond the slots; submissions past
        ``workers + queue_limit`` raise
        :class:`~repro.utils.parallel.PoolSaturatedError`.
    kind:
        ``"process"`` (default) or ``"thread"`` — see
        :class:`~repro.utils.parallel.BoundedPool`.
    solve_fn:
        Override of :func:`solve_cell` with the same
        ``(store, matrix, format, config)`` signature.  Tests inject gated
        or counting solvers here; ``None`` uses the real engine.
    """

    #: completed-solve durations kept for the Retry-After estimate
    _DURATION_WINDOW = 32
    #: Retry-After clamp (seconds): never tell a client "0", never park it
    #: for more than a minute
    MIN_RETRY_AFTER = 1
    MAX_RETRY_AFTER = 60

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        queue_limit: int = 8,
        kind: str = "process",
        solve_fn: Optional[Callable] = None,
    ):
        if kind == "process" and solve_fn is None and not isinstance(
            store.backend, LocalDirBackend
        ):
            raise ValueError(
                "a process pool needs a local-dir store (workers re-open it by "
                "path); use kind='thread' for in-memory backends"
            )
        self.store = store
        self.kind = kind
        self.solve_fn = solve_fn
        self.pool = BoundedPool(workers=workers, queue_limit=queue_limit, kind=kind)
        self._durations: collections.deque[float] = collections.deque(maxlen=self._DURATION_WINDOW)

    @property
    def depth(self) -> int:
        """Solves currently admitted (running + queued)."""
        return self.pool.depth

    @property
    def capacity(self) -> int:
        return self.pool.capacity

    def submit(
        self, test_matrix: TestMatrix, format_name: str, config: ExperimentConfig
    ) -> asyncio.Future:
        """Submit one cold cell; returns an awaitable for its report.

        Raises :class:`~repro.utils.parallel.PoolSaturatedError` when the
        pool is full — the caller turns that into 503 + ``Retry-After``.
        """
        if self.solve_fn is not None:
            future = self.pool.submit(self.solve_fn, self.store, test_matrix, format_name, config)
        elif self.kind == "process":
            future = self.pool.submit(
                _solve_cell_local, str(self.store.root), test_matrix, format_name, config
            )
        else:
            future = self.pool.submit(solve_cell, self.store, test_matrix, format_name, config)
        submitted = time.perf_counter()
        if _telemetry.ENABLED:
            _metrics.counter("serve.solves").inc()
            _metrics.gauge("serve.queue_depth").set(self.depth)

        def _done(completed_future) -> None:
            self._record_completion(completed_future, submitted)

        future.add_done_callback(_done)
        return asyncio.wrap_future(future)

    def submit_batch(
        self, test_matrix: TestMatrix, format_names: list[str], config: ExperimentConfig
    ) -> asyncio.Future:
        """Submit several formats of one matrix as one batched solve.

        The whole batch occupies a single pool slot (it is one lockstep
        sweep, not N independent solves), so a format batch is admitted or
        rejected as a unit; saturation raises
        :class:`~repro.utils.parallel.PoolSaturatedError` like :meth:`submit`.
        """
        formats = list(format_names)
        if self.solve_fn is not None:
            future = self.pool.submit(
                _solve_cells_via, self.solve_fn, self.store, test_matrix, formats, config
            )
        elif self.kind == "process":
            future = self.pool.submit(
                _solve_cells_local, str(self.store.root), test_matrix, formats, config
            )
        else:
            future = self.pool.submit(solve_cells, self.store, test_matrix, formats, config)
        submitted = time.perf_counter()
        if _telemetry.ENABLED:
            _metrics.counter("serve.solves").inc()
            _metrics.counter("serve.batch_cells").inc(len(formats))
            _metrics.gauge("serve.queue_depth").set(self.depth)

        def _done(completed_future) -> None:
            self._record_completion(completed_future, submitted)

        future.add_done_callback(_done)
        return asyncio.wrap_future(future)

    def _record_completion(self, future, submitted: float) -> None:
        total = time.perf_counter() - submitted
        seconds = total
        try:
            report = future.result()
            if isinstance(report, ExecutionReport) and report.wall_seconds > 0.0:
                seconds = report.wall_seconds  # execution time without queue wait
        except BaseException:
            pass  # crashed/cancelled solves still inform the estimate via `total`
        self._durations.append(seconds)
        if _telemetry.ENABLED:
            _metrics.histogram("serve.solve_seconds").observe(total)
            _metrics.gauge("serve.queue_depth").set(self.depth)

    def retry_after(self) -> int:
        """Honest back-off hint (seconds) for a rejected request.

        Estimates when the next slot frees: the average recent solve time
        times the number of queued-task "rounds" ahead of a new arrival,
        clamped to [:data:`MIN_RETRY_AFTER`, :data:`MAX_RETRY_AFTER`].
        Before any solve completed the floor is returned.
        """
        if not self._durations:
            return self.MIN_RETRY_AFTER
        average = sum(self._durations) / len(self._durations)
        rounds = max(1, math.ceil(self.depth / max(1, self.pool.workers)))
        estimate = math.ceil(average * rounds)
        return int(min(self.MAX_RETRY_AFTER, max(self.MIN_RETRY_AFTER, estimate)))

    def shutdown(self) -> None:
        """Stop the pool (queued, unstarted solves are cancelled)."""
        self.pool.shutdown(wait=True)


# re-exported for callers that handle saturation explicitly
PoolSaturatedError = PoolSaturatedError
