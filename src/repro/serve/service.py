"""The spectral-analysis service: routes, coalescing policy, lifecycle.

:class:`SpectralService` ties the serve layer together: an
:class:`~repro.serve.http.AsyncHTTPServer` dispatching into a route table, a
:class:`~repro.serve.coalesce.RequestCoalescer` making concurrent identical
cold requests cost one solve, and a :class:`~repro.serve.bridge.WorkerBridge`
running those solves on a bounded pool.  A request names a **cell**: a matrix
(by suite name or content fingerprint), a number format, and optional config
overrides; the response is the stored
:class:`~repro.experiments.runner.RunRecord` payload — byte-identical to the
store entry on the warm path.

Request flow for ``/v1/cell`` (the order matters — see
:mod:`repro.serve.coalesce` for why the first three steps must not be
separated by an ``await``):

1. resolve matrix/format/config, derive the cell's ``task_key``;
2. if that key is already in flight, **join** it (no store access at all);
3. otherwise probe the store — a hit is served straight from the payload
   bytes;
4. otherwise **lead**: register the in-flight future, submit the solve to
   the bridge (full pool ⇒ ``503`` + ``Retry-After``), read the committed
   payload back, and resolve the future for every joiner.

``POST /v1/cells`` is the batched variant — one matrix, many formats.  Warm
cells come straight from the store, in-flight cells are joined, and the cold
remainder is submitted to the bridge as **one** lockstep batched solve (the
format axis of :func:`repro.core.lockstep.batched_partialschur`), each cold
cell registered with the coalescer so concurrent single-cell requests join
the batch.  The response carries per-cell statuses; records are bit-identical
to the sequential per-cell path, so both routes share one store.

Lifecycle helpers: :class:`ServiceThread` runs a service on a dedicated
event-loop thread (tests, benchmarks, smoke scripts) and
:func:`run_service` blocks the calling thread until SIGINT/SIGTERM (the CLI
``serve`` subcommand).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from typing import Optional

from ..arithmetic.registry import available_formats, get_format, preload_tables
from ..datasets.testmatrix import TestMatrix
from ..experiments.config import ExperimentConfig
from ..experiments.store import ResultStore, matrix_fingerprint, task_key
from ..telemetry import core as _telemetry
from ..telemetry import trace as _trace
from ..telemetry.metrics import metrics as _metrics
from ..telemetry.report import render_prometheus
from ..utils.parallel import PoolSaturatedError
from .bridge import WorkerBridge
from .coalesce import RequestCoalescer
from .http import AsyncHTTPServer, HTTPError, Request, Response

__all__ = ["SpectralService", "ServiceThread", "run_service", "CONFIG_OVERRIDES"]

#: config fields a request may override (anything else is a 400); the rest of
#: :class:`~repro.experiments.config.ExperimentConfig` shapes the store
#: schema or the reference solve and stays operator-controlled
CONFIG_OVERRIDES = {
    "eigenvalue_count": int,
    "eigenvalue_buffer_count": int,
    "which": str,
    "restarts": int,
    "maxdim": int,
    "seed": int,
    "eps_floor": bool,
    "accumulation": str,
}

_TRUE_STRINGS = {"1", "true", "yes", "on"}
_FALSE_STRINGS = {"0", "false", "no", "off"}


def _coerce_override(name: str, value, kind) -> object:
    """Parse one override value (query strings arrive as text)."""
    if name == "maxdim" and (value is None or value == "" or value == "none"):
        return None
    if kind is bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in _TRUE_STRINGS:
            return True
        if isinstance(value, str) and value.lower() in _FALSE_STRINGS:
            return False
        raise HTTPError(400, f"config field {name!r} expects a boolean, got {value!r}")
    if kind is int:
        if isinstance(value, bool):
            raise HTTPError(400, f"config field {name!r} expects an integer, got {value!r}")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise HTTPError(400, f"config field {name!r} expects an integer, got {value!r}") from None
    if not isinstance(value, str):
        raise HTTPError(400, f"config field {name!r} expects a string, got {value!r}")
    return value


def apply_config_overrides(config: ExperimentConfig, overrides: dict) -> ExperimentConfig:
    """A copy of ``config`` with the whitelisted ``overrides`` applied.

    Raises :class:`~repro.serve.http.HTTPError` (400) for unknown fields or
    unparseable values, so route handlers can pass request input straight in.
    """
    if not overrides:
        return config
    fields = {}
    for name, value in overrides.items():
        kind = CONFIG_OVERRIDES.get(name)
        if kind is None:
            raise HTTPError(
                400,
                f"config field {name!r} cannot be overridden; "
                f"allowed: {sorted(CONFIG_OVERRIDES)}",
            )
        fields[name] = _coerce_override(name, value, kind)
    if "accumulation" in fields and fields["accumulation"] not in ("pairwise", "sequential"):
        raise HTTPError(400, "config field 'accumulation' must be 'pairwise' or 'sequential'")
    return dataclasses.replace(config, **fields)


class SpectralService:
    """One serving replica over a suite, a store, and a worker pool.

    Parameters
    ----------
    store:
        The :class:`~repro.experiments.store.ResultStore` to serve from and
        commit cold solves into.
    suite:
        The test matrices this replica can solve, indexed by name and by
        content fingerprint at construction time.
    formats:
        Format names to accept and preload tables for (``None``: every
        registered format).
    config:
        Baseline :class:`~repro.experiments.config.ExperimentConfig`;
        request overrides are applied on top per request.
    workers / queue_limit / pool_kind / solve_fn:
        Forwarded to :class:`~repro.serve.bridge.WorkerBridge`.
    preload:
        Build the per-format rounding tables during :meth:`start` so forked
        solver workers inherit them copy-on-write.
    """

    def __init__(
        self,
        store: ResultStore,
        suite: list[TestMatrix],
        formats: Optional[list[str]] = None,
        config: Optional[ExperimentConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        queue_limit: int = 8,
        pool_kind: str = "process",
        solve_fn=None,
        preload: bool = True,
        idle_timeout: float = 60.0,
    ):
        self.store = store
        self.suite = list(suite)
        self.formats = list(formats) if formats is not None else available_formats()
        for name in self.formats:
            get_format(name)  # fail fast on typos, before the socket opens
        self.config = config if config is not None else ExperimentConfig()
        self.preload = preload
        self.coalescer = RequestCoalescer()
        self.bridge = WorkerBridge(
            store, workers=workers, queue_limit=queue_limit, kind=pool_kind, solve_fn=solve_fn
        )
        self.server = AsyncHTTPServer(
            self.handle_request, host=host, port=port, idle_timeout=idle_timeout
        )
        self._by_name: dict[str, TestMatrix] = {}
        self._fingerprints: dict[str, str] = {}  # matrix name -> fingerprint
        self._by_fingerprint: dict[str, TestMatrix] = {}
        for tm in self.suite:
            fingerprint = matrix_fingerprint(tm)
            self._by_name[tm.name] = tm
            self._fingerprints[tm.name] = fingerprint
            self._by_fingerprint[fingerprint] = tm
        self.preloaded_formats: list[str] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        """The bound port (updates from 0 once :meth:`start` ran)."""
        return self.server.port

    async def start(self) -> None:
        """Preload tables and start accepting connections."""
        if self.preload:
            self.preloaded_formats = preload_tables(self.formats)
        await self.server.start()

    async def stop(self) -> None:
        """Stop accepting, drain running solves, release in-flight waiters.

        Queued-but-unstarted solves are cancelled; their leaders observe the
        cancellation and resolve every joiner with a 503 body, so no request
        is left hanging.
        """
        await self.server.stop()
        await asyncio.get_running_loop().run_in_executor(None, self.bridge.shutdown)

    # -- request dispatch --------------------------------------------------

    _ROUTES = {
        "/healthz": "healthz",
        "/metrics": "metrics",
        "/v1/matrices": "matrices",
        "/v1/formats": "formats",
        "/v1/cell": "cell",
        "/v1/cells": "cells",
        "/v1/warmup": "warmup",
    }

    async def handle_request(self, request: Request) -> Response:
        """Route one request; every path is counted, timed, and traced."""
        route = self._ROUTES.get(request.path, "other")
        t0_wall = time.time()
        t0 = time.perf_counter()
        status = 500
        source = "none"
        try:
            response = await self._dispatch(route, request)
            status = response.status
            source = response.headers.get("X-Repro-Source", "none")
            return response
        except HTTPError as exc:
            status = exc.status
            raise
        finally:
            duration = time.perf_counter() - t0
            if _telemetry.ENABLED:
                _metrics.counter("serve.requests", route=route, status=str(status)).inc()
                _metrics.histogram("serve.request_seconds", source=source).observe(duration)
                _trace.emit(
                    "serve.request",
                    t0_wall,
                    duration,
                    error=status >= 500,
                    route=route,
                    status=status,
                )

    async def _dispatch(self, route: str, request: Request) -> Response:
        if route == "other":
            raise HTTPError(404, f"no route for {request.path!r}")
        if route == "cell":
            if request.method not in ("GET", "POST", "HEAD"):
                raise HTTPError(405, "cell supports GET and POST")
            return await self._handle_cell(request)
        if route == "cells":
            if request.method != "POST":
                raise HTTPError(405, "cells supports POST only")
            return await self._handle_cells(request)
        if route == "warmup":
            if request.method != "POST":
                raise HTTPError(405, "warmup supports POST only")
            return self._handle_warmup(request)
        if request.method not in ("GET", "HEAD"):
            raise HTTPError(405, f"{request.path} supports GET only")
        if route == "healthz":
            return self._handle_healthz()
        if route == "metrics":
            return self._handle_metrics(request)
        if route == "matrices":
            return self._handle_matrices()
        return self._handle_formats()

    # -- simple routes -----------------------------------------------------

    def _handle_healthz(self) -> Response:
        return Response.json_document(
            {
                "status": "ok",
                "matrices": len(self.suite),
                "formats": self.formats,
                "queue_depth": self.bridge.depth,
                "queue_capacity": self.bridge.capacity,
                "inflight_cells": self.coalescer.depth,
                "store": self.store.backend.location,
            }
        )

    def _handle_metrics(self, request: Request) -> Response:
        snapshot = _metrics.snapshot()
        if request.query.get("format") == "json":
            return Response.json_document(snapshot)
        return Response.text(render_prometheus(snapshot))

    def _handle_matrices(self) -> Response:
        rows = [
            {
                "name": tm.name,
                "fingerprint": self._fingerprints[tm.name],
                "group": tm.group,
                "category": tm.category,
                "kind": tm.kind,
                "n": int(tm.matrix.shape[0]),
            }
            for tm in self.suite
        ]
        return Response.json_document({"matrices": rows})

    def _handle_formats(self) -> Response:
        return Response.json_document(
            {"formats": self.formats, "preloaded": self.preloaded_formats}
        )

    def _handle_warmup(self, request: Request) -> Response:
        names = request.json().get("formats", self.formats)
        if not isinstance(names, list) or not all(isinstance(n, str) for n in names):
            raise HTTPError(400, "'formats' must be a list of format names")
        unknown = [n for n in names if n not in self.formats]
        if unknown:
            raise HTTPError(404, f"formats not served here: {unknown}")
        loaded = preload_tables(names)
        for name in loaded:
            if name not in self.preloaded_formats:
                self.preloaded_formats.append(name)
        return Response.json_document({"preloaded": loaded})

    # -- the cell route ----------------------------------------------------

    def _parse_cell_request(
        self, request: Request
    ) -> tuple[TestMatrix, str, ExperimentConfig, str]:
        """Resolve (matrix, format, config) and derive the cell's task key."""
        if request.method == "POST":
            body = request.json()
            matrix_ref = body.get("matrix")
            format_name = body.get("format")
            overrides = body.get("config", {})
            if overrides and not isinstance(overrides, dict):
                raise HTTPError(400, "'config' must be a JSON object of overrides")
        else:
            query = dict(request.query)
            matrix_ref = query.pop("matrix", None)
            format_name = query.pop("format", None)
            overrides = query  # any remaining query key is a config override
        if not matrix_ref or not isinstance(matrix_ref, str):
            raise HTTPError(400, "missing 'matrix' (suite name or content fingerprint)")
        if not format_name or not isinstance(format_name, str):
            raise HTTPError(400, "missing 'format'")
        tm = self._by_name.get(matrix_ref) or self._by_fingerprint.get(matrix_ref)
        if tm is None:
            raise HTTPError(404, f"matrix {matrix_ref!r} is not in this service's suite")
        if format_name not in self.formats:
            raise HTTPError(404, f"format {format_name!r} is not served here; see /v1/formats")
        config = apply_config_overrides(self.config, overrides)
        key = task_key(config, format_name, self._fingerprints[tm.name])
        return tm, format_name, config, key

    async def _handle_cell(self, request: Request) -> Response:
        tm, format_name, config, key = self._parse_cell_request(request)

        # Joiner path first: while a leader is solving this exact cell the
        # store has no entry yet, so probing it would just count a redundant
        # miss.  NOTE: no await between peek/begin and the bridge submit —
        # the check-then-register must be atomic on the event loop.
        if self.coalescer.peek(key) is not None:
            if _telemetry.ENABLED:
                _metrics.counter("serve.coalesced").inc()
            status, body = await self.coalescer.join(key)
            return Response.raw_json(
                body, status=status, headers={"X-Repro-Source": "coalesced", "X-Repro-Key": key}
            )

        payload = self.store.get(key)
        if payload is not None:
            # Warm path: the store wrote this payload with json.dump default
            # settings and preserved key order, so re-serialising reproduces
            # the stored bytes exactly (the byte-identity contract).
            return Response.raw_json(
                _payload_bytes(payload),
                headers={"X-Repro-Source": "store", "X-Repro-Key": key},
            )

        # Leader path: register the in-flight future, then submit.
        future = self.coalescer.begin(key)
        try:
            solve = self.bridge.submit(tm, format_name, config)
        except PoolSaturatedError as exc:
            self.coalescer.finish(key, result=None)  # no joiner can exist yet
            retry_after = self.bridge.retry_after()
            if _telemetry.ENABLED:
                _metrics.counter("serve.rejected", reason="saturated").inc()
            raise HTTPError(
                503,
                f"solver pool saturated ({exc.depth}/{exc.capacity} in flight); retry later",
                headers={"Retry-After": str(retry_after)},
            ) from None

        status, body = await self._lead_solve(key, solve, future)
        return Response.raw_json(
            body, status=status, headers={"X-Repro-Source": "computed", "X-Repro-Key": key}
        )

    async def _lead_solve(self, key: str, solve: asyncio.Future, future) -> tuple[int, bytes]:
        """Await the bridge solve and resolve every joiner with the outcome.

        The shared future always resolves to a ``(status, body)`` pair —
        never an exception — so a failed solve is reported identically to
        leader and joiners and no joiner is left with an unretrieved error.
        """
        try:
            report = await solve
        except asyncio.CancelledError:
            outcome = (
                503,
                _error_body("service shutting down before the solve started"),
            )
            self.coalescer.finish(key, result=outcome)
            return outcome
        except Exception as exc:  # worker crash / pickling failure
            outcome = (500, _error_body(f"solve crashed: {type(exc).__name__}: {exc}"))
            self.coalescer.finish(key, result=outcome)
            return outcome

        payload = self.store.get(key)
        if payload is None:
            # the engine records solver failures in the store, so a missing
            # payload after a "successful" execution means the shard crashed
            outcome = (
                500,
                _error_body("solve did not commit a record", report=report.to_dict()),
            )
        else:
            outcome = (200, _payload_bytes(payload))
        self.coalescer.finish(key, result=outcome)
        return outcome

    # -- the batch route ---------------------------------------------------

    def _parse_cells_request(
        self, request: Request
    ) -> tuple[TestMatrix, list[str], ExperimentConfig, list[str]]:
        """Resolve (matrix, formats, config) and derive one key per cell."""
        body = request.json()
        matrix_ref = body.get("matrix")
        format_names = body.get("formats")
        overrides = body.get("config", {})
        if overrides and not isinstance(overrides, dict):
            raise HTTPError(400, "'config' must be a JSON object of overrides")
        if not matrix_ref or not isinstance(matrix_ref, str):
            raise HTTPError(400, "missing 'matrix' (suite name or content fingerprint)")
        if (
            not isinstance(format_names, list)
            or not format_names
            or not all(isinstance(f, str) for f in format_names)
        ):
            raise HTTPError(400, "'formats' must be a non-empty list of format names")
        if len(set(format_names)) != len(format_names):
            raise HTTPError(400, "'formats' contains duplicates")
        tm = self._by_name.get(matrix_ref) or self._by_fingerprint.get(matrix_ref)
        if tm is None:
            raise HTTPError(404, f"matrix {matrix_ref!r} is not in this service's suite")
        unknown = [f for f in format_names if f not in self.formats]
        if unknown:
            raise HTTPError(404, f"formats not served here: {unknown}; see /v1/formats")
        config = apply_config_overrides(self.config, overrides)
        fingerprint = self._fingerprints[tm.name]
        keys = [task_key(config, f, fingerprint) for f in format_names]
        return tm, format_names, config, keys

    async def _handle_cells(self, request: Request) -> Response:
        """``POST /v1/cells``: many formats of one matrix, per-cell statuses.

        Warm cells are answered from the store, cells another request is
        already solving are joined, and the remaining cold cells go to the
        bridge as **one** lockstep batched solve (one pool slot).  Each cold
        cell is registered with the coalescer, so a concurrent ``/v1/cell``
        for the same key joins the batch instead of re-solving.  The response
        is 200 whenever the batch was admitted; each cell carries its own
        ``status``/``source`` (its record on 200, an ``error`` otherwise).
        """
        tm, formats, config, keys = self._parse_cells_request(request)

        # Partition synchronously — no await between peek/begin and the
        # bridge submit, same atomicity contract as the single-cell route.
        outcomes: dict[str, tuple[str, int, bytes]] = {}
        joined: list[tuple[str, asyncio.Future]] = []
        cold: list[tuple[str, str]] = []
        for fmt, key in zip(formats, keys):
            inflight = self.coalescer.peek(key)
            if inflight is not None:
                joined.append((fmt, inflight))
                continue
            payload = self.store.get(key)
            if payload is not None:
                outcomes[fmt] = ("store", 200, _payload_bytes(payload))
            else:
                cold.append((fmt, key))

        if joined and _telemetry.ENABLED:
            _metrics.counter("serve.coalesced").inc(len(joined))

        if cold:
            for _, key in cold:
                self.coalescer.begin(key)
            try:
                solve = self.bridge.submit_batch(tm, [f for f, _ in cold], config)
            except PoolSaturatedError as exc:
                for _, key in cold:
                    self.coalescer.finish(key, result=None)  # no joiner yet
                retry_after = self.bridge.retry_after()
                if _telemetry.ENABLED:
                    _metrics.counter("serve.rejected", reason="saturated").inc()
                raise HTTPError(
                    503,
                    f"solver pool saturated ({exc.depth}/{exc.capacity} in flight); "
                    "retry later",
                    headers={"Retry-After": str(retry_after)},
                ) from None
            outcomes.update(await self._lead_batch(cold, solve))

        if joined:
            # join concurrently: every pending join registers with the
            # coalescer immediately instead of one per resolved future
            shared = await asyncio.gather(
                *(self.coalescer.join_future(future) for _, future in joined)
            )
            for (fmt, _), (status, body) in zip(joined, shared):
                outcomes[fmt] = ("coalesced", status, body)

        cells = []
        for fmt, key in zip(formats, keys):
            source, status, body = outcomes[fmt]
            entry = {"format": fmt, "key": key, "status": status, "source": source}
            document = json.loads(body)
            if status == 200:
                entry["record"] = document
            else:
                entry["error"] = document.get("error", "solve failed")
            cells.append(entry)
        return Response.json_document(
            {"matrix": tm.name, "cells": cells},
            headers={"X-Repro-Source": "batched"},
        )

    async def _lead_batch(
        self, cold: list[tuple[str, str]], solve: asyncio.Future
    ) -> dict[str, tuple[str, int, bytes]]:
        """Await the batched solve; resolve every cold cell's future.

        Mirrors :meth:`_lead_solve` per cell: the shared futures always
        resolve to ``(status, body)`` pairs, and each cell's payload is read
        back from the store individually, so a partially failed batch still
        reports every cell honestly.
        """
        try:
            report = await solve
        except asyncio.CancelledError:
            failure = (503, _error_body("service shutting down before the solve started"))
        except Exception as exc:  # worker crash / pickling failure
            failure = (500, _error_body(f"solve crashed: {type(exc).__name__}: {exc}"))
        else:
            outcomes = {}
            for fmt, key in cold:
                payload = self.store.get(key)
                if payload is None:
                    outcome = (
                        500,
                        _error_body("solve did not commit a record", report=report.to_dict()),
                    )
                else:
                    outcome = (200, _payload_bytes(payload))
                self.coalescer.finish(key, result=outcome)
                outcomes[fmt] = ("computed",) + outcome
            return outcomes
        for _, key in cold:
            self.coalescer.finish(key, result=failure)
        return {fmt: ("computed",) + failure for fmt, _ in cold}


def _payload_bytes(payload: dict) -> bytes:
    """Serialise a stored payload back to its exact on-disk byte form."""
    return json.dumps(payload).encode("utf-8")


def _error_body(message: str, **extra) -> bytes:
    return json.dumps({"error": message, **extra}, sort_keys=True).encode("utf-8")


class ServiceThread:
    """Run a :class:`SpectralService` on a dedicated event-loop thread.

    The blocking client, benchmarks, and tests use this to talk to a live
    service from synchronous code::

        with ServiceThread(service) as base_url:
            client = ServeClient(base_url)
            ...
    """

    def __init__(self, service: SpectralService, startup_timeout: float = 30.0):
        self.service = service
        self.startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def start(self) -> str:
        """Start the loop thread and the service; returns the base URL."""
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
        self._thread.start()
        started.wait(self.startup_timeout)
        future = asyncio.run_coroutine_threadsafe(self.service.start(), self._loop)
        future.result(self.startup_timeout)
        return self.base_url

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the service and tear the loop thread down."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop)
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
            self._loop.close()
            self._loop = None
            self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_service(service: SpectralService) -> None:
    """Run ``service`` on this thread until SIGINT/SIGTERM (CLI entry)."""
    import signal

    async def _main() -> None:
        await service.start()
        print(f"repro serve: listening on http://{service.host}:{service.port}")
        print(
            f"  suite: {len(service.suite)} matrices, formats: {', '.join(service.formats)}"
        )
        print(f"  store: {service.store.backend.location}")
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or exotic platform: Ctrl-C still works
        try:
            await stop_event.wait()
        finally:
            print("repro serve: shutting down")
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
