"""Single-flight request coalescing keyed by store cache keys.

N concurrent requests for the same cold (matrix, format, config) cell must
cost exactly one solve: the first request (the *leader*) registers an
``asyncio.Future`` under the cell's ``task_key`` and submits the work; every
request that arrives while that future is pending (a *joiner*) awaits the
same future and shares the result.  The moment the leader resolves the
future the key is released — a later request for the same cell goes to the
store (now warm) instead.

The coalescer is event-loop-local state: ``peek``/``begin``/``finish`` are
plain synchronous methods, and the service calls them without an ``await``
in between, so the check-then-register sequence is atomic by virtue of the
single-threaded event loop (no locks needed — and none would help, since
holding one across an ``await`` is exactly the bug this design avoids).
"""

from __future__ import annotations

import asyncio
from typing import Optional

__all__ = ["RequestCoalescer"]


class RequestCoalescer:
    """In-flight futures keyed by cache key (single-flight per cell)."""

    def __init__(self):
        self._inflight: dict[str, asyncio.Future] = {}
        #: total joiners served from a leader's future (monotonic)
        self.coalesced_total = 0

    @property
    def depth(self) -> int:
        """Number of distinct cells currently in flight."""
        return len(self._inflight)

    def peek(self, key: str) -> Optional[asyncio.Future]:
        """The in-flight future under ``key``, if any (does not join)."""
        return self._inflight.get(key)

    def begin(self, key: str) -> asyncio.Future:
        """Register a new in-flight future under ``key`` (leader path).

        The caller must have checked :meth:`peek` first — beginning a key
        that is already in flight would strand the existing waiters.
        """
        if key in self._inflight:
            raise RuntimeError(f"cell {key!r} is already in flight")
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        return future

    async def join(self, key: str):
        """Await the in-flight result under ``key`` (joiner path)."""
        return await self.join_future(self._inflight[key])

    async def join_future(self, future: asyncio.Future):
        """Await a future captured earlier via :meth:`peek`.

        The batch route partitions its cells synchronously and may only get
        around to awaiting a joined cell after its leader finished — at which
        point the key is already released, so a key lookup would fail.  The
        future itself stays valid.
        """
        self.coalesced_total += 1
        # shield: one joiner's disconnect must not cancel the shared future
        return await asyncio.shield(future)

    def finish(self, key: str, result=None, error: Optional[BaseException] = None) -> None:
        """Resolve and release ``key`` (leader path; exactly once per begin)."""
        future = self._inflight.pop(key, None)
        if future is None or future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def abort_all(self, error: BaseException) -> None:
        """Fail every in-flight future (service shutdown)."""
        for key in list(self._inflight):
            self.finish(key, error=error)
