"""``repro.serve`` — an async spectral-analysis service over the store.

A zero-dependency (stdlib ``asyncio``) HTTP service that turns the
experiment store into a queryable API: a request names a **cell** — a test
matrix (by suite name or content fingerprint), a number format, and
optional config overrides — and receives the stored
:class:`~repro.experiments.runner.RunRecord` payload as JSON, byte-identical
to the store entry when the cell is warm.

The moving parts, each its own module:

* :mod:`~repro.serve.http` — minimal asyncio HTTP/1.1 (parse + render);
* :mod:`~repro.serve.coalesce` — single-flight coalescing: N concurrent
  identical cold requests cost exactly one solve;
* :mod:`~repro.serve.bridge` — cold cells onto a bounded worker pool via
  the plan/execute engine, with 503 + ``Retry-After`` when saturated;
* :mod:`~repro.serve.service` — routes, lifecycle, and the
  :class:`ServiceThread` / :func:`run_service` runners;
* :mod:`~repro.serve.client` — blocking stdlib client honouring the
  backpressure contract.

Start one from the CLI (``python -m repro.experiments.cli serve ...``) or
embed it::

    from repro.serve import ServiceThread, SpectralService, ServeClient

    service = SpectralService(store, suite, formats=["takum16"])
    with ServiceThread(service) as base_url:
        record = ServeClient(base_url).cell("ss_like_000", "takum16")

See ``docs/serving.md`` for the endpoint reference and operational notes.
"""

from .bridge import WorkerBridge, solve_cell
from .client import ServeClient, ServeError, ServiceUnavailable
from .coalesce import RequestCoalescer
from .http import AsyncHTTPServer, HTTPError, Request, Response
from .service import (
    CONFIG_OVERRIDES,
    ServiceThread,
    SpectralService,
    apply_config_overrides,
    run_service,
)

__all__ = [
    "AsyncHTTPServer",
    "HTTPError",
    "Request",
    "Response",
    "RequestCoalescer",
    "WorkerBridge",
    "solve_cell",
    "SpectralService",
    "ServiceThread",
    "run_service",
    "CONFIG_OVERRIDES",
    "apply_config_overrides",
    "ServeClient",
    "ServeError",
    "ServiceUnavailable",
]
