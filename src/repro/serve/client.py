"""Blocking HTTP client for the spectral-analysis service.

Stdlib-only (``http.client``), synchronous, and aware of the service's
backpressure contract: a ``503`` carries a ``Retry-After`` header with an
honest back-off estimate, and :meth:`ServeClient.cell` sleeps that long and
retries up to ``max_retries`` times before giving up with
:class:`ServiceUnavailable`.  Tests monkeypatch the module-level
:data:`sleep` hook to keep retry tests instant.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Optional

__all__ = ["ServeClient", "ServeError", "ServiceUnavailable"]

#: monkeypatchable sleep hook used between 503 retries
sleep = time.sleep


class ServeError(RuntimeError):
    """A non-retryable error response from the service."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceUnavailable(ServeError):
    """The service stayed saturated through every retry."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(503, message)
        self.retry_after = retry_after


class ServeClient:
    """Synchronous client bound to one service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running service.
    timeout:
        Socket timeout per request, in seconds.  Cold cells block until the
        solve finishes, so this bounds the slowest accepted solve.
    max_retries:
        How many times :meth:`cell` retries a ``503`` (honouring
        ``Retry-After``) before raising :class:`ServiceUnavailable`.
    """

    def __init__(self, base_url: str, timeout: float = 300.0, max_retries: int = 3):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"base_url must look like http://host:port, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.max_retries = max_retries

    # -- transport ---------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict, bytes]:
        """One HTTP round trip; returns (status, headers, body bytes)."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, {k.lower(): v for k, v in response.getheaders()}, data
        finally:
            connection.close()

    @staticmethod
    def _json(data: bytes) -> dict:
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {"error": data.decode("utf-8", "replace")}

    def _get_json(self, path: str) -> dict:
        status, _headers, data = self._request("GET", path)
        document = self._json(data)
        if status != 200:
            raise ServeError(status, str(document.get("error", data[:200])))
        return document

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def matrices(self) -> list[dict]:
        return self._get_json("/v1/matrices")["matrices"]

    def formats(self) -> dict:
        return self._get_json("/v1/formats")

    def metrics(self) -> dict:
        """The service's metrics-registry snapshot (JSON form)."""
        return self._get_json("/metrics?format=json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``/metrics``."""
        status, _headers, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, data.decode("utf-8", "replace")[:200])
        return data.decode("utf-8")

    def warmup(self, formats: Optional[list[str]] = None) -> list[str]:
        """Ask the service to preload rounding tables; returns loaded names."""
        body = {} if formats is None else {"formats": formats}
        status, _headers, data = self._request("POST", "/v1/warmup", body=body)
        document = self._json(data)
        if status != 200:
            raise ServeError(status, str(document.get("error", "warmup failed")))
        return document["preloaded"]

    def cell(
        self,
        matrix: str,
        format_name: str,
        config: Optional[dict] = None,
        raw: bool = False,
    ):
        """Fetch one cell's run record, retrying through saturation.

        Parameters
        ----------
        matrix:
            Suite matrix name or content fingerprint.
        format_name:
            Number format of the cell.
        config:
            Optional config overrides (see the service's whitelist).
        raw:
            Return ``(body_bytes, headers)`` instead of the parsed payload —
            the byte-identity tests compare these bytes against the store
            file directly.

        A ``503`` is retried ``max_retries`` times, sleeping the server's
        ``Retry-After`` hint in between; persistent saturation raises
        :class:`ServiceUnavailable`, any other non-200 raises
        :class:`ServeError`.
        """
        body = {"matrix": matrix, "format": format_name}
        if config:
            body["config"] = config
        retry_after = 1
        for attempt in range(self.max_retries + 1):
            status, headers, data = self._request("POST", "/v1/cell", body=body)
            if status == 503:
                retry_after = max(1, int(headers.get("retry-after", "1") or 1))
                if attempt < self.max_retries:
                    sleep(retry_after)
                continue
            if status != 200:
                raise ServeError(status, str(self._json(data).get("error", data[:200])))
            if raw:
                return data, headers
            return self._json(data)
        raise ServiceUnavailable(
            f"service still saturated after {self.max_retries} retries", retry_after
        )

    def cells(
        self,
        matrix: str,
        formats: list[str],
        config: Optional[dict] = None,
    ) -> dict:
        """Fetch many formats of one matrix in a single batched request.

        Cold cells are solved by the service as one lockstep batch; the
        response document has a ``cells`` list with one entry per requested
        format carrying its own ``status``/``source`` and, on 200, the
        stored ``record``.  Saturation (``503``) is retried like
        :meth:`cell`; any other non-200 raises :class:`ServeError`.
        """
        body: dict = {"matrix": matrix, "formats": list(formats)}
        if config:
            body["config"] = config
        retry_after = 1
        for attempt in range(self.max_retries + 1):
            status, headers, data = self._request("POST", "/v1/cells", body=body)
            if status == 503:
                retry_after = max(1, int(headers.get("retry-after", "1") or 1))
                if attempt < self.max_retries:
                    sleep(retry_after)
                continue
            if status != 200:
                raise ServeError(status, str(self._json(data).get("error", data[:200])))
            return self._json(data)
        raise ServiceUnavailable(
            f"service still saturated after {self.max_retries} retries", retry_after
        )
