"""Serving-layer benchmarks: warm latency and coalesced-cold throughput.

The service exists so warm cells are cheap: a warm ``/v1/cell`` round trip
is one store read plus JSON passthrough over a local socket, and must stay
in the low-millisecond range next to the multi-second cold solves.  The
cold benchmark measures the coalescing win directly — a burst of identical
requests against an empty store completes in one solve's wall time, not
N — on the same scaled-down Figure-1 style workload the other benchmarks
use.  Both write ``benchmarks/output/bench_serve.json`` (plus the generic
``bench_serve_times.json``) for the cross-PR perf trajectory.
"""

from __future__ import annotations

import asyncio
import json

from .conftest import bench_config, bench_size_range, write_json_report

from repro.datasets import suitesparse_like
from repro.experiments import DictBackend, ResultStore, run_experiment
from repro.serve import Request, ServeClient, ServiceThread, SpectralService

FORMAT = "takum16"
WARM_REQUESTS = 25
COLD_BURST = 16

_RESULTS: dict[str, dict] = {}


def _suite(count=2):
    return suitesparse_like(count=count, size_range=bench_size_range(), seed=12)


def _record_result(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    write_json_report(
        "bench_serve.json",
        {
            "benchmark": "serve",
            "format": FORMAT,
            "warm_requests": WARM_REQUESTS,
            "cold_burst": COLD_BURST,
            "results": dict(sorted(_RESULTS.items())),
        },
    )


def test_serve_warm_latency(benchmark, tmp_path):
    """Warm ``/v1/cell`` over a real socket: store read + JSON passthrough."""
    suite = _suite()
    config = bench_config()
    store = ResultStore(tmp_path / "store")
    cold = run_experiment(suite, [FORMAT], config, store=store)
    assert cold.report.executed == cold.report.planned

    service = SpectralService(
        store, suite, formats=[FORMAT], config=config, pool_kind="thread", preload=False
    )
    with ServiceThread(service) as base_url:
        client = ServeClient(base_url, timeout=30)

        def warm_round_trips():
            for tm in suite:
                for _ in range(WARM_REQUESTS // len(suite)):
                    body, headers = client.cell(tm.name, FORMAT, raw=True)
                    assert headers["x-repro-source"] == "store"
            return body

        body = benchmark.pedantic(warm_round_trips, rounds=5, iterations=1)
    service.bridge.shutdown()
    stats = benchmark.stats.stats
    requests_per_round = (WARM_REQUESTS // len(suite)) * len(suite)
    _record_result(
        "warm_latency",
        {
            "requests_per_round": requests_per_round,
            "mean_seconds_per_request": stats.mean / requests_per_round,
            "min_seconds_per_request": stats.min / requests_per_round,
            "payload_bytes": len(body),
        },
    )


def test_serve_coalesced_cold_throughput(benchmark):
    """A burst of identical cold requests completes in ~one solve's time.

    Each round gets a fresh in-memory store, so every round is genuinely
    cold; the requests run concurrently on one event loop against the
    service handler (no socket noise), exactly how joiners coalesce in
    production.
    """
    suite = _suite(count=1)
    config = bench_config()
    request_body = json.dumps({"matrix": suite[0].name, "format": FORMAT}).encode()
    state: dict = {}

    def fresh_service():
        state["service"] = SpectralService(
            ResultStore(backend=DictBackend()),
            suite,
            formats=[FORMAT],
            config=config,
            pool_kind="thread",
            workers=1,
            preload=False,
        )

    def cold_burst():
        service = state["service"]

        async def burst():
            tasks = [
                asyncio.create_task(
                    service.handle_request(
                        Request(
                            method="POST",
                            path="/v1/cell",
                            query={},
                            headers={},
                            body=request_body,
                        )
                    )
                )
                for _ in range(COLD_BURST)
            ]
            return await asyncio.gather(*tasks)

        responses = asyncio.run(burst())
        assert [r.status for r in responses] == [200] * COLD_BURST
        assert service.coalescer.coalesced_total == COLD_BURST - 1
        service.bridge.shutdown()
        return responses

    benchmark.pedantic(cold_burst, rounds=3, iterations=1, setup=fresh_service)
    stats = benchmark.stats.stats
    _record_result(
        "coalesced_cold_burst",
        {
            "burst_size": COLD_BURST,
            "mean_seconds_per_burst": stats.mean,
            "mean_seconds_per_request": stats.mean / COLD_BURST,
        },
    )
