"""Shared implementation of the per-figure benchmarks (Figures 1-5).

Each of the paper's result figures is one workload suite evaluated with all
formats of all four bit widths; the benchmark measures the wall-clock cost of
regenerating the figure and writes the regenerated cumulative-error report to
``benchmarks/output/``.
"""

from __future__ import annotations

import time

from repro.arithmetic.registry import PAPER_FORMATS
from repro.datasets import get_suite
from repro.experiments import figure_report, run_experiment
from repro.utils.parallel import default_workers

from .conftest import (
    bench_config,
    bench_matrix_count,
    bench_size_range,
    write_json_report,
    write_report,
)


def all_paper_formats() -> list[str]:
    return [name for width in (8, 16, 32, 64) for name in PAPER_FORMATS[width]]


def build_suite(suite_name: str, seed: int = 0):
    """Scaled-down workload for one figure."""
    count = bench_matrix_count()
    size_range = bench_size_range()
    if suite_name == "general":
        return get_suite("general", count=count, size_range=size_range, seed=seed)
    suite = get_suite(suite_name, scale=1.0e-2, size_range=size_range, seed=seed)
    return suite[:count]


def run_figure(benchmark, suite_name: str, figure_title: str, output_name: str):
    """Benchmark body shared by the five figure benchmarks.

    Writes the regenerated text report *and* a machine-readable JSON twin
    (wall time, suite/format/scale parameters, git rev, hostname) to
    ``benchmarks/output/`` so the perf trajectory is trackable across PRs.
    """
    suite = build_suite(suite_name)
    config = bench_config()
    formats = all_paper_formats()
    wall = {}

    def task():
        start = time.perf_counter()
        res = run_experiment(suite, formats, config, workers=default_workers())
        wall["seconds"] = time.perf_counter() - start
        return res

    result = benchmark.pedantic(task, rounds=1, iterations=1)
    report = figure_report(result.records, widths=(8, 16, 32, 64), title=figure_title)
    write_report(output_name, report)
    statuses: dict[str, int] = {}
    for record in result.records:
        statuses[record.status] = statuses.get(record.status, 0) + 1
    write_json_report(
        output_name.rsplit(".", 1)[0] + ".json",
        {
            "benchmark": output_name.rsplit(".", 1)[0],
            "suite": suite_name,
            "wall_seconds": round(wall["seconds"], 3),
            "matrices": len(suite),
            "size_range": list(bench_size_range()),
            "restarts": config.restarts,
            "formats": formats,
            "statuses": statuses,
        },
    )
    # sanity: the evaluation must have produced at least one evaluated run in
    # a wide format (the reference and float64 should essentially always work)
    ok_runs = [r for r in result.records if r.status == "ok"]
    assert ok_runs, "no evaluated runs — benchmark workload too aggressive"
    return result
