"""Ablation A: pairwise vs sequential accumulation in the emulated kernels.

The emulated dot products / sparse matrix-vector products round after every
elementary operation; the *order* of the additions is a design choice
(DESIGN.md).  This benchmark runs the 16-bit formats on a small general suite
with both orders and reports how the error distributions shift.
"""

import numpy as np

from repro.datasets import suitesparse_like
from repro.experiments import aggregate_by_format, run_experiment
from repro.utils import format_table

from .conftest import bench_config, bench_matrix_count, bench_size_range, write_report

FORMATS = ("bfloat16", "float16", "posit16", "takum16")


def _run(accumulation: str, suite):
    config = bench_config(accumulation=accumulation)
    return run_experiment(suite, FORMATS, config, workers=1)


def test_ablation_accumulation_order(benchmark):
    suite = suitesparse_like(
        count=max(2, bench_matrix_count() // 2), size_range=bench_size_range(), seed=5
    )

    results = {}

    def task():
        results["pairwise"] = _run("pairwise", suite)
        results["sequential"] = _run("sequential", suite)
        return results

    benchmark.pedantic(task, rounds=1, iterations=1)

    rows = []
    for mode, result in results.items():
        summaries = aggregate_by_format(result.records)
        for name in FORMATS:
            s = summaries[name]
            median = s.eigenvalue_percentiles[50]
            rows.append(
                [
                    mode,
                    name,
                    s.evaluated,
                    s.no_convergence,
                    f"{median:.3e}" if np.isfinite(median) else "n/a",
                ]
            )
    report = format_table(
        ["accumulation", "format", "ok", "inf_omega", "median lambda rel err"],
        rows,
        title="Ablation A: accumulation order of rounded reductions",
    )
    write_report("ablation_accumulation.txt", report)
    assert results["pairwise"].records and results["sequential"].records
