"""Figure 3: cumulative error distributions on infrastructure graph Laplacians."""

from ._figure_common import run_figure


def test_fig3_infrastructure_graphs(benchmark):
    run_figure(
        benchmark,
        suite_name="infrastructure",
        figure_title="Figure 3 — infrastructure graph Laplacians",
        output_name="fig3_infrastructure.txt",
    )
