"""Ablation B: the eigenvalue buffer of the matching procedure.

The paper computes two extra eigenpairs ("eigenvalue_buffer_count = 2") so
that clusters of close eigenvalues straddling the cut-off do not masquerade
as large eigenvector errors after matching.  This benchmark compares the
reported eigenvector errors with and without the buffer on a workload with
clustered spectra.
"""

import numpy as np

from repro.datasets import suitesparse_like
from repro.experiments import aggregate_by_format, run_experiment
from repro.utils import format_table

from .conftest import bench_config, bench_matrix_count, bench_size_range, write_report

FORMATS = ("float16", "takum16")


def test_ablation_eigenvalue_buffer(benchmark):
    # the clustered_spectrum family is the stress case for matching
    suite = [
        tm
        for tm in suitesparse_like(count=27, size_range=bench_size_range(), seed=2)
        if tm.category in ("clustered_spectrum", "tridiagonal_toeplitz", "laplacian_2d")
    ][: max(2, bench_matrix_count())]

    results = {}

    def task():
        for buffer_count in (0, 2):
            config = bench_config(eigenvalue_buffer_count=buffer_count)
            results[buffer_count] = run_experiment(suite, FORMATS, config, workers=1)
        return results

    benchmark.pedantic(task, rounds=1, iterations=1)

    rows = []
    for buffer_count, result in sorted(results.items()):
        summaries = aggregate_by_format(result.records)
        for name in FORMATS:
            s = summaries[name]
            vec_median = s.eigenvector_percentiles[50]
            rows.append(
                [
                    buffer_count,
                    name,
                    s.evaluated,
                    f"{vec_median:.3e}" if np.isfinite(vec_median) else "n/a",
                ]
            )
    report = format_table(
        ["buffer", "format", "ok", "median eigenvector rel err"],
        rows,
        title="Ablation B: eigenvalue buffer count (paper's matching trick)",
    )
    write_report("ablation_buffer.txt", report)
    assert results[0].records and results[2].records
