"""Figure 4: cumulative error distributions on social graph Laplacians."""

from ._figure_common import run_figure


def test_fig4_social_graphs(benchmark):
    run_figure(
        benchmark,
        suite_name="social",
        figure_title="Figure 4 — social graph Laplacians",
        output_name="fig4_social.txt",
    )
