"""Micro-benchmark: throughput of the software arithmetic emulation.

Not a paper figure, but the baseline cost model of the whole study: how
expensive one rounded elementary operation and one rounded sparse
matrix-vector product are per format.  Useful for sizing the figure
benchmarks and for spotting emulation regressions.
"""

import numpy as np
import pytest

from repro.arithmetic import get_context
from repro.datasets import suitesparse_like

FORMATS = ["float64", "bfloat16", "E4M3", "posit16", "takum16", "posit64", "takum64"]


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    return rng.standard_normal(4096), rng.standard_normal(4096)


@pytest.fixture(scope="module")
def sparse_matrix():
    return suitesparse_like(count=2, size_range=(180, 220), seed=1)[1].matrix


@pytest.mark.parametrize("fmt", FORMATS)
def test_rounded_elementwise_multiply(benchmark, fmt, vectors):
    ctx = get_context(fmt)
    x, y = (ctx.asarray(v) for v in vectors)
    benchmark(lambda: ctx.mul(x, y))


@pytest.mark.parametrize("fmt", FORMATS)
def test_rounded_dot_product(benchmark, fmt, vectors):
    ctx = get_context(fmt)
    x, y = (ctx.asarray(v) for v in vectors)
    benchmark(lambda: ctx.dot(x, y))


@pytest.mark.parametrize("fmt", ["float64", "bfloat16", "posit16", "takum16"])
def test_rounded_spmv(benchmark, fmt, sparse_matrix):
    ctx = get_context(fmt)
    converted, _ = ctx.convert_matrix(sparse_matrix)
    x = ctx.asarray(np.random.default_rng(3).standard_normal(sparse_matrix.shape[1]))
    benchmark(lambda: ctx.spmv(converted, x))
