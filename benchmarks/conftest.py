"""Shared configuration of the benchmark harness.

Every figure/table of the paper has one benchmark module.  The workloads are
scaled-down versions of the paper's populations (synthetic stand-ins; see
DESIGN.md) so the whole harness completes on a laptop in minutes; the scale
is controlled by environment variables:

``REPRO_BENCH_MATRICES``
    matrices per suite (default 4),
``REPRO_BENCH_MIN_SIZE`` / ``REPRO_BENCH_MAX_SIZE``
    matrix order range (default 24..40),
``REPRO_RESTARTS``
    Krylov-Schur restart budget per solve (default 25 for benchmarks).

Each benchmark writes its text report (the regenerated figure/table) to
``benchmarks/output/`` so it can be compared against the paper.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import time

import pytest

from repro.experiments import ExperimentConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_matrix_count(default: int = 4) -> int:
    return int(os.environ.get("REPRO_BENCH_MATRICES", default))


def bench_size_range() -> tuple[int, int]:
    lo = int(os.environ.get("REPRO_BENCH_MIN_SIZE", 24))
    hi = int(os.environ.get("REPRO_BENCH_MAX_SIZE", 40))
    return lo, hi


def bench_config(**overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(**overrides)
    cfg.restarts = int(os.environ.get("REPRO_RESTARTS", 25))
    return cfg


def write_report(name: str, text: str) -> pathlib.Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text, encoding="utf-8")
    return path


_METADATA_CACHE: dict | None = None


def bench_metadata() -> dict:
    """Machine-readable provenance stamped into every benchmark artifact.

    Captures what is needed to compare numbers across PRs and machines:
    the git revision, hostname, timestamp and the library versions the run
    used.  Git lookups are best-effort (the tree may be exported) and
    cached for the process — only the timestamp is refreshed per call.
    """
    global _METADATA_CACHE
    if _METADATA_CACHE is not None:
        return {**_METADATA_CACHE, "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z")}
    rev = None
    dirty = None
    try:
        root = pathlib.Path(__file__).parent.parent
        rev = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=5,
            ).stdout.strip()
            or None
        )
        dirty = bool(
            subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=5,
            ).stdout.strip()
        )
    except Exception:
        pass
    import numpy

    _METADATA_CACHE = {
        "git_rev": rev,
        "git_dirty": dirty,
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "env": {
            key: os.environ[key]
            for key in (
                "REPRO_BENCH_MATRICES",
                "REPRO_BENCH_MIN_SIZE",
                "REPRO_BENCH_MAX_SIZE",
                "REPRO_RESTARTS",
                "REPRO_WORKERS",
                "PYTHONHASHSEED",
                "REPRO_DISABLE_ROUNDING_TABLES",
                "REPRO_DISABLE_BITKERNELS",
            )
            if key in os.environ
        },
    }
    return _METADATA_CACHE


def write_json_report(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark artifact next to the text report.

    ``payload`` carries the benchmark-specific measurements (wall times,
    formats, scales); the shared provenance from :func:`bench_metadata` is
    merged under the ``"meta"`` key.  These are the ``benchmarks/output/
    *.json`` files the perf trajectory across PRs is tracked with.
    """
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    document = {"meta": bench_metadata(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def report_writer():
    """Fixture handing benchmarks the report writer."""
    return write_report


#: per-module wall-time accumulator backing the generic JSON artifacts
_MODULE_WALL_TIMES: dict[str, dict[str, float]] = {}


@pytest.fixture(autouse=True)
def _bench_json_artifact(request):
    """Every ``bench_*`` module gets a machine-readable artifact.

    Accumulates the wall time of each test into
    ``benchmarks/output/<module>_times.json`` (merged with the shared
    provenance metadata), so even the benchmarks whose reports are purely
    textual leave a trackable JSON trace.  Figure and micro benchmarks
    additionally write richer per-suite JSON documents of their own.
    """
    module = request.module.__name__.rsplit(".", 1)[-1]
    if not module.startswith("bench_"):
        yield
        return
    start = time.perf_counter()
    yield
    wall = time.perf_counter() - start
    times = _MODULE_WALL_TIMES.setdefault(module, {})
    times[request.node.name] = round(wall, 3)
    write_json_report(
        f"{module}_times.json",
        {"benchmark": module, "wall_seconds_by_test": dict(sorted(times.items()))},
    )
