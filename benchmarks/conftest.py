"""Shared configuration of the benchmark harness.

Every figure/table of the paper has one benchmark module.  The workloads are
scaled-down versions of the paper's populations (synthetic stand-ins; see
DESIGN.md) so the whole harness completes on a laptop in minutes; the scale
is controlled by environment variables:

``REPRO_BENCH_MATRICES``
    matrices per suite (default 4),
``REPRO_BENCH_MIN_SIZE`` / ``REPRO_BENCH_MAX_SIZE``
    matrix order range (default 24..40),
``REPRO_RESTARTS``
    Krylov-Schur restart budget per solve (default 25 for benchmarks).

Each benchmark writes its text report (the regenerated figure/table) to
``benchmarks/output/`` so it can be compared against the paper.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_matrix_count(default: int = 4) -> int:
    return int(os.environ.get("REPRO_BENCH_MATRICES", default))


def bench_size_range() -> tuple[int, int]:
    lo = int(os.environ.get("REPRO_BENCH_MIN_SIZE", 24))
    hi = int(os.environ.get("REPRO_BENCH_MAX_SIZE", 40))
    return lo, hi


def bench_config(**overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(**overrides)
    cfg.restarts = int(os.environ.get("REPRO_RESTARTS", 25))
    return cfg


def write_report(name: str, text: str) -> pathlib.Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text, encoding="utf-8")
    return path


@pytest.fixture
def report_writer():
    """Fixture handing benchmarks the report writer."""
    return write_report
