"""Micro-benchmark: telemetry overhead on the hot solver path.

The telemetry layer (:mod:`repro.telemetry`) promises to be effectively
free: disabled it must cost nothing but a module-attribute check per
instrumented site, and *enabled* (metrics + a configured trace sink) it must
stay within a small single-digit-percent budget on the scalar-dominated QL
iteration — the tightest loop any instrumented code path sits on
(``tridiagonal_eigen`` opens one span per call while every vector rounding
dispatch underneath increments labelled counters).

The measurement interleaves disabled and enabled runs per format and takes
the per-variant minima, exactly like the operator-API gate in
``bench_micro_solver.py``: machine noise only ever inflates the ratio, never
hides a real regression.

Smoke mode for CI::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --check

fails (exit code 1) if the aggregate enabled-vs-disabled overhead exceeds
2%.
"""

import tempfile
import time

if __package__ in (None, ""):
    # executed as a script (python benchmarks/bench_telemetry.py):
    # make src/ and the repo root importable
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    for _entry in (str(_root), str(_root / "src")):
        if _entry not in sys.path:
            sys.path.insert(0, _entry)

import numpy as np
import pytest

from repro.arithmetic import get_context
from repro.linalg.tridiagonal import tridiagonal_eigen
from repro.telemetry import metrics, set_enabled, trace

#: formats whose QL path the overhead gate covers — the table-served narrow
#: regime and the scalar-kernel wide regime (same pool as the operator gate)
OVERHEAD_FORMATS = (
    "bfloat16",
    "posit16",
    "takum16",
    "posit32",
    "takum32",
    "posit64",
    "takum64",
)

#: acceptance threshold on the aggregate telemetry overhead (enabled, with
#: metrics and a live trace sink, vs fully disabled)
OVERHEAD_LIMIT = 0.02


def _ql_problem(ctx, n: int = 24):
    """A tridiagonalised symmetric matrix: input for the QL iteration."""
    from benchmarks.bench_micro_solver import _ql_problem as build

    return build(ctx, n)


def measure_telemetry_overhead(formats=OVERHEAD_FORMATS, repeats: int = 7, n: int = 24):
    """Interleaved best-of-N timing of telemetry enabled vs disabled QL runs.

    Returns ``(per_format, aggregate)``: a dict ``fmt -> (t_enabled,
    t_disabled)`` of the fastest observed runs and the aggregate overhead
    ratio ``sum(enabled) / sum(disabled) - 1``.  The enabled variant is the
    worst-case production configuration: metrics on *and* a trace sink
    writing spans to a real file.
    """
    previous = set_enabled(False)
    per_format = {}
    agg_on = agg_off = 0.0
    try:
        with tempfile.TemporaryDirectory() as tmp:
            sink = f"{tmp}/bench_trace.jsonl"
            for fmt in formats:
                ctx = get_context(fmt)
                d, e, Q = _ql_problem(ctx, n)
                t_on = []
                t_off = []
                for _ in range(repeats):
                    set_enabled(False)
                    trace.shutdown()
                    t0 = time.perf_counter()
                    tridiagonal_eigen(ctx, d, e, Q)
                    t_off.append(time.perf_counter() - t0)

                    set_enabled(True)
                    trace.configure(sink, export_env=False)
                    t0 = time.perf_counter()
                    tridiagonal_eigen(ctx, d, e, Q)
                    t_on.append(time.perf_counter() - t0)
                    ctx.publish_op_count()
                best_on, best_off = min(t_on), min(t_off)
                per_format[fmt] = (best_on, best_off)
                agg_on += best_on
                agg_off += best_off
    finally:
        trace.shutdown()
        metrics.reset()
        set_enabled(previous)
    return per_format, agg_on / agg_off - 1.0


def format_telemetry_report(per_format, aggregate) -> str:
    lines = [
        "Telemetry enabled (metrics + trace sink) vs disabled — QL path",
        f"{'format':10s} {'enabled':>12s} {'disabled':>12s} {'overhead':>9s}",
    ]
    for fmt, (t_on, t_off) in per_format.items():
        lines.append(
            f"{fmt:10s} {t_on * 1e3:9.2f} ms {t_off * 1e3:9.2f} ms "
            f"{100 * (t_on / t_off - 1):+8.2f}%"
        )
    lines.append(f"{'aggregate':10s} {'':>12s} {'':>12s} {100 * aggregate:+8.2f}%")
    return "\n".join(lines)


@pytest.mark.parametrize("fmt", ["bfloat16", "posit32", "takum64"])
@pytest.mark.parametrize("mode", ["disabled", "enabled"])
def test_ql_telemetry_overhead(benchmark, tmp_path, fmt, mode):
    """pytest-benchmark view of the same comparison (representative formats)."""
    ctx = get_context(fmt)
    d, e, Q = _ql_problem(ctx)
    previous = set_enabled(mode == "enabled")
    if mode == "enabled":
        trace.configure(tmp_path / "trace.jsonl", export_env=False)
    try:
        w, _ = benchmark.pedantic(
            lambda: tridiagonal_eigen(ctx, d, e, Q), rounds=1, iterations=1
        )
    finally:
        trace.shutdown()
        metrics.reset()
        set_enabled(previous)
    assert np.all(np.isfinite(np.asarray(w, dtype=np.float64)))


def main(argv=None) -> int:
    """Standalone entry point: ``--check`` gates the telemetry overhead."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if aggregate telemetry overhead exceeds "
        # argparse expands help printf-style, so the percent sign is doubled
        f"{OVERHEAD_LIMIT:.0%}".replace("%", "%%") + " on the QL path",
    )
    parser.add_argument("--repeats", type=int, default=7, help="interleaved repeats")
    parser.add_argument(
        "--passes",
        type=int,
        default=2,
        help="independent measurement passes; the best aggregate counts "
        "(scheduler noise only ever inflates the ratio)",
    )
    args = parser.parse_args(argv)

    per_format, aggregate = measure_telemetry_overhead(repeats=args.repeats)
    for _ in range(args.passes - 1):
        pf, agg = measure_telemetry_overhead(repeats=args.repeats)
        if agg < aggregate:
            per_format, aggregate = pf, agg
    print(format_telemetry_report(per_format, aggregate))
    from benchmarks.conftest import write_json_report

    write_json_report(
        "telemetry_overhead.json",
        {
            "benchmark": "telemetry_overhead",
            "aggregate_overhead": round(aggregate, 4),
            "overhead_limit": OVERHEAD_LIMIT,
            "per_format": {
                fmt: {"enabled_s": round(t_on, 6), "disabled_s": round(t_off, 6)}
                for fmt, (t_on, t_off) in per_format.items()
            },
        },
    )
    if args.check and aggregate > OVERHEAD_LIMIT:
        print(
            f"FAIL: aggregate telemetry overhead {aggregate:+.2%} exceeds "
            f"the {OVERHEAD_LIMIT:.0%} budget"
        )
        return 1
    if args.check:
        print(f"OK: aggregate telemetry overhead {aggregate:+.2%} within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
