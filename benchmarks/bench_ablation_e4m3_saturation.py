"""Ablation C: E4M3 overflow policy (NaN vs saturation).

The OCP specification leaves the overflow behaviour of E4M3 to the
implementation: the default mode produces NaN, the saturating mode clamps to
±448.  The paper's ∞σ failures for OFP8 depend on this choice; the benchmark
quantifies how many conversions of wide-dynamic-range matrices survive under
each policy.
"""

import numpy as np

from repro.arithmetic import EmulatedContext
from repro.arithmetic.ofp8 import OFP8E4M3
from repro.datasets import suitesparse_like
from repro.utils import format_table

from .conftest import bench_size_range, write_report


def test_ablation_e4m3_overflow_policy(benchmark):
    suite = [
        tm
        for tm in suitesparse_like(count=36, size_range=bench_size_range(), seed=9)
        if tm.category in ("wide_dynamic_range", "banded_geometric", "scaled_stencil")
    ]
    policies = {
        "nan (default)": EmulatedContext(OFP8E4M3(saturate=False)),
        "saturate": EmulatedContext(OFP8E4M3(saturate=True, name="E4M3sat")),
    }

    def task():
        rows = []
        for policy, ctx in policies.items():
            exceeded = 0
            max_rel_entry_error = 0.0
            for tm in suite:
                converted, info = ctx.convert_matrix(tm.matrix)
                if info.range_exceeded:
                    exceeded += 1
                    continue
                rel = np.abs(
                    np.asarray(converted.data) - np.asarray(tm.matrix.data)
                ) / np.maximum(np.abs(np.asarray(tm.matrix.data)), 1e-30)
                max_rel_entry_error = max(max_rel_entry_error, float(rel.max()))
            rows.append([policy, len(suite), exceeded, f"{max_rel_entry_error:.2e}"])
        return rows

    rows = benchmark.pedantic(task, rounds=1, iterations=1)
    report = format_table(
        ["overflow policy", "matrices", "range exceeded (∞σ)", "max entry rel err"],
        rows,
        title="Ablation C: E4M3 overflow policy on wide-dynamic-range matrices",
    )
    write_report("ablation_e4m3_saturation.txt", report)
    nan_row, sat_row = rows
    # saturation can only reduce the number of ∞σ failures
    assert sat_row[2] <= nan_row[2]
