"""Experiment-store overhead benchmarks.

The store must stay invisible next to the solves it caches: committing a
record is one small JSON write-rename, planning a warm suite is a handful
of stat+read calls per cell, and a fully warm ``run_experiment`` replay
should complete in milliseconds (versus seconds for the cold solves).
These benchmarks track all three so a store regression (fsync storms,
accidental re-fingerprinting, payload bloat) shows up in the perf
trajectory next to the figure benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import suitesparse_like
from repro.experiments import ExperimentConfig, ResultStore, plan_experiment, run_experiment
from repro.experiments.runner import RunRecord
from repro.experiments.store import run_record_to_payload, task_key

FORMATS = ["float32", "takum16"]


def _config() -> ExperimentConfig:
    return ExperimentConfig(eigenvalue_count=4, eigenvalue_buffer_count=2, restarts=10)


def _suite():
    return suitesparse_like(count=3, size_range=(20, 26), seed=4)


def test_store_commit_throughput(benchmark, tmp_path):
    """Atomic put() throughput for realistic run-record payloads."""
    store = ResultStore(tmp_path / "store")
    record = RunRecord(
        matrix="general/banded_geometric_0000",
        group="general",
        category="banded_geometric",
        format="takum16",
        status="ok",
        eigenvalue_relative_error=1.2e-3,
        eigenvector_relative_error=3.4e-2,
        restarts=7,
        matvecs=123,
        solver_reason="converged",
    )
    keys = [f"{i:064x}" for i in range(256)]
    payloads = {key: run_record_to_payload(record, key) for key in keys}

    def commit_all():
        for key in keys:
            store.put(key, payloads[key])

    benchmark.pedantic(commit_all, rounds=3, iterations=1)


def test_store_warm_planning(benchmark, tmp_path):
    """Plan + cache subtraction over a fully cached suite (no execution)."""
    store = ResultStore(tmp_path / "store")
    suite = _suite()
    config = _config()
    run_experiment(suite, FORMATS, config, store=store)

    def plan_warm():
        plan = plan_experiment(suite, FORMATS, config, store=store)
        assert plan.tasks == [] and len(plan.cached_records) == len(suite) * len(FORMATS)
        return plan

    benchmark.pedantic(plan_warm, rounds=5, iterations=1)


def test_store_warm_replay_end_to_end(benchmark, tmp_path):
    """Fully warm run_experiment: zero solver tasks, assembly only."""
    store = ResultStore(tmp_path / "store")
    suite = _suite()
    config = _config()
    cold = run_experiment(suite, FORMATS, config, store=store)
    assert cold.report.executed == cold.report.planned

    def replay():
        warm = run_experiment(suite, FORMATS, config, store=store)
        assert warm.report.executed == 0
        return warm

    warm = benchmark.pedantic(replay, rounds=5, iterations=1)
    errors = [r.eigenvalue_relative_error for r in warm.records if r.status == "ok"]
    assert errors and np.all(np.isfinite(errors))


def test_fingerprint_and_key_cost(benchmark):
    """Per-matrix fingerprint + per-cell key derivation (the plan's fixed
    cost even on a cold store)."""
    suite = _suite()
    config = _config()
    from repro.experiments import matrix_fingerprint

    def derive():
        for tm in suite:
            fingerprint = matrix_fingerprint(tm)
            for name in FORMATS:
                task_key(config, name, fingerprint)

    benchmark.pedantic(derive, rounds=5, iterations=1)
