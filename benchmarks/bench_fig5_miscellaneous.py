"""Figure 5: cumulative error distributions on miscellaneous graph Laplacians."""

from ._figure_common import run_figure


def test_fig5_miscellaneous_graphs(benchmark):
    run_figure(
        benchmark,
        suite_name="miscellaneous",
        figure_title="Figure 5 — miscellaneous graph Laplacians",
        output_name="fig5_miscellaneous.txt",
    )
