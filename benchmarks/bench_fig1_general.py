"""Figure 1: cumulative error distributions on the general (SuiteSparse-like)
symmetric matrices, all formats at 8/16/32/64 bits."""

from ._figure_common import run_figure


def test_fig1_general_matrices(benchmark):
    run_figure(
        benchmark,
        suite_name="general",
        figure_title="Figure 1 — general matrices (synthetic SuiteSparse-like suite)",
        output_name="fig1_general.txt",
    )
