"""Figure 2: cumulative error distributions on biological graph Laplacians."""

from ._figure_common import run_figure


def test_fig2_biological_graphs(benchmark):
    run_figure(
        benchmark,
        suite_name="biological",
        figure_title="Figure 2 — biological graph Laplacians",
        output_name="fig2_biological.txt",
    )
