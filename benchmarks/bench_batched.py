"""Benchmark: lockstep batched sweep vs N sequential ``partialschur`` runs.

Measures the central promise of the format-axis engine: solving one matrix
under N number formats as a single :func:`repro.core.lockstep.
batched_partialschur` call must be substantially cheaper than N sequential
:func:`repro.core.krylov_schur.partialschur` runs.  The win comes from
amortising per-operation Python/numpy dispatch across the stacked
``(n_formats, n)`` axis, so it is largest in the QL-dominated regime (small
matrix, deep restart budget) over the narrow table-served formats; wide
scalar-kernel formats (posit32/takum32+) run as fallback rows and are
deliberately excluded from the gate workload.

Every measurement also asserts per-row bit-identity against the sequential
engine — a speedup obtained by diverging from the sequential trajectory
would be meaningless.

Smoke mode for CI::

    PYTHONPATH=src python benchmarks/bench_batched.py --check

fails (exit code 1) if the batched sweep is less than ``SPEEDUP_LIMIT``
times faster than the sequential sweep.  Timings are interleaved
best-of-``--repeats`` within a pass and the best pass of ``--passes``
counts: machine noise only ever slows a run down, so minima are the honest
estimate of either engine's cost.
"""

import time

if __package__ in (None, ""):
    # executed as a script (python benchmarks/bench_batched.py):
    # make src/ and the repo root importable
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    for _entry in (str(_root), str(_root / "src")):
        if _entry not in sys.path:
            sys.path.insert(0, _entry)

import numpy as np
import pytest

from repro.core.krylov_schur import partialschur
from repro.core.lockstep import batched_partialschur
from repro.datasets import generate_graph
from repro.experiments import tolerance_for
from repro.sparse import laplacian_from_adjacency

#: narrow table-served formats — the stacked fast path the gate protects
BATCH_FORMATS = (
    "bfloat16",
    "float16",
    "posit16",
    "takum16",
    "E4M3",
    "E5M2",
    "posit8",
    "takum8",
)

#: the batched sweep must beat N sequential solves by at least this factor
SPEEDUP_LIMIT = 1.5

#: QL-dominated solver workload (matches bench_micro_solver's per-format case)
WORKLOAD = dict(nev=12, restarts=25, seed=0)


def _laplacian(n: int = 48):
    adjacency, _ = generate_graph("soc", index=0, size=n, seed=3)
    return laplacian_from_adjacency(adjacency)


def _assert_bit_identical(batched, sequential, fmt):
    assert np.array_equal(batched.eigenvalues, sequential.eigenvalues), fmt
    assert np.array_equal(batched.eigenvectors, sequential.eigenvectors), fmt
    assert np.array_equal(batched.residuals, sequential.residuals), fmt
    assert batched.reason == sequential.reason, fmt


def measure_batched_speedup(formats=BATCH_FORMATS, repeats: int = 2, n: int = 48):
    """Interleaved best-of-N timing of the sequential vs batched sweep.

    Returns ``(report, speedup)``: a dict with the fastest observed
    sequential per-format times and batched wall time, and the speedup
    ratio ``min(sequential sweep) / min(batched sweep)``.  Each trial also
    checks that every batched row is bit-identical to its sequential twin.
    """
    matrix = _laplacian(n)
    tols = [tolerance_for(fmt) for fmt in formats]
    best_seq = {fmt: float("inf") for fmt in formats}
    best_seq_total = best_bat = float("inf")
    for _ in range(repeats):
        seq_results = {}
        total = 0.0
        for fmt, tol in zip(formats, tols):
            t0 = time.perf_counter()
            seq_results[fmt] = partialschur(matrix, ctx=fmt, tol=tol, **WORKLOAD)
            elapsed = time.perf_counter() - t0
            total += elapsed
            best_seq[fmt] = min(best_seq[fmt], elapsed)
        best_seq_total = min(best_seq_total, total)
        t0 = time.perf_counter()
        batched = batched_partialschur(matrix, list(formats), tol=tols, **WORKLOAD)
        best_bat = min(best_bat, time.perf_counter() - t0)
        for fmt, row in zip(formats, batched):
            _assert_bit_identical(row, seq_results[fmt], fmt)
    report = {
        "matrix": f"soc Laplacian n={n}",
        "formats": list(formats),
        "sequential_s": best_seq,
        "sequential_total_s": best_seq_total,
        "batched_s": best_bat,
    }
    return report, best_seq_total / best_bat


def format_batched_report(report, speedup) -> str:
    lines = [
        "Lockstep batched sweep vs sequential per-format solves",
        f"workload: {report['matrix']}, nev={WORKLOAD['nev']}, "
        f"restarts={WORKLOAD['restarts']}, {len(report['formats'])} formats",
        f"{'format':10s} {'sequential':>12s}",
    ]
    for fmt in report["formats"]:
        lines.append(f"{fmt:10s} {report['sequential_s'][fmt] * 1e3:9.1f} ms")
    lines.append(f"{'total':10s} {report['sequential_total_s'] * 1e3:9.1f} ms")
    lines.append(f"{'batched':10s} {report['batched_s'] * 1e3:9.1f} ms")
    lines.append(f"speedup: {speedup:.2f}x (gate: >= {SPEEDUP_LIMIT:.1f}x)")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# pytest-benchmark view (one data point per engine)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("engine", ["sequential", "batched"])
def test_batched_vs_sequential_sweep(benchmark, engine):
    matrix = _laplacian(48)
    formats = list(BATCH_FORMATS)
    tols = [tolerance_for(fmt) for fmt in formats]
    if engine == "batched":

        def fn():
            return batched_partialschur(matrix, formats, tol=tols, **WORKLOAD)

    else:

        def fn():
            return [
                partialschur(matrix, ctx=fmt, tol=tol, **WORKLOAD)
                for fmt, tol in zip(formats, tols)
            ]
    results = benchmark.pedantic(fn, rounds=1, iterations=1)
    assert len(results) == len(formats)
    assert all(r.matvecs > 0 for r in results)


def main(argv=None) -> int:
    """Standalone entry point: ``--check`` gates the batched speedup."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail (exit 1) if the batched sweep is below {SPEEDUP_LIMIT}x "
        "the sequential sweep on the QL-dominated workload",
    )
    parser.add_argument("--repeats", type=int, default=2, help="interleaved trials per pass")
    parser.add_argument(
        "--passes",
        type=int,
        default=2,
        help="independent measurement passes; the best speedup counts "
        "(scheduler noise only ever deflates it)",
    )
    args = parser.parse_args(argv)

    report, speedup = measure_batched_speedup(repeats=args.repeats)
    for _ in range(args.passes - 1):
        rep, sp = measure_batched_speedup(repeats=args.repeats)
        if sp > speedup:
            report, speedup = rep, sp
    print(format_batched_report(report, speedup))
    from benchmarks.conftest import write_json_report

    write_json_report(
        "bench_batched.json",
        {
            "benchmark": "batched_lockstep_sweep",
            "speedup": round(speedup, 3),
            "speedup_limit": SPEEDUP_LIMIT,
            "formats": report["formats"],
            "sequential_total_s": round(report["sequential_total_s"], 4),
            "batched_s": round(report["batched_s"], 4),
            "per_format_sequential_s": {
                fmt: round(t, 4) for fmt, t in report["sequential_s"].items()
            },
        },
    )
    if args.check and speedup < SPEEDUP_LIMIT:
        print(
            f"FAIL: batched sweep speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_LIMIT:.1f}x gate"
        )
        return 1
    if args.check:
        print(f"OK: batched sweep speedup {speedup:.2f}x meets the gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
