"""Micro-benchmark: rounding throughput (values/s) per format and backend.

Measures ``round_array`` throughput of the lookup-table engine
(:mod:`repro.arithmetic.tables`) against the analytic kernels for every
table-eligible format.  The acceptance bar for the engine is >= 3x on the
8-bit formats, where the direct-indexed float32-pattern path applies.

The *bit-kernel* section measures the integer bit-twiddling engine
(:mod:`repro.arithmetic.bitkernels`) against the analytic vector kernels at
64k values for every format it serves.  The acceptance bar is >= 3x on the
32-bit posit/takum formats (the paper-pipeline hot path the engine was
built for); the CI gate (``--check``) fails if any kernel-served format
rounds *slower* than its analytic kernel.

The *scalar* section measures per-scalar rounding at solver-call sizes for
the wide (32/64-bit) formats the tables cannot serve: the old route (one
``round_array_analytic`` call on a 1-element ndarray, which is what every
scalar Givens/QL operation paid before the scalar kernels existed) against
the new ``round_scalar`` fast path, plus the context-level scalar ``add``
(the end-to-end per-operation cost inside the solvers).  The acceptance bar
for the scalar kernels is >= 5x on posit32/takum32/float64.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_rounding.py --benchmark-only

or standalone (writes ``benchmarks/output/micro_rounding.txt`` and its
machine-readable twin ``micro_rounding.json``)::

    PYTHONPATH=src python benchmarks/bench_micro_rounding.py

CI gate::

    PYTHONPATH=src python benchmarks/bench_micro_rounding.py --check
"""

from __future__ import annotations

import pathlib
import time

if __package__ in (None, ""):
    # executed as a script (python benchmarks/bench_micro_rounding.py):
    # make src/ importable for the JSON metadata helper imports below
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    for _entry in (str(_root), str(_root / "src")):
        if _entry not in sys.path:
            sys.path.insert(0, _entry)

import numpy as np
import pytest

from repro.arithmetic import get_context, get_format, table_for

EIGHT_BIT = ["E4M3", "E5M2", "posit8", "takum8"]
SIXTEEN_BIT = ["float16", "bfloat16", "posit16", "takum16"]
FORMATS = EIGHT_BIT + SIXTEEN_BIT
#: wide formats served by the analytic scalar kernels instead of tables
WIDE_FORMATS = ["float32", "float64", "posit32", "posit64", "takum32", "takum64"]
#: formats served by the integer bit-twiddling engine (the 64-bit tapered
#: formats through the two-word extended kernel, benchmarked on their own
#: longdouble workload)
BITKERNEL_FORMATS = [
    "posit16",
    "takum16",
    "posit32",
    "takum32",
    "posit64",
    "takum64",
    "float16",
    "bfloat16",
    "E5M2",
    "E4M3",
    "posit8",
    "takum8",
]
#: the paper-pipeline hot path: the bit kernels must deliver >= 3x here
BITKERNEL_TARGET_FORMATS = ("posit32", "takum32")
BITKERNEL_TARGET_SPEEDUP = 3.0

#: benchmark workload size (values per round_array call)
N_VALUES = 1 << 16


def workload(n: int = N_VALUES, seed: int = 0) -> np.ndarray:
    """Sign-symmetric values spanning ~29 binades around 1.0 (the regime the
    solvers live in), with a sprinkle of zeros."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n) * np.exp(rng.uniform(-10.0, 10.0, n))
    values[rng.integers(0, n, n // 64)] = 0.0
    return values


def _round_table(fmt, values):
    return table_for(fmt).round_values(values)


def _round_analytic(fmt, values):
    return fmt.round_array_analytic(values)


BACKENDS = {"table": _round_table, "analytic": _round_analytic}


@pytest.fixture(scope="module")
def values():
    return workload()


@pytest.mark.parametrize("fmt_name", FORMATS)
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_rounding_throughput(benchmark, fmt_name, backend, values):
    fmt = get_format(fmt_name)
    runner = BACKENDS[backend]
    runner(fmt, values)  # warm the table / per-format caches
    benchmark.extra_info["values_per_call"] = values.size
    benchmark(lambda: runner(fmt, values))


# --------------------------------------------------------------------- #
# integer bit-kernel rounding (the wide-format vector hot path)
# --------------------------------------------------------------------- #
def _round_bitkernel(fmt, values):
    return fmt.bitkernel().round(values)


@pytest.mark.parametrize(
    "fmt_name", ["posit32", "takum32", "posit64", "takum64", "posit16", "takum16"]
)
@pytest.mark.parametrize("backend", ["analytic", "bitkernel"])
def test_bitkernel_throughput(benchmark, fmt_name, backend, values):
    fmt = get_format(fmt_name)
    if fmt.bitkernel() is None:
        pytest.skip("no bit kernel on this host/configuration")
    vals = values.astype(fmt.work_dtype)  # 64-bit formats round longdouble
    runner = _round_analytic if backend == "analytic" else _round_bitkernel
    runner(fmt, vals)  # warm the LUTs / per-format caches
    benchmark.extra_info["values_per_call"] = vals.size
    benchmark(lambda: runner(fmt, vals))


# --------------------------------------------------------------------- #
# wide-format scalar rounding (solver-call sizes)
# --------------------------------------------------------------------- #
def _scalar_round_old(fmt, value):
    """Pre-scalar-kernel route: wrap, round through the vector analytic
    kernel, unwrap — what each scalar solver operation paid before."""
    return float(fmt.round_array_analytic(np.asarray([value], dtype=fmt.work_dtype))[0])


def _scalar_round_new(fmt, value):
    return fmt.round_scalar(value)


SCALAR_BACKENDS = {"array_old": _scalar_round_old, "scalar_new": _scalar_round_new}


@pytest.mark.parametrize("fmt_name", WIDE_FORMATS)
@pytest.mark.parametrize("backend", sorted(SCALAR_BACKENDS))
def test_wide_scalar_rounding(benchmark, fmt_name, backend):
    fmt = get_format(fmt_name)
    runner = SCALAR_BACKENDS[backend]
    runner(fmt, 0.7354)  # warm per-format scalar state
    benchmark(lambda: runner(fmt, 0.7354))


@pytest.mark.parametrize("fmt_name", ["posit32", "takum32", "posit64", "float64"])
def test_context_scalar_add(benchmark, fmt_name):
    """End-to-end per-operation cost of one scalar context op (the unit the
    solvers' Givens/QL loops are made of)."""
    ctx = get_context(fmt_name)
    a = ctx.round_scalar(0.3123)
    b = ctx.round_scalar(1.7)
    ctx.add(a, b)
    benchmark(lambda: ctx.add(a, b))


# --------------------------------------------------------------------- #
# standalone report
# --------------------------------------------------------------------- #
def _median_throughput(func, values, repeats: int = 15, inner: int = 8) -> float:
    func(values)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func(values)
        samples.append((time.perf_counter() - start) / inner)
    return values.size / float(np.median(samples))


def _median_call_time(func, repeats: int = 7, inner: int = 2000) -> float:
    """Median seconds per call of a cheap scalar function."""
    func()  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func()
        samples.append((time.perf_counter() - start) / inner)
    return float(np.median(samples))


def run_scalar_report() -> list[str]:
    """Wide-format scalar rounding: old array route vs new scalar kernels."""
    lines = [
        "Scalar rounding at solver-call sizes (per-call cost, one value)",
        "old: round_array_analytic on a 1-element ndarray (pre-kernel route)",
        "new: round_scalar through the pure-Python scalar kernels",
        "",
        f"{'format':<10s} {'old [us]':>10s} {'new [us]':>10s} {'speedup':>9s}",
    ]
    for fmt_name in WIDE_FORMATS:
        fmt = get_format(fmt_name)
        old_s, new_s = [], []
        for _ in range(3):  # interleave to cancel CPU frequency drift
            old_s.append(_median_call_time(lambda: _scalar_round_old(fmt, 0.7354)))
            new_s.append(_median_call_time(lambda: _scalar_round_new(fmt, 0.7354)))
        t_old = float(np.median(old_s))
        t_new = float(np.median(new_s))
        lines.append(
            f"{fmt_name:<10s} {t_old * 1e6:>10.2f} {t_new * 1e6:>10.2f} "
            f"{t_old / t_new:>8.2f}x"
        )
    lines.append("")
    lines.append("Context-level scalar add (one rounded elementary operation)")
    lines.append(f"{'format':<10s} {'add [us]':>10s}")
    for fmt_name in ["posit32", "takum32", "posit64", "takum64", "float64"]:
        ctx = get_context(fmt_name)
        a, b = ctx.round_scalar(0.3123), ctx.round_scalar(1.7)
        t_add = _median_call_time(lambda: ctx.add(a, b))
        lines.append(f"{fmt_name:<10s} {t_add * 1e6:>10.2f}")
    return lines


def run_bitkernel_report(record: dict | None = None) -> list[str]:
    """Bit-kernel vs analytic vector rounding at benchmark size.

    When ``record`` is given, per-format speedups are stored into it
    (feeding both the JSON artifact and the ``--check`` gate).
    """
    values = workload()
    lines = [
        f"Bit-kernel rounding vs analytic kernels ({values.size} values/call)",
        f"{'format':<10s} {'bitkernel [Mval/s]':>19s} {'analytic [Mval/s]':>18s} {'speedup':>9s}",
    ]
    for fmt_name in BITKERNEL_FORMATS:
        fmt = get_format(fmt_name)
        if fmt.bitkernel() is None:  # engine disabled via env/runtime switch
            continue
        # the 64-bit formats round longdouble workloads; benchmark both
        # backends on the dtype the dispatch actually feeds them
        vals = values.astype(fmt.work_dtype)
        kern_s, analytic_s = [], []
        for _ in range(3):  # interleave to cancel CPU frequency drift
            kern_s.append(_median_throughput(lambda v: _round_bitkernel(fmt, v), vals, repeats=5))
            analytic_s.append(_median_throughput(lambda v: _round_analytic(fmt, v), vals, repeats=5))
        kern_tp = float(np.median(kern_s))
        analytic_tp = float(np.median(analytic_s))
        speedup = kern_tp / analytic_tp
        if record is not None:
            record[fmt_name] = {
                "bitkernel_mvals": round(kern_tp / 1e6, 2),
                "analytic_mvals": round(analytic_tp / 1e6, 2),
                "speedup": round(speedup, 3),
            }
        lines.append(
            f"{fmt_name:<10s} {kern_tp / 1e6:>19.1f} {analytic_tp / 1e6:>18.1f} "
            f"{speedup:>8.2f}x"
        )
    lines.append("")
    lines.append(
        "dispatch: the bit kernels serve vector rounding for every format "
        "above except the 8-bit ones, where the direct-indexed table (a "
        "single gather) stays faster; posit64/takum64 round through the "
        "two-word extended kernel on their longdouble workload."
    )
    return lines


def run_report(record: dict | None = None) -> str:
    values = workload()
    lines = [
        "Micro-benchmark: rounding throughput per format (values/s)",
        f"workload: {values.size} values, log-uniform magnitudes over ~29 binades",
        "",
        f"{'format':<10s} {'table [Mval/s]':>15s} {'analytic [Mval/s]':>18s} {'speedup':>9s}",
    ]
    for fmt_name in FORMATS:
        fmt = get_format(fmt_name)
        # interleave the two backends to cancel CPU frequency drift
        table_s, analytic_s = [], []
        for _ in range(3):
            table_s.append(_median_throughput(lambda v: _round_table(fmt, v), values, repeats=5))
            analytic_s.append(_median_throughput(lambda v: _round_analytic(fmt, v), values, repeats=5))
        table_tp = float(np.median(table_s))
        analytic_tp = float(np.median(analytic_s))
        lines.append(
            f"{fmt_name:<10s} {table_tp / 1e6:>15.1f} {analytic_tp / 1e6:>18.1f} "
            f"{table_tp / analytic_tp:>8.2f}x"
        )
    lines.append("")
    lines.append(
        "default backend: table rounding for the 8-bit formats (direct "
        "index); the 16-bit formats round through the integer bit kernels "
        "at vector sizes (tables still serve their scalar path and "
        "encode/decode)."
    )
    lines.append("")
    lines.extend(run_bitkernel_report(record))
    lines.append("")
    lines.extend(run_scalar_report())
    return "\n".join(lines) + "\n"


def run_check(threshold: float = 1.0) -> int:
    """CI gate: every format whose *rounding dispatch* uses a bit kernel
    must round at least as fast as its analytic kernel at 64k values, and
    the 32-bit posit/takum hot path must clear
    :data:`BITKERNEL_TARGET_SPEEDUP`.  The 8-bit formats are reported but
    not gated: their dispatch keeps the direct-indexed table, so their
    kernel margins (which can be thin on noisy shared runners) guard
    nothing.  Returns an exit code.
    """
    record: dict = {}
    lines = run_bitkernel_report(record)
    print("\n".join(lines))
    if not record:
        print("SKIP: bit kernels disabled in this environment")
        return 0
    failed = []
    for fmt_name, row in record.items():
        if get_format(fmt_name).bits <= 8:
            continue  # dispatch uses the direct-indexed table, not the kernel
        if row["speedup"] < threshold:
            failed.append(f"{fmt_name}: {row['speedup']:.2f}x < {threshold:.2f}x")
    for fmt_name in BITKERNEL_TARGET_FORMATS:
        row = record.get(fmt_name)
        if row is not None and row["speedup"] < BITKERNEL_TARGET_SPEEDUP:
            failed.append(
                f"{fmt_name}: {row['speedup']:.2f}x < the "
                f"{BITKERNEL_TARGET_SPEEDUP:.0f}x hot-path target"
            )
    if failed:
        print("FAIL: bit kernels slower than the acceptance bars:")
        for line in failed:
            print(f"  {line}")
        return 1
    print("OK: bit kernels meet the acceptance bars on every served format")
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: fail (exit 1) if any bit kernel is slower than the "
        "analytic kernel at 64k values, or the 32-bit posit/takum hot path "
        "misses its 3x target",
    )
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    record: dict = {}
    report = run_report(record)
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "micro_rounding.txt"
    out_path.write_text(report, encoding="utf-8")
    from benchmarks.conftest import write_json_report

    json_path = write_json_report(
        "micro_rounding.json",
        {
            "benchmark": "micro_rounding",
            "values_per_call": N_VALUES,
            "bitkernel_vs_analytic": record,
        },
    )
    print(report)
    print(f"report written to {out_path}")
    print(f"json artifact written to {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
