"""Micro-benchmark: rounding throughput (values/s) per format and backend.

Measures ``round_array`` throughput of the lookup-table engine
(:mod:`repro.arithmetic.tables`) against the analytic kernels for every
table-eligible format.  The acceptance bar for the engine is >= 3x on the
8-bit formats, where the direct-indexed float32-pattern path applies.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_rounding.py --benchmark-only

or standalone (writes ``benchmarks/output/micro_rounding.txt``)::

    PYTHONPATH=src python benchmarks/bench_micro_rounding.py
"""

from __future__ import annotations

import pathlib
import time

import numpy as np
import pytest

from repro.arithmetic import get_format, table_for

EIGHT_BIT = ["E4M3", "E5M2", "posit8", "takum8"]
SIXTEEN_BIT = ["float16", "bfloat16", "posit16", "takum16"]
FORMATS = EIGHT_BIT + SIXTEEN_BIT

#: benchmark workload size (values per round_array call)
N_VALUES = 1 << 16


def workload(n: int = N_VALUES, seed: int = 0) -> np.ndarray:
    """Sign-symmetric values spanning ~29 binades around 1.0 (the regime the
    solvers live in), with a sprinkle of zeros."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n) * np.exp(rng.uniform(-10.0, 10.0, n))
    values[rng.integers(0, n, n // 64)] = 0.0
    return values


def _round_table(fmt, values):
    return table_for(fmt).round_values(values)


def _round_analytic(fmt, values):
    return fmt.round_array_analytic(values)


BACKENDS = {"table": _round_table, "analytic": _round_analytic}


@pytest.fixture(scope="module")
def values():
    return workload()


@pytest.mark.parametrize("fmt_name", FORMATS)
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_rounding_throughput(benchmark, fmt_name, backend, values):
    fmt = get_format(fmt_name)
    runner = BACKENDS[backend]
    runner(fmt, values)  # warm the table / per-format caches
    benchmark.extra_info["values_per_call"] = values.size
    benchmark(lambda: runner(fmt, values))


# --------------------------------------------------------------------- #
# standalone report
# --------------------------------------------------------------------- #
def _median_throughput(func, values, repeats: int = 15, inner: int = 8) -> float:
    func(values)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func(values)
        samples.append((time.perf_counter() - start) / inner)
    return values.size / float(np.median(samples))


def run_report() -> str:
    values = workload()
    lines = [
        "Micro-benchmark: rounding throughput per format (values/s)",
        f"workload: {values.size} values, log-uniform magnitudes over ~29 binades",
        "",
        f"{'format':<10s} {'table [Mval/s]':>15s} {'analytic [Mval/s]':>18s} {'speedup':>9s}",
    ]
    for fmt_name in FORMATS:
        fmt = get_format(fmt_name)
        # interleave the two backends to cancel CPU frequency drift
        table_s, analytic_s = [], []
        for _ in range(3):
            table_s.append(_median_throughput(lambda v: _round_table(fmt, v), values, repeats=5))
            analytic_s.append(_median_throughput(lambda v: _round_analytic(fmt, v), values, repeats=5))
        table_tp = float(np.median(table_s))
        analytic_tp = float(np.median(analytic_s))
        lines.append(
            f"{fmt_name:<10s} {table_tp / 1e6:>15.1f} {analytic_tp / 1e6:>18.1f} "
            f"{table_tp / analytic_tp:>8.2f}x"
        )
    lines.append("")
    lines.append(
        "default backend: table rounding for every format above except "
        "float16/bfloat16, whose analytic quantum kernel is faster than a "
        "2^15-entry searchsorted (they still use table encode/decode)."
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    report = run_report()
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "micro_rounding.txt"
    out_path.write_text(report, encoding="utf-8")
    print(report)
    print(f"report written to {out_path}")
