"""Micro-benchmark: rounding throughput (values/s) per format and backend.

Measures ``round_array`` throughput of the lookup-table engine
(:mod:`repro.arithmetic.tables`) against the analytic kernels for every
table-eligible format.  The acceptance bar for the engine is >= 3x on the
8-bit formats, where the direct-indexed float32-pattern path applies.

The *scalar* section measures per-scalar rounding at solver-call sizes for
the wide (32/64-bit) formats the tables cannot serve: the old route (one
``round_array_analytic`` call on a 1-element ndarray, which is what every
scalar Givens/QL operation paid before the scalar kernels existed) against
the new ``round_scalar`` fast path, plus the context-level scalar ``add``
(the end-to-end per-operation cost inside the solvers).  The acceptance bar
for the scalar kernels is >= 5x on posit32/takum32/float64.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_rounding.py --benchmark-only

or standalone (writes ``benchmarks/output/micro_rounding.txt``)::

    PYTHONPATH=src python benchmarks/bench_micro_rounding.py
"""

from __future__ import annotations

import pathlib
import time

import numpy as np
import pytest

from repro.arithmetic import get_context, get_format, table_for

EIGHT_BIT = ["E4M3", "E5M2", "posit8", "takum8"]
SIXTEEN_BIT = ["float16", "bfloat16", "posit16", "takum16"]
FORMATS = EIGHT_BIT + SIXTEEN_BIT
#: wide formats served by the analytic scalar kernels instead of tables
WIDE_FORMATS = ["float32", "float64", "posit32", "posit64", "takum32", "takum64"]

#: benchmark workload size (values per round_array call)
N_VALUES = 1 << 16


def workload(n: int = N_VALUES, seed: int = 0) -> np.ndarray:
    """Sign-symmetric values spanning ~29 binades around 1.0 (the regime the
    solvers live in), with a sprinkle of zeros."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n) * np.exp(rng.uniform(-10.0, 10.0, n))
    values[rng.integers(0, n, n // 64)] = 0.0
    return values


def _round_table(fmt, values):
    return table_for(fmt).round_values(values)


def _round_analytic(fmt, values):
    return fmt.round_array_analytic(values)


BACKENDS = {"table": _round_table, "analytic": _round_analytic}


@pytest.fixture(scope="module")
def values():
    return workload()


@pytest.mark.parametrize("fmt_name", FORMATS)
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_rounding_throughput(benchmark, fmt_name, backend, values):
    fmt = get_format(fmt_name)
    runner = BACKENDS[backend]
    runner(fmt, values)  # warm the table / per-format caches
    benchmark.extra_info["values_per_call"] = values.size
    benchmark(lambda: runner(fmt, values))


# --------------------------------------------------------------------- #
# wide-format scalar rounding (solver-call sizes)
# --------------------------------------------------------------------- #
def _scalar_round_old(fmt, value):
    """Pre-scalar-kernel route: wrap, round through the vector analytic
    kernel, unwrap — what each scalar solver operation paid before."""
    return float(fmt.round_array_analytic(np.asarray([value], dtype=fmt.work_dtype))[0])


def _scalar_round_new(fmt, value):
    return fmt.round_scalar(value)


SCALAR_BACKENDS = {"array_old": _scalar_round_old, "scalar_new": _scalar_round_new}


@pytest.mark.parametrize("fmt_name", WIDE_FORMATS)
@pytest.mark.parametrize("backend", sorted(SCALAR_BACKENDS))
def test_wide_scalar_rounding(benchmark, fmt_name, backend):
    fmt = get_format(fmt_name)
    runner = SCALAR_BACKENDS[backend]
    runner(fmt, 0.7354)  # warm per-format scalar state
    benchmark(lambda: runner(fmt, 0.7354))


@pytest.mark.parametrize("fmt_name", ["posit32", "takum32", "posit64", "float64"])
def test_context_scalar_add(benchmark, fmt_name):
    """End-to-end per-operation cost of one scalar context op (the unit the
    solvers' Givens/QL loops are made of)."""
    ctx = get_context(fmt_name)
    a = ctx.round_scalar(0.3123)
    b = ctx.round_scalar(1.7)
    ctx.add(a, b)
    benchmark(lambda: ctx.add(a, b))


# --------------------------------------------------------------------- #
# standalone report
# --------------------------------------------------------------------- #
def _median_throughput(func, values, repeats: int = 15, inner: int = 8) -> float:
    func(values)  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func(values)
        samples.append((time.perf_counter() - start) / inner)
    return values.size / float(np.median(samples))


def _median_call_time(func, repeats: int = 7, inner: int = 2000) -> float:
    """Median seconds per call of a cheap scalar function."""
    func()  # warm-up
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func()
        samples.append((time.perf_counter() - start) / inner)
    return float(np.median(samples))


def run_scalar_report() -> list[str]:
    """Wide-format scalar rounding: old array route vs new scalar kernels."""
    lines = [
        "Scalar rounding at solver-call sizes (per-call cost, one value)",
        "old: round_array_analytic on a 1-element ndarray (pre-kernel route)",
        "new: round_scalar through the pure-Python scalar kernels",
        "",
        f"{'format':<10s} {'old [us]':>10s} {'new [us]':>10s} {'speedup':>9s}",
    ]
    for fmt_name in WIDE_FORMATS:
        fmt = get_format(fmt_name)
        old_s, new_s = [], []
        for _ in range(3):  # interleave to cancel CPU frequency drift
            old_s.append(_median_call_time(lambda: _scalar_round_old(fmt, 0.7354)))
            new_s.append(_median_call_time(lambda: _scalar_round_new(fmt, 0.7354)))
        t_old = float(np.median(old_s))
        t_new = float(np.median(new_s))
        lines.append(
            f"{fmt_name:<10s} {t_old * 1e6:>10.2f} {t_new * 1e6:>10.2f} "
            f"{t_old / t_new:>8.2f}x"
        )
    lines.append("")
    lines.append("Context-level scalar add (one rounded elementary operation)")
    lines.append(f"{'format':<10s} {'add [us]':>10s}")
    for fmt_name in ["posit32", "takum32", "posit64", "takum64", "float64"]:
        ctx = get_context(fmt_name)
        a, b = ctx.round_scalar(0.3123), ctx.round_scalar(1.7)
        t_add = _median_call_time(lambda: ctx.add(a, b))
        lines.append(f"{fmt_name:<10s} {t_add * 1e6:>10.2f}")
    return lines


def run_report() -> str:
    values = workload()
    lines = [
        "Micro-benchmark: rounding throughput per format (values/s)",
        f"workload: {values.size} values, log-uniform magnitudes over ~29 binades",
        "",
        f"{'format':<10s} {'table [Mval/s]':>15s} {'analytic [Mval/s]':>18s} {'speedup':>9s}",
    ]
    for fmt_name in FORMATS:
        fmt = get_format(fmt_name)
        # interleave the two backends to cancel CPU frequency drift
        table_s, analytic_s = [], []
        for _ in range(3):
            table_s.append(_median_throughput(lambda v: _round_table(fmt, v), values, repeats=5))
            analytic_s.append(_median_throughput(lambda v: _round_analytic(fmt, v), values, repeats=5))
        table_tp = float(np.median(table_s))
        analytic_tp = float(np.median(analytic_s))
        lines.append(
            f"{fmt_name:<10s} {table_tp / 1e6:>15.1f} {analytic_tp / 1e6:>18.1f} "
            f"{table_tp / analytic_tp:>8.2f}x"
        )
    lines.append("")
    lines.append(
        "default backend: table rounding for every format above except "
        "float16/bfloat16, whose analytic quantum kernel is faster than a "
        "2^15-entry searchsorted (they still use table encode/decode)."
    )
    lines.append("")
    lines.extend(run_scalar_report())
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    report = run_report()
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "micro_rounding.txt"
    out_path.write_text(report, encoding="utf-8")
    print(report)
    print(f"report written to {out_path}")
