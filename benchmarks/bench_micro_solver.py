"""Micro-benchmark: ``partialschur`` solver cost vs matrix size and format.

Measures the end-to-end cost of one partial spectral decomposition (the unit
of work behind every data point of Figures 1-5) for a representative graph
Laplacian, across formats and Krylov dimensions.  The wide (32/64-bit)
posit/takum cases quantify the scalar-kernel fast path end to end: their
per-operation rounding is dominated by the solvers' scalar Givens/QL
operations, which route through ``round_scalar`` instead of 1-element
``round_array_analytic`` calls.
"""

import pytest

from repro.core import partialschur
from repro.datasets import generate_graph
from repro.experiments import tolerance_for
from repro.sparse import laplacian_from_adjacency


def _laplacian(n: int):
    adjacency, _ = generate_graph("soc", index=0, size=n, seed=3)
    return laplacian_from_adjacency(adjacency)


@pytest.mark.parametrize(
    "fmt",
    [
        "float64",
        "reference",
        "bfloat16",
        "takum16",
        # wide formats: scalar-kernel regime (no lookup tables)
        "posit32",
        "takum32",
        "posit64",
        "takum64",
    ],
)
def test_partialschur_per_format(benchmark, fmt):
    matrix = _laplacian(48)
    tol = 1e-18 if fmt == "reference" else tolerance_for(fmt)
    result = benchmark.pedantic(
        lambda: partialschur(matrix, nev=12, tol=tol, ctx=fmt, restarts=25),
        rounds=1,
        iterations=1,
    )
    assert result.matvecs > 0


@pytest.mark.parametrize("size", [32, 64, 96])
def test_partialschur_scaling_with_size(benchmark, size):
    matrix = _laplacian(size)
    result = benchmark.pedantic(
        lambda: partialschur(matrix, nev=12, tol=1e-4, ctx="takum16", restarts=25),
        rounds=1,
        iterations=1,
    )
    assert result.nev > 0


@pytest.mark.parametrize("maxdim", [16, 25, 36])
def test_partialschur_scaling_with_krylov_dimension(benchmark, maxdim):
    matrix = _laplacian(64)
    result = benchmark.pedantic(
        lambda: partialschur(
            matrix, nev=12, tol=1e-4, ctx="bfloat16", restarts=25, maxdim=maxdim
        ),
        rounds=1,
        iterations=1,
    )
    assert result.nev > 0
