"""Micro-benchmark: ``partialschur`` solver cost vs matrix size and format.

Measures the end-to-end cost of one partial spectral decomposition (the unit
of work behind every data point of Figures 1-5) for a representative graph
Laplacian, across formats and Krylov dimensions.  The wide (32/64-bit)
posit/takum cases quantify the scalar-kernel fast path end to end: their
per-operation rounding is dominated by the solvers' scalar Givens/QL
operations, which route through ``round_scalar`` instead of 1-element
``round_array_analytic`` calls.

The operator-API section compares the migrated solvers (FArray/FScalar
operator form, :mod:`repro.arithmetic.farray`) against the preserved
explicit-context baselines of ``tests/_explicit_baseline.py`` on the
implicit-shift QL iteration — the scalar-dominated Givens/QL path where any
wrapper overhead would show first.  Both variants execute bit-identical
rounded-operation sequences, so the ratio isolates the pure cost of the
operator layer.

Smoke mode for CI::

    PYTHONPATH=src python benchmarks/bench_micro_solver.py --check

runs the QL comparison across the emulated formats and fails (exit code 1)
if the aggregate operator-API overhead exceeds 5%.
"""

import time

if __package__ in (None, ""):
    # executed as a script (python benchmarks/bench_micro_solver.py):
    # make src/ and the repo root (tests/ baselines) importable
    import pathlib
    import sys

    _root = pathlib.Path(__file__).resolve().parent.parent
    for _entry in (str(_root), str(_root / "src")):
        if _entry not in sys.path:
            sys.path.insert(0, _entry)

import numpy as np
import pytest

from repro.arithmetic import get_context
from repro.core import partialschur
from repro.datasets import generate_graph
from repro.experiments import tolerance_for
from repro.linalg.tridiagonal import tridiagonal_eigen, tridiagonalize
from repro.sparse import laplacian_from_adjacency


def _laplacian(n: int):
    adjacency, _ = generate_graph("soc", index=0, size=n, seed=3)
    return laplacian_from_adjacency(adjacency)


@pytest.mark.parametrize(
    "fmt",
    [
        "float64",
        "reference",
        "bfloat16",
        "takum16",
        # wide formats: scalar-kernel regime (no lookup tables)
        "posit32",
        "takum32",
        "posit64",
        "takum64",
    ],
)
def test_partialschur_per_format(benchmark, fmt):
    matrix = _laplacian(48)
    tol = 1e-18 if fmt == "reference" else tolerance_for(fmt)
    result = benchmark.pedantic(
        lambda: partialschur(matrix, nev=12, tol=tol, ctx=fmt, restarts=25),
        rounds=1,
        iterations=1,
    )
    assert result.matvecs > 0


@pytest.mark.parametrize("size", [32, 64, 96])
def test_partialschur_scaling_with_size(benchmark, size):
    matrix = _laplacian(size)
    result = benchmark.pedantic(
        lambda: partialschur(matrix, nev=12, tol=1e-4, ctx="takum16", restarts=25),
        rounds=1,
        iterations=1,
    )
    assert result.nev > 0


@pytest.mark.parametrize("maxdim", [16, 25, 36])
def test_partialschur_scaling_with_krylov_dimension(benchmark, maxdim):
    matrix = _laplacian(64)
    result = benchmark.pedantic(
        lambda: partialschur(
            matrix, nev=12, tol=1e-4, ctx="bfloat16", restarts=25, maxdim=maxdim
        ),
        rounds=1,
        iterations=1,
    )
    assert result.nev > 0


# --------------------------------------------------------------------- #
# operator API (FArray/FScalar) vs explicit context calls
# --------------------------------------------------------------------- #

#: formats whose QL path the overhead gate covers: the narrow table-served
#: regime and the wide scalar-kernel regime (the arithmetics under study;
#: native float64 is a cast, where per-operation Python overhead dominates
#: any wrapper and the comparison measures the interpreter, not the API)
OVERHEAD_FORMATS = (
    "bfloat16",
    "posit16",
    "takum16",
    "posit32",
    "takum32",
    "posit64",
    "takum64",
)

#: acceptance threshold on the aggregate operator-API overhead
OVERHEAD_LIMIT = 0.05


def _ql_problem(ctx, n: int = 24):
    """A tridiagonalised symmetric matrix: input for the QL iteration."""
    rng = np.random.default_rng(0)
    raw = rng.standard_normal((n, n))
    sym = ctx.round(np.asarray((raw + raw.T) / 2, dtype=ctx.dtype))
    return tridiagonalize(ctx, sym)


def measure_ql_overhead(formats=OVERHEAD_FORMATS, repeats: int = 7, n: int = 24):
    """Interleaved best-of-N timing of operator vs explicit QL per format.

    Returns ``(per_format, aggregate)``: a dict ``fmt -> (t_operator,
    t_explicit)`` of the fastest observed runs and the aggregate overhead
    ratio ``sum(op) / sum(explicit) - 1``.  Interleaving the two variants
    and taking minima makes the ratio robust against machine noise.
    """
    from tests._explicit_baseline import tridiagonal_eigen_explicit

    per_format = {}
    agg_op = agg_ex = 0.0
    for fmt in formats:
        ctx = get_context(fmt)
        d, e, Q = _ql_problem(ctx, n)
        t_op = []
        t_ex = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            tridiagonal_eigen(ctx, d, e, Q)
            t_op.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            tridiagonal_eigen_explicit(ctx, d, e, Q)
            t_ex.append(time.perf_counter() - t0)
        best_op, best_ex = min(t_op), min(t_ex)
        per_format[fmt] = (best_op, best_ex)
        agg_op += best_op
        agg_ex += best_ex
    return per_format, agg_op / agg_ex - 1.0


def format_ql_overhead_report(per_format, aggregate) -> str:
    lines = [
        "Operator API (FArray/FScalar) vs explicit context calls — QL path",
        f"{'format':10s} {'operator':>12s} {'explicit':>12s} {'overhead':>9s}",
    ]
    for fmt, (t_op, t_ex) in per_format.items():
        lines.append(
            f"{fmt:10s} {t_op * 1e3:9.2f} ms {t_ex * 1e3:9.2f} ms "
            f"{100 * (t_op / t_ex - 1):+8.2f}%"
        )
    lines.append(f"{'aggregate':10s} {'':>12s} {'':>12s} {100 * aggregate:+8.2f}%")
    return "\n".join(lines)


@pytest.mark.parametrize("fmt", ["bfloat16", "posit32", "takum64"])
@pytest.mark.parametrize("impl", ["operator", "explicit"])
def test_ql_operator_vs_explicit(benchmark, fmt, impl):
    """pytest-benchmark view of the same comparison (representative formats)."""
    from tests._explicit_baseline import tridiagonal_eigen_explicit

    ctx = get_context(fmt)
    d, e, Q = _ql_problem(ctx)
    fn = tridiagonal_eigen if impl == "operator" else tridiagonal_eigen_explicit
    w, _ = benchmark.pedantic(lambda: fn(ctx, d, e, Q), rounds=1, iterations=1)
    assert np.all(np.isfinite(np.asarray(w, dtype=np.float64)))


def main(argv=None) -> int:
    """Standalone entry point: ``--check`` gates the operator-API overhead."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if aggregate operator-API overhead exceeds "
        # argparse expands help printf-style, so the percent sign is doubled
        f"{OVERHEAD_LIMIT:.0%}".replace("%", "%%") + " on the QL path",
    )
    parser.add_argument("--repeats", type=int, default=7, help="interleaved repeats")
    parser.add_argument(
        "--passes",
        type=int,
        default=2,
        help="independent measurement passes; the best aggregate counts "
        "(scheduler noise only ever inflates the ratio)",
    )
    args = parser.parse_args(argv)

    per_format, aggregate = measure_ql_overhead(repeats=args.repeats)
    for _ in range(args.passes - 1):
        pf, agg = measure_ql_overhead(repeats=args.repeats)
        if agg < aggregate:
            per_format, aggregate = pf, agg
    print(format_ql_overhead_report(per_format, aggregate))
    from benchmarks.conftest import write_json_report

    write_json_report(
        "micro_solver_operator_api.json",
        {
            "benchmark": "micro_solver_operator_api",
            "aggregate_overhead": round(aggregate, 4),
            "overhead_limit": OVERHEAD_LIMIT,
            "per_format": {
                fmt: {"operator_s": round(t_op, 6), "explicit_s": round(t_ex, 6)}
                for fmt, (t_op, t_ex) in per_format.items()
            },
        },
    )
    if args.check and aggregate > OVERHEAD_LIMIT:
        print(
            f"FAIL: aggregate operator-API overhead {aggregate:+.2%} exceeds "
            f"the {OVERHEAD_LIMIT:.0%} budget"
        )
        return 1
    if args.check:
        print(f"OK: aggregate operator-API overhead {aggregate:+.2%} within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
