#!/usr/bin/env python3
"""Cold/warm experiment-store round-trip gate (nightly CI).

Runs a scaled-down Figure-1 pipeline through the experiment store twice in
one process — cold (empty store) then warm — and asserts the resumable-store
contract end to end:

* the cold run executes every planned (matrix, format) cell;
* the warm run executes **zero** cells (everything served from the store);
* both runs produce byte-identical aggregated figure data;
* the per-format run statuses match a checked-in reference
  (``benchmarks/reference/fig1_store_roundtrip.json``), so silent
  convergence drift — a solver or arithmetic change that flips cells
  between ``ok``/``no_convergence``/``range_exceeded`` without failing any
  unit test — fails the gate instead of quietly skewing the figures.

Regenerate the reference after an *intentional* behaviour change with::

    PYTHONPATH=src python scripts/store_roundtrip.py --update
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.cli import main as cli_main  # noqa: E402

DEFAULT_REFERENCE = ROOT / "benchmarks" / "reference" / "fig1_store_roundtrip.json"

#: the scaled-down Figure-1 workload of the gate; small enough for a CI
#: minute, large enough that every 8/16/32-bit format family contributes
WORKLOAD = [
    "--suite",
    "general",
    "--widths",
    "8",
    "16",
    "32",
    "--matrices",
    "3",
    "--min-size",
    "20",
    "--max-size",
    "28",
    "--restarts",
    "15",
    "--no-plots",
]


def run_once(store_dir: str, tag: str, out_dir: pathlib.Path) -> tuple[dict, bytes, dict]:
    """One CLI invocation against ``store_dir``.

    Returns ``(report, figure bytes, metrics)`` — the metrics snapshot comes
    from ``--metrics-json`` (which also switches telemetry on for the run, so
    the store's hit/miss counters are live).
    """
    report_path = out_dir / f"report-{tag}.json"
    figure_path = out_dir / f"figure-{tag}.json"
    metrics_path = out_dir / f"metrics-{tag}.json"
    argv = WORKLOAD + [
        "--store",
        store_dir,
        "--report-json",
        str(report_path),
        "--figure-json",
        str(figure_path),
        "--metrics-json",
        str(metrics_path),
    ]
    code = cli_main(argv)
    if code != 0:
        raise SystemExit(f"{tag} run exited with {code}")
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    with open(metrics_path, "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    return report, figure_path.read_bytes(), metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reference",
        type=pathlib.Path,
        default=DEFAULT_REFERENCE,
        help="checked-in per-format status reference JSON",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="regenerate the reference from this run instead of comparing",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-roundtrip-") as workdir:
        out_dir = pathlib.Path(workdir)
        store_dir = str(out_dir / "store")

        cold, cold_figure, _cold_metrics = run_once(store_dir, "cold", out_dir)
        if cold["cached"] != 0:
            failures.append(f"cold run started from a non-empty store: {cold['cached']} cached")
        if cold["executed"] != cold["planned"]:
            failures.append(
                f"cold run executed {cold['executed']} of {cold['planned']} planned cells"
            )
        if cold["failed"] != 0:
            failures.append(f"cold run had {cold['failed']} crashed worker tasks")
        if cold["telemetry"]["cache_hit_ratio"] != 0.0:
            failures.append(
                f"cold run reported hit ratio {cold['telemetry']['cache_hit_ratio']} "
                "(expected 0.0)"
            )

        warm, warm_figure, warm_metrics = run_once(store_dir, "warm", out_dir)
        if warm["executed"] != 0:
            failures.append(f"warm run executed {warm['executed']} tasks (expected 0)")
        if warm["cached"] != warm["planned"]:
            failures.append(
                f"warm run served {warm['cached']} of {warm['planned']} cells from the store"
            )
        if cold_figure != warm_figure:
            failures.append("aggregated figure data differs between cold and warm runs")

        # the telemetry view of the same contract: a warm run is 100% cache
        # hits — the embedded report says so, and the store counters agree
        # (zero misses, every cell served as an executor cache hit)
        if warm["telemetry"]["cache_hit_ratio"] != 1.0:
            failures.append(
                f"warm run reported hit ratio {warm['telemetry']['cache_hit_ratio']} "
                "(expected 1.0)"
            )
        warm_counters = warm_metrics["counters"]
        misses = warm_counters.get("store.get.miss", 0)
        if misses != 0:
            failures.append(f"warm run recorded {misses} store misses (expected 0)")
        served = warm_counters.get("executor.cells{kind=cached}", 0)
        if served != warm["planned"]:
            failures.append(
                f"warm run metrics counted {served} cached cells of "
                f"{warm['planned']} planned"
            )

        statuses = warm["statuses_by_format"]
        if args.update:
            args.reference.parent.mkdir(parents=True, exist_ok=True)
            with open(args.reference, "w", encoding="utf-8") as handle:
                json.dump({"statuses_by_format": statuses}, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"reference updated: {args.reference}")
        else:
            with open(args.reference, "r", encoding="utf-8") as handle:
                reference = json.load(handle)["statuses_by_format"]
            if statuses != reference:
                failures.append(
                    "per-format run statuses drifted from the reference:\n"
                    f"  expected: {json.dumps(reference, sort_keys=True)}\n"
                    f"  observed: {json.dumps(statuses, sort_keys=True)}"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "store round-trip OK: cold run computed everything, warm run executed "
        "zero tasks (100% cache hits, zero store misses), figure data "
        "byte-identical, statuses match the reference"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
