#!/usr/bin/env python3
"""End-to-end smoke gate of the serving layer (CI).

Prewarms an experiment store with the same scaled-down Figure-1 workload the
store round-trip gate uses (``scripts/store_roundtrip.py``), starts a real
``repro.serve`` service over it — process worker pool, real sockets — and
drives the three serving paths through the blocking client:

* **warm**: every prewarmed (matrix, format) cell served from the store,
  byte-identical to the on-disk payload, zero solver work;
* **cold**: a config override makes a fresh cell; the service solves it on
  the worker pool, commits it, and serves it warm on the second request;
* **coalesced**: a concurrent burst of identical cold requests costs
  exactly one solve (``serve.solves`` grows by one).

After each phase the ``/metrics`` registry snapshot must agree with what the
client observed (request counts, store hits, solve counts), and the service
must shut down cleanly — refusing new connections afterwards.
"""

from __future__ import annotations

import concurrent.futures
import json
import pathlib
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(ROOT / "scripts") not in sys.path:
    sys.path.insert(0, str(ROOT / "scripts"))

import store_roundtrip  # noqa: E402  (sibling script: the shared workload)

from repro.arithmetic.registry import PAPER_FORMATS  # noqa: E402
from repro.experiments import ExperimentConfig, ResultStore, task_key  # noqa: E402
from repro.experiments.cli import build_parser, _build_suite  # noqa: E402
from repro.experiments.store import matrix_fingerprint  # noqa: E402
from repro.serve import ServeClient, ServiceThread, SpectralService  # noqa: E402

#: concurrent identical cold requests of the coalescing phase
BURST = 8

failures: list[str] = []


def check(condition: bool, message: str) -> None:
    if not condition:
        failures.append(message)
        print(f"FAIL: {message}", file=sys.stderr)


def main() -> int:
    # parse the shared workload definition so suite/config/formats stay in
    # lock-step with the store round-trip gate that prewarmed the store
    args = build_parser().parse_args(store_roundtrip.WORKLOAD)
    suite = _build_suite(args)
    formats = [name for width in args.widths for name in PAPER_FORMATS[width]]
    config = ExperimentConfig(restarts=args.restarts, accumulation=args.accumulation)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as workdir:
        out_dir = pathlib.Path(workdir)
        store_dir = str(out_dir / "store")
        print("== prewarming the store (store_roundtrip workload) ==", flush=True)
        report, _figure, _metrics = store_roundtrip.run_once(store_dir, "prewarm", out_dir)
        check(report["failed"] == 0, f"prewarm run had {report['failed']} failed shards")

        store = ResultStore(store_dir)
        service = SpectralService(
            store,
            suite,
            formats=formats,
            config=config,
            workers=2,
            queue_limit=8,
            pool_kind="process",
        )
        # the CLI would do this; the smoke drives the service object directly
        from repro.telemetry import metrics as registry, set_enabled

        set_enabled(True)
        registry.reset()

        thread = ServiceThread(service)
        base_url = thread.start()
        client = ServeClient(base_url, timeout=600)
        print(f"== service up at {base_url} ==", flush=True)

        health = client.healthz()
        check(health["status"] == "ok", f"healthz reported {health}")
        check(health["matrices"] == len(suite), "healthz matrix count mismatch")

        # -- warm phase: every prewarmed cell, byte-identical ---------------
        warm_requests = 0
        for tm in suite:
            fingerprint = matrix_fingerprint(tm)
            for format_name in formats:
                body, headers = client.cell(tm.name, format_name, raw=True)
                warm_requests += 1
                check(
                    headers.get("x-repro-source") == "store",
                    f"warm cell ({tm.name}, {format_name}) not served from the store",
                )
                key = task_key(config, format_name, fingerprint)
                if body != store.path_for(key).read_bytes():
                    check(False, f"warm bytes differ from store file for {format_name}")
        snapshot = client.metrics()["counters"]
        check(
            snapshot.get("serve.requests{route=cell,status=200}", 0) == warm_requests,
            "request counter disagrees with the client's warm request count",
        )
        check(
            snapshot.get("store.get.hit{kind=run}", 0) == warm_requests,
            "store hit counter disagrees with the warm request count",
        )
        check(snapshot.get("serve.solves", 0) == 0, "warm phase triggered solver work")
        print(f"warm phase OK: {warm_requests} requests, all byte-identical", flush=True)

        # -- cold phase: one overridden cell, solved then cached ------------
        override = {"restarts": args.restarts + 1}
        cold_body, cold_headers = client.cell(suite[0].name, formats[0], config=override, raw=True)
        check(
            cold_headers.get("x-repro-source") == "computed",
            "cold cell was not freshly computed",
        )
        rewarm_body, rewarm_headers = client.cell(
            suite[0].name, formats[0], config=override, raw=True
        )
        check(
            rewarm_headers.get("x-repro-source") == "store",
            "second request of the cold cell was not served from the store",
        )
        check(cold_body == rewarm_body, "cold and re-warmed payloads differ")
        snapshot = client.metrics()["counters"]
        check(snapshot.get("serve.solves", 0) == 1, "cold phase should cost exactly one solve")
        print("cold phase OK: one solve, immediately cache-warm", flush=True)

        # -- coalesced phase: identical concurrent cold burst ---------------
        override = {"restarts": args.restarts + 2}

        def fetch():
            return client.cell(suite[1].name, formats[1], config=override, raw=True)

        with concurrent.futures.ThreadPoolExecutor(max_workers=BURST) as pool:
            outcomes = list(pool.map(lambda _i: fetch(), range(BURST)))
        bodies = {body for body, _headers in outcomes}
        sources = [headers.get("x-repro-source") for _body, headers in outcomes]
        check(len(bodies) == 1, "coalesced burst returned differing payloads")
        check(
            sources.count("computed") == 1,
            f"burst should have exactly one leader, saw sources {sources}",
        )
        snapshot = client.metrics()["counters"]
        check(
            snapshot.get("serve.solves", 0) == 2,
            "coalesced burst must add exactly one solve",
        )
        check(
            snapshot.get("serve.coalesced", 0) == sources.count("coalesced"),
            "coalesced counter disagrees with the sources the clients saw",
        )
        print(
            f"coalesced phase OK: {BURST} concurrent requests, one solve, "
            f"{sources.count('coalesced')} coalesced",
            flush=True,
        )

        # -- exposition + shutdown ------------------------------------------
        text = client.metrics_text()
        check("serve_requests{" in text, "Prometheus exposition lacks serve_requests")
        check("serve_solve_seconds_count" in text, "exposition lacks solve histogram")

        thread.stop()
        try:
            client.healthz()
            check(False, "service still accepting connections after shutdown")
        except OSError:
            pass
        print("shutdown OK: connection refused after stop", flush=True)

    if failures:
        print(f"{len(failures)} serve smoke failure(s)", file=sys.stderr)
        return 1
    print(
        json.dumps(
            {
                "serve_smoke": "ok",
                "warm_requests": warm_requests,
                "burst": BURST,
                "coalesced": sources.count("coalesced"),
            }
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
