"""Tests of the graph-Laplacian preparation pipeline (paper Section 2.1)."""

import numpy as np
import pytest

from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    average_symmetrize,
    degrees,
    ensure_square,
    laplacian_from_adjacency,
    normalized_laplacian,
)


def path_graph_adjacency(n):
    rows, cols = [], []
    for i in range(n - 1):
        rows += [i, i + 1]
        cols += [i + 1, i]
    return COOMatrix(rows, cols, np.ones(len(rows)), (n, n)).tocsr()


class TestEnsureSquare:
    def test_square_passthrough(self):
        A = CSRMatrix.identity(4)
        assert ensure_square(A) is A

    def test_drops_empty_trailing_rows(self):
        coo = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (5, 3))
        out = ensure_square(coo.tocsr())
        assert out.shape == (3, 3)
        assert out.nnz == 2

    def test_drops_empty_trailing_cols(self):
        coo = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (3, 6))
        out = ensure_square(coo.tocsr())
        assert out.shape == (3, 3)

    def test_pads_when_entries_block_removal(self):
        coo = COOMatrix([4], [0], [1.0], (5, 3))
        out = ensure_square(coo.tocsr())
        assert out.shape == (5, 5)
        assert out.todense()[4, 0] == 1.0


class TestSymmetrize:
    def test_average_symmetrization(self):
        dense = np.array([[0.0, 2.0], [0.0, 0.0]])
        out = average_symmetrize(CSRMatrix.from_dense(dense)).todense()
        assert out[0, 1] == 1.0 and out[1, 0] == 1.0

    def test_symmetric_input_unchanged(self, rng):
        dense = rng.standard_normal((6, 6))
        dense = (dense + dense.T) / 2
        out = average_symmetrize(CSRMatrix.from_dense(dense)).todense()
        assert np.allclose(out, dense)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            average_symmetrize(CSRMatrix.from_dense(np.ones((2, 3))))


class TestNormalizedLaplacian:
    def test_path_graph(self):
        A = path_graph_adjacency(4)
        L = normalized_laplacian(A)
        dense = L.todense()
        assert np.allclose(np.diag(dense), 1.0)
        # edge (0,1): deg(0)=1, deg(1)=2 -> -1/sqrt(2)
        assert dense[0, 1] == pytest.approx(-1 / np.sqrt(2))
        assert dense[1, 2] == pytest.approx(-0.5)
        assert L.is_symmetric(tol=1e-15)

    def test_eigenvalues_in_zero_two(self):
        A = path_graph_adjacency(12)
        L = normalized_laplacian(A)
        lam = np.linalg.eigvalsh(L.todense())
        assert lam.min() >= -1e-12
        assert lam.max() <= 2.0 + 1e-12

    def test_zero_eigenvalue_exists(self):
        A = path_graph_adjacency(7)
        lam = np.linalg.eigvalsh(normalized_laplacian(A).todense())
        assert np.min(np.abs(lam)) < 1e-12

    def test_isolated_vertices_get_zero_diagonal(self):
        coo = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (4, 4))
        L = normalized_laplacian(coo.tocsr())
        dense = L.todense()
        assert dense[2, 2] == 0.0 and dense[3, 3] == 0.0
        assert dense[0, 0] == 1.0

    def test_matches_networkx(self):
        import networkx as nx

        g = nx.erdos_renyi_graph(25, 0.2, seed=4)
        rows, cols = [], []
        for u, v in g.edges():
            rows += [u, v]
            cols += [v, u]
        A = COOMatrix(rows, cols, np.ones(len(rows)), (25, 25)).tocsr()
        L = normalized_laplacian(A).todense()
        L_nx = nx.normalized_laplacian_matrix(g, nodelist=range(25)).toarray()
        assert np.allclose(L, L_nx, atol=1e-12)

    def test_weighted_graph(self):
        coo = COOMatrix([0, 1], [1, 0], [4.0, 4.0], (2, 2))
        L = normalized_laplacian(coo.tocsr()).todense()
        # deg = 4 both; off-diagonal = -4 / sqrt(16) = -1
        assert L[0, 1] == pytest.approx(-1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalized_laplacian(CSRMatrix.from_dense(np.ones((2, 3))))


class TestFullPipeline:
    def test_directed_rectangular_input(self):
        # directed edges in a non-square matrix: the pipeline squares,
        # symmetrises and normalises
        coo = COOMatrix([0, 1, 2], [1, 2, 0], [2.0, 2.0, 2.0], (3, 5))
        L = laplacian_from_adjacency(coo.tocsr())
        assert L.shape == (3, 3)
        assert L.is_symmetric(tol=1e-15)
        lam = np.linalg.eigvalsh(L.todense())
        assert lam.min() >= -1e-12 and lam.max() <= 2.0 + 1e-12

    def test_degrees(self):
        A = path_graph_adjacency(3)
        assert np.array_equal(degrees(A), [1.0, 2.0, 1.0])
