"""Bit-identity sweeps of the scalar rounding kernels against the vector
ground truth.

The pure-Python scalar kernels (``NumberFormat.round_scalar_analytic``) must
be bit-identical to ``round_array_analytic`` for every input: same rounded
values, same NaN positions, same sign of zero, same saturation and overflow
behaviour.  The sweeps cover randomized values across (and beyond) each
format's dynamic range, every special value, exact rounding ties built from
adjacent code pairs, and the size-based dispatch plumbing in
``NumberFormat.round_array`` and the contexts' scalar elementary operations.

The sweeps and the scalar-vs-vector comparator come from
:mod:`tests._kernel_harness`, shared with the bit-kernel suites.
"""

import math

import numpy as np
import pytest

from repro.arithmetic import get_context, get_format
from repro.arithmetic import tables as tables_mod
from repro.arithmetic.base import SCALAR_CUTOFF, WIDE_SCALAR_CUTOFF
from tests._kernel_harness import (
    assert_scalar_matches_vector,
    boundary_sweep,
    midpoint_sweep,
    random_sweep,
)

#: formats the table engine cannot serve — the scalar kernels are their only
#: fast path at solver-call sizes
WIDE_FORMATS = ["posit32", "posit64", "takum32", "takum64", "float32", "float64"]
#: narrow formats whose scalar kernels back ``round_array`` when the table
#: engine is disabled
NARROW_FORMATS = ["posit8", "posit16", "takum8", "takum16", "float16", "bfloat16", "E4M3", "E5M2"]
ALL_FORMATS = WIDE_FORMATS + NARROW_FORMATS


@pytest.fixture(params=ALL_FORMATS)
def any_kernel_format(request):
    return get_format(request.param)


@pytest.fixture(params=WIDE_FORMATS)
def wide_format(request):
    return get_format(request.param)


class TestScalarKernelBitIdentity:
    def test_random_sweep(self, any_kernel_format):
        assert_scalar_matches_vector(
            any_kernel_format, random_sweep(any_kernel_format), " random"
        )

    def test_boundary_sweep(self, any_kernel_format):
        assert_scalar_matches_vector(
            any_kernel_format, boundary_sweep(any_kernel_format), " boundary"
        )

    def test_exact_ties(self, any_kernel_format):
        assert_scalar_matches_vector(
            any_kernel_format, midpoint_sweep(any_kernel_format), " ties"
        )

    @pytest.mark.extended_longdouble
    def test_extended_precision_inputs(self):
        """64-bit tapered formats must round longdouble-only values right."""
        for name in ("posit64", "takum64"):
            fmt = get_format(name)
            one = fmt.work_dtype(1.0)
            eps_ld = np.finfo(np.longdouble).eps
            values = np.asarray(
                [one + eps_ld * k for k in range(1, 40)]
                + [-(one + eps_ld * k) for k in range(1, 40)],
                dtype=fmt.work_dtype,
            )
            assert_scalar_matches_vector(fmt, values, " longdouble")

    def test_idempotent_on_representables(self, any_kernel_format):
        fmt = any_kernel_format
        rounded = fmt.round_array_analytic(random_sweep(fmt, n=512, seed=7))
        for v in rounded[np.isfinite(rounded)]:
            assert fmt.round_scalar_analytic(v) == v, fmt.name


class TestRoundArrayDispatch:
    def test_small_arrays_route_through_scalar_kernel(self, wide_format):
        """round_array on solver-call sizes must equal the vector kernel."""
        fmt = wide_format
        rng = np.random.default_rng(3)
        for size in (0, 1, 2, SCALAR_CUTOFF, WIDE_SCALAR_CUTOFF, WIDE_SCALAR_CUTOFF + 1):
            values = (rng.standard_normal(size) * np.exp(rng.uniform(-30, 30, size))).astype(
                fmt.work_dtype
            )
            got = fmt.round_array(values)
            expected = fmt.round_array_analytic(values)
            assert got.shape == expected.shape
            assert got.dtype == expected.dtype
            nan_g, nan_e = np.isnan(got), np.isnan(expected)
            assert np.array_equal(nan_g, nan_e), (fmt.name, size)
            assert np.array_equal(got[~nan_g], expected[~nan_e]), (fmt.name, size)

    def test_preserves_shape(self, wide_format):
        values = np.asarray([[1.3, -2.7], [0.0, 4.1]], dtype=wide_format.work_dtype)
        out = wide_format.round_array(values)
        assert out.shape == (2, 2)
        assert np.array_equal(out, wide_format.round_array_analytic(values))

    def test_narrow_formats_use_scalar_kernel_when_tables_disabled(self):
        previous = tables_mod.set_enabled(False)
        try:
            for name in NARROW_FORMATS:
                fmt = get_format(name)
                values = np.asarray([0.3, -1.7, 100.0], dtype=fmt.work_dtype)
                assert np.array_equal(
                    fmt.round_array(values), fmt.round_array_analytic(values)
                ), name
        finally:
            tables_mod.set_enabled(previous)

    def test_round_scalar_matches_round_array(self, any_kernel_format):
        fmt = any_kernel_format
        for v in (0.0, -0.0, 0.3, -1.7, 1e5, -1e-5, math.inf, 1e300):
            via_array = float(fmt.round_array(np.asarray([v], dtype=fmt.work_dtype))[0])
            assert fmt.round_scalar(v) == via_array or (
                math.isnan(fmt.round_scalar(v)) and math.isnan(via_array)
            ), (fmt.name, v)


class TestContextScalarOps:
    """The contexts' elementary operations on scalar operands must produce
    exactly what the array path produces, without ndarray round-trips."""

    @pytest.mark.parametrize("name", ["posit32", "takum32", "posit64", "takum64", "bfloat16", "E4M3"])
    def test_binary_ops_match_array_path(self, name):
        ctx = get_context(name)
        rng = np.random.default_rng(11)
        for _ in range(50):
            a = float(ctx.round_scalar(rng.standard_normal() * 10.0 ** float(rng.integers(-3, 4))))
            b = float(ctx.round_scalar(rng.standard_normal()))
            for op, ufunc in ((ctx.add, np.add), (ctx.sub, np.subtract), (ctx.mul, np.multiply), (ctx.div, np.divide)):
                scalar = op(a, b)
                array = op(np.asarray([a], dtype=ctx.dtype), np.asarray([b], dtype=ctx.dtype))[0]
                if array != array:
                    assert scalar != scalar, (name, op, a, b)
                else:
                    assert scalar == array, (name, op, a, b)

    @pytest.mark.parametrize("name", ["posit32", "takum64", "float32", "float64", "reference"])
    def test_scalar_results_are_work_dtype_scalars(self, name):
        ctx = get_context(name)
        out = ctx.add(1.5, 2.25)
        assert np.ndim(out) == 0
        assert np.asarray(out).dtype == np.dtype(ctx.dtype)

    def test_sqrt_scalar(self):
        ctx = get_context("posit32")
        assert float(ctx.sqrt(4.0)) == 4.0 ** 0.5
        assert math.isnan(float(ctx.sqrt(-1.0)))
        assert math.isnan(float(ctx.sqrt(math.nan)))
        assert math.isnan(float(ctx.sqrt(math.inf)))  # posit NaR from inf

    def test_div_by_zero_scalar(self):
        emulated = get_context("posit32")
        # posit semantics: x / 0 is NaR
        with np.errstate(divide="ignore", invalid="ignore"):
            assert math.isnan(float(emulated.div(1.0, 0.0)))
            native = get_context("float64")
            assert math.isinf(float(native.div(1.0, 0.0)))
            assert math.isnan(float(native.div(0.0, 0.0)))

    def test_op_counting_scalars(self):
        ctx = get_context("posit32")
        before = ctx.op_count
        ctx.add(1.0, 2.0)
        ctx.mul(np.float64(1.5), np.float64(2.5))
        assert ctx.op_count == before + 2

    def test_neg_abs_scalar_exact(self):
        ctx = get_context("takum32")
        assert float(ctx.neg(1.5)) == -1.5
        assert float(ctx.abs(-1.5)) == 1.5

    def test_use_tables_false_scalar_ops(self):
        """Opt-out contexts must round scalars through the analytic kernels."""
        analytic = get_context("posit16", use_tables=False)
        default = get_context("posit16")
        for v in (0.3, -1.7, 1e8, 1e-8):
            assert float(analytic.round_scalar(v)) == float(default.round_scalar(v))

    def test_forced_tables_scalar_ops(self):
        previous = tables_mod.set_enabled(False)
        try:
            forced = get_context("takum16", use_tables=True)
            plain = get_context("takum16")
            for v in (0.3, -1.7, 1e8):
                assert float(forced.round_scalar(v)) == float(plain.round_scalar(v))
        finally:
            tables_mod.set_enabled(previous)

    def test_reference_context_keeps_extended_precision(self):
        ctx = get_context("reference")
        one = np.longdouble(1.0)
        eps = np.finfo(np.longdouble).eps
        out = ctx.add(one, np.longdouble(eps))
        assert out > one  # a float64 round-trip would have lost the eps

    def test_longdouble_emulated_scalar_ops_keep_precision(self):
        """posit64 scalar ops must not round-trip through Python floats."""
        ctx = get_context("posit64")
        one = np.longdouble(1.0)
        # machine epsilon of posit64 around 1.0 is 2^-59, below float64's 2^-52
        eps59 = np.ldexp(np.longdouble(1.0), -59)
        out = ctx.add(one, eps59)
        assert out > one
        assert float(np.log2(out - one)) == pytest.approx(-59, abs=1e-6)


class TestSolverEquivalence:
    """The scalar fast path must not change solver trajectories at all."""

    @pytest.mark.parametrize("name", ["posit32", "takum32"])
    def test_partialschur_identical_with_and_without_fast_path(self, name):
        from repro.core import partialschur
        from tests.conftest import random_symmetric_csr

        matrix = random_symmetric_csr(24, density=0.2, seed=4)
        result_fast = partialschur(matrix, nev=4, tol=1e-6, ctx=name, restarts=10, seed=1)

        fmt = get_format(name)
        saved_kernel = type(fmt).has_scalar_kernel
        saved_cutoff = fmt.scalar_cutoff
        try:
            type(fmt).has_scalar_kernel = False
            fmt.scalar_cutoff = 0
            # neutralise the context-level scalar plumbing as well: route
            # every scalar rounding back through the vector kernel
            result_slow = partialschur(
                matrix, nev=4, tol=1e-6, ctx=name, restarts=10, seed=1
            )
        finally:
            type(fmt).has_scalar_kernel = saved_kernel
            fmt.scalar_cutoff = saved_cutoff
        assert np.array_equal(
            np.asarray(result_fast.eigenvalues, dtype=np.float64),
            np.asarray(result_slow.eigenvalues, dtype=np.float64),
        )
        assert result_fast.matvecs == result_slow.matvecs
        assert result_fast.restarts == result_slow.restarts
