"""Tests of the compute contexts (per-operation rounding kernels)."""

import numpy as np
import pytest
import warnings

from repro.arithmetic import (
    DynamicRangeError,
    EmulatedContext,
    NativeContext,
    ReferenceContext,
    get_context,
    get_format,
)
from tests.conftest import random_symmetric_csr


class TestGetContext:
    def test_native_contexts(self):
        assert isinstance(get_context("float64"), NativeContext)
        assert isinstance(get_context("float32"), NativeContext)
        assert isinstance(get_context("reference"), ReferenceContext)
        assert get_context("reference").dtype == np.longdouble

    def test_emulated_contexts(self):
        for name in ("bfloat16", "posit16", "takum8", "E4M3"):
            ctx = get_context(name)
            assert isinstance(ctx, EmulatedContext)
            assert ctx.name == name

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            get_context("float8_e3m4")

    def test_invalid_accumulation_rejected(self):
        with pytest.raises(ValueError):
            get_context("float64", accumulation="random")


class TestElementwiseOps:
    def test_native_ops_match_numpy(self, float64_ctx, rng):
        a = rng.standard_normal(50)
        b = rng.standard_normal(50)
        assert np.array_equal(float64_ctx.add(a, b), a + b)
        assert np.array_equal(float64_ctx.mul(a, b), a * b)
        assert np.array_equal(float64_ctx.sub(a, b), a - b)

    def test_emulated_ops_are_rounded(self):
        ctx = get_context("bfloat16")
        a = ctx.asarray([1.0])
        b = ctx.asarray([3.0])
        # 1/3 rounded to bfloat16
        expected = get_format("bfloat16").round_scalar(1.0 / 3.0)
        assert float(ctx.div(a, b)[0]) == expected

    def test_results_stay_representable(self, emulated_ctx, rng):
        fmt = emulated_ctx.format
        a = emulated_ctx.asarray(rng.standard_normal(64))
        b = emulated_ctx.asarray(rng.standard_normal(64))
        for op in (emulated_ctx.add, emulated_ctx.sub, emulated_ctx.mul):
            out = op(a, b)
            finite = np.isfinite(out)
            again = fmt.round_array(out[finite])
            assert np.array_equal(again, out[finite])

    def test_neg_and_abs_are_exact(self, emulated_ctx, rng):
        a = emulated_ctx.asarray(rng.standard_normal(32))
        assert np.array_equal(emulated_ctx.neg(a), -a)
        assert np.array_equal(emulated_ctx.abs(a), np.abs(a))

    def test_sqrt(self):
        ctx = get_context("takum16")
        out = float(ctx.sqrt(ctx.asarray([2.0]))[0])
        assert out == pytest.approx(np.sqrt(2.0), rel=1e-3)

    def test_op_counting(self):
        ctx = get_context("posit16")
        before = ctx.op_count
        ctx.add(ctx.asarray([1.0, 2.0]), ctx.asarray([3.0, 4.0]))
        assert ctx.op_count == before + 2

    def test_op_counting_disabled(self):
        ctx = get_context("posit16", count_ops=False)
        ctx.add(ctx.asarray([1.0]), ctx.asarray([2.0]))
        assert ctx.op_count == 0


class TestReductions:
    def test_dot_exact_values(self, float64_ctx):
        x = np.arange(1.0, 9.0)
        assert float(float64_ctx.dot(x, x)) == float(np.dot(x, x))

    def test_pairwise_vs_sequential_same_exact_result(self):
        # with exactly representable data and no rounding both orders agree
        ctx_p = get_context("float64", accumulation="pairwise")
        ctx_s = get_context("float64", accumulation="sequential")
        x = np.arange(1.0, 20.0)
        assert float(ctx_p.reduce_sum(x)) == float(ctx_s.reduce_sum(x))

    def test_accumulation_order_changes_low_precision_result(self, rng):
        x = rng.standard_normal(257)
        ctx_p = get_context("bfloat16", accumulation="pairwise")
        ctx_s = get_context("bfloat16", accumulation="sequential")
        xp = ctx_p.asarray(x)
        rp = float(ctx_p.reduce_sum(xp))
        rs = float(ctx_s.reduce_sum(xp))
        exact = float(np.sum(xp))
        # pairwise should not be further from the exact sum than sequential
        assert abs(rp - exact) <= abs(rs - exact) + 0.25

    def test_empty_reduction(self, float64_ctx):
        assert float(float64_ctx.reduce_sum(np.zeros(0))) == 0.0

    def test_norm_scaled_avoids_overflow(self):
        ctx = get_context("E4M3")
        # the squares of the entries overflow 448 but the norm itself (374)
        # is representable: the scaled algorithm must survive, the naive one
        # overflows to NaN
        x = ctx.asarray([300.0, 200.0, 100.0])
        norm = float(ctx.norm2(x))
        assert np.isfinite(norm)
        assert norm == pytest.approx(np.linalg.norm([300.0, 200.0, 100.0]), rel=0.15)
        assert not np.isfinite(float(ctx.norm2_naive(x)))

    def test_norm_of_zero_vector(self, emulated_ctx):
        assert float(emulated_ctx.norm2(np.zeros(5))) == 0.0

    def test_hypot_survives_near_format_maximum_e4m3(self):
        # regression: sqrt(a² + b²) used to overflow E4M3 (max 448) to NaN
        # for representable inputs; the scaled form must return the correctly
        # rounded magnitude
        ctx = get_context("E4M3")
        a, b = np.float64(300.0), np.float64(200.0)
        naive = ctx.sqrt(ctx.add(ctx.mul(a, a), ctx.mul(b, b)))
        assert not np.isfinite(float(naive))  # the failure mode being fixed
        out = float(ctx.hypot(a, b))
        assert np.isfinite(out)
        assert out == pytest.approx(np.hypot(300.0, 200.0), rel=0.15)

    def test_hypot_survives_near_format_maximum_posit8(self):
        # posits saturate instead of overflowing: the naive form silently
        # returns sqrt(maxpos) = 4096 where the true magnitude is ~11585
        ctx = get_context("posit8")
        a = ctx.round_scalar(8192.0)
        assert float(a) == 8192.0  # representable input near the top decade
        naive = float(ctx.sqrt(ctx.add(ctx.mul(a, a), ctx.mul(a, a))))
        assert naive == pytest.approx(4096.0)
        out = float(ctx.hypot(a, a))
        assert out == pytest.approx(8192.0)  # nearest posit8 to 8192*sqrt(2)

    def test_hypot_matches_composed_scaling(self, emulated_ctx):
        # scaled hypot must equal the norm2-style composition (divide both
        # operands, square, sum, sqrt, rescale) bit for bit
        ctx = emulated_ctx
        rng = np.random.default_rng(17)
        for _ in range(25):
            a, b = (ctx.round_scalar(v) for v in rng.standard_normal(2))
            scale = max(abs(a), abs(b))
            if float(scale) == 0.0:
                continue
            ha = ctx.div(abs(a), scale)
            hb = ctx.div(abs(b), scale)
            composed = ctx.mul(
                scale,
                ctx.sqrt(ctx.add(ctx.mul(ha, ha), ctx.mul(hb, hb))),
            )
            assert float(ctx.hypot(a, b)) == float(composed)

    def test_hypot_edge_cases(self, emulated_ctx):
        ctx = emulated_ctx
        zero = np.float64(0.0)
        assert float(ctx.hypot(zero, zero)) == 0.0
        assert float(ctx.hypot(ctx.round_scalar(3.0), zero)) == 3.0
        assert np.isnan(float(ctx.hypot(np.float64(np.nan), np.float64(1.0))))
        # array branch agrees with the scalar branch elementwise
        a = ctx.round(np.asarray([3.0, 0.5, 0.0], dtype=ctx.dtype))
        b = ctx.round(np.asarray([4.0, 0.25, 0.0], dtype=ctx.dtype))
        vec = ctx.hypot(a, b)
        for i in range(3):
            assert float(vec[i]) == float(ctx.hypot(a[i], b[i]))

    def test_axpy_and_scale(self, float64_ctx, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        assert np.allclose(float64_ctx.axpy(2.0, x, y), y + 2.0 * x)
        assert np.allclose(float64_ctx.scale(3.0, x), 3.0 * x)


class TestDenseKernels:
    def test_gemv_matches_numpy(self, float64_ctx, rng):
        M = rng.standard_normal((7, 5))
        x = rng.standard_normal(5)
        assert np.allclose(float64_ctx.gemv(M, x), M @ x)

    def test_gemv_t_matches_numpy(self, float64_ctx, rng):
        M = rng.standard_normal((7, 5))
        x = rng.standard_normal(7)
        assert np.allclose(float64_ctx.gemv_t(M, x), M.T @ x)

    def test_gemm_matches_numpy(self, float64_ctx, rng):
        A = rng.standard_normal((6, 4))
        B = rng.standard_normal((4, 3))
        assert np.allclose(float64_ctx.gemm(A, B), A @ B)

    def test_gemm_dimension_mismatch(self, float64_ctx, rng):
        with pytest.raises(ValueError):
            float64_ctx.gemm(rng.standard_normal((3, 3)), rng.standard_normal((4, 2)))

    def test_empty_dimensions(self, float64_ctx):
        assert float64_ctx.gemv(np.zeros((3, 0)), np.zeros(0)).shape == (3,)
        assert float64_ctx.gemv_t(np.zeros((0, 4)), np.zeros(0)).shape == (4,)

    def test_low_precision_gemv_close_to_exact(self, rng):
        ctx = get_context("takum16")
        M = ctx.asarray(rng.standard_normal((8, 8)))
        x = ctx.asarray(rng.standard_normal(8))
        assert np.allclose(ctx.gemv(M, x), np.asarray(M) @ np.asarray(x), atol=0.02)


class TestSparseKernel:
    def test_spmv_matches_scipy(self, float64_ctx, rng):
        A = random_symmetric_csr(60, density=0.1, seed=3)
        x = rng.standard_normal(60)
        expected = A.toscipy() @ x
        assert np.allclose(float64_ctx.spmv(A, x), expected)

    def test_spmv_sequential_matches_scipy(self, rng):
        ctx = get_context("float64", accumulation="sequential")
        A = random_symmetric_csr(40, density=0.15, seed=5)
        x = rng.standard_normal(40)
        assert np.allclose(ctx.spmv(A, x), A.toscipy() @ x)

    def test_spmv_with_empty_rows(self, float64_ctx):
        from repro.sparse import CSRMatrix

        A = CSRMatrix(
            np.array([2.0, 3.0]),
            np.array([1, 0]),
            np.array([0, 1, 1, 2]),
            (3, 3),
        )
        out = float64_ctx.spmv(A, np.array([1.0, 10.0, 100.0]))
        assert np.array_equal(out, [20.0, 0.0, 3.0])

    def test_spmv_empty_matrix(self, float64_ctx):
        from repro.sparse import CSRMatrix

        A = CSRMatrix(np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(4, dtype=np.int64), (3, 3))
        assert np.array_equal(float64_ctx.spmv(A, np.ones(3)), np.zeros(3))

    def test_spmv_low_precision_rounds_each_product(self):
        ctx = get_context("bfloat16")
        A = random_symmetric_csr(30, density=0.2, seed=9)
        Ac, _ = ctx.convert_matrix(A)
        x = ctx.asarray(np.random.default_rng(0).standard_normal(30))
        out = ctx.spmv(Ac, x)
        # every output entry must be representable in bfloat16
        fmt = get_format("bfloat16")
        finite = np.isfinite(out)
        assert np.array_equal(fmt.round_array(out[finite]), out[finite])


class TestConversion:
    def test_convert_matrix_reports_range(self):
        ctx = get_context("E4M3")
        A = random_symmetric_csr(20, density=0.2, seed=1)
        A = A.with_data(A.data * 1e6)  # far beyond 448
        _, info = ctx.convert_matrix(A)
        assert info.range_exceeded

    def test_convert_matrix_ok_for_laplacian_range(self):
        ctx = get_context("E4M3")
        A = random_symmetric_csr(20, density=0.2, seed=2)
        A = A.with_data(np.clip(A.data, -1.0, 1.0))
        converted, info = ctx.convert_matrix(A)
        assert not info.range_exceeded
        assert converted.shape == A.shape

    def test_tapered_formats_never_exceed_range(self):
        ctx = get_context("takum8")
        A = random_symmetric_csr(20, density=0.2, seed=3)
        A = A.with_data(A.data * 1e30)
        _, info = ctx.convert_matrix(A)
        assert not info.range_exceeded

    def test_dynamic_range_error_carries_info(self):
        from repro.arithmetic.base import RoundingInfo

        err = DynamicRangeError("boom", RoundingInfo(overflowed=3))
        assert err.info.overflowed == 3


class TestMachineEpsilon:
    def test_native_epsilon(self):
        assert get_context("float64").machine_epsilon == np.finfo(np.float64).eps
        assert get_context("float32").machine_epsilon == np.finfo(np.float32).eps

    def test_emulated_epsilon(self):
        assert get_context("bfloat16").machine_epsilon == 2.0**-7
        assert get_context("posit16").machine_epsilon == 2.0**-11


class TestOutKeywordContract:
    """The unified ``out=`` signature and its positional deprecation shim."""

    @pytest.mark.parametrize("name", ["float64", "takum8"])
    def test_keyword_out_is_silent_and_written(self, name):
        ctx = get_context(name)
        a = ctx.round(np.linspace(0.25, 2.0, 8).astype(ctx.dtype))
        b = ctx.round(np.linspace(0.5, 1.5, 8).astype(ctx.dtype))
        buffer = np.empty_like(a)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = ctx.add(a, b, out=buffer)
        assert result is buffer
        assert np.array_equal(buffer, ctx.add(a, b))

    @pytest.mark.parametrize("name", ["float64", "takum8"])
    def test_positional_out_warns_but_works(self, name):
        ctx = get_context(name)
        a = ctx.round(np.linspace(0.25, 2.0, 8).astype(ctx.dtype))
        b = ctx.round(np.linspace(0.5, 1.5, 8).astype(ctx.dtype))
        expected = ctx.mul(a, b)
        buffer = np.empty_like(a)
        with pytest.warns(DeprecationWarning):
            result = ctx.mul(a, b, buffer)
        assert result is buffer
        assert np.array_equal(buffer, expected)
        with pytest.warns(DeprecationWarning):
            rounded = ctx.round(a.copy(), np.empty_like(a))
        assert np.array_equal(rounded, a)

    def test_scalar_operands_leave_out_untouched(self):
        ctx = get_context("takum8")
        buffer = np.full(4, 7.0, dtype=ctx.dtype)
        result = ctx.add(ctx.dtype(1.0), ctx.dtype(2.0), out=buffer)
        assert np.isscalar(result) or result.ndim == 0
        assert np.array_equal(buffer, np.full(4, 7.0, dtype=ctx.dtype))

    def test_positional_out_rejects_extra_arguments(self):
        ctx = get_context("float64")
        a = np.ones(4)
        with pytest.raises(TypeError):
            ctx.add(a, a, np.empty(4), np.empty(4))
        with pytest.raises(TypeError):
            ctx.add(a, a, np.empty(4), out=np.empty(4))
