"""Tests of the experiment command-line interface."""

import os
import subprocess
import sys

import pytest

from repro.experiments.cli import build_parser, main


def _run_cli_subprocess(*args):
    """Invoke the module-form entry point in a fresh interpreter."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


class TestEntryPointSmoke:
    """The ``python -m`` entry point must not silently rot: exercise --help
    and a tiny table1 run through a real subprocess."""

    def test_help_runs_and_documents_opt_outs(self):
        proc = _run_cli_subprocess("--help")
        assert proc.returncode == 0, proc.stderr
        assert "--suite" in proc.stdout
        # the rounding-backend opt-out hierarchy is surfaced in the epilog
        assert "REPRO_DISABLE_ROUNDING_TABLES" in proc.stdout
        assert "use_tables" in proc.stdout

    def test_table1_run(self):
        proc = _run_cli_subprocess("--suite", "table1", "--scale", "0.001")
        assert proc.returncode == 0, proc.stderr
        assert "biological" in proc.stdout


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.suite == "general"
        assert args.widths == [8, 16, 32, 64]
        assert args.matrices == 6

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--suite", "bogus"])

    def test_rejects_unknown_width(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--widths", "12"])

    def test_workers_env_default(self, monkeypatch):
        """$REPRO_WORKERS sets the --workers default; the flag overrides."""
        monkeypatch.setenv("REPRO_WORKERS", "3")
        args = build_parser().parse_args([])
        assert args.workers == 3
        args = build_parser().parse_args(["--workers", "2"])
        assert args.workers == 2
        monkeypatch.delenv("REPRO_WORKERS")
        assert build_parser().parse_args([]).workers == 1

    def test_workers_env_garbage_falls_back(self, monkeypatch):
        """An empty or non-numeric $REPRO_WORKERS must not break the CLI."""
        for bad in ("", "  ", "auto"):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            assert build_parser().parse_args([]).workers == 1


class TestMain:
    def test_table1_mode(self, capsys):
        assert main(["--suite", "table1"]) == 0
        out = capsys.readouterr().out
        assert "biological" in out and "protein" in out

    def test_small_general_run_with_csv(self, tmp_path, capsys):
        output = tmp_path / "records.csv"
        code = main(
            [
                "--suite",
                "general",
                "--widths",
                "32",
                "--matrices",
                "1",
                "--min-size",
                "20",
                "--max-size",
                "24",
                "--restarts",
                "10",
                "--no-plots",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "float32" in out
        text = output.read_text()
        assert "matrix" in text.splitlines()[0]
        assert len(text.splitlines()) >= 2

    def test_crashed_worker_exits_nonzero(self, monkeypatch, capsys, tmp_path):
        """Crashed worker cells keep sibling results but must not read as
        success: the CLI writes all reports, then exits 2."""
        from repro.experiments import store as store_mod

        def boom(test_matrix, formats, cfg):
            raise RuntimeError("cli crash injection")

        monkeypatch.setattr(store_mod, "run_matrix_experiment", boom)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        code = main(
            [
                "--suite",
                "general",
                "--widths",
                "32",
                "--matrices",
                "1",
                "--min-size",
                "20",
                "--max-size",
                "24",
                "--restarts",
                "8",
                "--no-plots",
            ]
        )
        assert code == 2

    def test_graph_class_run(self, capsys):
        code = main(
            [
                "--suite",
                "infrastructure",
                "--widths",
                "16",
                "--matrices",
                "1",
                "--scale",
                "0.03",
                "--min-size",
                "20",
                "--max-size",
                "26",
                "--restarts",
                "8",
                "--no-plots",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "takum16" in out


class TestStoreSubcommand:
    def test_store_ls_runs(self):
        proc = _run_cli_subprocess("store", "ls")
        assert proc.returncode == 0, proc.stderr
        assert "entries:" in proc.stdout

    def test_store_gc_runs(self):
        proc = _run_cli_subprocess("store", "gc")
        assert proc.returncode == 0, proc.stderr
        assert "removed" in proc.stdout

    def test_store_clear_noninteractive_aborts(self, tmp_path):
        """Without --yes and without a tty, clear must refuse gracefully
        (EOF on stdin reads as 'no'), not crash with EOFError."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        env["REPRO_STORE"] = str(tmp_path / "store")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "store", "clear"],
            capture_output=True,
            text=True,
            env=env,
            stdin=subprocess.DEVNULL,
            timeout=60,
        )
        assert proc.returncode == 1
        assert "aborted" in proc.stderr
