"""Tests of the experiment command-line interface."""

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.suite == "general"
        assert args.widths == [8, 16, 32, 64]
        assert args.matrices == 6

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--suite", "bogus"])

    def test_rejects_unknown_width(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--widths", "12"])


class TestMain:
    def test_table1_mode(self, capsys):
        assert main(["--suite", "table1"]) == 0
        out = capsys.readouterr().out
        assert "biological" in out and "protein" in out

    def test_small_general_run_with_csv(self, tmp_path, capsys):
        output = tmp_path / "records.csv"
        code = main(
            [
                "--suite",
                "general",
                "--widths",
                "32",
                "--matrices",
                "1",
                "--min-size",
                "20",
                "--max-size",
                "24",
                "--restarts",
                "10",
                "--no-plots",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "float32" in out
        text = output.read_text()
        assert "matrix" in text.splitlines()[0]
        assert len(text.splitlines()) >= 2

    def test_graph_class_run(self, capsys):
        code = main(
            [
                "--suite",
                "infrastructure",
                "--widths",
                "16",
                "--matrices",
                "1",
                "--scale",
                "0.03",
                "--min-size",
                "20",
                "--max-size",
                "26",
                "--restarts",
                "8",
                "--no-plots",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "takum16" in out
