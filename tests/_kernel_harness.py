"""Differential kernel-test harness shared by the rounding-kernel suites.

Every rounding backend in :mod:`repro.arithmetic` — the integer bit kernels
(one-word float64 and two-word extended), the lookup tables and the scalar
kernels — must be bit-identical to the analytic ground truth
(``round_array_analytic``).  This module centralises the machinery those
proofs share so each suite states *what* it sweeps, not how:

* **sweep generators**, all seeded and format-aware: log-uniform random
  magnitudes across (and beyond) a format's dynamic range in its own work
  precision, the shared NaR/NaN/inf/signed-zero edge battery, range/epsilon
  boundary values, and exact adjacent-code midpoints (the rounding ties),
  either from explicit code ranges or sampled around binade boundaries;
* **comparators** that work for any work dtype: longdouble results cannot be
  compared as raw words (the x87 16-byte slots carry 6 bytes of undefined
  padding), so identity is asserted as value + NaN-position + zero-sign
  equality, which is equivalent to word identity for canonical floats;
* **differential drivers** running any kernel-like callable against the
  analytic kernel over a batch of named sweeps.

The harness is import-light (no fixtures): suites compose these helpers with
their own parametrisation.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "assert_rounded_equal",
    "assert_scalar_matches_vector",
    "edge_battery",
    "random_sweep",
    "boundary_sweep",
    "midpoint_sweep",
    "code_midpoints",
    "binade_boundary_codes",
    "differential_round_check",
    "run_differential_sweeps",
]


# --------------------------------------------------------------------- #
# comparators
# --------------------------------------------------------------------- #
def assert_rounded_equal(got, expected, context=""):
    """Require value identity: same NaN positions, equal values elsewhere,
    and matching zero signs.

    For canonical float64 this is exactly word identity; for longdouble it
    is the strongest portable comparison (raw words differ in undefined
    padding bytes).
    """
    got = np.asarray(got)
    expected = np.asarray(expected)
    assert got.shape == expected.shape, f"{context}: shape mismatch"
    nan_g, nan_e = np.isnan(got), np.isnan(expected)
    assert np.array_equal(nan_g, nan_e), f"{context}: NaN positions differ"
    eq = got[~nan_g] == expected[~nan_e]
    assert bool(np.all(eq)), (
        f"{context}: rounded values differ at "
        f"{np.flatnonzero(~eq)[:8].tolist()} "
        f"(got {got[~nan_g][~eq][:4]!r}, expected {expected[~nan_e][~eq][:4]!r})"
    )
    sg = np.signbit(got[~nan_g])
    se = np.signbit(expected[~nan_e])
    assert np.array_equal(sg, se), f"{context}: zero signs differ"


def assert_scalar_matches_vector(fmt, values, context=""):
    """Round ``values`` through the scalar and vector analytic kernels and
    require bit identity element by element."""
    values = np.asarray(values, dtype=fmt.work_dtype)
    expected = fmt.round_array_analytic(values)
    for i, v in enumerate(values):
        got = fmt.round_scalar_analytic(v)
        exp = expected[i]
        if exp != exp:  # NaN expected
            assert got != got, f"{fmt.name}{context}: {v!r} -> {got!r}, expected NaN"
            continue
        assert got == exp, f"{fmt.name}{context}: {v!r} -> {got!r}, expected {exp!r}"
        assert bool(np.signbit(np.asarray(got))) == bool(np.signbit(exp)), (
            f"{fmt.name}{context}: {v!r} -> {got!r} has wrong zero sign"
        )


# --------------------------------------------------------------------- #
# sweep generators
# --------------------------------------------------------------------- #
def edge_battery(dtype=np.float64) -> np.ndarray:
    """NaR/NaN/inf/signed-zero/extreme battery shared by every family."""
    return np.asarray(
        [
            0.0,
            -0.0,
            math.inf,
            -math.inf,
            math.nan,
            5e-324,
            -5e-324,
            1e-308,
            -1e-308,
            1e308,
            -1e308,
            1.0,
            -1.0,
        ],
        dtype=dtype,
    )


def _exponent_span(fmt) -> float:
    """Binade span covering the format's range with ~20% overshoot."""
    top = math.log2(float(fmt.max_value)) if np.isfinite(fmt.max_value) else 1024.0
    return max(40.0, 1.2 * abs(top) + 16.0)


def random_sweep(fmt, n=20_000, seed=42, span=None) -> np.ndarray:
    """Sign-symmetric log-uniform magnitudes across (and beyond) ``fmt``'s
    dynamic range, generated in the format's own work precision so that
    longdouble-only exponents are reached, with zeros and the edge battery
    mixed in."""
    rng = np.random.default_rng(seed)
    wd = fmt.work_dtype
    span = _exponent_span(fmt) if span is None else span
    exponents = rng.uniform(-span, span, n).astype(wd)
    with np.errstate(over="ignore"):  # overshoot past the work range is wanted
        values = (wd(2.0) ** exponents) * rng.standard_normal(n)
    values[rng.integers(0, n, n // 64)] = 0.0
    return np.concatenate([values, edge_battery(wd)]).astype(wd)


def solver_regime_sweep(fmt, n=20_000, seed=6) -> np.ndarray:
    """Magnitudes around 1.0, the regime the solvers live in."""
    rng = np.random.default_rng(seed)
    wd = fmt.work_dtype
    return (rng.standard_normal(n) * np.exp(rng.uniform(-12, 12, n))).astype(wd)


def boundary_sweep(fmt) -> np.ndarray:
    """Specials, range edges and their work-precision neighbours."""
    wd = fmt.work_dtype
    maxv = wd(fmt.max_value)
    minp = wd(fmt.min_positive)
    pieces = [
        0.0,
        -0.0,
        math.inf,
        -math.inf,
        math.nan,
        1.0,
        -1.0,
        1e300,
        -1e300,
        1e-300,
        5e-324,
        -5e-324,
        float(maxv),
        float(minp),
        float(maxv) * 2.0,
        float(minp) * 0.5,
    ]
    values = [wd(p) for p in pieces]
    one = wd(1.0)
    eps = wd(fmt.machine_epsilon)
    # spacing around 1.0, including the half-ulp tie in the work precision
    values += [one + eps, one - eps, one + eps / wd(2.0), one - eps / wd(4.0)]
    return np.asarray(values, dtype=wd)


def code_midpoints(fmt, codes) -> np.ndarray:
    """Exact midpoints of each adjacent code pair ``(c, c + 1)``.

    Midpoints whose decoded endpoints are non-finite, zero-crossing, or not
    exactly representable in the work precision are skipped, so every value
    returned is a *true* rounding tie exercising ties-to-even on the code
    grid.  Both signs are returned.
    """
    wd = fmt.work_dtype
    half = wd(0.5)
    mids = []
    for code in codes:
        v1 = fmt.decode_code(int(code))
        v2 = fmt.decode_code(int(code) + 1)
        if not (np.isfinite(v1) and np.isfinite(v2)):
            continue
        if (v1 < 0) != (v2 < 0) or v1 == v2:
            continue
        a, b = wd(v1), wd(v2)
        mid = (a + b) * half
        if mid == a or mid == b:  # the extra bit does not fit work precision
            continue
        if mid - a != b - mid:  # (a + b) rounded: not an equidistant tie
            continue
        mids += [mid, -mid]
    return np.asarray(mids, dtype=wd)


def midpoint_sweep(fmt, span=256) -> np.ndarray:
    """Adjacent-code midpoints from the small-, mid- and large-magnitude
    ends of the positive code range (the classic tie workload)."""
    half_codes = 1 << (fmt.bits - 1)
    ranges = [range(1, min(span, half_codes - 1))]
    if fmt.bits > 10:
        mid_start = 1 << (fmt.bits - 3)
        ranges.append(range(mid_start, min(mid_start + span, half_codes - 1)))
        ranges.append(range(max(half_codes - span, 1), half_codes - 1))
    codes = [c for code_range in ranges for c in code_range]
    return code_midpoints(fmt, codes)


def binade_boundary_codes(fmt, exponents, window=48) -> np.ndarray:
    """Codes in a ``window`` around each binade boundary ``2**e``.

    Encoding ``2**e`` places the window exactly where the format's regime /
    characteristic / exponent fields change, the regions where tapered
    rounding grids switch step size — the hard cases for any kernel.
    Out-of-range exponents saturate harmlessly to the end of the code range.
    """
    wd = fmt.work_dtype
    anchors = fmt.encode_analytic(
        fmt.round_array_analytic(wd(2.0) ** np.asarray(exponents, dtype=wd))
    ).astype(np.int64)
    half_codes = 1 << (fmt.bits - 1)
    codes = (anchors[:, None] + np.arange(-window, window + 1)[None, :]).ravel()
    codes = codes[(codes >= 1) & (codes < half_codes - 1)]
    return np.unique(codes)


# --------------------------------------------------------------------- #
# differential drivers
# --------------------------------------------------------------------- #
def differential_round_check(fmt, round_fn, values, context=""):
    """Run ``round_fn`` against ``fmt.round_array_analytic`` over ``values``
    and require value identity.  ``values`` is never mutated."""
    values = np.asarray(values, dtype=fmt.work_dtype)
    got = round_fn(values.copy())
    expected = fmt.round_array_analytic(values.copy())
    assert_rounded_equal(got, expected, f"{fmt.name}{context}")


def run_differential_sweeps(fmt, round_fn, *, n=20_000, seed=42, span=256):
    """The standard battery: random + boundary + adjacent-code-midpoint
    sweeps of ``round_fn`` against the analytic kernel."""
    differential_round_check(fmt, round_fn, random_sweep(fmt, n, seed), " random")
    differential_round_check(fmt, round_fn, boundary_sweep(fmt), " boundary")
    differential_round_check(fmt, round_fn, midpoint_sweep(fmt, span), " ties")
