"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.arithmetic import LONGDOUBLE_EXTENDED, available_formats, get_context, get_format
from repro.sparse import COOMatrix, CSRMatrix


def pytest_collection_modifyitems(config, items):
    """Capability skip: tests marked ``extended_longdouble`` need a real
    extended-precision ``numpy.longdouble`` (x86 Linux/macOS).  On platforms
    where longdouble is plain float64 (Windows, most ARM builds) the 64-bit
    posit/takum work arithmetic silently loses precision, so the
    precision-sensitive assertions cannot hold and are skipped."""
    if LONGDOUBLE_EXTENDED:
        return
    skip = pytest.mark.skip(
        reason="numpy.longdouble is float64 on this platform; 64-bit "
        "posit/takum emulation loses precision (repro.arithmetic.LONGDOUBLE_EXTENDED)"
    )
    for item in items:
        if "extended_longdouble" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(autouse=True, scope="session")
def _isolated_experiment_store(tmp_path_factory):
    """Point $REPRO_STORE at a per-session temp dir.

    The experiment CLI defaults to the user's ``~/.cache/repro-store``;
    tests (including the subprocess-based CLI smoke tests, which inherit
    the environment) must neither read from nor pollute it."""
    previous = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = str(tmp_path_factory.mktemp("repro-store"))
    yield
    if previous is None:
        os.environ.pop("REPRO_STORE", None)
    else:
        os.environ["REPRO_STORE"] = previous


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def float64_ctx():
    return get_context("float64")


@pytest.fixture
def reference_ctx():
    return get_context("reference")


@pytest.fixture(params=["bfloat16", "posit16", "takum16", "E4M3"])
def emulated_ctx(request):
    """A representative sample of emulated contexts."""
    return get_context(request.param)


@pytest.fixture(params=sorted(available_formats()))
def any_format(request):
    """Every registered number format."""
    return get_format(request.param)


def random_symmetric_csr(n: int, density: float = 0.08, seed: int = 0) -> CSRMatrix:
    """Small random sparse symmetric matrix used across solver tests."""
    rng = np.random.default_rng(seed)
    nnz = max(n, int(density * n * n / 2))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    vals = rng.standard_normal(nnz)
    all_rows = np.concatenate([rows, cols, np.arange(n)])
    all_cols = np.concatenate([cols, rows, np.arange(n)])
    all_vals = np.concatenate([vals * 0.5, vals * 0.5, rng.standard_normal(n)])
    return COOMatrix(all_rows, all_cols, all_vals, (n, n)).tocsr()


@pytest.fixture
def small_symmetric_matrix():
    return random_symmetric_csr(40, density=0.1, seed=7)


@pytest.fixture
def medium_symmetric_matrix():
    return random_symmetric_csr(120, density=0.05, seed=11)
