"""Tests of the dense context-generic kernels (reflectors, tridiagonal, Schur)."""

import numpy as np
import pytest

from repro.arithmetic import get_context
from repro.linalg import (
    EigenConvergenceError,
    apply_reflector_left,
    apply_reflector_right,
    givens_rotation,
    hessenberg,
    householder_vector,
    real_schur,
    schur_eigenvalues,
    symmetric_eigen,
    tridiagonal_eigen,
    tridiagonalize,
)


class TestHouseholder:
    def test_annihilates_tail(self, float64_ctx, rng):
        x = rng.standard_normal(8)
        v, beta, alpha = householder_vector(float64_ctx, x)
        H = np.eye(8) - float(beta) * np.outer(v, v)
        y = H @ x
        assert abs(abs(y[0]) - np.linalg.norm(x)) < 1e-12
        assert np.max(np.abs(y[1:])) < 1e-12
        assert abs(float(alpha)) == pytest.approx(np.linalg.norm(x))

    def test_zero_vector_gives_identity_reflector(self, float64_ctx):
        v, beta, alpha = householder_vector(float64_ctx, np.zeros(5))
        assert float(beta) == 0.0
        assert float(alpha) == 0.0

    def test_reflector_is_orthogonal(self, float64_ctx, rng):
        x = rng.standard_normal(6)
        v, beta, _ = householder_vector(float64_ctx, x)
        H = np.eye(6) - float(beta) * np.outer(v, v)
        assert np.allclose(H @ H.T, np.eye(6), atol=1e-12)

    def test_apply_left_right_match_dense(self, float64_ctx, rng):
        A = rng.standard_normal((6, 6))
        x = rng.standard_normal(6)
        v, beta, _ = householder_vector(float64_ctx, x)
        H = np.eye(6) - float(beta) * np.outer(v, v)
        assert np.allclose(apply_reflector_left(float64_ctx, v, beta, A), H @ A)
        assert np.allclose(apply_reflector_right(float64_ctx, A, v, beta), A @ H)

    def test_low_precision_reflector_stays_finite(self):
        ctx = get_context("E4M3")
        x = ctx.asarray([300.0, 200.0, 100.0])  # squared entries overflow E4M3
        v, beta, alpha = householder_vector(ctx, x)
        assert np.all(np.isfinite(v))
        assert np.isfinite(float(beta))


class TestGivens:
    def test_rotation_zeroes_second_component(self, float64_ctx, rng):
        for _ in range(10):
            a, b = rng.standard_normal(2)
            c, s, r = givens_rotation(float64_ctx, a, b)
            assert abs(c * b - s * a) < 1e-12
            assert abs(c * a + s * b - r) < 1e-12
            assert abs(c * c + s * s - 1.0) < 1e-12

    def test_trivial_cases(self, float64_ctx):
        c, s, r = givens_rotation(float64_ctx, 3.0, 0.0)
        assert (float(c), float(s), float(r)) == (1.0, 0.0, 3.0)
        c, s, r = givens_rotation(float64_ctx, 0.0, 2.0)
        assert (float(c), float(s), float(r)) == (0.0, 1.0, 2.0)


class TestTridiagonalization:
    def test_similarity_and_structure(self, float64_ctx, rng):
        B = rng.standard_normal((10, 10))
        A = (B + B.T) / 2
        d, e, Q = tridiagonalize(float64_ctx, A)
        T = Q.T @ A @ Q
        assert np.allclose(Q @ Q.T, np.eye(10), atol=1e-12)
        # T must be tridiagonal
        off = T - np.diag(np.diag(T)) - np.diag(np.diag(T, 1), 1) - np.diag(np.diag(T, -1), -1)
        assert np.max(np.abs(off)) < 1e-10
        assert np.allclose(np.diag(T), d, atol=1e-10)
        assert np.allclose(np.diag(T, -1), e, atol=1e-10)

    def test_rejects_non_square(self, float64_ctx, rng):
        with pytest.raises(ValueError):
            tridiagonalize(float64_ctx, rng.standard_normal((3, 4)))


class TestTridiagonalEigen:
    def test_matches_numpy_on_tridiagonal(self, float64_ctx, rng):
        n = 12
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
        w, Z = tridiagonal_eigen(float64_ctx, d, e)
        assert np.allclose(np.sort(w), np.sort(np.linalg.eigvalsh(T)), atol=1e-10)
        assert np.allclose(Z @ Z.T, np.eye(n), atol=1e-10)
        assert np.allclose(T @ Z, Z @ np.diag(w), atol=1e-9)

    def test_degenerate_spectrum(self, float64_ctx):
        # all eigenvalues equal
        n = 6
        w, Z = tridiagonal_eigen(float64_ctx, np.full(n, 3.0), np.zeros(n - 1))
        assert np.allclose(w, 3.0)
        assert np.allclose(Z, np.eye(n))

    def test_single_element(self, float64_ctx):
        w, Z = tridiagonal_eigen(float64_ctx, np.array([5.0]), np.zeros(0))
        assert w[0] == 5.0

    def test_convergence_error_on_nan(self, float64_ctx):
        with pytest.raises(EigenConvergenceError):
            tridiagonal_eigen(float64_ctx, np.array([np.nan, 1.0]), np.array([1.0]))


class TestSymmetricEigen:
    @pytest.mark.parametrize("n", [2, 5, 13, 24])
    def test_matches_numpy(self, float64_ctx, rng, n):
        B = rng.standard_normal((n, n))
        A = (B + B.T) / 2
        w, V = symmetric_eigen(float64_ctx, A)
        assert np.allclose(np.sort(w), np.linalg.eigvalsh(A), atol=1e-9)
        assert np.allclose(A @ V, V * np.asarray(w)[None, :], atol=1e-9)
        assert np.allclose(V.T @ V, np.eye(n), atol=1e-10)

    def test_empty_and_single(self, float64_ctx):
        w, V = symmetric_eigen(float64_ctx, np.zeros((0, 0)))
        assert w.shape == (0,)
        w, V = symmetric_eigen(float64_ctx, np.array([[2.5]]))
        assert w[0] == 2.5 and V[0, 0] == 1.0

    def test_low_precision_runs_and_is_roughly_correct(self, rng):
        ctx = get_context("takum16")
        B = rng.standard_normal((8, 8))
        A = (B + B.T) / 2
        w, V = symmetric_eigen(ctx, ctx.asarray(A))
        ref = np.linalg.eigvalsh(A)
        assert np.allclose(np.sort(np.asarray(w, dtype=np.float64)), ref, atol=0.05)

    def test_reference_context(self, reference_ctx, rng):
        B = rng.standard_normal((10, 10))
        A = (B + B.T) / 2
        w, V = symmetric_eigen(reference_ctx, reference_ctx.asarray(A))
        assert np.allclose(
            np.sort(np.asarray(w, dtype=np.float64)), np.linalg.eigvalsh(A), atol=1e-12
        )


class TestSchur:
    def test_hessenberg_structure(self, float64_ctx, rng):
        A = rng.standard_normal((9, 9))
        H, Q = hessenberg(float64_ctx, A)
        assert np.allclose(Q.T @ A @ Q, H, atol=1e-10)
        assert np.allclose(Q @ Q.T, np.eye(9), atol=1e-12)
        assert np.max(np.abs(np.tril(H, -2))) == 0.0

    @pytest.mark.parametrize("n", [4, 9, 16])
    def test_real_schur_eigenvalues(self, float64_ctx, rng, n):
        A = rng.standard_normal((n, n))
        T, Z = real_schur(float64_ctx, A)
        ours = np.sort_complex(schur_eigenvalues(T))
        ref = np.sort_complex(np.linalg.eigvals(A))
        assert np.allclose(ours, ref, atol=1e-6)
        assert np.allclose(Z @ T @ Z.T, A, atol=1e-6)
        assert np.allclose(Z @ Z.T, np.eye(n), atol=1e-10)

    def test_real_schur_symmetric_gives_diagonal(self, float64_ctx, rng):
        B = rng.standard_normal((8, 8))
        A = (B + B.T) / 2
        T, Z = real_schur(float64_ctx, A)
        assert np.max(np.abs(np.tril(T, -1))) < 1e-8
        assert np.allclose(np.sort(np.diag(T)), np.linalg.eigvalsh(A), atol=1e-8)

    def test_schur_eigenvalues_of_2x2_block(self):
        T = np.array([[1.0, 2.0], [-2.0, 1.0]])
        eigs = schur_eigenvalues(T)
        assert np.allclose(sorted(eigs.imag), [-2.0, 2.0])
        assert np.allclose(eigs.real, 1.0)
