"""Tests of Matrix-Market / edge-list parsing and writing."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


MM_GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment line
3 3 4
1 1 2.5
1 2 -1.0
2 3 4.0
3 3 1.0
"""

MM_SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1.0
2 1 2.0
3 2 -3.0
"""

MM_PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""


class TestMatrixMarketReader:
    def test_general(self):
        A = read_matrix_market(MM_GENERAL.splitlines())
        dense = A.todense()
        assert dense[0, 0] == 2.5
        assert dense[0, 1] == -1.0
        assert dense[1, 2] == 4.0
        assert A.nnz == 4

    def test_symmetric_expansion(self):
        A = read_matrix_market(MM_SYMMETRIC.splitlines())
        dense = A.todense()
        assert dense[1, 0] == 2.0 and dense[0, 1] == 2.0
        assert dense[2, 1] == -3.0 and dense[1, 2] == -3.0
        assert A.is_symmetric()

    def test_pattern_entries_get_value_one(self):
        A = read_matrix_market(MM_PATTERN.splitlines())
        assert A.todense()[0, 1] == 1.0

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            read_matrix_market(["1 1 1", "1 1 2.0"])

    def test_header_understating_size_is_recovered(self):
        lines = [
            "%%MatrixMarket matrix coordinate real general",
            "2 2 2",
            "1 1 1.0",
            "3 3 5.0",
        ]
        A = read_matrix_market(lines)
        assert A.shape == (3, 3)
        assert A.todense()[2, 2] == 5.0

    def test_complex_rejected(self):
        with pytest.raises(ValueError):
            read_matrix_market(
                ["%%MatrixMarket matrix coordinate complex general", "1 1 1", "1 1 1 0"]
            )

    def test_file_roundtrip(self, tmp_path):
        A = read_matrix_market(MM_GENERAL.splitlines())
        path = tmp_path / "matrix.mtx"
        write_matrix_market(path, A, comment="roundtrip test")
        B = read_matrix_market(path)
        assert np.allclose(A.todense(), B.todense())


class TestEdgeListReader:
    def test_one_based_detection(self):
        A = read_edge_list(["1 2", "2 3", "3 1"])
        assert A.shape == (3, 3)
        assert A.todense()[0, 1] == 1.0

    def test_zero_based(self):
        A = read_edge_list(["0 1", "1 2"])
        assert A.shape == (3, 3)

    def test_weights_and_comments(self):
        A = read_edge_list(["% comment", "# another", "1 2 2.5", "2 1 0.5"])
        dense = A.todense()
        assert dense[0, 1] == 2.5 and dense[1, 0] == 0.5

    def test_comma_separated(self):
        A = read_edge_list(["1,2", "2,3"])
        assert A.shape == (3, 3)

    def test_duplicate_edges_accumulate(self):
        A = read_edge_list(["1 2 1.0", "1 2 2.0"])
        assert A.todense()[0, 1] == 3.0

    def test_malformed_lines_skipped(self):
        A = read_edge_list(["1 2", "garbage line", "x y", "2 3"])
        assert A.nnz == 2

    def test_empty_input(self):
        A = read_edge_list([], num_vertices=4)
        assert A.shape == (4, 4)
        assert A.nnz == 0

    def test_num_vertices_override(self):
        A = read_edge_list(["1 2"], num_vertices=10)
        assert A.shape == (10, 10)

    def test_file_roundtrip(self, tmp_path, rng):
        dense = np.zeros((5, 5))
        dense[0, 1] = 2.0
        dense[3, 4] = 1.5
        A = CSRMatrix.from_dense(dense)
        path = tmp_path / "graph.edges"
        write_edge_list(path, A)
        B = read_edge_list(path, num_vertices=5)
        assert np.allclose(A.todense(), B.todense())

    def test_unweighted_write(self, tmp_path):
        A = CSRMatrix.from_dense(np.array([[0.0, 3.0], [0.0, 0.0]]))
        path = tmp_path / "unweighted.edges"
        write_edge_list(path, A, weighted=False)
        B = read_edge_list(path)
        assert B.todense()[0, 1] == 1.0
