"""Tests of the experiment runner, aggregation and figure/table emitters."""

import numpy as np
import pytest

from repro.datasets import TestMatrix, graph_suite, suitesparse_like
from repro.experiments import (
    ExperimentConfig,
    aggregate_by_format,
    cumulative_distribution,
    figure_csv_rows,
    figure_report,
    figure_series,
    render_figure,
    run_experiment,
    run_matrix_experiment,
    table1_report,
)
from repro.experiments.runner import RunRecord
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        eigenvalue_count=4, eigenvalue_buffer_count=2, restarts=15
    )


@pytest.fixture(scope="module")
def tiny_suite():
    return graph_suite(classes="infrastructure", scale=0.03, size_range=(20, 28), seed=3)[:2]


class TestRunMatrixExperiment:
    def test_float64_runs_are_exact_enough(self, tiny_suite, tiny_config):
        exp = run_matrix_experiment(tiny_suite[0], ["float64"], tiny_config)
        assert exp.reference.converged
        (record,) = exp.runs
        assert record.status == "ok"
        assert record.eigenvalue_relative_error < 1e-9
        assert record.eigenvector_relative_error < 1e-5
        assert record.matvecs > 0

    def test_low_precision_errors_are_larger(self, tiny_suite, tiny_config):
        exp = run_matrix_experiment(tiny_suite[0], ["float64", "bfloat16"], tiny_config)
        by_format = {r.format: r for r in exp.runs}
        if by_format["bfloat16"].status == "ok":
            assert (
                by_format["bfloat16"].eigenvalue_relative_error
                > by_format["float64"].eigenvalue_relative_error
            )

    def test_range_exceeded_status(self, tiny_config):
        # entries far beyond the E4M3 range trigger the paper's ∞σ marker
        dense = np.diag(np.linspace(1.0, 9.0, 12)) * 1e6
        dense[0, 1] = dense[1, 0] = 1e-7
        tm = TestMatrix(name="synthetic/range", matrix=CSRMatrix.from_dense(dense), group="general")
        exp = run_matrix_experiment(tm, ["E4M3", "takum16"], tiny_config)
        statuses = {r.format: r.status for r in exp.runs}
        assert statuses["E4M3"] == "range_exceeded"
        assert statuses["takum16"] != "range_exceeded"

    def test_statuses_are_known(self, tiny_suite, tiny_config):
        exp = run_matrix_experiment(tiny_suite[1], ["E5M2", "posit8", "float32"], tiny_config)
        from repro.experiments.runner import RUN_STATUSES

        assert all(r.status in RUN_STATUSES for r in exp.runs)


class TestRunExperiment:
    def test_serial_run(self, tiny_suite, tiny_config):
        result = run_experiment(tiny_suite, ["float64", "takum16"], tiny_config, workers=1)
        assert len(result.records) == 2 * len(tiny_suite)
        assert set(result.formats()) == {"float64", "takum16"}
        assert len(result.by_format("float64")) == len(tiny_suite)
        assert len(result.references) == len(tiny_suite)

    def test_parallel_matches_serial(self, tiny_suite, tiny_config):
        serial = run_experiment(tiny_suite, ["float32"], tiny_config, workers=1)
        parallel = run_experiment(tiny_suite, ["float32"], tiny_config, workers=2)
        s = sorted((r.matrix, r.eigenvalue_relative_error) for r in serial.records)
        p = sorted((r.matrix, r.eigenvalue_relative_error) for r in parallel.records)
        assert s == p


class TestAggregation:
    def test_cumulative_distribution(self):
        points = cumulative_distribution([1e-3, 1e-1, 1e-2, np.nan, np.inf])
        assert len(points) == 3
        assert points[0][1] == pytest.approx(-3.0)
        assert points[-1][0] == pytest.approx(100.0)

    def test_cumulative_distribution_empty(self):
        assert cumulative_distribution([]) == []

    def _records(self):
        recs = []
        for i, err in enumerate([1e-4, 1e-3, 1e-2]):
            recs.append(
                RunRecord(
                    matrix=f"m{i}",
                    group="general",
                    category="fam",
                    format="takum16",
                    status="ok",
                    eigenvalue_relative_error=err,
                    eigenvector_relative_error=err * 10,
                )
            )
        recs.append(
            RunRecord(
                matrix="m3",
                group="general",
                category="fam",
                format="takum16",
                status="no_convergence",
            )
        )
        recs.append(
            RunRecord(
                matrix="m4",
                group="general",
                category="fam",
                format="E4M3",
                status="range_exceeded",
            )
        )
        return recs

    def test_aggregate_by_format(self):
        summaries = aggregate_by_format(self._records())
        t = summaries["takum16"]
        assert t.total_runs == 4
        assert t.evaluated == 3
        assert t.no_convergence == 1
        assert t.eigenvalue_percentiles[50] == pytest.approx(1e-3)
        assert t.failure_fraction == pytest.approx(0.25)
        e = summaries["E4M3"]
        assert e.range_exceeded == 1
        assert np.isnan(e.eigenvalue_percentiles[50])

    def test_figure_series(self):
        series = figure_series(self._records(), metric="eigenvalue")
        assert len(series["takum16"]) == 3
        assert series["E4M3"] == []
        with pytest.raises(ValueError):
            figure_series(self._records(), metric="bogus")

    def test_render_and_report(self):
        records = self._records()
        text = render_figure(records, "eigenvalue", "panel")
        assert "panel" in text
        report = figure_report(records, widths=(8, 16), title="Figure X")
        assert "takum16" in report and "E4M3" in report
        assert "16-bit" in report

    def test_figure_csv_rows(self):
        rows = figure_csv_rows(self._records())
        assert len(rows) == 5
        assert {"matrix", "format", "status"} <= set(rows[0])

    def test_figure_json_is_strict_json(self):
        import json

        from repro.experiments import figure_json

        # E4M3 has zero evaluated runs -> NaN percentiles internally; the
        # export must sanitise them to null and stay strict RFC JSON
        payload = figure_json(self._records(), widths=(8, 16))
        text = json.dumps(payload, sort_keys=True, allow_nan=False)  # must not raise
        assert "NaN" not in text and "Infinity" not in text
        assert payload["widths"]["8"]["formats"]["E4M3"]["eigenvalue_percentiles"]["50"] is None


class TestTable1Report:
    def test_contains_all_classes_and_counts(self):
        report = table1_report()
        for cls in ("biological", "infrastructure", "social", "miscellaneous"):
            assert cls in report
        assert "1219" in report  # biological class size
        assert "1555" in report  # misc category size

    def test_with_scale_column(self):
        report = table1_report(scale=0.01)
        assert "synthetic" in report


class TestEndToEndSmall:
    def test_general_suite_pipeline(self, tiny_config):
        suite = suitesparse_like(count=2, size_range=(20, 26), seed=4)
        result = run_experiment(suite, ["float32", "takum32"], tiny_config)
        summaries = aggregate_by_format(result.records)
        assert set(summaries) == {"float32", "takum32"}
        ok = [r for r in result.records if r.status == "ok"]
        assert ok, "expected at least one evaluated run"
        for record in ok:
            assert record.eigenvalue_relative_error < 1e-2
