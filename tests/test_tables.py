"""Bit-exactness and behaviour tests of the lookup-table rounding engine.

The table backend (:mod:`repro.arithmetic.tables`) must be bit-identical to
the analytic kernels it replaces: same rounded values (including the sign of
zero), same NaN positions, same codes.  The fast tests sweep a strided sample
of the float32 pattern space plus every rounding decision boundary; the
``slow``-marked tests densify the pattern sweep (run them with
``pytest -m slow tests/test_tables.py``).
"""

import numpy as np
import pytest

from repro.arithmetic import (
    TABLE_CACHE,
    available_formats,
    get_context,
    get_format,
    preload_tables,
    table_for,
)
from repro.arithmetic import tables as tables_mod
from repro.arithmetic.context import EmulatedContext
from repro.arithmetic.ofp8 import OFP8E4M3

EIGHT_BIT = ["E4M3", "E5M2", "posit8", "takum8"]
SIXTEEN_BIT = ["float16", "bfloat16", "posit16", "takum16"]
TABLE_FORMATS = EIGHT_BIT + SIXTEEN_BIT


def assert_bit_identical(result, expected, context=""):
    """Equal values, equal NaN positions and equal zero signs."""
    result = np.asarray(result)
    expected = np.asarray(expected)
    assert result.shape == expected.shape, context
    nan_r, nan_e = np.isnan(result), np.isnan(expected)
    assert np.array_equal(nan_r, nan_e), f"NaN positions differ {context}"
    assert np.array_equal(result[~nan_r], expected[~nan_e]), f"values differ {context}"
    assert np.array_equal(
        np.signbit(result[~nan_r]), np.signbit(expected[~nan_e])
    ), f"zero signs differ {context}"


def float32_pattern_values(stride, offset=0):
    """Float64 values of every ``stride``-th float32 bit pattern (both signs,
    all exponents, NaN/inf patterns included)."""
    patterns = np.arange(offset, 1 << 32, stride, dtype=np.int64).astype(np.uint32)
    with np.errstate(invalid="ignore"):  # NaN patterns are swept on purpose
        return patterns.view(np.float32).astype(np.float64)


def boundary_values(table):
    """Every rounding decision boundary of a format: exact midpoints, their
    float64 neighbours, the representable magnitudes themselves, denormal
    and overflow regions, both signs, plus specials."""
    mids = table.midpoints
    mags = table.magnitudes
    sem = table.semantics
    pieces = [
        mids,
        np.nextafter(mids, np.inf),
        np.nextafter(mids, -np.inf),
        mags,
        np.nextafter(mags, np.inf),
        np.nextafter(mags, -np.inf),
        np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1e300, 1e-300, 5e-324]),
    ]
    if sem.overflow_threshold is not None:
        thr = sem.overflow_threshold
        pieces.append(np.array([thr, np.nextafter(thr, 0), np.nextafter(thr, np.inf)]))
    positive = np.concatenate(pieces)
    return np.concatenate([positive, -positive])


@pytest.fixture(params=TABLE_FORMATS)
def table_format(request):
    return get_format(request.param)


class TestBitExactRounding:
    def test_boundary_sweep(self, table_format):
        table = table_for(table_format)
        assert table is not None
        values = boundary_values(table)
        assert_bit_identical(
            table.round_values(values),
            table_format.round_array_analytic(values),
            context=table_format.name,
        )

    @pytest.mark.parametrize("fmt_name", EIGHT_BIT)
    def test_float32_pattern_sweep_sample(self, fmt_name):
        fmt = get_format(fmt_name)
        table = table_for(fmt)
        values = float32_pattern_values(stride=65537)  # ~65k patterns, odd stride
        assert_bit_identical(
            table.round_values(values),
            fmt.round_array_analytic(values),
            context=fmt_name,
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("fmt_name", EIGHT_BIT)
    def test_float32_pattern_sweep_dense(self, fmt_name):
        fmt = get_format(fmt_name)
        table = table_for(fmt)
        for offset in range(0, 509, 127):
            values = float32_pattern_values(stride=509, offset=offset)
            assert_bit_identical(
                table.round_values(values),
                fmt.round_array_analytic(values),
                context=f"{fmt_name} offset={offset}",
            )

    @pytest.mark.parametrize("fmt_name", SIXTEEN_BIT)
    def test_dense_random_sweep_16bit(self, fmt_name):
        fmt = get_format(fmt_name)
        table = table_for(fmt)
        rng = np.random.default_rng(99)
        values = rng.standard_normal(200_000) * np.exp(rng.uniform(-200, 200, 200_000))
        assert_bit_identical(
            table.round_values(values),
            fmt.round_array_analytic(values),
            context=fmt_name,
        )

    def test_e4m3_saturating_variant(self):
        fmt = OFP8E4M3(saturate=True)
        table = table_for(fmt)
        assert table is not None
        values = np.concatenate(
            [boundary_values(table), float32_pattern_values(stride=131101)]
        )
        assert_bit_identical(
            table.round_values(values), fmt.round_array_analytic(values)
        )

    def test_scalar_fast_path_matches_vector_and_analytic(self, table_format):
        """Arrays of size <= SCALAR_CUTOFF take the pure-Python bisect path;
        sweep every decision boundary through it element by element."""
        table = table_for(table_format)
        values = boundary_values(table)
        batch = table.round_values(values)
        analytic = table_format.round_array_analytic(values)
        scalar = np.empty_like(values)
        for i, v in enumerate(values):
            one = table.round_values(np.asarray([v], dtype=table_format.work_dtype))
            scalar[i] = one[0]
        assert_bit_identical(scalar, batch, context=f"{table_format.name} scalar-vs-vector")
        assert_bit_identical(scalar, analytic, context=f"{table_format.name} scalar-vs-analytic")

    def test_idempotent(self, table_format):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(1000) * np.exp(rng.uniform(-30, 30, 1000))
        once = table_format.round_array(values)
        finite = np.isfinite(once)
        assert_bit_identical(table_format.round_array(once)[finite], once[finite])


class TestEncodeDecode:
    def test_roundtrip_all_codes(self, table_format):
        """encode(decode(code)) == code over every code of the format.

        Non-canonical NaN codes (IEEE formats have many NaN patterns) encode
        back to the canonical NaN code, and formats without a signed-zero
        code (E4M3) canonicalise the negative-zero code to all-zeros.
        """
        table = table_for(table_format)
        codes = np.arange(1 << table_format.bits, dtype=np.uint64)
        decoded = table_format.decode(codes)
        encoded = table_format.encode(decoded)
        expected = np.where(np.isnan(decoded), np.uint64(table.semantics.nan_code), codes)
        if not table.semantics.signed_zero_code:
            expected = np.where(
                (decoded == 0.0) & np.signbit(decoded), np.uint64(0), expected
            )
        assert np.array_equal(encoded, expected), table_format.name

    def test_decode_matches_scalar_decode(self, table_format):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 1 << table_format.bits, 512, dtype=np.uint64)
        vectorised = table_format.decode(codes)
        scalar = np.array(
            [table_format.decode_code(int(c)) for c in codes],
            dtype=table_format.work_dtype,
        )
        assert_bit_identical(vectorised, scalar, context=table_format.name)

    def test_encode_matches_analytic_encode(self, table_format):
        rng = np.random.default_rng(7)
        values = np.concatenate(
            [
                rng.standard_normal(512) * np.exp(rng.uniform(-40, 40, 512)),
                np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1e300, -1e300]),
            ]
        )
        table = table_for(table_format)
        assert np.array_equal(
            table.encode_values(values), table_format.encode_analytic(values)
        ), table_format.name

    def test_decode_preserves_shape_and_dtype(self, table_format):
        codes = np.zeros((3, 4), dtype=np.uint64)
        out = table_format.decode(codes)
        assert out.shape == (3, 4)
        assert out.dtype == table_format.work_dtype


class TestTableCache:
    def test_formats_share_one_table(self):
        fmt = get_format("takum16")
        assert table_for(fmt) is table_for(fmt)
        ctx_a = get_context("takum16")
        ctx_b = get_context("takum16")
        assert table_for(ctx_a.format) is table_for(ctx_b.format)

    def test_wide_formats_are_not_table_backed(self):
        for name in ("float32", "float64", "posit32", "takum64"):
            fmt = get_format(name)
            assert table_for(fmt) is None
            assert not fmt.table_backed

    def test_preload_tables_skips_native_names(self):
        loaded = preload_tables(["takum16", "float64", "reference", "E4M3"])
        assert "takum16" in loaded
        assert "E4M3" in loaded
        assert "float64" not in loaded
        assert "reference" not in loaded

    def test_cache_reports_loaded_tables(self):
        preload_tables(["posit8"])
        assert "posit8" in TABLE_CACHE.loaded()
        assert TABLE_CACHE.nbytes() > 0

    def test_all_narrow_formats_are_eligible(self):
        for name in available_formats():
            fmt = get_format(name)
            assert TABLE_CACHE.supports(fmt) == (fmt.bits <= tables_mod.MAX_TABLE_BITS)


class TestOptOut:
    def test_global_disable(self):
        fmt = get_format("takum16")
        previous = tables_mod.set_enabled(False)
        try:
            assert table_for(fmt) is None
            assert not fmt.table_backed
        finally:
            tables_mod.set_enabled(previous)
        assert fmt.table_backed

    def test_context_opt_out_matches_analytic(self):
        rng = np.random.default_rng(11)
        values = rng.standard_normal(256)
        analytic_ctx = get_context("posit16", use_tables=False)
        table_ctx = get_context("posit16")
        assert isinstance(analytic_ctx, EmulatedContext)
        assert analytic_ctx.use_tables is False
        assert_bit_identical(analytic_ctx.round(values), table_ctx.round(values))

    def test_context_force_tables_overrides_global_disable(self):
        rng = np.random.default_rng(13)
        values = rng.standard_normal(256)
        previous = tables_mod.set_enabled(False)
        try:
            forced = get_context("takum16", use_tables=True)
            plain = get_context("takum16")
            assert forced._forced_table is not None
            # the forced context still rounds through the tables while the
            # plain context has fallen back to the analytic kernels
            assert_bit_identical(forced.round(values), plain.round(values))
        finally:
            tables_mod.set_enabled(previous)

    def test_context_force_tables_rejects_wide_formats(self):
        with pytest.raises(ValueError, match="cannot be served"):
            get_context("takum64", use_tables=True)

    def test_ieee16_uses_analytic_rounding_but_table_codecs(self):
        # measured: the IEEE quantum kernel beats a 2^15-entry searchsorted,
        # so 16-bit IEEE formats keep analytic rounding and table encode/decode
        fmt = get_format("bfloat16")
        table = table_for(fmt)
        assert table is not None
        assert not table.semantics.prefer_table_rounding
        assert table_for(get_format("E5M2")).semantics.prefer_table_rounding


class TestMachineEpsilonMemoisation:
    def test_format_epsilon_cached(self):
        fmt = get_format("takum16")
        eps = fmt.machine_epsilon
        assert fmt.__dict__["_machine_epsilon"] == eps
        assert fmt.machine_epsilon == eps

    def test_context_epsilon_cached(self):
        ctx = get_context("posit16")
        eps = ctx.machine_epsilon
        assert ctx._machine_epsilon == eps
        assert ctx.machine_epsilon == float(ctx.format.machine_epsilon)

    def test_probing_fallback_is_memoised(self):
        from repro.arithmetic.ieee import IEEEFormat

        class Probing(IEEEFormat):
            calls = 0

            def _compute_machine_epsilon(self):
                type(self).calls += 1
                return super()._compute_machine_epsilon()

        fmt = Probing(5, 10, "probing16")
        assert fmt.machine_epsilon == 2.0**-10
        assert fmt.machine_epsilon == 2.0**-10
        assert Probing.calls == 1
