"""Tests of the Arnoldi expansion and Krylov decomposition invariants."""

import numpy as np
import pytest

from repro.arithmetic import get_context
from repro.core import ArnoldiBreakdown, KrylovDecomposition, arnoldi_expand
from repro.sparse import CSRMatrix
from tests.conftest import random_symmetric_csr


def empty_decomposition(ctx, n, seed=0):
    rng = np.random.default_rng(seed)
    v = ctx.asarray(rng.standard_normal(n))
    v = ctx.div(v, ctx.norm2(v))
    return KrylovDecomposition(
        V=np.zeros((n, 0), dtype=ctx.dtype),
        S=np.zeros((0, 0), dtype=ctx.dtype),
        b=np.zeros(0, dtype=ctx.dtype),
        residual=v,
        invariant=False,
    )


def check_krylov_relation(A, decomp, tol):
    V = np.asarray(decomp.V, dtype=np.float64)
    S = np.asarray(decomp.S, dtype=np.float64)
    b = np.asarray(decomp.b, dtype=np.float64)
    AV = np.column_stack([A.matvec(V[:, j]) for j in range(decomp.order)])
    residual = AV - V @ S
    if decomp.residual is not None:
        residual -= np.outer(np.asarray(decomp.residual, dtype=np.float64), b)
    return np.max(np.abs(residual)) <= tol


class TestExpansion:
    def test_orthonormal_basis_and_relation(self, float64_ctx, small_symmetric_matrix):
        decomp = empty_decomposition(float64_ctx, small_symmetric_matrix.shape[0])
        decomp, matvecs = arnoldi_expand(float64_ctx, small_symmetric_matrix, decomp, 15)
        assert decomp.order == 15
        assert matvecs == 15
        V = decomp.V
        assert np.allclose(V.T @ V, np.eye(15), atol=1e-12)
        assert check_krylov_relation(small_symmetric_matrix, decomp, 1e-10)

    def test_projected_matrix_is_nearly_symmetric(self, float64_ctx, small_symmetric_matrix):
        decomp = empty_decomposition(float64_ctx, small_symmetric_matrix.shape[0])
        decomp, _ = arnoldi_expand(float64_ctx, small_symmetric_matrix, decomp, 12)
        S = np.asarray(decomp.S)
        assert np.max(np.abs(S - S.T)) < 1e-10

    def test_incremental_expansion_matches(self, float64_ctx, small_symmetric_matrix):
        decomp = empty_decomposition(float64_ctx, small_symmetric_matrix.shape[0])
        decomp, _ = arnoldi_expand(float64_ctx, small_symmetric_matrix, decomp, 8)
        decomp, extra = arnoldi_expand(float64_ctx, small_symmetric_matrix, decomp, 14)
        assert extra == 6
        assert decomp.order == 14
        assert np.allclose(decomp.V.T @ decomp.V, np.eye(14), atol=1e-11)
        assert check_krylov_relation(small_symmetric_matrix, decomp, 1e-10)

    def test_target_capped_at_matrix_order(self, float64_ctx):
        A = random_symmetric_csr(6, density=0.5, seed=1)
        decomp = empty_decomposition(float64_ctx, 6)
        decomp, _ = arnoldi_expand(float64_ctx, A, decomp, 50)
        assert decomp.order <= 6

    def test_invariant_subspace_detected(self, float64_ctx):
        # a diagonal matrix with few distinct eigenvalues exhausts the Krylov
        # space quickly; with the random continuation the basis keeps growing
        # orthonormally instead of blowing up
        diag = np.array([1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0])
        A = CSRMatrix.from_dense(np.diag(diag))
        decomp = empty_decomposition(float64_ctx, 8)
        decomp, _ = arnoldi_expand(float64_ctx, A, decomp, 8)
        V = np.asarray(decomp.V)
        assert np.allclose(V.T @ V, np.eye(decomp.order), atol=1e-8)

    def test_breakdown_on_nonfinite_matrix(self, float64_ctx):
        A = CSRMatrix.from_dense(np.array([[np.inf, 0.0], [0.0, 1.0]]))
        decomp = empty_decomposition(float64_ctx, 2)
        with pytest.raises(ArnoldiBreakdown):
            arnoldi_expand(float64_ctx, A, decomp, 2)

    def test_expansion_in_low_precision_keeps_values_representable(self):
        ctx = get_context("bfloat16")
        A = random_symmetric_csr(30, density=0.15, seed=2)
        Ac, _ = ctx.convert_matrix(A)
        decomp = empty_decomposition(ctx, 30)
        decomp, _ = arnoldi_expand(ctx, Ac, decomp, 10)
        V = np.asarray(decomp.V)
        rounded = ctx.round(V)
        assert np.array_equal(rounded, V)
        # orthogonality only holds to roughly the format's epsilon
        gram = V.T @ V
        assert np.max(np.abs(gram - np.eye(decomp.order))) < 0.1

    def test_zero_order_noop_when_invariant(self, float64_ctx, small_symmetric_matrix):
        decomp = empty_decomposition(float64_ctx, small_symmetric_matrix.shape[0])
        decomp.invariant = True
        same, matvecs = arnoldi_expand(float64_ctx, small_symmetric_matrix, decomp, 10)
        assert matvecs == 0
        assert same is decomp
