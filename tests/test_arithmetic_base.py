"""Tests of the shared number-format helpers (base module)."""

import numpy as np
import pytest

from repro.arithmetic import get_format
from repro.arithmetic.base import RoundingInfo, nearest_in_table, round_to_quantum


class TestRoundToQuantum:
    def test_exact_multiples_are_unchanged(self):
        x = np.array([0.0, 0.25, -0.75, 2.0])
        assert np.array_equal(round_to_quantum(x, np.full(4, 0.25)), x)

    def test_rounds_to_nearest(self):
        x = np.array([0.26, 0.39, -0.39])
        out = round_to_quantum(x, np.full(3, 0.25))
        assert np.allclose(out, [0.25, 0.5, -0.5])

    def test_ties_go_to_even_multiple(self):
        x = np.array([0.375, 0.125, -0.125])
        out = round_to_quantum(x, np.full(3, 0.25))
        # 0.375 is halfway between 0.25 (odd multiple) and 0.5 (even multiple)
        assert np.allclose(out, [0.5, 0.0, 0.0])

    def test_per_element_quantum(self):
        x = np.array([1.3, 1.3])
        out = round_to_quantum(x, np.array([1.0, 0.5]))
        assert np.allclose(out, [1.0, 1.5])


class TestNearestInTable:
    def test_basic_lookup(self):
        table = np.array([0.0, 1.0, 2.0, 4.0])
        idx = nearest_in_table(np.array([0.4, 0.6, 2.9, 3.1, 100.0]), table)
        assert list(idx) == [0, 1, 2, 3, 3]

    def test_tie_prefers_even_code(self):
        table = np.array([1.0, 2.0])
        codes = np.array([3, 4])
        idx = nearest_in_table(np.array([1.5]), table, codes)
        assert idx[0] == 1  # code 4 is even

    def test_tie_without_codes_prefers_smaller(self):
        table = np.array([1.0, 2.0])
        idx = nearest_in_table(np.array([1.5]), table)
        assert idx[0] == 0

    def test_below_smallest_maps_to_first(self):
        table = np.array([1.0, 2.0, 3.0])
        idx = nearest_in_table(np.array([0.0]), table)
        assert idx[0] == 0


class TestRoundingInfo:
    def test_range_exceeded_flags(self):
        assert not RoundingInfo().range_exceeded
        assert RoundingInfo(overflowed=1).range_exceeded
        assert RoundingInfo(underflowed=2).range_exceeded
        assert not RoundingInfo(saturated=3).range_exceeded


class TestConvert:
    def test_convert_reports_overflow_for_ieee(self):
        fmt = get_format("float16")
        _, info = fmt.convert(np.array([1.0, 1e9, -1e9]))
        assert info.overflowed == 2
        assert info.range_exceeded

    def test_convert_reports_underflow_for_ieee(self):
        fmt = get_format("bfloat16")
        _, info = fmt.convert(np.array([1.0, 1e-60]))
        assert info.underflowed == 1

    def test_posit_saturates_instead_of_overflowing(self):
        fmt = get_format("posit16")
        rounded, info = fmt.convert(np.array([1.0, 1e30, 1e-30]))
        assert info.overflowed == 0
        assert info.underflowed == 0
        assert info.saturated == 2
        assert rounded[1] == fmt.max_value
        assert rounded[2] == fmt.min_positive

    def test_round_scalar_matches_round_array(self, any_format):
        values = [0.0, 1.0, -1.5, 3.14159, 100.0]
        arr = any_format.round_array(np.array(values, dtype=any_format.work_dtype))
        for v, expected in zip(values, arr):
            assert any_format.round_scalar(v) == pytest.approx(float(expected), rel=0, abs=0)

    def test_machine_epsilon_positive(self, any_format):
        eps = any_format.machine_epsilon
        assert eps > 0
        assert eps < 1

    def test_max_and_min_are_representable(self, any_format):
        assert any_format.round_scalar(any_format.max_value) == any_format.max_value
        assert any_format.round_scalar(any_format.min_positive) == pytest.approx(
            any_format.min_positive, rel=1e-18
        )
