"""Tests of the synthetic SuiteSparse-like and Network-Repository-like suites."""

import numpy as np
import pytest

from repro.datasets import (
    CATEGORY_TO_CLASS,
    CLASS_NAMES,
    GENERAL_FAMILIES,
    GRAPH_CATEGORIES,
    available_suites,
    category_counts,
    classify_category,
    generate_graph,
    get_suite,
    graph_suite,
    suitesparse_like,
    table1_counts,
)


class TestClassification:
    def test_all_31_categories_present(self):
        assert len(GRAPH_CATEGORIES) == 31
        assert set(CATEGORY_TO_CLASS) == set(GRAPH_CATEGORIES)

    def test_four_classes(self):
        assert CLASS_NAMES == ("biological", "infrastructure", "social", "miscellaneous")
        assert set(CATEGORY_TO_CLASS.values()) == set(CLASS_NAMES)

    def test_table1_class_totals_match_paper(self):
        counts = table1_counts()
        totals = {}
        for category, count in counts.items():
            cls = CATEGORY_TO_CLASS[category]
            totals[cls] = totals.get(cls, 0) + count
        assert totals["biological"] == 1219
        assert totals["infrastructure"] == 29
        assert totals["social"] == 234
        assert totals["miscellaneous"] == 1820
        assert sum(counts.values()) == 3302

    def test_specific_category_mapping(self):
        assert classify_category("protein") == "biological"
        assert classify_category("road") == "infrastructure"
        assert classify_category("socfb") == "social"
        assert classify_category("dimacs") == "miscellaneous"
        with pytest.raises(KeyError):
            classify_category("not-a-category")

    def test_scaled_counts(self):
        scaled = category_counts(scale=0.01)
        assert scaled["misc"] == 16  # round(1555 * 0.01)
        assert scaled["massive"] == 0  # empty categories stay empty
        assert scaled["cit"] == 1  # non-empty categories keep at least one


class TestGeneralSuite:
    def test_count_and_determinism(self):
        a = suitesparse_like(count=12, size_range=(20, 40), seed=3)
        b = suitesparse_like(count=12, size_range=(20, 40), seed=3)
        assert len(a) == 12
        assert [t.name for t in a] == [t.name for t in b]
        assert np.array_equal(a[0].matrix.data, b[0].matrix.data)

    def test_matrices_are_symmetric(self):
        for tm in suitesparse_like(count=9, size_range=(20, 40), seed=1):
            assert tm.is_symmetric(tol=1e-12), tm.name
            assert tm.group == "general"

    def test_every_family_is_used(self):
        suite = suitesparse_like(count=len(GENERAL_FAMILIES), size_range=(20, 30), seed=0)
        assert {tm.category for tm in suite} == set(GENERAL_FAMILIES)

    def test_nnz_cap_respected(self):
        for tm in suitesparse_like(count=9, size_range=(150, 300), max_nnz=5000, seed=2):
            assert tm.nnz <= 5000

    def test_wide_dynamic_range_family_exceeds_8bit_range(self):
        suite = suitesparse_like(count=45, size_range=(20, 40), seed=0)
        wide = [t for t in suite if t.category == "wide_dynamic_range"]
        assert wide and max(t.dynamic_range() for t in wide) > 1e6

    def test_metadata(self):
        tm = suitesparse_like(count=1, size_range=(20, 25), seed=0)[0]
        assert tm.n == tm.matrix.shape[0]
        assert tm.nnz == tm.matrix.nnz
        assert "TestMatrix" in repr(tm)


class TestGraphSuite:
    def test_laplacian_properties(self):
        for tm in graph_suite(classes="infrastructure", scale=0.03, size_range=(16, 40), seed=2):
            assert tm.is_symmetric(tol=1e-12)
            lam = np.linalg.eigvalsh(tm.matrix.todense())
            assert lam.min() >= -1e-9
            assert lam.max() <= 2.0 + 1e-9

    def test_class_filtering(self):
        bio = graph_suite(classes="biological", scale=0.002, size_range=(16, 24), seed=0)
        assert bio and all(t.group == "biological" for t in bio)
        multi = graph_suite(classes=("social", "miscellaneous"), scale=0.001, size_range=(16, 24), seed=0)
        assert {t.group for t in multi} <= {"social", "miscellaneous"}

    def test_determinism(self):
        a = graph_suite(classes="social", scale=0.002, size_range=(16, 30), seed=9)
        b = graph_suite(classes="social", scale=0.002, size_range=(16, 30), seed=9)
        assert [t.name for t in a] == [t.name for t in b]
        assert np.array_equal(a[0].matrix.data, b[0].matrix.data)

    def test_generate_graph_single(self):
        adjacency, model = generate_graph("power", 0, 30, seed=0)
        assert adjacency.shape[0] == adjacency.shape[1]
        assert adjacency.is_symmetric(tol=1e-12)
        assert np.all(adjacency.diagonal() == 0)
        assert isinstance(model, str)

    def test_generate_graph_unknown_category(self):
        with pytest.raises(KeyError):
            generate_graph("unknown", 0, 20)

    def test_weighted_categories_have_non_unit_weights(self):
        adjacency, _ = generate_graph("econ", 0, 40, seed=1)
        if adjacency.nnz:
            assert np.any(adjacency.data != 1.0)


class TestRegistry:
    def test_available(self):
        names = available_suites()
        assert "general" in names and "biological" in names and "all-graphs" in names

    def test_get_suite_general(self):
        suite = get_suite("general", count=4, size_range=(20, 25), seed=0)
        assert len(suite) == 4

    def test_get_suite_graph_class(self):
        suite = get_suite("infrastructure", scale=0.03, size_range=(16, 25), seed=0)
        assert all(t.group == "infrastructure" for t in suite)

    def test_get_suite_all_graphs(self):
        suite = get_suite("all-graphs", scale=0.001, size_range=(16, 20), seed=0)
        assert {t.group for t in suite} <= set(CLASS_NAMES)

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            get_suite("nonexistent")
