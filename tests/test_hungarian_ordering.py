"""Tests of the Hungarian assignment algorithm and eigenvalue ordering rules."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.linalg import hungarian, ordering_key, select_order, WHICH_RULES


class TestHungarian:
    def test_simple_known_case(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        assignment, total = hungarian(cost)
        assert total == pytest.approx(5.0)
        assert sorted(assignment.tolist()) == [0, 1, 2]

    def test_identity_is_optimal(self):
        cost = np.eye(4) * -10.0
        assignment, total = hungarian(cost)
        assert np.array_equal(assignment, np.arange(4))
        assert total == -40.0

    def test_matches_scipy_square(self, rng):
        for _ in range(25):
            n = int(rng.integers(1, 9))
            cost = rng.standard_normal((n, n))
            ours, total = hungarian(cost)
            r, c = linear_sum_assignment(cost)
            assert total == pytest.approx(cost[r, c].sum(), abs=1e-10)
            assert len(set(ours.tolist())) == n

    def test_matches_scipy_rectangular(self, rng):
        for _ in range(15):
            n = int(rng.integers(1, 6))
            m = int(rng.integers(n, 10))
            cost = rng.uniform(-5, 5, (n, m))
            ours, total = hungarian(cost)
            r, c = linear_sum_assignment(cost)
            assert total == pytest.approx(cost[r, c].sum(), abs=1e-10)

    def test_matches_bruteforce(self, rng):
        for _ in range(10):
            n = 5
            cost = rng.uniform(0, 1, (n, n))
            _, total = hungarian(cost)
            best = min(
                sum(cost[i, p[i]] for i in range(n))
                for p in itertools.permutations(range(n))
            )
            assert total == pytest.approx(best, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_matches_scipy(self, n, extra, seed):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(-10, 10, (n, n + extra))
        _, total = hungarian(cost)
        r, c = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[r, c].sum(), abs=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            hungarian(np.ones((3, 2)))
        with pytest.raises(ValueError):
            hungarian(np.array([[np.inf, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            hungarian(np.ones(3))

    def test_empty(self):
        assignment, total = hungarian(np.zeros((0, 5)))
        assert assignment.size == 0 and total == 0.0


class TestOrdering:
    def test_rules_exist(self):
        assert set(WHICH_RULES) == {"LM", "SM", "LR", "SR"}

    def test_lm_puts_largest_magnitude_first(self):
        lam = np.array([1.0, -5.0, 3.0, 0.1])
        order = select_order(lam, "LM")
        assert list(lam[order]) == [-5.0, 3.0, 1.0, 0.1]

    def test_sm(self):
        lam = np.array([1.0, -5.0, 3.0, 0.1])
        assert lam[select_order(lam, "SM")][0] == 0.1

    def test_lr_and_sr(self):
        lam = np.array([1.0, -5.0, 3.0])
        assert lam[select_order(lam, "LR")][0] == 3.0
        assert lam[select_order(lam, "SR")][0] == -5.0

    def test_case_insensitive(self):
        lam = np.array([2.0, -3.0])
        assert np.array_equal(select_order(lam, "lm"), select_order(lam, "LM"))

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError):
            ordering_key(np.array([1.0]), "XX")

    def test_stable_for_ties(self):
        lam = np.array([2.0, -2.0, 2.0])
        order = select_order(lam, "LM")
        assert list(order) == [0, 1, 2]
