"""Bit-identity battery for the two-word (extended) 64-bit bit kernels.

posit64/takum64 round in 80-bit extended precision; on hosts whose
``np.longdouble`` is the x87 two-word layout they are served by
``PositExtendedBitKernel``/``TakumExtendedBitKernel``, which must be
bit-identical to ``round_array_analytic``:

* differential random/boundary/midpoint sweeps (:mod:`tests._kernel_harness`);
* **tie-exhaustive coverage**: sampled regime/binade boundaries across each
  format's full dynamic range, with *all* adjacent-code midpoints in a
  window around every boundary asserted against the analytic kernel and the
  ties-to-even-code rule;
* **forced-fallback regression**: with ``LONGDOUBLE_EXTENDED`` monkeypatched
  off (the Windows/ARM degradation), the 64-bit formats must drop to float64
  work precision, keep a bit-exact one-word kernel, and emit no
  ``require_extended_longdouble`` warning — Windows/ARM correctness tested
  on Linux CI rather than hoped for.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.arithmetic import bitkernels as bk
from repro.arithmetic import get_format
from repro.arithmetic import base as base_mod
from repro.arithmetic.bitkernels import (
    PositExtendedBitKernel,
    TakumExtendedBitKernel,
    extended_layout_supported,
)
from repro.arithmetic.posit import PositFormat
from repro.arithmetic.takum import TakumFormat
from tests._kernel_harness import (
    assert_rounded_equal,
    binade_boundary_codes,
    code_midpoints,
    differential_round_check,
    run_differential_sweeps,
)

FORMATS_64 = ["posit64", "takum64"]

# kernel-identity proofs: nothing to difference when the engine is off
# (the REPRO_DISABLE_BITKERNELS=1 analytic-only CI job)
pytestmark = pytest.mark.skipif(
    not bk.bitkernels_enabled(),
    reason="bit kernels globally disabled (REPRO_DISABLE_BITKERNELS)",
)

extended_only = pytest.mark.skipif(
    not extended_layout_supported(),
    reason="host longdouble is not the two-word x87 extended layout",
)


def boundary_exponents(fmt, count=33):
    """Binade exponents sampled across the format's full range, always
    including the dense-precision centre and the range extremes."""
    top = int(math.log2(float(fmt.max_value)))
    sampled = np.unique(
        np.concatenate(
            [
                np.linspace(-top, top, count).astype(int),
                [-top, -top + 1, -2, -1, 0, 1, 2, top - 1, top],
            ]
        )
    )
    return sampled


# --------------------------------------------------------------------- #
# extended-kernel identity (extended hosts)
# --------------------------------------------------------------------- #
@extended_only
@pytest.mark.parametrize("name", FORMATS_64)
def test_extended_kernel_differential_sweeps(name):
    fmt = get_format(name)
    kern = fmt.bitkernel()
    assert isinstance(kern, (PositExtendedBitKernel, TakumExtendedBitKernel))
    assert fmt.work_dtype is np.longdouble
    run_differential_sweeps(fmt, kern.round, n=30_000, seed=13)


@extended_only
@pytest.mark.parametrize("name", FORMATS_64)
def test_tie_exhaustive_at_binade_boundaries(name):
    """All adjacent-code midpoints around sampled regime/binade boundaries
    round ties-to-even, identically to the analytic kernel."""
    fmt = get_format(name)
    kern = fmt.bitkernel()
    codes = binade_boundary_codes(fmt, boundary_exponents(fmt), window=24)
    mids = code_midpoints(fmt, codes)
    assert mids.size > 1_000, "boundary sampling produced too few ties"
    differential_round_check(fmt, kern.round, mids, " boundary-ties")
    # the tie rule itself: every exact midpoint must land on an even code
    rounded = fmt.round_array_analytic(mids)
    finite = np.isfinite(rounded) & (rounded != 0)
    recoded = fmt.encode_analytic(rounded[finite])
    assert not np.any(recoded & np.uint64(1)), f"{name}: tie broke to an odd code"


@extended_only
@pytest.mark.parametrize("name", FORMATS_64)
def test_encode_roundtrips_boundary_codes(name):
    """``encode_analytic(decode_code(c)) == c`` around every sampled binade
    boundary (regression: the encoders used to round the 59-bit fraction
    through float64, shifting codes near characteristic transitions)."""
    fmt = get_format(name)
    codes = binade_boundary_codes(fmt, boundary_exponents(fmt), window=24)
    values = np.asarray(
        [fmt.decode_code(int(c)) for c in codes], dtype=np.longdouble
    )
    recoded = fmt.encode_analytic(values)
    assert np.array_equal(recoded, codes.astype(np.uint64)), name


@extended_only
@pytest.mark.parametrize("name", FORMATS_64)
def test_extended_kernel_out_aliasing(name):
    """``out=`` may alias the input or be a non-contiguous view."""
    fmt = get_format(name)
    kern = fmt.bitkernel()
    rng = np.random.default_rng(29)
    x = (np.longdouble(2.0) ** rng.uniform(-80, 80, 96).astype(np.longdouble)) * np.sign(
        rng.standard_normal(96)
    ).astype(np.longdouble)
    expected = fmt.round_array_analytic(x.copy())
    aliased = x.copy()
    res = kern.round(aliased, out=aliased)
    assert res is aliased
    assert_rounded_equal(aliased, expected, f"{name} aliased out")
    mat = np.zeros((96, 3), dtype=np.longdouble)
    col = mat[:, 1]
    kern.round(x, out=col)
    assert_rounded_equal(mat[:, 1], expected, f"{name} column out")


@extended_only
@pytest.mark.parametrize("name", FORMATS_64)
def test_dispatch_round_array_uses_extended_kernel(name):
    """``round_array`` above the scalar cutoff is bit-identical to the
    analytic kernel (it routes through the extended kernel)."""
    fmt = get_format(name)
    rng = np.random.default_rng(31)
    x = (np.longdouble(2.0) ** rng.uniform(-200, 200, 4_096).astype(np.longdouble)) * np.sign(
        rng.standard_normal(4_096)
    ).astype(np.longdouble)
    assert_rounded_equal(
        fmt.round_array(x.copy()), fmt.round_array_analytic(x.copy()), name
    )


@extended_only
@pytest.mark.parametrize("name", FORMATS_64)
def test_extended_kernel_has_no_codec(name):
    """The two-word kernels only round; the family codecs stay float64."""
    kern = get_format(name).bitkernel()
    assert not kern.supports_codec
    with pytest.raises(NotImplementedError):
        kern.decode(np.asarray([1], dtype=np.uint64))
    with pytest.raises(NotImplementedError):
        kern.encode(np.asarray([1.0], dtype=np.longdouble))


@pytest.mark.parametrize("name", FORMATS_64)
def test_disable_switch_removes_64bit_kernel(name):
    previous = bk.set_enabled(False)
    try:
        assert get_format(name).bitkernel() is None
        x = np.asarray([0.3, -1.7, 1e30], dtype=get_format(name).work_dtype)
        fmt = get_format(name)
        assert_rounded_equal(fmt.round_array(x), fmt.round_array_analytic(x), name)
    finally:
        bk.set_enabled(previous)


# --------------------------------------------------------------------- #
# forced fallback: the Windows/ARM degradation, simulated on any host
# --------------------------------------------------------------------- #
@pytest.fixture
def degraded_longdouble(monkeypatch):
    """Pretend the host longdouble collapses to float64."""
    monkeypatch.setattr(base_mod, "LONGDOUBLE_EXTENDED", False)
    monkeypatch.setattr(base_mod, "_LONGDOUBLE_WARNED", False)


@pytest.mark.parametrize("family", [PositFormat, TakumFormat])
def test_forced_fallback_is_warning_free(degraded_longdouble, family):
    """Constructing the 64-bit formats on a degraded platform must not emit
    the old ``require_extended_longdouble`` RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        fmt = family(64)
    assert fmt.work_dtype is np.float64


@pytest.mark.parametrize("family", [PositFormat, TakumFormat])
def test_forced_fallback_keeps_bit_exact_kernel(degraded_longdouble, family):
    """On degraded platforms the 64-bit formats get the one-word kernel
    (binades finer than float64 become identity rows) and stay bit-exact
    against the analytic kernel at float64 work precision."""
    fmt = family(64)
    kern = fmt.bitkernel()
    assert kern is not None
    assert kern.supports_codec  # the plain one-word family kernel
    run_differential_sweeps(fmt, kern.round, n=30_000, seed=17)


@pytest.mark.parametrize("family", [PositFormat, TakumFormat])
def test_forced_fallback_dispatch_round_array(degraded_longdouble, family):
    fmt = family(64)
    rng = np.random.default_rng(19)
    x = rng.standard_normal(2_048) * 10.0 ** rng.uniform(-300, 300, 2_048)
    assert_rounded_equal(
        fmt.round_array(x.copy()), fmt.round_array_analytic(x.copy()), fmt.name
    )
