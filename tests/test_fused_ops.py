"""Element-exact equivalence of the fused rounded kernels vs the unfused
op-for-op sequences.

The fused paths — single-buffer ``axpy`` (with and without ``out=``), the
in-place pairwise/sequential reduction tree behind ``reduce_sum``/``dot``/
``gemv``/``gemv_t``/``gemm``, and ``FArray.axpy`` — must produce bit-for-bit
the same rounded values as composing ``mul``/``add``/``reduce_sum`` naively,
for every registered format and both accumulation orders, because solver
trajectories in this reproduction are compared at bit level.  Aliasing
(``out=`` pointing at an operand) and non-contiguous column views must
behave like the allocating form, and the public ``reduce_sum`` must never
mutate its input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arithmetic import available_formats, get_context

#: every registered emulated format plus the native widths
ALL_FORMATS = available_formats()
ACCUMULATIONS = ["pairwise", "sequential"]


def unfused_reduce(ctx, values, axis=-1):
    """The pre-fusion reduce_sum, kept verbatim as the reference."""
    v = np.asarray(values, dtype=ctx.dtype)
    v = np.moveaxis(v, axis, -1)
    if v.shape[-1] == 0:
        return np.zeros(v.shape[:-1], dtype=ctx.dtype)
    if ctx.accumulation == "pairwise":
        while v.shape[-1] > 1:
            m = v.shape[-1]
            half = m // 2
            paired = ctx.add(v[..., 0 : 2 * half : 2], v[..., 1 : 2 * half : 2])
            if m % 2:
                paired = np.concatenate([paired, v[..., -1:]], axis=-1)
            v = paired
        return v[..., 0]
    acc = v[..., 0]
    for j in range(1, v.shape[-1]):
        acc = ctx.add(acc, v[..., j])
    return acc


def assert_same(got, ref, context=""):
    got = np.asarray(got)
    ref = np.asarray(ref)
    assert got.shape == ref.shape, context
    assert np.array_equal(got, ref, equal_nan=True), context


@pytest.fixture(params=ACCUMULATIONS)
def accumulation(request):
    return request.param


@pytest.fixture(params=ALL_FORMATS)
def ctx(request, accumulation):
    return get_context(request.param, accumulation=accumulation)


class TestReduceSum:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 13, 64, 100])
    def test_1d_matches_unfused(self, ctx, m):
        rng = np.random.default_rng(m)
        x = ctx.round(rng.standard_normal(m) * 10.0 ** rng.integers(-3, 3))
        got = ctx.reduce_sum(x.copy())
        ref = unfused_reduce(ctx, x.copy())
        assert got == ref or (np.isnan(got) and np.isnan(ref)), (ctx.name, m)

    @pytest.mark.parametrize("m", [1, 3, 7, 33])
    def test_2d_both_axes_match_unfused(self, ctx, m):
        rng = np.random.default_rng(m + 100)
        A = ctx.round(rng.standard_normal((4, m)))
        for axis in (-1, 0, 1):
            assert_same(
                ctx.reduce_sum(A.copy(), axis=axis),
                unfused_reduce(ctx, A.copy(), axis=axis),
                (ctx.name, axis, m),
            )

    def test_does_not_mutate_input(self, ctx):
        rng = np.random.default_rng(7)
        x = ctx.round(rng.standard_normal(33))
        xc = x.copy()
        ctx.reduce_sum(x)
        assert np.array_equal(x, xc, equal_nan=True), ctx.name
        A = ctx.round(rng.standard_normal((6, 9)))
        Ac = A.copy()
        ctx.reduce_sum(A, axis=0)
        ctx.reduce_sum(A, axis=1)
        assert np.array_equal(A, Ac, equal_nan=True), ctx.name

    def test_scalar_result_type_1d(self, ctx):
        out = ctx.reduce_sum(ctx.round(np.asarray([1.0, 2.0, 3.0])))
        assert np.ndim(out) == 0


class TestDenseKernels:
    def test_gemv_matches_unfused(self, ctx):
        rng = np.random.default_rng(11)
        M = ctx.round(rng.standard_normal((7, 5)))
        x = ctx.round(rng.standard_normal(5))
        ref = unfused_reduce(ctx, ctx.mul(M, x[np.newaxis, :]), -1)
        assert_same(ctx.gemv(M, x), ref, ctx.name)

    def test_gemv_t_matches_unfused(self, ctx):
        rng = np.random.default_rng(13)
        M = ctx.round(rng.standard_normal((7, 5)))
        w = ctx.round(rng.standard_normal(7))
        ref = unfused_reduce(ctx, ctx.mul(M.T, w[np.newaxis, :]), -1)
        assert_same(ctx.gemv_t(M, w), ref, ctx.name)

    def test_gemm_matches_unfused(self, ctx):
        rng = np.random.default_rng(17)
        A = ctx.round(rng.standard_normal((6, 5)))
        B = ctx.round(rng.standard_normal((5, 4)))
        ref = unfused_reduce(ctx, ctx.mul(A[:, :, None], B[None, :, :]), 1)
        assert_same(ctx.gemm(A, B), ref, ctx.name)

    def test_dot_matches_unfused(self, ctx):
        rng = np.random.default_rng(19)
        x = ctx.round(rng.standard_normal(9))
        y = ctx.round(rng.standard_normal(9))
        got = ctx.dot(x, y)
        ref = unfused_reduce(ctx, ctx.mul(x, y))
        assert got == ref or (np.isnan(got) and np.isnan(ref)), ctx.name

    def test_gemv_on_noncontiguous_inputs(self, ctx):
        """Column views of a larger buffer must behave like copies."""
        rng = np.random.default_rng(23)
        big = ctx.round(rng.standard_normal((7, 10)))
        M = big[:, 0:8:2]  # non-contiguous 7x4
        x = big[0, 1:9:2]  # non-contiguous length-4
        assert_same(ctx.gemv(M, x), ctx.gemv(M.copy(), x.copy()), ctx.name)


class TestFusedAxpy:
    def _data(self, ctx, n=17, seed=29):
        rng = np.random.default_rng(seed)
        alpha = ctx.round_scalar(0.7)
        x = ctx.round(rng.standard_normal(n))
        y = ctx.round(rng.standard_normal(n))
        ref = ctx.add(y, ctx.mul(alpha, x))  # unfused op-for-op
        return alpha, x, y, np.asarray(ref)

    def test_matches_unfused(self, ctx):
        alpha, x, y, ref = self._data(ctx)
        assert_same(ctx.axpy(alpha, x, y), ref, ctx.name)

    def test_out_buffer(self, ctx):
        alpha, x, y, ref = self._data(ctx)
        out = np.empty_like(y)
        got = ctx.axpy(alpha, x, y, out=out)
        assert got is out
        assert_same(out, ref, ctx.name)

    def test_out_aliases_y(self, ctx):
        alpha, x, y, ref = self._data(ctx)
        buf = y.copy()
        got = ctx.axpy(alpha, x, buf, out=buf)
        assert got is buf
        assert_same(buf, ref, ctx.name)

    def test_out_aliases_x(self, ctx):
        alpha, x, y, ref = self._data(ctx)
        buf = x.copy()
        got = ctx.axpy(alpha, buf, y, out=buf)
        assert got is buf
        assert_same(buf, ref, ctx.name)

    def test_out_noncontiguous_column(self, ctx):
        alpha, x, y, ref = self._data(ctx)
        mat = np.zeros((x.size, 3), dtype=ctx.dtype)
        col = mat[:, 1]
        got = ctx.axpy(alpha, x, y, out=col)
        assert got.base is mat
        assert_same(mat[:, 1], ref, ctx.name)

    def test_scalar_operands_stay_scalar(self, ctx):
        got = ctx.axpy(ctx.round_scalar(2.0), ctx.round_scalar(3.0), ctx.round_scalar(1.0))
        ref = ctx.add(1.0, ctx.mul(2.0, 3.0))
        assert np.ndim(got) == 0
        assert float(got) == float(ref) or (np.isnan(got) and np.isnan(ref))


class TestFArrayAxpy:
    @pytest.mark.parametrize("name", ["posit16", "posit32", "posit64", "takum64", "float32"])
    def test_matches_operator_form(self, name):
        ctx = get_context(name)
        rng = np.random.default_rng(31)
        y = ctx.array(rng.standard_normal(21))
        x = ctx.array(rng.standard_normal(21))
        alpha = ctx.scalar(0.25)  # representable in every format
        fused = y.axpy(alpha, x)
        unfused = y + alpha * x
        assert np.array_equal(fused.data, unfused.data, equal_nan=True), name
        # plain-scalar / ndarray operands
        fused2 = y.axpy(0.25, np.asarray(x.data))
        assert np.array_equal(fused2.data, unfused.data, equal_nan=True), name

    def test_context_mismatch_raises(self):
        from repro.arithmetic.farray import PrecisionLeakError

        a = get_context("posit16").array([1.0, 2.0])
        b = get_context("posit32").array([1.0, 2.0])
        with pytest.raises(PrecisionLeakError):
            a.axpy(1.0, b)
