"""Tests of the content-addressed experiment store and the resumable engine.

Covers the store-semantics contract: cache hit/miss on configuration change,
schema-version invalidation, ``use_cache=False`` bypass, resume after an
interrupt (only missing cells execute), crashed workers yielding ``"failed"``
records without discarding sibling results, and concurrent-writer safety of
the atomic commit.
"""

import concurrent.futures
import dataclasses
import json
import math
import os
import time

import numpy as np
import pytest

from repro.core.results import PartialSchurResult
from repro.datasets import suitesparse_like
from repro.experiments import (
    DictBackend,
    ExperimentConfig,
    LocalDirBackend,
    ResultStore,
    StoreBackend,
    figure_json,
    matrix_fingerprint,
    reference_key,
    run_experiment,
    statuses_by_format,
    task_key,
)
from repro.experiments import store as store_mod
from repro.experiments.runner import RunRecord
from repro.experiments.store import (
    reference_from_payload,
    reference_to_payload,
    run_record_from_payload,
    run_record_to_payload,
)

FORMATS = ["float32", "takum16"]


@pytest.fixture(scope="module")
def suite():
    return suitesparse_like(count=3, size_range=(20, 26), seed=4)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(eigenvalue_count=4, eigenvalue_buffer_count=2, restarts=12)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture
def solver_calls(monkeypatch):
    """Count (and optionally sabotage) the per-matrix solver executions."""
    calls = []
    real = store_mod.run_matrix_experiment

    def wrapper(test_matrix, formats, cfg, **kwargs):
        calls.append((test_matrix.name, tuple(formats)))
        return real(test_matrix, formats, cfg, **kwargs)

    monkeypatch.setattr(store_mod, "run_matrix_experiment", wrapper)
    return calls


class TestCacheKeys:
    def test_key_is_stable(self, suite, config):
        fp = matrix_fingerprint(suite[0])
        assert fp == matrix_fingerprint(suite[0])
        assert task_key(config, "float32", fp) == task_key(config, "float32", fp)

    def test_key_covers_format_and_matrix(self, suite, config):
        fp0, fp1 = matrix_fingerprint(suite[0]), matrix_fingerprint(suite[1])
        assert fp0 != fp1
        assert task_key(config, "float32", fp0) != task_key(config, "takum16", fp0)
        assert task_key(config, "float32", fp0) != task_key(config, "float32", fp1)
        assert reference_key(config, fp0) != task_key(config, "float32", fp0)

    def test_key_covers_every_config_field(self, suite, config):
        fp = matrix_fingerprint(suite[0])
        base = task_key(config, "float32", fp)
        for change in (
            {"restarts": config.restarts + 1},
            {"eigenvalue_count": 5},
            {"accumulation": "sequential"},
            {"use_tables": False},
            {"seed": 1},
            {"reference_tolerance": 1e-16},
        ):
            assert task_key(dataclasses.replace(config, **change), "float32", fp) != base

    def test_matrix_content_changes_fingerprint(self, suite):
        tm = suite[0]
        modified = dataclasses.replace(
            tm, matrix=tm.matrix.with_data(np.asarray(tm.matrix.data) * 2.0)
        )
        assert matrix_fingerprint(modified) != matrix_fingerprint(tm)

    def test_schema_bump_invalidates_every_key(self, suite, config, monkeypatch):
        fp = matrix_fingerprint(suite[0])
        before = task_key(config, "float32", fp)
        ref_before = reference_key(config, fp)
        monkeypatch.setattr(store_mod, "STORE_SCHEMA_VERSION", store_mod.STORE_SCHEMA_VERSION + 1)
        assert task_key(config, "float32", fp) != before
        assert reference_key(config, fp) != ref_before


class TestRecordSerialisation:
    def test_run_record_roundtrip_with_nan(self):
        record = RunRecord(
            matrix="m",
            group="general",
            category="fam",
            format="takum16",
            status="no_convergence",
            restarts=7,
            matvecs=123,
            solver_reason="maxiter",
        )
        payload = json.loads(json.dumps(run_record_to_payload(record, "k" * 64)))
        back = run_record_from_payload(payload)
        assert back.matrix == "m" and back.status == "no_convergence"
        assert back.restarts == 7 and back.matvecs == 123
        assert math.isnan(back.eigenvalue_relative_error)

    def test_run_record_tolerates_extra_fields(self):
        record = RunRecord(
            matrix="m", group="g", category="c", format="posit16", status="ok"
        )
        payload = run_record_to_payload(record, "k" * 64)
        payload["record"]["some_future_field"] = 1
        assert run_record_from_payload(payload).format == "posit16"

    def test_reference_roundtrip(self):
        from repro.experiments.runner import ReferenceRecord

        record = ReferenceRecord(
            matrix="m",
            converged=True,
            eigenvalues=np.array([3.0, 2.0, 1.0]),
            restarts=4,
            matvecs=99,
        )
        payload = json.loads(json.dumps(reference_to_payload(record, "k" * 64)))
        back = reference_from_payload(payload)
        assert back.converged and back.matvecs == 99
        np.testing.assert_array_equal(back.eigenvalues, record.eigenvalues)

    def test_partialschur_result_roundtrip(self):
        result = PartialSchurResult(
            eigenvalues=np.array([2.0, 1.0]),
            eigenvectors=np.eye(3)[:, :2],
            residuals=np.array([1e-9, 1e-8]),
            converged=True,
            nconverged=2,
            restarts=3,
            matvecs=42,
            reason="converged",
            which="LM",
            tolerance=1e-6,
            format_name="takum16",
            history=[1, 2],
        )
        back = PartialSchurResult.from_dict(json.loads(json.dumps(result.to_dict())))
        np.testing.assert_array_equal(back.eigenvalues, result.eigenvalues)
        np.testing.assert_array_equal(back.eigenvectors, result.eigenvectors)
        assert back.converged and back.nev == 2
        assert back.reason == "converged" and back.format_name == "takum16"


class TestResultStore:
    def test_put_get_contains(self, store):
        key = "ab" + "0" * 62
        assert store.get(key) is None and key not in store
        store.put(key, {"schema_version": 1, "kind": "run", "record": {"x": 1}})
        assert key in store
        assert store.get(key)["record"] == {"x": 1}
        # two-level fan-out by key prefix
        assert store.path_for(key).parent.name == "ab"

    def test_put_leaves_no_staging_files(self, store):
        store.put("cd" + "0" * 62, {"schema_version": 1})
        assert list(store._tmp.iterdir()) == []

    def test_corrupt_entry_reads_as_miss_and_gc_reclaims(self, store):
        key = "ef" + "0" * 62
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None
        assert store.gc() == 1
        assert not path.exists()

    def test_gc_drops_stale_schema_keeps_current(self, store):
        store.put("aa" + "0" * 62, {"schema_version": store_mod.STORE_SCHEMA_VERSION})
        store.put("bb" + "0" * 62, {"schema_version": store_mod.STORE_SCHEMA_VERSION - 1})
        orphan = store._tmp / "orphan.json"
        orphan.write_text("{}", encoding="utf-8")
        fresh = store._tmp / "fresh.json"
        fresh.write_text("{}", encoding="utf-8")
        # age the orphan past the grace period; "fresh" simulates the live
        # staging file of a concurrently committing run and must survive
        old = time.time() - 2 * store.STAGING_GRACE_SECONDS
        os.utime(orphan, (old, old))
        assert store.gc() == 2  # stale entry + aged staging orphan
        assert ("aa" + "0" * 62) in store
        assert ("bb" + "0" * 62) not in store
        assert not orphan.exists() and fresh.exists()

    def test_clear(self, store):
        for i in range(5):
            store.put(f"{i:02d}" + "0" * 62, {"schema_version": 1})
        assert store.clear() == 5
        assert list(store.keys()) == []

    def test_concurrent_writers_same_key_stay_atomic(self, store):
        key = "99" + "0" * 62
        payloads = [{"schema_version": 1, "writer": i, "blob": "x" * 4096} for i in range(32)]
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda p: store.put(key, p), payloads))
        final = store.get(key)  # a complete payload from exactly one writer
        assert final is not None and final["blob"] == "x" * 4096
        assert final["writer"] in range(32)
        assert list(store._tmp.iterdir()) == []

    def test_stats(self, store):
        record = RunRecord(matrix="m", group="g", category="c", format="posit16", status="ok")
        store.put("11" + "0" * 62, run_record_to_payload(record, "11" + "0" * 62))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["kinds"] == {"run": 1}
        assert stats["run_statuses"] == {"ok": 1}

    def test_default_root_env_precedence(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "explicit"))
        assert store_mod.default_store_root() == tmp_path / "explicit"
        monkeypatch.delenv("REPRO_STORE")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert store_mod.default_store_root() == tmp_path / "xdg" / "repro-store"


class TestStoreBackends:
    def test_backend_interface_is_abstract(self):
        with pytest.raises(TypeError):
            StoreBackend()  # get/put/contains/keys/delete are required
        assert isinstance(LocalDirBackend.__new__(LocalDirBackend), StoreBackend)
        assert isinstance(DictBackend(), StoreBackend)

    def test_store_requires_exactly_one_of_root_and_backend(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore()
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store", backend=DictBackend())

    def test_dict_backend_primitives(self):
        backend = DictBackend()
        key = "ab" + "0" * 62
        assert backend.get(key) is None and not backend.contains(key)
        backend.put(key, {"schema_version": 1, "kind": "run"})
        assert backend.contains(key)
        assert list(backend.keys()) == [key]
        assert backend.entry_nbytes(key) == len(json.dumps({"schema_version": 1, "kind": "run"}))
        assert backend.delete(key) and not backend.delete(key)
        assert backend.location.startswith("<memory:")

    def test_dict_backend_isolates_payloads(self):
        backend = DictBackend()
        key = "cd" + "0" * 62
        payload = {"schema_version": 1, "record": {"x": 1}}
        backend.put(key, payload)
        payload["record"]["x"] = 999  # caller mutates its own dict afterwards
        first = backend.get(key)
        first["record"]["x"] = -1  # ... and the returned copy too
        assert backend.get(key)["record"] == {"x": 1}

    def test_dict_backend_matches_disk_bytes(self, tmp_path):
        """Both backends hold the identical serialised form of a payload."""
        payload = {"schema_version": 1, "kind": "run", "record": {"b": 2, "a": 1}}
        key = "ef" + "0" * 62
        disk = ResultStore(tmp_path / "store")
        disk.put(key, payload)
        memory = DictBackend()
        memory.put(key, payload)
        assert disk.path_for(key).read_bytes() == memory._entries[key].encode("utf-8")

    def test_experiment_engine_runs_on_dict_backend(self, suite, config, solver_calls):
        store = ResultStore(backend=DictBackend())
        cold = run_experiment(suite[:1], FORMATS, config, store=store, workers=1)
        assert cold.report.executed == len(FORMATS)
        solver_calls.clear()
        warm = run_experiment(suite[:1], FORMATS, config, store=store, workers=1)
        assert warm.report.executed == 0 and solver_calls == []
        assert store.root is None  # no filesystem behind this store

    def test_stats_and_entries_tolerate_newer_schema(self, store):
        record = RunRecord(matrix="m", group="g", category="c", format="posit16", status="ok")
        store.put("11" + "0" * 62, run_record_to_payload(record, "11" + "0" * 62))
        store.put(
            "22" + "0" * 62,
            {"schema_version": store_mod.STORE_SCHEMA_VERSION + 1, "kind": "run"},
        )
        stats = store.stats()
        # a rolling upgrade leaves newer-schema entries behind: count them,
        # keep them out of the kind/status breakdowns, and don't raise
        assert stats["entries"] == 2
        assert stats["foreign_schema"] == 1
        assert stats["kinds"] == {"run": 1}
        assert len(list(store.entries())) == 1
        assert len(list(store.entries(include_foreign=True))) == 2

    def test_gc_keeps_newer_schema_entries(self, store):
        store.put("33" + "0" * 62, {"schema_version": store_mod.STORE_SCHEMA_VERSION + 1})
        store.put("44" + "0" * 62, {"schema_version": store_mod.STORE_SCHEMA_VERSION - 1})
        store.put("55" + "0" * 62, {"schema_version": "not-an-int"})
        assert store.gc() == 2  # older + unparseable go; newer survives
        assert ("33" + "0" * 62) in store


def _record_view(records):
    """NaN-tolerant comparable view of a record list."""
    return [dataclasses.asdict(r) for r in records]


class TestResumableEngine:
    def test_cold_then_warm(self, suite, config, store, solver_calls):
        cold = run_experiment(suite, FORMATS, config, store=store, workers=1)
        assert cold.report.planned == len(suite) * len(FORMATS)
        assert cold.report.executed == cold.report.planned and cold.report.cached == 0
        assert len(solver_calls) == len(suite)

        solver_calls.clear()
        warm = run_experiment(suite, FORMATS, config, store=store, workers=1)
        assert warm.report.executed == 0 and warm.report.cached == warm.report.planned
        assert solver_calls == []  # zero solver tasks on the warm rerun
        np.testing.assert_equal(_record_view(warm.records), _record_view(cold.records))
        assert [r.matrix for r in warm.references] == [tm.name for tm in suite]
        # aggregated figure data is byte-identical cold vs warm
        assert json.dumps(figure_json(cold.records), sort_keys=True) == json.dumps(
            figure_json(warm.records), sort_keys=True
        )

    def test_incremental_formats_and_matrices(self, suite, config, store, solver_calls):
        run_experiment(suite[:2], FORMATS, config, store=store)
        solver_calls.clear()
        result = run_experiment(suite, FORMATS + ["bfloat16"], config, store=store)
        # matrices 0-1 only run the new format; matrix 2 runs everything
        assert result.report.cached == 2 * len(FORMATS)
        assert result.report.executed == result.report.planned - 2 * len(FORMATS)
        executed = dict(solver_calls)
        assert executed[suite[0].name] == ("bfloat16",)
        assert executed[suite[2].name] == tuple(FORMATS + ["bfloat16"])

    def test_config_change_misses(self, suite, config, store):
        run_experiment(suite[:1], FORMATS, config, store=store)
        changed = dataclasses.replace(config, restarts=config.restarts + 5)
        result = run_experiment(suite[:1], FORMATS, changed, store=store)
        assert result.report.cached == 0 and result.report.executed == len(FORMATS)

    def test_no_cache_bypasses_reads_but_refreshes(self, suite, config, store, solver_calls):
        run_experiment(suite[:1], FORMATS, config, store=store)
        solver_calls.clear()
        result = run_experiment(suite[:1], FORMATS, config, store=store, use_cache=False)
        assert result.report.cached == 0 and result.report.executed == len(FORMATS)
        assert len(solver_calls) == 1
        # the bypass still committed fresh results: a normal rerun is warm
        warm = run_experiment(suite[:1], FORMATS, config, store=store)
        assert warm.report.executed == 0

    def test_schema_bump_invalidate_then_gc(self, suite, config, store, monkeypatch):
        run_experiment(suite[:1], FORMATS, config, store=store)
        monkeypatch.setattr(store_mod, "STORE_SCHEMA_VERSION", store_mod.STORE_SCHEMA_VERSION + 1)
        result = run_experiment(suite[:1], FORMATS, config, store=store)
        assert result.report.cached == 0 and result.report.executed == len(FORMATS)
        # the old-schema entries are unreachable now; gc reclaims exactly them
        assert store.gc() == len(FORMATS) + 1  # cells + reference record

    def test_missing_reference_regenerates_without_resolving_cells(
        self, suite, config, store, solver_calls
    ):
        run_experiment(suite[:1], FORMATS, config, store=store)
        fp = matrix_fingerprint(suite[0])
        store.path_for(reference_key(config, fp)).unlink()
        solver_calls.clear()
        result = run_experiment(suite[:1], FORMATS, config, store=store)
        assert result.report.executed == 0  # no (matrix, format) cell re-ran
        assert solver_calls == [(suite[0].name, ())]  # one reference-only shard
        assert result.references[0].converged

    def test_interrupt_then_resume_executes_only_missing(
        self, suite, config, store, monkeypatch, solver_calls
    ):
        real = store_mod.run_matrix_experiment

        def interrupt_on_second(test_matrix, formats, cfg, **kwargs):
            if test_matrix.name == suite[1].name:
                raise KeyboardInterrupt
            return real(test_matrix, formats, cfg, **kwargs)

        monkeypatch.setattr(store_mod, "run_matrix_experiment", interrupt_on_second)
        with pytest.raises(KeyboardInterrupt):
            run_experiment(suite, FORMATS, config, store=store, workers=1)
        # the first matrix was committed before the interrupt
        committed = sum(1 for _ in store.keys())
        assert committed == len(FORMATS) + 1  # its cells + its reference

        monkeypatch.setattr(store_mod, "run_matrix_experiment", real)
        solver_calls.clear()
        result = run_experiment(suite, FORMATS, config, store=store, workers=1)
        assert result.report.cached == len(FORMATS)
        assert result.report.executed == result.report.planned - len(FORMATS)
        # only the not-yet-committed matrices were solved again
        assert {name for name, _ in solver_calls} == {suite[1].name, suite[2].name}


class TestCrashedWorkers:
    @pytest.fixture
    def crash_second(self, suite, monkeypatch):
        real = store_mod.run_matrix_experiment

        def crashing(test_matrix, formats, cfg, **kwargs):
            if test_matrix.name == suite[1].name:
                raise RuntimeError("injected shard crash")
            return real(test_matrix, formats, cfg, **kwargs)

        monkeypatch.setattr(store_mod, "run_matrix_experiment", crashing)
        return real

    def test_crash_yields_failed_records_and_siblings_survive(
        self, suite, config, store, crash_second
    ):
        result = run_experiment(suite, FORMATS, config, store=store, workers=1)
        statuses = statuses_by_format(result.records)
        for name in FORMATS:
            assert statuses[name].get("failed", 0) == 1
        failed = [r for r in result.records if r.status == "failed"]
        assert {r.matrix for r in failed} == {suite[1].name}
        assert all("injected shard crash" in r.traceback for r in failed)
        assert all("RuntimeError" in r.traceback for r in failed)
        # sibling matrices completed and were committed
        ok = [r for r in result.records if r.status == "ok"]
        assert {r.matrix for r in ok} == {suite[0].name, suite[2].name}
        assert result.report.failed == len(FORMATS)

    def test_crash_without_store_still_survives(self, suite, config, crash_second):
        result = run_experiment(suite, FORMATS, config, workers=1)
        assert sum(1 for r in result.records if r.status == "failed") == len(FORMATS)
        assert sum(1 for r in result.records if r.status == "ok") == 2 * len(FORMATS)

    def test_crashed_reference_only_shard_is_counted_and_retried(
        self, suite, config, store, monkeypatch
    ):
        run_experiment(suite[:1], FORMATS, config, store=store)
        fp = matrix_fingerprint(suite[0])
        store.path_for(reference_key(config, fp)).unlink()
        real = store_mod.run_matrix_experiment

        def boom(test_matrix, formats, cfg, **kwargs):
            raise RuntimeError("reference crash")

        monkeypatch.setattr(store_mod, "run_matrix_experiment", boom)
        crashed = run_experiment(suite[:1], FORMATS, config, store=store)
        # no cells were lost, but the crash must not read as success
        assert crashed.report.executed == 0 and crashed.report.failed == 1
        assert not crashed.references[0].converged  # placeholder
        # the reference stays missing, so a healed rerun retries naturally
        monkeypatch.setattr(store_mod, "run_matrix_experiment", real)
        healed = run_experiment(suite[:1], FORMATS, config, store=store)
        assert healed.report.failed == 0 and healed.references[0].converged

    def test_rerun_failed_retries_exactly_the_crashed_cells(
        self, suite, config, store, crash_second, monkeypatch
    ):
        run_experiment(suite, FORMATS, config, store=store, workers=1)
        # heal the crash (crash_second holds the original implementation)
        # and count what a rerun actually executes
        calls = []

        def counting(test_matrix, formats, cfg, **kwargs):
            calls.append((test_matrix.name, tuple(formats)))
            return crash_second(test_matrix, formats, cfg, **kwargs)

        monkeypatch.setattr(store_mod, "run_matrix_experiment", counting)
        plain = run_experiment(suite, FORMATS, config, store=store, workers=1)
        assert plain.report.executed == 0 and calls == []
        assert sum(1 for r in plain.records if r.status == "failed") == len(FORMATS)

        rerun = run_experiment(
            suite, FORMATS, config, store=store, workers=1, rerun_failed=True
        )
        assert rerun.report.executed == len(FORMATS)
        assert {name for name, _ in calls} == {suite[1].name}
        assert all(r.status == "ok" for r in rerun.records)
