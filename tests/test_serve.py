"""Tests of the ``repro.serve`` service layer.

Covers the coalescing contract (N concurrent identical cold requests cost
exactly one solve), the warm-path byte-identity guarantee, the backpressure
contract (503 + ``Retry-After`` instead of unbounded queueing), the client's
retry behaviour, and the HTTP surface (routes, errors, metrics exposition).

Deterministic concurrency tests call ``SpectralService.handle_request``
directly on an event loop with a gated ``solve_fn`` — no sockets, no races;
the end-to-end socket path is exercised through :class:`ServiceThread` +
:class:`ServeClient` (and by ``scripts/serve_smoke.py`` in CI).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import socket
import threading

import pytest

from repro.datasets.registry import get_suite
from repro.experiments import (
    DictBackend,
    ExperimentConfig,
    ResultStore,
    task_key,
)
from repro.experiments.store import ExecutionReport, matrix_fingerprint
from repro.serve import (
    AsyncHTTPServer,
    HTTPError,
    Request,
    Response,
    RequestCoalescer,
    ServeClient,
    ServeError,
    ServiceThread,
    ServiceUnavailable,
    SpectralService,
    apply_config_overrides,
    solve_cell,
)
from repro.serve import client as client_module
from repro.telemetry import metrics, set_enabled

FMT = "takum8"
FMT2 = "E4M3"


@pytest.fixture(autouse=True)
def _telemetry():
    """Telemetry on with a clean registry for every test, restored after."""
    previous = set_enabled(True)
    previous_env = os.environ.get("REPRO_TELEMETRY")
    os.environ["REPRO_TELEMETRY"] = "1"
    metrics.reset()
    yield
    metrics.reset()
    set_enabled(previous)
    if previous_env is None:
        os.environ.pop("REPRO_TELEMETRY", None)
    else:
        os.environ["REPRO_TELEMETRY"] = previous_env


def _suite(count=1, seed=5):
    return get_suite("general", count=count, size_range=(12, 14), seed=seed)


def _config(**overrides):
    overrides.setdefault("restarts", 3)
    return ExperimentConfig(**overrides)


def _cell_request(matrix: str, format_name: str, config: dict | None = None) -> Request:
    body = {"matrix": matrix, "format": format_name}
    if config:
        body["config"] = config
    return Request(
        method="POST", path="/v1/cell", query={}, headers={}, body=json.dumps(body).encode()
    )


# --------------------------------------------------------------------- #
# request coalescer


def test_coalescer_single_flight():
    async def scenario():
        coalescer = RequestCoalescer()
        assert coalescer.peek("k") is None
        future = coalescer.begin("k")
        assert coalescer.peek("k") is future
        assert coalescer.depth == 1
        joiners = [asyncio.create_task(coalescer.join("k")) for _ in range(4)]
        await asyncio.sleep(0)  # let every joiner attach
        coalescer.finish("k", result=("ok", 1))
        results = await asyncio.gather(*joiners)
        assert results == [("ok", 1)] * 4
        assert coalescer.coalesced_total == 4
        assert coalescer.peek("k") is None  # released: next request re-probes

    asyncio.run(scenario())


def test_coalescer_begin_twice_raises():
    async def scenario():
        coalescer = RequestCoalescer()
        coalescer.begin("k")
        with pytest.raises(RuntimeError):
            coalescer.begin("k")
        coalescer.finish("k", result=None)

    asyncio.run(scenario())


def test_coalescer_finish_is_idempotent():
    async def scenario():
        coalescer = RequestCoalescer()
        coalescer.begin("k")
        coalescer.finish("k", result=1)
        coalescer.finish("k", result=2)  # no-op: key already released
        assert coalescer.depth == 0

    asyncio.run(scenario())


def test_coalescer_abort_all_fails_joiners():
    async def scenario():
        coalescer = RequestCoalescer()
        coalescer.begin("a")
        coalescer.begin("b")
        joiner = asyncio.create_task(coalescer.join("a"))
        await asyncio.sleep(0)
        coalescer.abort_all(RuntimeError("shutdown"))
        with pytest.raises(RuntimeError, match="shutdown"):
            await joiner
        # un-joined future must not warn at GC: retrieve its exception
        assert coalescer.depth == 0

    asyncio.run(scenario())


# --------------------------------------------------------------------- #
# config overrides


def test_config_overrides_coerce_query_strings():
    config = apply_config_overrides(
        _config(), {"restarts": "7", "eps_floor": "false", "maxdim": "none", "seed": 2}
    )
    assert config.restarts == 7
    assert config.eps_floor is False
    assert config.maxdim is None
    assert config.seed == 2


def test_config_overrides_reject_unknown_field():
    with pytest.raises(HTTPError) as excinfo:
        apply_config_overrides(_config(), {"reference_tolerance": 1e-9})
    assert excinfo.value.status == 400


@pytest.mark.parametrize(
    "overrides",
    [{"restarts": "many"}, {"eps_floor": "maybe"}, {"accumulation": "random"}],
)
def test_config_overrides_reject_bad_values(overrides):
    with pytest.raises(HTTPError) as excinfo:
        apply_config_overrides(_config(), overrides)
    assert excinfo.value.status == 400


# --------------------------------------------------------------------- #
# warm path: byte identity, zero solver work


@pytest.mark.parametrize("backend_kind", ["local", "dict"])
def test_warm_cell_round_trips_store_bytes(tmp_path, backend_kind):
    suite = _suite()
    config = _config()
    if backend_kind == "local":
        store = ResultStore(tmp_path / "store")
    else:
        store = ResultStore(backend=DictBackend())
    solve_cell(store, suite[0], FMT, config)  # prewarm out-of-band
    key = task_key(config, FMT, matrix_fingerprint(suite[0]))
    if backend_kind == "local":
        stored_bytes = store.path_for(key).read_bytes()
    else:
        stored_bytes = store.backend._entries[key].encode("utf-8")

    metrics.reset()  # drop the prewarm's executor/store counters
    service = SpectralService(
        store, suite, formats=[FMT], config=config, pool_kind="thread", preload=False
    )
    with ServiceThread(service) as base_url:
        client = ServeClient(base_url, timeout=30)
        body, headers = client.cell(suite[0].name, FMT, raw=True)

    assert body == stored_bytes  # the byte-identity contract
    assert headers["x-repro-source"] == "store"
    assert metrics.value("serve.solves") == 0
    assert metrics.value("executor.cells", kind="executed") == 0
    assert metrics.value("store.get.hit", kind="run") == 1


# --------------------------------------------------------------------- #
# cold path: coalescing


def test_concurrent_cold_requests_cost_one_solve():
    suite = _suite(seed=7)
    config = _config(restarts=2)
    store = ResultStore(backend=DictBackend())
    gate = threading.Event()

    def gated_solve(store, tm, format_name, config):
        assert gate.wait(60), "test gate never released"
        return solve_cell(store, tm, format_name, config)

    service = SpectralService(
        store,
        suite,
        formats=[FMT],
        config=config,
        pool_kind="thread",
        solve_fn=gated_solve,
        workers=1,
        preload=False,
    )

    async def scenario():
        tasks = [
            asyncio.create_task(service.handle_request(_cell_request(suite[0].name, FMT)))
            for _ in range(32)
        ]
        # wait until every non-leader joined the in-flight future, then
        # release the single gated solve
        for _ in range(1000):
            if service.coalescer.coalesced_total >= 31:
                break
            await asyncio.sleep(0.01)
        assert service.coalescer.coalesced_total == 31
        gate.set()
        return await asyncio.gather(*tasks)

    try:
        responses = asyncio.run(scenario())
    finally:
        gate.set()
        service.bridge.shutdown()

    assert [r.status for r in responses] == [200] * 32
    bodies = {r.body for r in responses}
    assert len(bodies) == 1  # every client saw the same record bytes
    sources = sorted(r.headers["X-Repro-Source"] for r in responses)
    assert sources.count("coalesced") == 31
    assert sources.count("computed") == 1
    # exactly one solver execution for 32 identical requests ...
    assert metrics.value("executor.cells", kind="executed") == 1
    assert metrics.value("serve.solves") == 1
    assert metrics.value("serve.coalesced") == 31
    # ... and the store-miss count is a constant of the cell (handler probe
    # + the plan's reference and task probes), independent of client count
    assert metrics.value("store.get.miss") == 3


def test_cold_cell_then_warm_cell():
    suite = _suite(seed=9)
    config = _config(restarts=2)
    store = ResultStore(backend=DictBackend())
    service = SpectralService(
        store, suite, formats=[FMT], config=config, pool_kind="thread", preload=False
    )
    try:
        with ServiceThread(service) as base_url:
            client = ServeClient(base_url, timeout=60)
            cold, cold_headers = client.cell(suite[0].name, FMT, raw=True)
            warm, warm_headers = client.cell(suite[0].name, FMT, raw=True)
    finally:
        service.bridge.shutdown()
    assert cold_headers["x-repro-source"] == "computed"
    assert warm_headers["x-repro-source"] == "store"
    assert cold == warm
    record = json.loads(warm)
    assert record["schema_version"] == 1
    assert record["record"]["format"] == FMT
    assert metrics.value("serve.solves") == 1


# --------------------------------------------------------------------- #
# backpressure: 503 + Retry-After, bounded memory


def test_saturated_pool_rejects_with_retry_after():
    suite = _suite(seed=11)
    config = _config()
    store = ResultStore(backend=DictBackend())
    gate = threading.Event()

    def blocked_solve(store, tm, format_name, config):
        assert gate.wait(60), "test gate never released"
        return ExecutionReport(planned=1, executed=1)  # commits nothing

    service = SpectralService(
        store,
        suite,
        formats=[FMT],
        config=config,
        pool_kind="thread",
        solve_fn=blocked_solve,
        workers=1,
        queue_limit=1,  # capacity 2: one running + one queued
        preload=False,
    )

    async def scenario():
        # three *distinct* cells (different seeds -> different task keys),
        # so nothing coalesces: the third must be rejected
        tasks = [
            asyncio.create_task(
                service.handle_request(
                    _cell_request(suite[0].name, FMT, config={"seed": admitted})
                )
            )
            for admitted in range(2)
        ]
        await asyncio.sleep(0.05)  # both admitted cells reach the pool
        with pytest.raises(HTTPError) as excinfo:
            await service.handle_request(_cell_request(suite[0].name, FMT, config={"seed": 2}))
        gate.set()
        admitted_responses = await asyncio.gather(*tasks)
        return excinfo.value, admitted_responses

    try:
        error, admitted_responses = asyncio.run(scenario())
    finally:
        gate.set()
        service.bridge.shutdown()

    assert error.status == 503
    assert int(error.headers["Retry-After"]) >= 1
    assert metrics.value("serve.rejected", reason="saturated") == 1
    # the blocked solve "completed" without committing a record: the two
    # admitted requests surface that as 500s instead of hanging
    assert [r.status for r in admitted_responses] == [500, 500]
    assert service.coalescer.depth == 0  # nothing left in flight


# --------------------------------------------------------------------- #
# blocking client


class _LoopHTTP:
    """A bare AsyncHTTPServer on its own loop thread (client tests)."""

    def __init__(self, handler):
        self.server = AsyncHTTPServer(handler)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def __enter__(self) -> str:
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)
        return f"http://127.0.0.1:{self.server.port}"

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def test_client_retries_honor_retry_after(monkeypatch):
    sleeps = []
    monkeypatch.setattr(client_module, "sleep", sleeps.append)
    calls = {"n": 0}

    async def handler(request):
        calls["n"] += 1
        if calls["n"] <= 2:
            return Response.json_document(
                {"error": "saturated"}, status=503, headers={"Retry-After": "7"}
            )
        return Response.raw_json(b'{"ok": true}')

    with _LoopHTTP(handler) as base_url:
        record = ServeClient(base_url, timeout=10, max_retries=3).cell("m", FMT)
    assert record == {"ok": True}
    assert sleeps == [7, 7]  # slept exactly the server's hint before retrying


def test_client_gives_up_after_max_retries(monkeypatch):
    sleeps = []
    monkeypatch.setattr(client_module, "sleep", sleeps.append)

    async def handler(request):
        return Response.json_document(
            {"error": "saturated"}, status=503, headers={"Retry-After": "2"}
        )

    with _LoopHTTP(handler) as base_url:
        with pytest.raises(ServiceUnavailable) as excinfo:
            ServeClient(base_url, timeout=10, max_retries=2).cell("m", FMT)
    assert excinfo.value.retry_after == 2
    assert sleeps == [2, 2]  # one sleep per retry, none after the last try


def test_client_rejects_non_http_url():
    with pytest.raises(ValueError):
        ServeClient("ftp://nope")


# --------------------------------------------------------------------- #
# HTTP surface: routes, errors, metrics, warmup, shutdown


@pytest.fixture
def warm_serve(tmp_path):
    """A running service over a store prewarmed with one (matrix, format)."""
    suite = _suite(count=2)
    config = _config()
    store = ResultStore(tmp_path / "store")
    solve_cell(store, suite[0], FMT, config)
    metrics.reset()
    service = SpectralService(
        store, suite, formats=[FMT, FMT2], config=config, pool_kind="thread", preload=False
    )
    thread = ServiceThread(service)
    base_url = thread.start()
    yield service, ServeClient(base_url, timeout=60), suite
    thread.stop()
    service.bridge.shutdown()


def test_healthz_and_listings(warm_serve):
    service, client, suite = warm_serve
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["matrices"] == 2
    assert health["queue_depth"] == 0
    names = [row["name"] for row in client.matrices()]
    assert names == [tm.name for tm in suite]
    fingerprints = [row["fingerprint"] for row in client.matrices()]
    assert fingerprints == [matrix_fingerprint(tm) for tm in suite]
    assert client.formats()["formats"] == [FMT, FMT2]


def test_cell_by_fingerprint_and_get_query(warm_serve):
    service, client, suite = warm_serve
    fingerprint = matrix_fingerprint(suite[0])
    by_fingerprint = client.cell(fingerprint, FMT)
    by_name = client.cell(suite[0].name, FMT)
    assert by_fingerprint == by_name
    # GET form: overrides ride as query parameters
    connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        path = f"/v1/cell?matrix={fingerprint}&format={FMT}&restarts=3"
        connection.request("GET", path)
        response = connection.getresponse()
        assert response.status == 200
        assert json.loads(response.read()) == by_name
    finally:
        connection.close()


def test_error_statuses(warm_serve):
    service, client, suite = warm_serve
    with pytest.raises(ServeError) as excinfo:
        client.cell("no-such-matrix", FMT)
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client.cell(suite[0].name, "float128")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client.cell(suite[0].name, FMT, config={"reference_tolerance": 0.5})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client._get_json("/v1/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client._get_json("/v1/warmup")  # GET on a POST-only route
    assert excinfo.value.status == 405


def test_http_protocol_errors(warm_serve):
    service, client, _suite_ = warm_serve
    with socket.create_connection((client.host, client.port), timeout=10) as sock:
        sock.sendall(b"BOGUS LINE\r\n\r\n")
        reply = sock.recv(4096).decode()
    assert reply.startswith("HTTP/1.1 400 ")
    connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        connection.request("DELETE", "/healthz")
        assert connection.getresponse().status == 501
    finally:
        connection.close()


def test_metrics_endpoint_exposes_serve_counters(warm_serve):
    service, client, suite = warm_serve
    client.cell(suite[0].name, FMT)  # warm hit
    text = client.metrics_text()
    assert 'serve_requests{route="cell",status="200"} 1' in text
    assert "serve_request_seconds_count" in text
    snapshot = client.metrics()
    assert snapshot["counters"]["serve.requests{route=cell,status=200}"] == 1
    assert snapshot["counters"]["store.get.hit{kind=run}"] == 1


def test_warmup_endpoint(warm_serve):
    service, client, _suite_ = warm_serve
    loaded = client.warmup([FMT])
    assert FMT in loaded
    assert FMT in service.preloaded_formats
    with pytest.raises(ServeError) as excinfo:
        client.warmup(["float64"])  # registered, but not served by this replica
    assert excinfo.value.status == 404


def test_clean_shutdown_refuses_new_connections(tmp_path):
    suite = _suite()
    store = ResultStore(tmp_path / "store")
    service = SpectralService(
        store, suite, formats=[FMT], config=_config(), pool_kind="thread", preload=False
    )
    thread = ServiceThread(service)
    base_url = thread.start()
    client = ServeClient(base_url, timeout=10)
    assert client.healthz()["status"] == "ok"
    thread.stop()
    thread.stop()  # idempotent
    with pytest.raises(OSError):
        client.healthz()


# --------------------------------------------------------------------- #
# the batch route: POST /v1/cells


def _cells_request(matrix: str, formats: list[str], config: dict | None = None) -> Request:
    body: dict = {"matrix": matrix, "formats": formats}
    if config:
        body["config"] = config
    return Request(
        method="POST", path="/v1/cells", query={}, headers={}, body=json.dumps(body).encode()
    )


def test_cells_batch_end_to_end(warm_serve):
    """Cold cells are solved as one batch; warm cells come from the store;
    every record agrees byte-for-byte with the single-cell route."""
    service, client, suite = warm_serve
    document = client.cells(suite[0].name, [FMT, FMT2])
    by_format = {cell["format"]: cell for cell in document["cells"]}
    assert document["matrix"] == suite[0].name
    assert [c["format"] for c in document["cells"]] == [FMT, FMT2]  # request order
    assert by_format[FMT]["source"] == "store"  # prewarmed by the fixture
    assert by_format[FMT2]["source"] == "computed"
    assert all(cell["status"] == 200 for cell in document["cells"])
    for format_name, cell in by_format.items():
        raw, headers = client.cell(suite[0].name, format_name, raw=True)
        assert json.loads(raw) == cell["record"]
        assert headers["x-repro-source"] == "store"
        assert cell["key"] == task_key(
            service.config, format_name, matrix_fingerprint(suite[0])
        )
    # second pass: everything warm, no further solves
    again = client.cells(suite[0].name, [FMT, FMT2])
    assert all(cell["source"] == "store" for cell in again["cells"])
    assert metrics.value("serve.batch_cells") == 1  # only FMT2 was cold


def test_cells_validation_errors(warm_serve):
    service, client, suite = warm_serve
    cases = [
        ({"matrix": suite[0].name}, 400),  # missing formats
        ({"matrix": suite[0].name, "formats": []}, 400),
        ({"matrix": suite[0].name, "formats": [FMT, FMT]}, 400),  # duplicates
        ({"matrix": suite[0].name, "formats": ["float128"]}, 404),
        ({"matrix": "no-such-matrix", "formats": [FMT]}, 404),
        ({"formats": [FMT]}, 400),  # missing matrix
    ]
    for body, expected in cases:
        status, _headers, data = client._request("POST", "/v1/cells", body=body)
        assert status == expected, (body, data)
    connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        connection.request("GET", "/v1/cells")
        assert connection.getresponse().status == 405
    finally:
        connection.close()


def test_cells_coalesces_with_single_cell_requests():
    """A /v1/cell request arriving while /v1/cells is solving the same key
    joins the batch instead of re-solving; disjoint formats still solve."""
    suite = _suite(seed=7)
    config = _config(restarts=2)
    store = ResultStore(backend=DictBackend())
    gate = threading.Event()
    solves: list[str] = []

    def gated_solve(store, tm, format_name, config):
        assert gate.wait(60), "test gate never released"
        solves.append(format_name)
        return solve_cell(store, tm, format_name, config)

    service = SpectralService(
        store,
        suite,
        formats=[FMT, FMT2],
        config=config,
        pool_kind="thread",
        solve_fn=gated_solve,
        workers=1,
        preload=False,
    )

    async def scenario():
        batch = asyncio.create_task(
            service.handle_request(_cells_request(suite[0].name, [FMT, FMT2]))
        )
        # let the batch become the leader for both keys, then pile joiners on
        for _ in range(1000):
            if service.coalescer.depth == 2:
                break
            await asyncio.sleep(0.01)
        assert service.coalescer.depth == 2
        single = asyncio.create_task(
            service.handle_request(_cell_request(suite[0].name, FMT))
        )
        other_batch = asyncio.create_task(
            service.handle_request(_cells_request(suite[0].name, [FMT, FMT2]))
        )
        for _ in range(1000):
            if service.coalescer.coalesced_total >= 3:
                break
            await asyncio.sleep(0.01)
        assert service.coalescer.coalesced_total == 3
        gate.set()
        return await asyncio.gather(batch, single, other_batch)

    try:
        responses = asyncio.run(scenario())
    finally:
        gate.set()
        service.bridge.shutdown()

    assert [r.status for r in responses] == [200, 200, 200]
    assert sorted(solves) == sorted([FMT, FMT2])  # each cell solved exactly once
    leader, single, joiner_batch = responses
    leader_cells = {c["format"]: c for c in json.loads(leader.body)["cells"]}
    joined_cells = {c["format"]: c for c in json.loads(joiner_batch.body)["cells"]}
    assert all(c["source"] == "computed" for c in leader_cells.values())
    assert all(c["source"] == "coalesced" for c in joined_cells.values())
    assert json.loads(single.body) == leader_cells[FMT]["record"]
    assert joined_cells[FMT]["record"] == leader_cells[FMT]["record"]


def test_cells_saturation_returns_503_with_retry_after():
    suite = _suite(seed=7)
    store = ResultStore(backend=DictBackend())
    gate = threading.Event()

    def blocked_solve(store, tm, format_name, config):
        assert gate.wait(60)
        return solve_cell(store, tm, format_name, config)

    service = SpectralService(
        store,
        suite,
        formats=[FMT, FMT2],
        config=_config(restarts=1),
        pool_kind="thread",
        solve_fn=blocked_solve,
        workers=1,
        queue_limit=0,
        preload=False,
    )

    async def scenario():
        # occupy the single slot with a different config's batch
        first = asyncio.create_task(
            service.handle_request(
                _cells_request(suite[0].name, [FMT], config={"seed": 2})
            )
        )
        for _ in range(1000):
            if service.coalescer.depth == 1:
                break
            await asyncio.sleep(0.01)
        with pytest.raises(HTTPError) as excinfo:
            await service.handle_request(_cells_request(suite[0].name, [FMT2]))
        assert excinfo.value.status == 503
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        # the rejected batch must have released its coalescer keys
        assert service.coalescer.depth == 1
        gate.set()
        return await first

    try:
        first = asyncio.run(scenario())
        assert first.status == 200
    finally:
        gate.set()
        service.bridge.shutdown()
