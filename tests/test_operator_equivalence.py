"""Bit-identity of the operator-API solvers vs the explicit-context baseline.

The solver modules are written in the operator form of
:mod:`repro.arithmetic.farray`; each operator must map onto exactly one
rounded context operation, in source order.  These tests prove it the hard
way: the explicit ``ctx.sub(w, ctx.gemv(V, h))`` spellings preserved in
``tests/_explicit_baseline.py`` are run side by side with the migrated
solvers on the same inputs, and every trajectory array must be *exactly*
equal — element for element, for every registered format and the native
contexts.  Any hidden extra rounding, reordered operation or ndarray
round-trip in the operator layer would break these comparisons.
"""

import numpy as np
import pytest

from repro.arithmetic import available_formats, get_context
from repro.core.arnoldi import KrylovDecomposition, arnoldi_expand
from repro.core.krylov_schur import partialschur
from repro.datasets import generate_graph
from repro.linalg.tridiagonal import (
    EigenConvergenceError,
    symmetric_eigen,
    tridiagonal_eigen,
    tridiagonalize,
)
from repro.sparse import laplacian_from_adjacency

from tests._explicit_baseline import (
    arnoldi_expand_explicit,
    partialschur_explicit,
    symmetric_eigen_explicit,
    tridiagonal_eigen_explicit,
    tridiagonalize_explicit,
)

#: every arithmetic the library can run the solvers in
ALL_CONTEXTS = sorted(available_formats()) + ["reference"]


def _small_laplacian(n: int = 16):
    adjacency, _ = generate_graph("soc", index=0, size=n, seed=3)
    return laplacian_from_adjacency(adjacency)


def _assert_identical(a, b, label):
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape, f"{label}: shape {a.shape} vs {b.shape}"
    assert np.array_equal(a, b, equal_nan=True), (
        f"{label}: operator-API result deviates from explicit-context baseline"
    )


def _fresh_decomp(ctx, n):
    rng = np.random.default_rng(7)
    v = ctx.round(np.asarray(rng.standard_normal(n), dtype=ctx.dtype))
    nrm = ctx.norm2(v)
    return KrylovDecomposition(
        V=np.zeros((n, 0), dtype=ctx.dtype),
        S=np.zeros((0, 0), dtype=ctx.dtype),
        b=np.zeros(0, dtype=ctx.dtype),
        residual=ctx.div(v, nrm),
        invariant=False,
    )


@pytest.mark.parametrize("fmt", ALL_CONTEXTS)
class TestBitIdentity:
    def test_arnoldi_trajectory(self, fmt):
        ctx_a = get_context(fmt)
        ctx_b = get_context(fmt)
        matrix = _small_laplacian(16)
        mat_a = matrix.with_data(ctx_a.round(np.asarray(matrix.data, dtype=ctx_a.dtype)))
        mat_b = matrix.with_data(ctx_b.round(np.asarray(matrix.data, dtype=ctx_b.dtype)))

        def run(fn, ctx, mat):
            try:
                decomp, matvecs = fn(
                    ctx, mat, _fresh_decomp(ctx, 16), 10, rng=np.random.default_rng(5)
                )
            except Exception as exc:  # breakdowns must agree too
                return type(exc).__name__
            return decomp, matvecs

        got = run(arnoldi_expand, ctx_a, mat_a)
        want = run(arnoldi_expand_explicit, ctx_b, mat_b)
        if isinstance(want, str) or isinstance(got, str):
            assert got == want
            return
        decomp, matvecs = got
        decomp_ref, matvecs_ref = want
        assert matvecs == matvecs_ref
        assert decomp.invariant == decomp_ref.invariant
        _assert_identical(decomp.V, decomp_ref.V, f"{fmt} V")
        _assert_identical(decomp.S, decomp_ref.S, f"{fmt} S")
        _assert_identical(decomp.b, decomp_ref.b, f"{fmt} b")
        if decomp.residual is None or decomp_ref.residual is None:
            assert decomp.residual is None and decomp_ref.residual is None
        else:
            _assert_identical(decomp.residual, decomp_ref.residual, f"{fmt} residual")

    def test_partialschur_trajectory(self, fmt):
        matrix = _small_laplacian(16)
        res = partialschur(
            matrix, nev=4, tol=1e-6, maxdim=10, restarts=3, ctx=fmt, seed=0
        )
        ref = partialschur_explicit(
            matrix, nev=4, tol=1e-6, maxdim=10, restarts=3, ctx=fmt, seed=0
        )
        assert res.reason == ref.reason
        assert res.restarts == ref.restarts
        assert res.matvecs == ref.matvecs
        assert res.nconverged == ref.nconverged
        _assert_identical(res.eigenvalues, ref.eigenvalues, f"{fmt} eigenvalues")
        _assert_identical(res.eigenvectors, ref.eigenvectors, f"{fmt} eigenvectors")
        _assert_identical(res.residuals, ref.residuals, f"{fmt} residuals")

    def test_symmetric_eigen(self, fmt):
        ctx_a = get_context(fmt)
        ctx_b = get_context(fmt)
        rng = np.random.default_rng(11)
        raw = rng.standard_normal((8, 8))
        A = ctx_a.round(np.asarray(raw + raw.T, dtype=ctx_a.dtype))

        def run(fn, ctx):
            try:
                return fn(ctx, A)
            except EigenConvergenceError:
                return "EigenConvergenceError"

        got = run(symmetric_eigen, ctx_a)
        want = run(symmetric_eigen_explicit, ctx_b)
        if isinstance(want, str) or isinstance(got, str):
            assert got == want
            return
        _assert_identical(got[0], want[0], f"{fmt} eigenvalues")
        _assert_identical(got[1], want[1], f"{fmt} eigenvectors")


@pytest.mark.parametrize("fmt", ["bfloat16", "posit16", "E5M2", "takum32", "float64"])
def test_tridiagonal_pipeline_identical(fmt):
    """tridiagonalize + QL iteration agree step by step with the baseline."""
    ctx = get_context(fmt)
    ctx_ref = get_context(fmt)
    rng = np.random.default_rng(3)
    raw = rng.standard_normal((7, 7))
    A = ctx.round(np.asarray((raw + raw.T) / 2, dtype=ctx.dtype))
    d, e, Q = tridiagonalize(ctx, A)
    d_ref, e_ref, Q_ref = tridiagonalize_explicit(ctx_ref, A)
    _assert_identical(d, d_ref, f"{fmt} diagonal")
    _assert_identical(e, e_ref, f"{fmt} subdiagonal")
    _assert_identical(Q, Q_ref, f"{fmt} Q")

    def run(fn, c):
        try:
            return fn(c, d, e, Z=Q)
        except EigenConvergenceError:
            return "EigenConvergenceError"

    got = run(tridiagonal_eigen, ctx)
    want = run(tridiagonal_eigen_explicit, ctx_ref)
    if isinstance(want, str) or isinstance(got, str):
        assert got == want
        return
    _assert_identical(got[0], want[0], f"{fmt} QL eigenvalues")
    _assert_identical(got[1], want[1], f"{fmt} QL eigenvectors")


def test_operator_solver_converges_like_before():
    """Sanity: the migrated solver still solves (float64, exact agreement
    with NumPy's eigensolver on a small Laplacian)."""
    matrix = _small_laplacian(16)
    res = partialschur(matrix, nev=4, tol=1e-10, ctx="float64", seed=0)
    assert res.converged
    dense = matrix.todense()
    exact = np.sort(np.linalg.eigvalsh(dense))[::-1]
    assert np.allclose(np.sort(res.eigenvalues_float64())[::-1], exact[:4], atol=1e-8)
