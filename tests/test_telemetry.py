"""Tests of the telemetry layer: metrics registry, trace spans, reports.

Covers the observability contract: thread-safe counters, span
nesting/exception unwinding, the worker shard-file merge (including shards
of crashed workers), the disabled mode emitting zero events at zero
allocation, JSONL round-trips tolerating torn lines, and the
``publish_op_count`` bridge from the compute contexts into the registry.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.arithmetic import get_context
from repro.telemetry import (
    MetricsRegistry,
    TelemetryReport,
    metrics,
    render_trace_summary,
    set_enabled,
    summarize_trace,
    trace,
)
from repro.telemetry import core as telemetry_core
from repro.utils.parallel import parallel_map


@pytest.fixture
def telemetry_off():
    """Force-disable telemetry, restoring the previous state afterwards."""
    previous = set_enabled(False)
    yield
    set_enabled(previous)


@pytest.fixture
def telemetry_on(tmp_path):
    """Enable telemetry with a trace sink under ``tmp_path``.

    Restores the enabled flag, shuts the sink down (popping the exported
    ``REPRO_TRACE`` environment) and resets the global registry, so tests
    cannot leak state into each other.
    """
    previous = set_enabled(True)
    previous_env = os.environ.get("REPRO_TELEMETRY")
    os.environ["REPRO_TELEMETRY"] = "1"  # spawn-method workers read this
    path = tmp_path / "trace.jsonl"
    trace.configure(path)
    metrics.reset()
    yield str(path)
    trace.shutdown()
    metrics.reset()
    set_enabled(previous)
    if previous_env is None:
        os.environ.pop("REPRO_TELEMETRY", None)
    else:
        os.environ["REPRO_TELEMETRY"] = previous_env


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #


def test_counter_exact_under_threads(telemetry_on):
    """Concurrent increments must not lose updates (+= is not atomic)."""
    registry = MetricsRegistry()
    counter = registry.counter("race.test", worker="x")
    threads = 8
    per_thread = 5000

    def hammer():
        for _ in range(per_thread):
            counter.inc()

    pool = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert counter.value == threads * per_thread


def test_registry_keys_values_and_reset(telemetry_on):
    registry = MetricsRegistry()
    registry.counter("hits", kind="run").inc(3)
    registry.counter("hits", kind="reference").inc(2)
    registry.counter("plain").inc()
    registry.gauge("mem", unit="bytes").set(42)
    registry.histogram("lat").observe(0.5)
    registry.histogram("lat").observe(1.5)

    snap = registry.snapshot()
    # labels render sorted, Prometheus-style
    assert snap["counters"]["hits{kind=run}"] == 3
    assert snap["counters"]["plain"] == 1
    assert snap["gauges"]["mem{unit=bytes}"] == 42.0
    assert snap["histograms"]["lat"]["count"] == 2
    assert snap["histograms"]["lat"]["mean"] == pytest.approx(1.0)
    assert snap["histograms"]["lat"]["min"] == 0.5
    assert snap["histograms"]["lat"]["max"] == 1.5
    # point and prefix lookups
    assert registry.value("hits", kind="run") == 3
    assert registry.value("never-touched") == 0
    assert registry.sum_counters("hits") == 5
    # snapshot is JSON-able as-is
    json.dumps(snap)

    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_timer_observes_into_histogram(telemetry_on):
    registry = MetricsRegistry()
    with registry.timer("work.seconds"):
        pass
    summary = registry.histogram("work.seconds").summary()
    assert summary["count"] == 1
    assert summary["sum"] >= 0.0


def test_disabled_registry_is_noop(telemetry_off):
    registry = MetricsRegistry()
    registry.inc("hits")  # guarded on the module flag
    assert registry.value("hits") == 0
    # the shared null timer records nothing and allocates no instrument
    timer = registry.timer("work.seconds")
    with timer:
        pass
    assert registry.snapshot()["histograms"] == {}
    assert registry.timer("other") is timer  # one shared no-op object


# --------------------------------------------------------------------- #
# trace spans
# --------------------------------------------------------------------- #


def test_disabled_span_is_shared_null_and_emits_nothing(tmp_path, telemetry_off):
    path = tmp_path / "trace.jsonl"
    trace.configure(path)
    try:
        s1 = trace.span("a")
        s2 = trace.span("b", fmt="bfloat16")
        assert s1 is s2  # one shared no-op object, no allocation
        with s1:
            with trace.span("nested"):
                pass
        assert list(trace.read_events(path)) == []
    finally:
        trace.shutdown()


def test_span_nesting_depth_and_self_time(telemetry_on):
    with trace.span("outer", fmt="bfloat16") as outer:
        with trace.span("inner"):
            pass
        outer.set(extra=7)
    events = {e["name"]: e for e in trace.read_events(telemetry_on)}
    assert set(events) == {"outer", "inner"}
    assert events["inner"]["depth"] == 1
    assert events["outer"]["depth"] == 0
    # the parent's self time excludes the child's inclusive time
    assert events["outer"]["self"] <= events["outer"]["dur"]
    assert events["outer"]["dur"] >= events["inner"]["dur"]
    assert events["outer"]["attrs"] == {"fmt": "bfloat16", "extra": 7}
    assert "error" not in events["outer"]


def test_span_exception_unwinding(telemetry_on):
    with pytest.raises(ValueError, match="boom"):
        with trace.span("outer"):
            with trace.span("inner"):
                raise ValueError("boom")
    events = list(trace.read_events(telemetry_on))
    # both spans are emitted (inner first: exit order) and flagged
    assert [e["name"] for e in events] == ["inner", "outer"]
    assert all(e["error"] for e in events)
    # the thread-local stack unwound completely: a new span starts at depth 0
    with trace.span("after"):
        pass
    after = [e for e in trace.read_events(telemetry_on) if e["name"] == "after"]
    assert after[0]["depth"] == 0
    assert "error" not in after[0]


def _span_task(item):
    """Module-level worker task: one span, crashing on request."""
    with trace.span("task.work", item=item):
        if item == "crash":
            raise RuntimeError("worker crash")
    return item


def test_worker_shards_merge_after_crash(telemetry_on):
    """Spans of parallel workers collate into the main file — crashed
    workers' flushed spans included (the store's crash-capture contract)."""
    outcomes = parallel_map(_span_task, ["a", "crash", "b"], workers=2, capture=True)
    assert [o.ok for o in outcomes] == [True, False, True]
    assert "worker crash" in outcomes[1].error
    assert all(o.seconds >= 0.0 for o in outcomes)

    merged = trace.collate()
    assert merged >= 1  # at least one worker shard existed
    assert not any(
        name.startswith("trace.jsonl.w")
        for name in os.listdir(os.path.dirname(telemetry_on))
    )  # shards are consumed by the merge
    events = [e for e in trace.read_events(telemetry_on) if e["name"] == "task.work"]
    assert len(events) == 3  # the crashed task's span was flushed before dying
    assert {e["attrs"]["item"] for e in events} == {"a", "crash", "b"}
    crashed = [e for e in events if e["attrs"]["item"] == "crash"]
    assert crashed[0].get("error") is True
    assert all(e["pid"] != os.getpid() for e in events)  # all ran in workers
    # parent-side executor metrics recorded both outcomes
    assert metrics.value("parallel.tasks", status="ok") == 2
    assert metrics.value("parallel.tasks", status="failed") == 1


def test_read_events_tolerates_torn_lines(tmp_path):
    path = tmp_path / "torn.jsonl"
    good = {"ev": "span", "name": "ok", "t0": 1.0, "dur": 0.5, "depth": 0}
    path.write_text(
        json.dumps(good) + "\n"
        + "{not json\n"
        + "\n"
        + '"a bare string"\n'
        + json.dumps(good)[: len(json.dumps(good)) // 2]  # torn final line
    )
    events = list(trace.read_events(path))
    assert events == [good]


# --------------------------------------------------------------------- #
# summariser and report
# --------------------------------------------------------------------- #


def _write_trace(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def test_summarize_trace_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_trace(
        path,
        [
            {"ev": "span", "name": "solve", "pid": 1, "t0": 100.0, "dur": 2.0,
             "self": 1.5, "depth": 0, "attrs": {"fmt": "bfloat16", "ops": 10}},
            {"ev": "span", "name": "ql", "pid": 1, "t0": 100.2, "dur": 0.5,
             "self": 0.5, "depth": 1, "attrs": {"fmt": "bfloat16"}},
            {"ev": "span", "name": "solve", "pid": 2, "t0": 103.0, "dur": 1.0,
             "self": 1.0, "depth": 0, "error": True},
            {"ev": "other", "name": "ignored"},
        ],
    )
    summary = summarize_trace(path)
    assert summary["events"] == 3
    # observed window 100.0..104.0; top-level union [100,102] + [103,104]
    assert summary["wall_seconds"] == pytest.approx(4.0)
    assert summary["coverage"] == pytest.approx(3.0 / 4.0)
    assert summary["phases"]["solve"]["count"] == 2
    assert summary["phases"]["solve"]["ops"] == 10
    assert summary["phases"]["solve"]["errors"] == 1
    assert summary["phases"]["ql"]["total"] == pytest.approx(0.5)
    assert summary["formats"]["bfloat16"]["count"] == 2

    text = render_trace_summary(summary, title="t")
    assert "solve" in text and "bfloat16" in text
    assert "75.0%" in text  # the coverage line


def test_summarize_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    summary = summarize_trace(path)
    assert summary == {
        "events": 0,
        "wall_seconds": 0.0,
        "coverage": 0.0,
        "phases": {},
        "formats": {},
    }
    assert "0 spans" in render_trace_summary(summary)


def test_telemetry_report_to_dict():
    report = TelemetryReport(wall_seconds=1.5, cache_hit_ratio=0.25,
                             metrics={"counters": {}}, trace_file="t.jsonl")
    body = report.to_dict()
    assert body == {
        "wall_seconds": 1.5,
        "cache_hit_ratio": 0.25,
        "metrics": {"counters": {}},
        "trace_file": "t.jsonl",
    }
    json.dumps(body)


# --------------------------------------------------------------------- #
# compute-context bridge
# --------------------------------------------------------------------- #


def test_publish_op_count_flushes_delta(telemetry_on):
    ctx = get_context("bfloat16")
    ctx.publish_op_count()  # flush whatever earlier tests left pending
    metrics.reset()
    before = ctx.op_count
    a = ctx.wrap(np.ones(8, dtype=ctx.dtype))
    _ = a + a  # 8 rounded additions
    delta = ctx.publish_op_count()
    assert delta == ctx.op_count - before >= 8
    assert metrics.value("ops.rounded", format=ctx.name) == delta
    # re-publish without new work: counts survive, nothing double-counts
    assert ctx.publish_op_count() == 0
    assert metrics.value("ops.rounded", format=ctx.name) == delta


def test_publish_op_count_disabled_still_tracks_delta(telemetry_off):
    ctx = get_context("posit16")
    ctx.publish_op_count()
    before_ops = ctx.op_count
    a = ctx.wrap(np.ones(4, dtype=ctx.dtype))
    _ = a + a
    assert ctx.publish_op_count() == ctx.op_count - before_ops > 0
    assert metrics.value("ops.rounded", format=ctx.name) == 0  # registry untouched


def test_dispatch_counters_record_format_and_path(telemetry_on):
    metrics.reset()
    ctx = get_context("bfloat16")
    ctx.round(np.linspace(-2.0, 2.0, 64))
    assert metrics.sum_counters("rounding.dispatch") >= 1
    snapshot = metrics.snapshot()["counters"]
    assert any(
        key.startswith("rounding.dispatch{") and "format=bfloat16" in key
        for key in snapshot
    )


def test_enabled_flag_round_trip():
    previous = telemetry_core.ENABLED
    try:
        assert set_enabled(True) == previous
        assert telemetry_core.ENABLED is True
        assert set_enabled(False) is True
        assert telemetry_core.ENABLED is False
    finally:
        set_enabled(previous)
