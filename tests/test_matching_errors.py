"""Tests of eigenvector matching, sign fixing, error metrics and tolerances."""

import numpy as np
import pytest

from repro.experiments import (
    REFERENCE_TOLERANCE,
    TOLERANCES,
    absolute_l2_error,
    cosine_similarity_matrix,
    error_metrics,
    fix_signs,
    match_eigenpairs,
    relative_l2_error,
    tolerance_for,
)


def random_orthogonal(n, rng):
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    return q


class TestCosineSimilarity:
    def test_identical_vectors(self, rng):
        V = random_orthogonal(6, rng)[:, :3]
        C = cosine_similarity_matrix(V, V)
        assert np.allclose(np.diag(C), 1.0)
        assert np.allclose(C - np.diag(np.diag(C)), 0.0, atol=1e-12)

    def test_sign_invariance(self, rng):
        V = random_orthogonal(5, rng)[:, :2]
        C = cosine_similarity_matrix(V, -V)
        assert np.allclose(np.diag(C), 1.0)

    def test_zero_column_yields_zero(self):
        R = np.eye(3)
        S = np.zeros((3, 3))
        assert np.all(cosine_similarity_matrix(R, S) == 0.0)

    def test_values_in_unit_interval(self, rng):
        C = cosine_similarity_matrix(rng.standard_normal((10, 4)), rng.standard_normal((10, 6)))
        assert np.all(C >= 0) and np.all(C <= 1 + 1e-12)


class TestSignFixing:
    def test_flips_opposite_signs(self, rng):
        R = random_orthogonal(8, rng)[:, :4]
        S = -R
        fixed = fix_signs(R, S)
        assert np.allclose(fixed, R)

    def test_keeps_correct_signs(self, rng):
        R = random_orthogonal(8, rng)[:, :4]
        assert np.allclose(fix_signs(R, R), R)

    def test_uses_largest_reference_entry_as_anchor(self):
        R = np.array([[1e-12, 0.0], [1.0, 0.0], [0.0, 1.0]])
        S = np.array([[1e-12, 0.0], [-1.0, 0.0], [0.0, 1.0]])
        fixed = fix_signs(R, S)
        assert fixed[1, 0] == 1.0


class TestMatching:
    def test_identity_permutation(self, rng):
        vecs = random_orthogonal(10, rng)[:, :5]
        vals = np.arange(5.0, 0.0, -1.0)
        mvals, mvecs, perm = match_eigenpairs(vals, vecs, vals, vecs, keep=3)
        assert np.array_equal(perm, [0, 1, 2])
        assert np.allclose(mvecs, vecs[:, :3])

    def test_recovers_permutation_and_signs(self, rng):
        vecs = random_orthogonal(12, rng)[:, :6]
        vals = np.linspace(6.0, 1.0, 6)
        shuffle = np.array([2, 0, 1, 5, 4, 3])
        signs = np.array([1, -1, 1, -1, 1, -1])
        comp_vecs = vecs[:, shuffle] * signs[None, :]
        comp_vals = vals[shuffle]
        mvals, mvecs, perm = match_eigenpairs(vals, vecs, comp_vals, comp_vecs, keep=6)
        assert np.allclose(mvals, vals)
        assert np.allclose(mvecs, vecs, atol=1e-12)

    def test_buffer_prevents_cluster_truncation(self, rng):
        # reference has 5+2 pairs; the computed run found the clustered pair
        # in swapped order at the edge of the window
        vecs = random_orthogonal(10, rng)[:, :7]
        vals = np.array([5.0, 4.0, 3.0, 2.0, 1.001, 1.0, 0.5])
        swap = np.array([0, 1, 2, 3, 5, 4, 6])
        mvals, mvecs, perm = match_eigenpairs(vals, vecs, vals[swap], vecs[:, swap], keep=5)
        assert np.allclose(mvecs, vecs[:, :5], atol=1e-12)
        assert np.allclose(mvals, vals[:5])

    def test_fewer_computed_than_reference(self, rng):
        vecs = random_orthogonal(9, rng)[:, :5]
        vals = np.linspace(5.0, 1.0, 5)
        mvals, mvecs, perm = match_eigenpairs(vals, vecs, vals[:3], vecs[:, :3], keep=4)
        assert mvals.shape == (4,)
        assert mvecs.shape == (9, 4)

    def test_no_computed_pairs_raises(self, rng):
        vecs = random_orthogonal(5, rng)[:, :3]
        with pytest.raises(ValueError):
            match_eigenpairs(np.ones(3), vecs, np.zeros(0), np.zeros((5, 0)), keep=3)

    def test_noisy_vectors_still_match(self, rng):
        vecs = random_orthogonal(20, rng)[:, :6]
        noise = 0.01 * rng.standard_normal((20, 6))
        comp = vecs + noise
        _, mvecs, perm = match_eigenpairs(
            np.arange(6.0, 0.0, -1.0), vecs, np.arange(6.0, 0.0, -1.0), comp, keep=6
        )
        assert np.array_equal(np.sort(perm), np.arange(6))


class TestErrorMetrics:
    def test_absolute_and_relative(self):
        ref = np.array([3.0, 4.0])
        comp = np.array([3.0, 5.0])
        assert absolute_l2_error(ref, comp) == pytest.approx(1.0)
        assert relative_l2_error(ref, comp) == pytest.approx(0.2)

    def test_zero_reference(self):
        assert relative_l2_error(np.zeros(3), np.zeros(3)) == 0.0
        assert relative_l2_error(np.zeros(2), np.array([1.0, 0.0])) == pytest.approx(1.0)

    def test_matrix_frobenius(self, rng):
        ref = rng.standard_normal((6, 3))
        comp = ref + 0.1
        expected = np.linalg.norm(ref - comp) / np.linalg.norm(ref)
        assert relative_l2_error(ref, comp) == pytest.approx(expected, rel=1e-10)

    def test_error_metrics_dataclass(self, rng):
        ref_vals = np.array([2.0, 1.0])
        ref_vecs = random_orthogonal(4, rng)[:, :2]
        metrics = error_metrics(ref_vals, ref_vecs, ref_vals, ref_vecs)
        assert metrics.eigenvalue_relative == 0.0
        assert metrics.finite

    def test_non_finite_detected(self):
        metrics = error_metrics(np.array([1.0]), np.eye(1), np.array([np.nan]), np.eye(1))
        assert not metrics.finite


class TestTolerances:
    def test_paper_values(self):
        assert TOLERANCES == {8: 1e-2, 16: 1e-4, 32: 1e-8, 64: 1e-12}
        assert REFERENCE_TOLERANCE == 1e-18

    def test_lookup_by_name_and_width(self):
        assert tolerance_for("bfloat16") == 1e-4
        assert tolerance_for("E4M3") == 1e-2
        assert tolerance_for("posit64") == 1e-12
        assert tolerance_for(32) == 1e-8
        assert tolerance_for("reference") == REFERENCE_TOLERANCE

    def test_lookup_by_format_object(self):
        from repro.arithmetic import get_format

        assert tolerance_for(get_format("takum32")) == 1e-8

    def test_unknown_width(self):
        with pytest.raises(KeyError):
            tolerance_for(12)
