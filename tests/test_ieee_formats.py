"""Tests of the IEEE-style formats (float16, bfloat16, float32, float64)."""

import math

import numpy as np
import pytest

from repro.arithmetic import BFLOAT16, FLOAT16, FLOAT32, FLOAT64, IEEEFormat


class TestFloat16:
    def test_max_value(self):
        assert FLOAT16.max_value == 65504.0

    def test_min_positive_subnormal(self):
        assert FLOAT16.min_positive == 2.0**-24

    def test_machine_epsilon(self):
        assert FLOAT16.machine_epsilon == 2.0**-10

    def test_round_matches_numpy_float16(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(500) * 10.0 ** rng.integers(-6, 5, 500)
        ours = FLOAT16.round_array(x)
        theirs = np.asarray(np.asarray(x, dtype=np.float16), dtype=np.float64)
        assert np.array_equal(ours, theirs)

    def test_round_overflow_to_inf(self):
        out = FLOAT16.round_array(np.array([1e6, -1e6]))
        assert out[0] == np.inf and out[1] == -np.inf

    def test_round_underflow_to_zero(self):
        assert FLOAT16.round_array(np.array([1e-12]))[0] == 0.0

    def test_subnormal_rounding_matches_numpy(self):
        values = np.array([3e-8, 7e-8, 1.5e-7, 5.5e-5])
        ours = FLOAT16.round_array(values)
        theirs = np.asarray(values.astype(np.float16), dtype=np.float64)
        assert np.array_equal(ours, theirs)

    def test_nan_and_inf_preserved(self):
        out = FLOAT16.round_array(np.array([np.nan, np.inf, -np.inf]))
        assert np.isnan(out[0]) and out[1] == np.inf and out[2] == -np.inf


class TestBfloat16:
    def test_layout(self):
        assert BFLOAT16.bits == 16
        assert BFLOAT16.ebits == 8
        assert BFLOAT16.mbits == 7

    def test_max_value(self):
        # 2^127 * (2 - 2^-7)
        assert BFLOAT16.max_value == pytest.approx(3.3895313892515355e38)

    def test_epsilon(self):
        assert BFLOAT16.machine_epsilon == 2.0**-7

    def test_known_roundings(self):
        assert BFLOAT16.round_scalar(1.0) == 1.0
        assert BFLOAT16.round_scalar(1.01) == 1.0078125
        assert BFLOAT16.round_scalar(3.14159265) == pytest.approx(3.140625)

    def test_same_exponent_range_as_float32(self):
        # bfloat16 must represent everything float32-range without overflow
        out = BFLOAT16.round_array(np.array([1e38, 1e-38]))
        assert np.all(np.isfinite(out)) and np.all(out != 0)

    def test_truncation_consistency_with_float32_bits(self):
        rng = np.random.default_rng(1)
        x = np.asarray(rng.standard_normal(200), dtype=np.float32)
        ours = BFLOAT16.round_array(np.asarray(x, dtype=np.float64))
        # round-trip through the bit-level encode/decode must be identical
        codes = BFLOAT16.encode(ours)
        back = BFLOAT16.decode(codes)
        assert np.array_equal(ours, back)


class TestFloat32AndFloat64:
    def test_float32_round_is_cast(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(100) * 1e10
        assert np.array_equal(
            FLOAT32.round_array(x), x.astype(np.float32).astype(np.float64)
        )

    def test_float64_round_is_identity(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(100)
        assert np.array_equal(FLOAT64.round_array(x), x)

    def test_float32_metadata(self):
        assert FLOAT32.max_value == pytest.approx(3.4028234663852886e38)
        assert FLOAT32.machine_epsilon == 2.0**-23


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", [FLOAT16, BFLOAT16])
    def test_roundtrip(self, fmt):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(300) * 10.0 ** rng.integers(-8, 8, 300)
        rounded = fmt.round_array(x)
        finite = np.isfinite(rounded)
        back = fmt.decode(fmt.encode(rounded))
        assert np.array_equal(rounded[finite], back[finite])

    def test_decode_known_float16_codes(self):
        assert FLOAT16.decode_code(0x3C00) == 1.0
        assert FLOAT16.decode_code(0xBC00) == -1.0
        assert FLOAT16.decode_code(0x7BFF) == 65504.0
        assert FLOAT16.decode_code(0x0001) == 2.0**-24
        assert FLOAT16.decode_code(0x7C00) == np.inf
        assert math.isnan(FLOAT16.decode_code(0x7C01))

    def test_decode_known_bfloat16_codes(self):
        assert BFLOAT16.decode_code(0x3F80) == 1.0
        assert BFLOAT16.decode_code(0xC000) == -2.0
        assert BFLOAT16.decode_code(0x7F80) == np.inf

    def test_encode_zero_and_specials(self):
        codes = FLOAT16.encode(np.array([0.0, np.inf, -np.inf]))
        assert codes[0] == 0
        assert codes[1] == 0x7C00
        assert codes[2] == 0xFC00


class TestParametricValidation:
    def test_rejects_tiny_fields(self):
        with pytest.raises(ValueError):
            IEEEFormat(1, 2, "bad")
        with pytest.raises(ValueError):
            IEEEFormat(5, 0, "bad")

    def test_custom_format(self):
        fmt = IEEEFormat(6, 9, "custom16")
        assert fmt.bits == 16
        assert fmt.round_scalar(1.0) == 1.0
        assert fmt.machine_epsilon == 2.0**-9
